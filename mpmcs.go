// Package mpmcs4fta computes Maximum Probability Minimal Cut Sets
// (MPMCSs) of fault trees with MaxSAT, reproducing Barrère & Hankin,
// "Fault Tree Analysis: Identifying Maximum Probability Minimal Cut
// Sets with MaxSAT" (DSN 2020).
//
// A fault tree combines basic failure events through AND, OR and K-of-N
// voting gates up to a top event. A minimal cut set (MCS) is a minimal
// set of basic events that together trigger the top event; the MPMCS is
// the MCS with the highest joint probability — the most likely way the
// system fails. The library models the MPMCS problem as Weighted
// Partial MaxSAT (falsified events pay their −log probability) and
// solves it with a portfolio of MaxSAT engines built from scratch on an
// internal CDCL SAT solver; a BDD engine provides an independent
// baseline and the classical quantitative measures.
//
// Quickstart:
//
//	tree := mpmcs4fta.NewTree("demo")
//	tree.AddEvent("pump", 0.01)
//	tree.AddEvent("valve", 0.02)
//	tree.AddAnd("top", "pump", "valve")
//	tree.SetTop("top")
//	sol, err := mpmcs4fta.Analyze(context.Background(), tree, mpmcs4fta.Options{})
//	// sol.CutSetIDs() == ["pump","valve"], sol.Probability == 0.0002
package mpmcs4fta

import (
	"context"
	"io"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/mcs"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/quant"
	"mpmcs4fta/internal/sim"
)

// Core model and analysis types, re-exported from the internal
// packages.
type (
	// Tree is a fault tree under construction or analysis.
	Tree = ft.Tree
	// BasicEvent is a leaf failure mode with a probability.
	BasicEvent = ft.BasicEvent
	// Gate is an internal AND/OR/voting node.
	Gate = ft.Gate
	// GateType enumerates gate kinds.
	GateType = ft.GateType
	// DotOptions controls Graphviz export.
	DotOptions = ft.DotOptions

	// Options configures Analyze and AnalyzeTopK.
	Options = core.Options
	// Solution is the analysis result (the MPMCS4FTA JSON document).
	Solution = core.Solution
	// SolutionEvent is one MPMCS member.
	SolutionEvent = core.SolutionEvent
	// EventWeight is a Step-3 probability/−log-weight pair (Table I).
	EventWeight = core.EventWeight
	// Steps exposes the pipeline's intermediate artefacts (Steps 1–4).
	Steps = core.Steps

	// CutSet is a sorted set of basic-event ids.
	CutSet = mcs.CutSet
	// Importance bundles classical importance measures for one event.
	Importance = quant.Importance

	// RandomTreeConfig parameterises the workload generator.
	RandomTreeConfig = gen.Config
	// ModularTreeConfig parameterises the modular workload generator.
	ModularTreeConfig = gen.ModularConfig

	// Analyzer caches the CNF encoding for repeated what-if analyses.
	Analyzer = core.Analyzer
	// Estimate is a Monte-Carlo estimate with its standard error.
	Estimate = sim.Estimate
	// CCFGroup declares a beta-factor common-cause failure group.
	CCFGroup = ft.CCFGroup
	// Interval is a closed probability interval for uncertainty
	// propagation.
	Interval = quant.Interval

	// Tracer receives hierarchical spans for the pipeline's six steps;
	// set Options.Tracer to observe an analysis.
	Tracer = obs.Tracer
	// Span is one traced operation; engines appear as "engine:<name>"
	// children of the solve span.
	Span = obs.Span
	// JSONTracer records spans in memory and serialises them as JSON.
	JSONTracer = obs.JSONTracer
	// SpanRecord is the exported form of a finished span.
	SpanRecord = obs.SpanRecord
	// Metrics is a process-wide named-counter registry; set
	// Options.Metrics to accumulate analysis counters.
	Metrics = obs.Metrics
	// SolverStats aggregates per-engine solver telemetry (SAT calls,
	// conflicts, decisions, propagations, bound trajectory).
	SolverStats = obs.SolverStats
	// BoundStep is one point of an engine's cost-bound trajectory.
	BoundStep = obs.BoundStep
	// BoundTraffic counts the cooperative bound exchanges of a portfolio
	// race (models and lower bounds published/improved, race closure).
	BoundTraffic = obs.BoundTraffic
	// EventBus streams live solver events (bound improvements, engine
	// lifecycle, heartbeats) to concurrent subscribers; set Options.Bus
	// to watch a solve converge in flight.
	EventBus = obs.EventBus
	// Event is the envelope of one live solver event.
	Event = obs.Event
	// ObsServer serves /metrics (Prometheus), /events (SSE) and
	// /debug/pprof over a bus and metrics registry — the endpoint behind
	// the CLIs' --obs-listen flag.
	ObsServer = obs.Server
)

// Gate kinds.
const (
	GateAnd    = ft.GateAnd
	GateOr     = ft.GateOr
	GateVoting = ft.GateVoting
)

// Sentinel errors.
var (
	// ErrNoCutSet reports that the top event cannot occur.
	ErrNoCutSet = core.ErrNoCutSet
	// ErrNoAnswer reports that the deadline expired (or the context was
	// cancelled) before the analysis established any answer at all —
	// distinct from ErrNoCutSet, which is a proof about the tree.
	ErrNoAnswer = core.ErrNoAnswer
)

// CanonicalTreeHash returns the tree's content address ("sha256:…"):
// equal for structurally identical trees regardless of gate naming and
// child order — the mpmcsd solution-cache key (see ft.CanonicalHash).
func CanonicalTreeHash(tree *Tree) (string, error) { return ft.CanonicalHash(tree) }

// NewTree returns an empty fault tree with the given name.
func NewTree(name string) *Tree { return ft.New(name) }

// NewJSONTracer returns an in-memory tracer whose span tree can be
// written as JSON (JSONTracer.WriteJSON) after the analysis.
func NewJSONTracer() *JSONTracer { return obs.NewJSONTracer() }

// NewMetrics returns an empty counter registry for Options.Metrics.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewEventBus returns an enabled live-telemetry bus for Options.Bus.
func NewEventBus() *EventBus { return obs.NewEventBus() }

// NewObsServer returns an unstarted telemetry server over the registry
// and bus (either may be nil); start with Start(addr), stop with
// Close.
func NewObsServer(m *Metrics, bus *EventBus) *ObsServer { return obs.NewServer(m, bus) }

// LoadTreeJSON parses and validates a fault tree from its JSON format.
func LoadTreeJSON(r io.Reader) (*Tree, error) { return ft.ReadJSON(r) }

// LoadTreeText parses and validates a fault tree from the compact text
// format (see internal/ft: "event id prob", "gate id and|or|KofN in...").
func LoadTreeText(r io.Reader) (*Tree, error) { return ft.ReadText(r) }

// Analyze computes the tree's MPMCS via the six-step MaxSAT pipeline.
func Analyze(ctx context.Context, tree *Tree, opts Options) (*Solution, error) {
	return core.Analyze(ctx, tree, opts)
}

// AnalyzeTopK returns up to k minimal cut sets ranked by descending
// probability (the first is the MPMCS).
func AnalyzeTopK(ctx context.Context, tree *Tree, k int, opts Options) ([]*Solution, error) {
	return core.AnalyzeTopK(ctx, tree, k, opts)
}

// AnalyzeBDD computes the MPMCS with the BDD engine instead of MaxSAT —
// the comparison baseline from the paper's future work.
func AnalyzeBDD(tree *Tree, opts Options) (*Solution, error) {
	return core.AnalyzeBDD(tree, opts)
}

// AnalyzeTopKBDD returns up to k ranked minimal cut sets computed with
// the BDD engine (exact best-first enumeration over the Rauzy family) —
// the cross-check counterpart of AnalyzeTopK.
func AnalyzeTopKBDD(tree *Tree, k int, opts Options) ([]*Solution, error) {
	return core.AnalyzeTopKBDD(tree, k, opts)
}

// BuildSteps runs Steps 1–4 of the pipeline without solving, exposing
// the success-tree formula, the CNF encoding, the −log weights and the
// MaxSAT instance.
func BuildSteps(tree *Tree, opts Options) (*Steps, error) {
	return core.BuildSteps(tree, opts)
}

// MinimalCutSets enumerates all minimal cut sets (BDD-based; scales far
// beyond the classical MOCUS expansion).
func MinimalCutSets(tree *Tree) ([]CutSet, error) { return mcs.ViaBDD(tree) }

// CountMinimalCutSets counts minimal cut sets without enumerating them.
func CountMinimalCutSets(tree *Tree) (int64, error) { return mcs.CountViaBDD(tree) }

// SinglePointsOfFailure returns the events that alone trigger the top
// event.
func SinglePointsOfFailure(tree *Tree) ([]string, error) { return mcs.SPOFs(tree) }

// MinimalPathSets enumerates the minimal sets of events whose
// functioning guarantees the top event cannot occur — the success-side
// dual of MinimalCutSets.
func MinimalPathSets(tree *Tree) ([]CutSet, error) { return mcs.PathSetsViaBDD(tree) }

// Modules returns the gates whose subtrees are independent modules
// (reachable from the top only through them) — the units a
// divide-and-conquer analysis can treat in isolation.
func Modules(tree *Tree) ([]string, error) { return tree.Modules() }

// BottomUpProbability computes the exact top-event probability of a
// strictly tree-shaped fault tree in linear time, without building a
// BDD. It rejects trees with shared nodes.
func BottomUpProbability(tree *Tree) (float64, error) {
	return quant.BottomUpProbability(tree)
}

// TopEventProbability computes the exact probability of the top event
// (independent basic events).
func TopEventProbability(tree *Tree) (float64, error) {
	return quant.TopEventProbability(tree)
}

// ImportanceMeasures computes Birnbaum, criticality (Fussell-Vesely),
// RAW and RRW for every basic event, sorted by Birnbaum importance.
func ImportanceMeasures(tree *Tree) ([]Importance, error) {
	return quant.Measures(tree)
}

// NewAnalyzer encodes the tree once for repeated what-if analyses
// under changing probabilities (Analyzer.Analyze, Analyzer.SwitchPoint).
func NewAnalyzer(tree *Tree, opts Options) (*Analyzer, error) {
	return core.NewAnalyzer(tree, opts)
}

// AnalyzeAbove enumerates every minimal cut set with probability at
// least minProb, in descending order.
func AnalyzeAbove(ctx context.Context, tree *Tree, minProb float64, opts Options) ([]*Solution, error) {
	return core.AnalyzeAbove(ctx, tree, minProb, opts)
}

// ModularProbability computes the exact top-event probability by
// modular decomposition — per-module BDDs instead of one monolithic
// BDD, reaching far larger shared structures.
func ModularProbability(tree *Tree) (float64, error) {
	return quant.ModularProbability(tree)
}

// SimulateTopEvent estimates P(top) by Monte-Carlo sampling — an
// analysis-independent cross-check of the exact engines.
func SimulateTopEvent(tree *Tree, trials int, seed int64) (Estimate, error) {
	return sim.TopEvent(tree, trials, seed)
}

// SimulateDominance estimates P(top) and the fraction of failures in
// which every member of the given cut set had failed (the set's share
// of total risk).
func SimulateDominance(tree *Tree, set []string, trials int, seed int64) (top, dominance Estimate, err error) {
	return sim.Dominance(tree, set, trials, seed)
}

// AnalyzeDisjoint enumerates up to k event-disjoint minimal cut sets in
// descending probability order ("independent failure modes").
func AnalyzeDisjoint(ctx context.Context, tree *Tree, k int, opts Options) ([]*Solution, error) {
	return core.AnalyzeDisjoint(ctx, tree, k, opts)
}

// VerifySolution independently re-checks a Solution document against a
// tree: set minimality, membership, probabilities and log-cost.
func VerifySolution(tree *Tree, sol *Solution) error {
	return core.VerifySolution(tree, sol)
}

// ApplyCCF injects beta-factor common-cause failure events for the
// given groups into a copy of the tree (see ft.CCFGroup).
func ApplyCCF(tree *Tree, groups []CCFGroup) (*Tree, error) {
	return tree.ApplyCCF(groups)
}

// IntervalProbability propagates event-probability intervals to
// guaranteed bounds on P(top).
func IntervalProbability(tree *Tree, intervals map[string]Interval) (Interval, error) {
	return quant.IntervalProbability(tree, intervals)
}

// RandomTree generates a reproducible random fault tree for workloads
// and benchmarks.
func RandomTree(cfg RandomTreeConfig) (*Tree, error) { return gen.Random(cfg) }

// ModularTree generates a tree with a known number of independent
// modules under the top gate — the ground-truth workload for the
// decomposition planner and fleet benchmarks.
func ModularTree(cfg ModularTreeConfig) (*Tree, error) { return gen.Modular(cfg) }

// ExampleFPS returns the paper's Fig. 1 Fire Protection System tree
// (MPMCS {x1, x2}, probability 0.02).
func ExampleFPS() *Tree { return gen.FPS() }

// ExamplePressureTank returns the classic pressure-tank fault tree.
func ExamplePressureTank() *Tree { return gen.PressureTank() }

// ExampleRedundantSCADA returns a cyber-physical tree with K-of-N
// voting gates.
func ExampleRedundantSCADA() *Tree { return gen.RedundantSCADA() }
