package mpmcs4fta

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/portfolio"
)

func TestFacadeQuickstart(t *testing.T) {
	tree := NewTree("demo")
	if err := tree.AddEvent("pump", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("valve", 0.02); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "pump", "valve"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")

	sol, err := Analyze(context.Background(), tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"pump", "valve"}) {
		t.Errorf("MPMCS = %v", sol.CutSetIDs())
	}
	if math.Abs(sol.Probability-0.0002) > 1e-12 {
		t.Errorf("probability = %v, want 0.0002", sol.Probability)
	}
}

func TestFacadeFPSEndToEnd(t *testing.T) {
	tree := ExampleFPS()
	sol, err := Analyze(context.Background(), tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"x1", "x2"}) || math.Abs(sol.Probability-0.02) > 1e-9 {
		t.Errorf("FPS analysis: %v, %v", sol.CutSetIDs(), sol.Probability)
	}

	sets, err := MinimalCutSets(tree)
	if err != nil || len(sets) != 5 {
		t.Errorf("MinimalCutSets: %v, %v", sets, err)
	}
	n, err := CountMinimalCutSets(tree)
	if err != nil || n != 5 {
		t.Errorf("CountMinimalCutSets: %d, %v", n, err)
	}
	spofs, err := SinglePointsOfFailure(tree)
	if err != nil || !reflect.DeepEqual(spofs, []string{"x3", "x4"}) {
		t.Errorf("SPOFs: %v, %v", spofs, err)
	}
	p, err := TopEventProbability(tree)
	if err != nil || p <= 0.02 || p >= 0.05 {
		t.Errorf("TopEventProbability: %v, %v", p, err)
	}
	measures, err := ImportanceMeasures(tree)
	if err != nil || len(measures) != 7 {
		t.Errorf("ImportanceMeasures: %d, %v", len(measures), err)
	}
	bddSol, err := AnalyzeBDD(tree, Options{})
	if err != nil || math.Abs(bddSol.Probability-sol.Probability) > 1e-12 {
		t.Errorf("AnalyzeBDD: %v, %v", bddSol, err)
	}
}

func TestFacadeTopK(t *testing.T) {
	sols, err := AnalyzeTopK(context.Background(), ExampleFPS(), 3, Options{Sequential: true})
	if err != nil || len(sols) != 3 {
		t.Fatalf("AnalyzeTopK: %d, %v", len(sols), err)
	}
	if sols[0].Probability < sols[1].Probability || sols[1].Probability < sols[2].Probability {
		t.Error("ranking not descending")
	}
}

func TestFacadeLoadFormats(t *testing.T) {
	tree := ExamplePressureTank()
	var jsonBuf, textBuf bytes.Buffer
	if err := tree.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if err := tree.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadTreeJSON(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := LoadTreeText(&textBuf)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.NumEvents() != tree.NumEvents() || fromText.NumEvents() != tree.NumEvents() {
		t.Error("round trips changed event counts")
	}
}

func TestFacadeRandomTree(t *testing.T) {
	tree, err := RandomTree(RandomTreeConfig{Events: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Analyze(context.Background(), tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.MPMCS) == 0 || sol.Probability <= 0 {
		t.Errorf("solution %+v", sol)
	}
}

func TestFacadeErrNoCutSet(t *testing.T) {
	tree := NewTree("impossible")
	if err := tree.AddEvent("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "a"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	if _, err := Analyze(context.Background(), tree, Options{Sequential: true}); !errors.Is(err, ErrNoCutSet) {
		t.Errorf("got %v, want ErrNoCutSet", err)
	}
}

func TestFacadeBuildSteps(t *testing.T) {
	steps, err := BuildSteps(ExampleFPS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if steps.Instance == nil || len(steps.Weights) != 7 {
		t.Error("steps incomplete")
	}
	var dot bytes.Buffer
	err = ExampleFPS().WriteDot(&dot, DotOptions{Highlight: map[string]bool{"x1": true}})
	if err != nil || !strings.Contains(dot.String(), "digraph") {
		t.Error("DOT export failed through facade")
	}
}

func TestFacadePathSetsModulesBottomUp(t *testing.T) {
	tree := ExampleFPS()
	paths, err := MinimalPathSets(tree)
	if err != nil || len(paths) != 4 {
		t.Errorf("MinimalPathSets: %d sets, %v", len(paths), err)
	}
	modules, err := Modules(tree)
	if err != nil || len(modules) != 5 {
		t.Errorf("Modules: %v, %v", modules, err)
	}
	fast, err := BottomUpProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TopEventProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-exact) > 1e-12 {
		t.Errorf("BottomUpProbability %v != TopEventProbability %v", fast, exact)
	}
}

// TestWCNFInteropRoundTrip exercises the external-solver workflow: the
// Step-4 instance exported to DIMACS WCNF, re-read, and solved must
// yield the same optimal cost as the in-process pipeline.
func TestWCNFInteropRoundTrip(t *testing.T) {
	tree := ExampleFPS()
	steps, err := BuildSteps(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := steps.Instance.WriteWCNF(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := cnf.ReadWCNF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := portfolio.Solve(context.Background(), back, portfolio.DefaultEngines())
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Analyze(context.Background(), tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	var wantCost int64
	scaledByID := make(map[string]int64, len(sol.Weights))
	for _, w := range sol.Weights {
		scaledByID[w.ID] = w.Scaled
	}
	for _, id := range sol.CutSetIDs() {
		wantCost += scaledByID[id]
	}
	if res.Cost != wantCost {
		t.Errorf("WCNF round-trip cost %d, pipeline cost %d", res.Cost, wantCost)
	}
}

func TestFacadeCCFAndIntervals(t *testing.T) {
	tree := NewTree("pumps")
	if err := tree.AddEvent("pump-a", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("pump-b", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "pump-a", "pump-b"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")

	base, err := TopEventProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	withCCF, err := ApplyCCF(tree, []CCFGroup{{ID: "p", Members: []string{"pump-a", "pump-b"}, Beta: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	pCCF, err := TopEventProbability(withCCF)
	if err != nil {
		t.Fatal(err)
	}
	// Common cause dominates redundancy: P(top) grows by ~an order.
	if pCCF <= base {
		t.Errorf("CCF should increase P(top): %v vs %v", pCCF, base)
	}
	// The CCF event becomes the MPMCS under a high beta.
	sol, err := Analyze(context.Background(), withCCF, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"ccf-p"}) {
		t.Errorf("MPMCS = %v, want [ccf-p]", sol.CutSetIDs())
	}

	iv, err := IntervalProbability(tree, map[string]Interval{"pump-a": {Lo: 0.005, Hi: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > base || iv.Hi < base {
		t.Errorf("interval [%v, %v] misses point %v", iv.Lo, iv.Hi, base)
	}
}

func TestFacadeNamedTrees(t *testing.T) {
	for _, tree := range []*Tree{ExampleFPS(), ExamplePressureTank(), ExampleRedundantSCADA()} {
		if err := tree.Validate(); err != nil {
			t.Errorf("%s: %v", tree.Name(), err)
		}
	}
}
