// Command cdcl is a plain SAT solver over DIMACS CNF files, exposing
// the library's CDCL engine directly. Output follows SAT-competition
// conventions: "s SATISFIABLE|UNSATISFIABLE" plus a "v" model line.
// Exit codes: 10 satisfiable, 20 unsatisfiable, 0 unknown/error.
//
// Usage:
//
//	cdcl -input instance.cnf [-timeout 60s] [-quiet] [-stats]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/sat"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcl:", err)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("cdcl", flag.ContinueOnError)
	var (
		input   = fs.String("input", "", "DIMACS CNF file (required)")
		timeout = fs.Duration("timeout", 0, "solve timeout (0 = none)")
		quiet   = fs.Bool("quiet", false, "suppress the v (model) line")
		stats   = fs.Bool("stats", false, "print solver statistics as comments")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *input == "" {
		fs.Usage()
		return 0, fmt.Errorf("-input is required")
	}

	f, err := os.Open(*input)
	if err != nil {
		return 0, err
	}
	formula, err := cnf.ReadDIMACS(f)
	f.Close()
	if err != nil {
		return 0, err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	solver := sat.New(formula.NumVars, sat.Options{})
	solver.AddFormula(formula)
	start := time.Now()
	status, err := solver.Solve(ctx)
	elapsed := time.Since(start)
	if err != nil {
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0, err
	}
	if *stats {
		st := solver.Stats()
		fmt.Fprintf(stdout, "c conflicts %d, decisions %d, propagations %d, restarts %d, learnt %d\n",
			st.Conflicts, st.Decisions, st.Propagations, st.Restarts, st.Learnt)
		fmt.Fprintf(stdout, "c solved in %v\n", elapsed.Round(time.Microsecond))
	}

	switch status {
	case sat.Sat:
		fmt.Fprintln(stdout, "s SATISFIABLE")
		if !*quiet {
			fmt.Fprintln(stdout, "v "+modelLine(solver.Model(), formula.NumVars))
		}
		return 10, nil
	case sat.Unsat:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
		return 20, nil
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0, nil
	}
}

func modelLine(model []bool, numVars int) string {
	var b strings.Builder
	for v := 1; v <= numVars; v++ {
		if v > 1 {
			b.WriteByte(' ')
		}
		if v < len(model) && model[v] {
			b.WriteString(fmt.Sprint(v))
		} else {
			b.WriteString(fmt.Sprint(-v))
		}
	}
	b.WriteString(" 0")
	return b.String()
}
