package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCNF(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.cnf")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSat(t *testing.T) {
	path := writeCNF(t, "p cnf 3 2\n1 -2 0\n2 3 0\n")
	var out bytes.Buffer
	code, err := run([]string{"-input", path, "-stats"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 10 {
		t.Errorf("exit code %d, want 10", code)
	}
	text := out.String()
	if !strings.Contains(text, "s SATISFIABLE") || !strings.Contains(text, "\nv ") {
		t.Errorf("output:\n%s", text)
	}
	if !strings.Contains(text, "c conflicts") {
		t.Errorf("stats missing:\n%s", text)
	}
}

func TestRunUnsat(t *testing.T) {
	path := writeCNF(t, "p cnf 1 2\n1 0\n-1 0\n")
	var out bytes.Buffer
	code, err := run([]string{"-input", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 20 || !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Errorf("code %d output:\n%s", code, out.String())
	}
}

func TestRunQuiet(t *testing.T) {
	path := writeCNF(t, "p cnf 2 1\n1 2 0\n")
	var out bytes.Buffer
	if _, err := run([]string{"-input", path, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "\nv ") {
		t.Errorf("quiet printed a model:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"missing input", nil},
		{"nonexistent", []string{"-input", "/no/such/file"}},
		{"malformed", []string{"-input", writeCNF(t, "garbage\n")}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if _, err := run(tt.args, &out); err == nil {
				t.Error("expected error")
			}
		})
	}
}
