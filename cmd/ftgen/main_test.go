package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpmcs4fta"
)

func TestRunGeneratesValidJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-events", "40", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	tree, err := mpmcs4fta.LoadTreeJSON(&out)
	if err != nil {
		t.Fatalf("generated JSON does not load: %v", err)
	}
	if tree.NumEvents() != 40 {
		t.Errorf("got %d events", tree.NumEvents())
	}
}

func TestRunGeneratesValidText(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-events", "25", "-seed", "5", "-format", "text", "-voting", "0.3"}, &out); err != nil {
		t.Fatal(err)
	}
	tree, err := mpmcs4fta.LoadTreeText(&out)
	if err != nil {
		t.Fatalf("generated text does not load: %v", err)
	}
	if tree.NumEvents() != 25 {
		t.Errorf("got %d events", tree.NumEvents())
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-events", "30", "-seed", "11"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-events", "30", "-seed", "11"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different output")
	}
	var c bytes.Buffer
	if err := run([]string{"-events", "30", "-seed", "12"}, &c); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical output")
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.json")
	var out bytes.Buffer
	if err := run([]string{"-events", "10", "-output", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"events\"") {
		t.Errorf("file content unexpected: %s", data)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"too few events", []string{"-events", "1"}},
		{"bad format", []string{"-format", "xml"}},
		{"bad probability range", []string{"-minprob", "0.5", "-maxprob", "0.1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, &out); err == nil {
				t.Error("expected error")
			}
		})
	}
}
