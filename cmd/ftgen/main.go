// Command ftgen generates random fault-tree workloads for benchmarking
// and testing, using the library's seeded generator. The same flags
// always produce the same tree.
//
// Usage:
//
//	ftgen -events 1000 -seed 7 [-fanin 4] [-andbias 0.4] [-voting 0.1]
//	      [-minprob 1e-4] [-maxprob 0.2] [-format json|text] [-output f]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpmcs4fta"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftgen", flag.ContinueOnError)
	var (
		events  = fs.Int("events", 100, "number of basic events")
		seed    = fs.Int64("seed", 1, "generator seed")
		fanIn   = fs.Int("fanin", 4, "maximum gate fan-in")
		andBias = fs.Float64("andbias", 0.4, "probability a gate is AND")
		voting  = fs.Float64("voting", 0, "fraction of gates that become K-of-N voting gates")
		minProb = fs.Float64("minprob", 1e-4, "minimum event probability")
		maxProb = fs.Float64("maxprob", 0.2, "maximum event probability")
		format  = fs.String("format", "json", "output format: json or text")
		output  = fs.String("output", "", "output file (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tree, err := mpmcs4fta.RandomTree(mpmcs4fta.RandomTreeConfig{
		Events:     *events,
		Seed:       *seed,
		MaxFanIn:   *fanIn,
		AndBias:    *andBias,
		VotingFrac: *voting,
		MinProb:    *minProb,
		MaxProb:    *maxProb,
	})
	if err != nil {
		return err
	}

	out := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		return tree.WriteJSON(out)
	case "text":
		return tree.WriteText(out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
