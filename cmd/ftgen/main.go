// Command ftgen generates random fault-tree workloads for benchmarking
// and testing, using the library's seeded generator. The same flags
// always produce the same tree.
//
// Usage:
//
//	ftgen -events 1000 -seed 7 [-fanin 4] [-andbias 0.4] [-voting 0.1]
//	      [-minprob 1e-4] [-maxprob 0.2] [-format json|text] [-output f]
//
// With -modular M the generator instead emits a tree of M independent
// modules joined by one top gate (the ground-truth workload for the
// decomposition planner), each with -module-events basic events:
//
//	ftgen -modular 6 -module-events 40 -seed 7 [-top-and] [...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mpmcs4fta"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftgen", flag.ContinueOnError)
	var (
		events  = fs.Int("events", 100, "number of basic events")
		seed    = fs.Int64("seed", 1, "generator seed")
		fanIn   = fs.Int("fanin", 4, "maximum gate fan-in")
		andBias = fs.Float64("andbias", 0.4, "probability a gate is AND")
		voting  = fs.Float64("voting", 0, "fraction of gates that become K-of-N voting gates")
		minProb = fs.Float64("minprob", 1e-4, "minimum event probability")
		maxProb = fs.Float64("maxprob", 0.2, "maximum event probability")
		format  = fs.String("format", "json", "output format: json or text")
		output  = fs.String("output", "", "output file (default: stdout)")
		modular = fs.Int("modular", 0, "generate a tree of this many independent modules (0 = plain random tree)")
		modEv   = fs.Int("module-events", 40, "with -modular: basic events per module")
		topAnd  = fs.Bool("top-and", false, "with -modular: join modules with an AND top gate instead of OR")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tree *mpmcs4fta.Tree
	var err error
	if *modular > 0 {
		tree, err = mpmcs4fta.ModularTree(mpmcs4fta.ModularTreeConfig{
			Modules:         *modular,
			EventsPerModule: *modEv,
			TopAnd:          *topAnd,
			Seed:            *seed,
			MaxFanIn:        *fanIn,
			AndBias:         *andBias,
			VotingFrac:      *voting,
			MinProb:         *minProb,
			MaxProb:         *maxProb,
		})
	} else {
		tree, err = mpmcs4fta.RandomTree(mpmcs4fta.RandomTreeConfig{
			Events:     *events,
			Seed:       *seed,
			MaxFanIn:   *fanIn,
			AndBias:    *andBias,
			VotingFrac: *voting,
			MinProb:    *minProb,
			MaxProb:    *maxProb,
		})
	}
	if err != nil {
		return err
	}

	out := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	switch *format {
	case "json":
		return tree.WriteJSON(out)
	case "text":
		return tree.WriteText(out)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
