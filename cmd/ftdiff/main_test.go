package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOverTestdataTrees(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata trees: %v", err)
	}
	txt, _ := filepath.Glob("../../testdata/*.txt")
	paths = append(paths, txt...)

	var out strings.Builder
	code, err := run(append([]string{"-topk", "2"}, paths...), &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "all engines agree") {
		t.Errorf("missing agreement summary:\n%s", out.String())
	}
}

func TestRunRandomInstances(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-random", "5", "-events", "8", "-seed", "11", "-v"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0:\n%s", code, out.String())
	}
	if got := strings.Count(out.String(), "agreement"); got != 5 {
		t.Errorf("verbose mode printed %d reports, want 5:\n%s", got, out.String())
	}
}

func TestRunDeadlineMode(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-deadline", "50ms", "-random", "3", "-events", "12", "-seed", "7"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0:\n%s", code, out.String())
	}

	// A negative deadline is a usage error.
	out.Reset()
	if code, _ := run([]string{"-deadline", "-1s", "-random", "1"}, &out); code != 2 {
		t.Errorf("negative deadline: exit code %d, want 2", code)
	}
}

func TestRunWCNFInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "small.wcnf")
	content := "p wcnf 3 4 100\n100 1 2 0\n100 -1 3 0\n5 1 0\n3 -3 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0:\n%s", code, out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                   // nothing to check
		{"-random", "-3"},    // negative count
		{"nonexistent.json"}, // unreadable file
		{"main.go"},          // unknown extension
	}
	for _, args := range cases {
		var out strings.Builder
		code, _ := run(args, &out)
		if code != 2 {
			t.Errorf("args %v: exit code %d, want 2", args, code)
		}
	}
}

func TestRunMalformedTree(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte("gate g and g\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{path}, &out)
	if code != 2 || err == nil {
		t.Errorf("malformed tree: code %d err %v, want code 2 and error", code, err)
	}
}
