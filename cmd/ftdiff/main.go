// Command ftdiff is the differential-correctness gate: it runs every
// MaxSAT engine configuration of the portfolio individually on the same
// instances and cross-checks optimum cost, model feasibility, decoded
// cut sets and MPMCS probability against the BDD top-k oracle and the
// exact quantitative layer (see internal/differ). It exits nonzero on
// any disagreement, which makes it usable both as a local debugging
// tool and as a CI gate.
//
// Inputs are fault-tree files (.json or .txt), raw MaxSAT instances
// (.wcnf, classic or 2022 dialect), and/or seeded random instances from
// the workload generator:
//
//	ftdiff testdata/*.json testdata/*.txt
//	ftdiff -random 50 -events 12 -voting 0.25
//	ftdiff -random 1 -seed 1337 -topk 5 instance.wcnf
//
// The -deadline mode exercises the anytime contract: every engine runs
// under the given short budget, and interrupted engines must return
// sound FEASIBLE incumbents — model feasible, cost at or above the
// optimum, proven lower bound at or below it, decoded probability never
// beating the BDD oracle (top-k ranking is skipped, as an interrupted
// round cannot promise rank order).
//
// When a random instance diverges, ftdiff shrinks the generator
// configuration to a locally minimal reproducer and prints it.
//
// Exit codes: 0 all instances agree, 1 divergence found, 2 bad usage or
// input error.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/differ"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/obs"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftdiff:", err)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("ftdiff", flag.ContinueOnError)
	var (
		random   = fs.Int("random", 0, "additionally check this many seeded random instances")
		seed     = fs.Int64("seed", 1, "base seed for random instances (instance i uses seed+i)")
		events   = fs.Int("events", 10, "basic events per random instance")
		fanIn    = fs.Int("fanin", 4, "maximum gate fan-in of random instances")
		voting   = fs.Float64("voting", 0.25, "fraction of voting gates in random instances")
		topK     = fs.Int("topk", 3, "also cross-check the first K ranked cut sets (0 = off)")
		timeout  = fs.Duration("timeout", time.Minute, "per-engine solve timeout")
		deadline = fs.Duration("deadline", 0, "anytime mode: run each engine under this short budget and cross-check FEASIBLE answers against the BDD oracle (disables -topk)")
		verbose  = fs.Bool("v", false, "print every report, not only divergent ones")
		obsAddr  = fs.String("obs-listen", "", "serve live telemetry on this address: /metrics (Prometheus), /events (SSE bound trajectory), /debug/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return 2, nil // flag package already printed the error
	}
	if *random < 0 {
		return 2, fmt.Errorf("-random must be non-negative")
	}
	if *deadline < 0 {
		return 2, fmt.Errorf("-deadline must be non-negative")
	}
	if len(fs.Args()) == 0 && *random == 0 {
		fs.Usage()
		return 2, fmt.Errorf("nothing to check: give input files and/or -random N")
	}

	opts := differ.Options{TopK: *topK, Timeout: *timeout}
	if *deadline > 0 {
		opts.Timeout = *deadline
		opts.TopK = 0
	}
	ctx := context.Background()
	if *obsAddr != "" {
		// The differ's engines read the bus and metrics straight from
		// the context, so no differ.Options plumbing is needed.
		metrics := obs.NewMetrics()
		bus := obs.NewEventBus()
		srv := obs.NewServer(metrics, bus)
		bound, serr := srv.Start(*obsAddr)
		if serr != nil {
			return 2, serr
		}
		defer srv.Close()
		ctx = obs.ContextWithBus(obs.ContextWithMetrics(ctx, metrics), bus)
		fmt.Fprintf(os.Stderr, "ftdiff: telemetry on http://%s/metrics and http://%s/events\n", bound, bound)
	}
	checked, divergent := 0, 0

	show := func(rep *differ.Report) {
		checked++
		if !rep.OK() {
			divergent++
		}
		if *verbose || !rep.OK() {
			fmt.Fprint(stdout, rep)
		}
	}

	for _, path := range fs.Args() {
		rep, err := checkFile(ctx, path, opts)
		if err != nil {
			return 2, err
		}
		show(rep)
	}

	for i := 0; i < *random; i++ {
		cfg := gen.Config{
			Events:     *events,
			MaxFanIn:   *fanIn,
			VotingFrac: *voting,
			Seed:       *seed + int64(i),
		}
		rep, err := differ.CheckRandom(ctx, cfg, opts)
		if err != nil {
			return 2, fmt.Errorf("random seed %d: %w", cfg.Seed, err)
		}
		show(rep)
		if !rep.OK() {
			minCfg, minRep := differ.Shrink(ctx, cfg, opts)
			fmt.Fprintf(stdout, "minimized reproducer: -random 1 -seed %d -events %d -fanin %d -voting %g\n",
				minCfg.Seed, minCfg.Events, minCfg.MaxFanIn, minCfg.VotingFrac)
			if minRep != nil {
				fmt.Fprint(stdout, minRep)
			}
		}
	}

	if divergent > 0 {
		fmt.Fprintf(stdout, "ftdiff: %d of %d instance(s) DIVERGED\n", divergent, checked)
		return 1, nil
	}
	fmt.Fprintf(stdout, "ftdiff: %d instance(s), all engines agree\n", checked)
	return 0, nil
}

// checkFile dispatches on the file extension: fault trees run the full
// harness (BDD + quant oracles), raw WCNF instances the engine-level
// agreement checks.
func checkFile(ctx context.Context, path string, opts differ.Options) (*differ.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".wcnf":
		inst, err := cnf.ReadWCNFAuto(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		rep, err := differ.CheckWCNF(ctx, inst, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		rep.Name = path
		return rep, nil
	case ".json", ".txt":
		var tree *ft.Tree
		if ext == ".json" {
			tree, err = ft.ReadJSON(f)
		} else {
			tree, err = ft.ReadText(f)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		rep, err := differ.CheckTree(ctx, tree, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rep.Name == "" {
			rep.Name = path
		}
		return rep, nil
	default:
		return nil, fmt.Errorf("%s: unknown input type (want .json, .txt or .wcnf)", path)
	}
}
