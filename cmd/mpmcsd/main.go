// Command mpmcsd is the long-running MPMCS analysis service: fault
// trees are POSTed as JSON, analyses run on a shared worker pool with
// per-request deadlines, and definitive results are cached by the
// canonical tree hash, so re-submitting an equivalent tree is a lookup
// instead of a solve.
//
// Usage:
//
//	mpmcsd [-listen :8357] [-workers N] [-default-timeout 30s]
//	       [-max-timeout 5m] [-cache-entries 1024] [-sequential]
//	       [-pg] [-no-decompose] [-decompose-workers N]
//
// Endpoints (see internal/serve for the request/response contract):
//
//	POST /v1/analyze           fault tree JSON → MPMCS document
//	POST /v1/topk?k=N          fault tree JSON → ranked cut sets
//	GET  /v1/solutions/{hash}  cache lookup by canonical hash
//	GET  /healthz /metrics /events /debug/pprof/*
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil, nil))
}

// run starts the service and blocks until a termination signal.
// The test hooks: a non-nil ready receives the bound address once
// listening, and a non-nil shutdown replaces the signal wait — run
// exits when it is closed. Returns the process exit code.
func run(args []string, stderr io.Writer, ready chan<- string, shutdown <-chan struct{}) int {
	fs := flag.NewFlagSet("mpmcsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen     = fs.String("listen", ":8357", "address to serve on (host:port; :0 picks a free port)")
		workers    = fs.Int("workers", 0, "solve pool size (0 = GOMAXPROCS)")
		defTimeout = fs.Duration("default-timeout", 30*time.Second, "per-request solve budget when the request names none")
		maxTimeout = fs.Duration("max-timeout", 5*time.Minute, "upper bound on the budget a request may ask for")
		cacheSize  = fs.Int("cache-entries", 1024, "bound on cached solution documents")
		sequential = fs.Bool("sequential", false, "run portfolio engines sequentially (deterministic)")
		pg         = fs.Bool("pg", false, "use the Plaisted-Greenbaum CNF encoding")
		noDecomp   = fs.Bool("no-decompose", false, "disable modular decomposition")
		decompWork = fs.Int("decompose-workers", 0, "worker budget for module sub-solves (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return serve.ExitUsage
	}

	s := serve.New(serve.Config{
		Workers:        *workers,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		CacheEntries:   *cacheSize,
		Core: core.Options{
			Sequential:        *sequential,
			PlaistedGreenbaum: *pg,
			NoDecompose:       *noDecomp,
			DecomposeWorkers:  *decompWork,
		},
	})
	bound, err := s.Start(*listen)
	if err != nil {
		fmt.Fprintln(stderr, "mpmcsd:", err)
		return serve.ExitError
	}
	fmt.Fprintf(stderr, "mpmcsd: listening on http://%s (analyze: POST /v1/analyze, telemetry: /metrics /events)\n", bound)

	if ready != nil {
		ready <- bound
	}
	if shutdown != nil {
		<-shutdown
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		signal.Stop(sig)
		fmt.Fprintln(stderr, "mpmcsd: shutting down")
	}
	if err := s.Close(); err != nil {
		fmt.Fprintln(stderr, "mpmcsd:", err)
		return serve.ExitError
	}
	return serve.ExitOK
}
