package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
)

// TestServeLifecycle boots the real binary path (run) on an ephemeral
// port, solves a testdata tree twice over HTTP — the second submission
// must be a cache hit — and shuts down cleanly.
func TestServeLifecycle(t *testing.T) {
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	done := make(chan int, 1)
	var stderr bytes.Buffer
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-workers", "2", "-sequential"},
			&stderr, ready, shutdown)
	}()
	addr := <-ready

	tree, err := os.ReadFile("../../testdata/fps.json")
	if err != nil {
		t.Fatal(err)
	}
	for round, wantCached := range []bool{false, true} {
		resp, err := http.Post("http://"+addr+"/v1/analyze", "application/json", bytes.NewReader(tree))
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			Status string `json:"status"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 || doc.Status != "OPTIMAL" || doc.Cached != wantCached {
			t.Fatalf("round %d: HTTP %d status %s cached=%v, want 200 OPTIMAL cached=%v",
				round, resp.StatusCode, doc.Status, doc.Cached, wantCached)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "mpmcsd_cache_hits 1") {
		t.Errorf("/metrics does not report the cache hit:\n%s", metrics)
	}

	close(shutdown)
	if code := <-done; code != 0 {
		t.Errorf("exit code %d, want 0 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "listening on http://") {
		t.Errorf("startup line missing from stderr: %q", stderr.String())
	}
}

func TestBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stderr, nil, nil); code != 2 {
		t.Errorf("exit code %d, want 2 (usage)", code)
	}
}
