// Command ftmon is a terminal client for the live telemetry endpoint
// the --obs-listen flag of mpmcs4fta, ftbench and ftdiff serves: it
// connects to /events and renders the solver's converging bound
// trajectory — upper bound falling, lower bound rising, the optimality
// gap closing — as it happens, ending with the solve's terminal frame.
//
// Usage:
//
//	ftmon -addr localhost:9090            # follow a live solve
//	ftmon -addr localhost:9090 -once      # CI smoke: validate /metrics,
//	                                      # read one event, exit
//
// In -once mode ftmon scrapes /metrics, validates that the body parses
// as Prometheus text exposition format 0.0.4, reads at least one
// /events SSE frame and exits 0 — the machine-checkable contract the
// CI smoke job relies on.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mpmcs4fta/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftmon:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftmon", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "localhost:9090", "telemetry address (host:port) of a process started with --obs-listen")
		once    = fs.Bool("once", false, "validate /metrics (Prometheus 0.0.4) and read one /events frame, then exit")
		timeout = fs.Duration("timeout", 30*time.Second, "with -once: overall deadline for the two checks")
		quiet   = fs.Bool("quiet", false, "suppress heartbeat and restart lines; show only bounds and lifecycle")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := "http://" + strings.TrimPrefix(strings.TrimPrefix(*addr, "http://"), "https://")

	if *once {
		return runOnce(base, *timeout, stdout)
	}
	return follow(base, *quiet, stdout)
}

// runOnce is the CI smoke mode: both endpoints must answer correctly.
func runOnce(base string, timeout time.Duration, stdout io.Writer) error {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	samples, verr := obs.ValidatePrometheusText(resp.Body)
	resp.Body.Close()
	if verr != nil {
		return fmt.Errorf("/metrics is not valid Prometheus text format: %w", verr)
	}
	fmt.Fprintf(stdout, "/metrics: %d samples, valid Prometheus 0.0.4\n", samples)

	// A plain GET with a read deadline: one frame must arrive (the
	// replay ring guarantees history even after the solve finished).
	streamClient := &http.Client{Timeout: timeout}
	resp, err = streamClient.Get(base + "/events")
	if err != nil {
		return fmt.Errorf("connect /events: %w", err)
	}
	defer resp.Body.Close()
	ev, err := readFrame(bufio.NewReader(resp.Body))
	if err != nil {
		return fmt.Errorf("read /events frame: %w", err)
	}
	fmt.Fprintf(stdout, "/events: frame seq=%d kind=%s at %.1fms\n", ev.Seq, ev.Kind, ev.AtMS)
	return nil
}

// follow streams /events until the server closes the connection,
// rendering each frame as one line.
func follow(base string, quiet bool, stdout io.Writer) error {
	resp, err := http.Get(base + "/events")
	if err != nil {
		return fmt.Errorf("connect /events: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/events: %s", resp.Status)
	}
	r := bufio.NewReader(resp.Body)
	for {
		ev, err := readFrame(r)
		if err != nil {
			// The serving process exiting (clean close or connection
			// reset) ends the watch, it is not a monitoring failure.
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		if line := render(ev, quiet); line != "" {
			fmt.Fprintln(stdout, line)
		}
	}
}

// event mirrors obs.Event with the payload left raw, since the typed
// payload is only known after inspecting Kind.
type event struct {
	Seq  uint64          `json:"seq"`
	Kind string          `json:"kind"`
	AtMS float64         `json:"atMillis"`
	Data json.RawMessage `json:"data"`
}

// readFrame reads one SSE frame ("data:" lines up to a blank line),
// skipping comments and keepalives, and decodes its JSON envelope.
func readFrame(r *bufio.Reader) (event, error) {
	var data strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "" && data.Len() > 0:
			var ev event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return event{}, fmt.Errorf("malformed frame %q: %w", data.String(), err)
			}
			return ev, nil
		}
	}
}

// render formats one event as a terminal line; "" drops it.
func render(ev event, quiet bool) string {
	at := fmt.Sprintf("%8.1fms", ev.AtMS)
	switch ev.Kind {
	case obs.KindBoundImproved:
		var p obs.BoundImproved
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		ub := "∞"
		gap := "∞"
		if p.Upper >= 0 {
			ub = fmt.Sprintf("%d", p.Upper)
			gap = fmt.Sprintf("%d", p.Upper-p.Lower)
		}
		closed := ""
		if p.Closed {
			closed = "  [bounds met: race closed]"
		}
		return fmt.Sprintf("%s  bounds   UB=%s LB=%d gap=%s  (%s)%s", at, ub, p.Lower, gap, p.Engine, closed)
	case obs.KindSolveStarted:
		var p obs.SolveStarted
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		return fmt.Sprintf("%s  solve    %d vars, %d hard, %d soft, %d engines", at, p.Vars, p.HardClauses, p.SoftClauses, p.Engines)
	case obs.KindSolveFinished:
		var p obs.SolveFinished
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		line := fmt.Sprintf("%s  done     %s cost=%d lb=%d in %.1fms", at, p.Status, p.Cost, p.LowerBound, p.ElapsedMS)
		if p.Winner != "" {
			line += " winner=" + p.Winner
		}
		if p.Err != "" {
			line += " err=" + p.Err
		}
		return line
	case obs.KindEngineStarted:
		var p obs.EngineStarted
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		return fmt.Sprintf("%s  engine   %s started", at, p.Engine)
	case obs.KindEngineFinished:
		var p obs.EngineFinished
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		line := fmt.Sprintf("%s  engine   %s finished %s", at, p.Engine, p.Status)
		if p.Err != "" {
			line += " (" + p.Err + ")"
		}
		return line
	case obs.KindModuleStarted:
		var p obs.ModuleStarted
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		line := fmt.Sprintf("%s  module   %s started (%d events", at, p.Module, p.Events)
		if len(p.Children) > 0 {
			line += fmt.Sprintf(", %d sub-modules", len(p.Children))
		}
		return line + ")"
	case obs.KindModuleFinished:
		var p obs.ModuleFinished
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		line := fmt.Sprintf("%s  module   %s %s p=%.6g in %.1fms", at, p.Module, p.Status, p.Probability, p.ElapsedMS)
		if p.Winner != "" {
			line += " winner=" + p.Winner
		}
		if p.Err != "" {
			line += " err=" + p.Err
		}
		return line
	case obs.KindRestartFired:
		if quiet {
			return ""
		}
		var p obs.RestartFired
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		return fmt.Sprintf("%s  restart  %s #%d after %d conflicts", at, p.Engine, p.Restarts, p.Conflicts)
	case obs.KindHeartbeat:
		if quiet {
			return ""
		}
		var p obs.Heartbeat
		if json.Unmarshal(ev.Data, &p) != nil {
			break
		}
		return fmt.Sprintf("%s  beat     %s conflicts=%d decisions=%d props=%d trail=%d learntDB=%d arenaKiB=%d gcs=%d",
			at, p.Engine, p.Conflicts, p.Decisions, p.Propagations, p.TrailDepth,
			p.LearntDB, p.ArenaWords*4/1024, p.ClauseGCs)
	}
	return fmt.Sprintf("%s  %s", at, ev.Kind)
}
