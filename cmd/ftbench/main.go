// Command ftbench regenerates every table and figure of the paper's
// evaluation, plus the ablation experiments listed in DESIGN.md
// (experiment ids E1–E9). Output is aligned text suitable for diffing
// against EXPERIMENTS.md.
//
// Usage:
//
//	ftbench -exp all
//	ftbench -exp e4 -sizes 50,100,500,1000 -timeout 60s
//	ftbench -exp e4 -trace spans.json -metrics - -pprof localhost:6060
//	ftbench -fleet testdata/ -fleet-workers 8 -fleet-out fleet.json
//	ftbench -bench BENCH.json -compare testdata/bench/BENCH_baseline.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/obs"
)

type params struct {
	sizes   []int
	seed    int64
	timeout time.Duration
	tracer  obs.Tracer
	metrics *obs.Metrics
	bus     *obs.EventBus
}

// options applies the shared observability configuration to a
// per-experiment Options value; every experiment builds its Options
// through this helper so -trace/-metrics/-obs-listen cover all of
// them.
func (p params) options(o core.Options) core.Options {
	o.Tracer = p.tracer
	o.Metrics = p.metrics
	o.Bus = p.bus
	return o
}

type experiment struct {
	id    string
	title string
	run   func(ctx context.Context, w io.Writer, p params) error
}

func experiments() []experiment {
	return []experiment{
		{"e1", "Fig. 1 / §II — FPS example MPMCS", runE1},
		{"e2", "Table I — probabilities and −log weights", runE2},
		{"e3", "Fig. 2 — JSON solution document", runE3},
		{"e4", "§IV — scalability to thousands of nodes", runE4},
		{"e5", "§III Step 5 — portfolio vs single engines", runE5},
		{"e6", "§IV future work — MaxSAT vs BDD baseline", runE6},
		{"e7", "§IV future work — native voting gates vs expansion", runE7},
		{"e8", "§III Step 2 — Tseitin vs Plaisted-Greenbaum", runE8},
		{"e9", "§IV fault prioritisation — top-k ranked cut sets", runE9},
		{"e10", "extension — bottom-up vs BDD top-event probability", runE10},
		{"e11", "validation — Monte-Carlo vs analytic probabilities", runE11},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("ftbench", flag.ContinueOnError)
	var (
		expFlag  = fs.String("exp", "all", "comma-separated experiment ids (e1..e9) or 'all'")
		sizes    = fs.String("sizes", "50,100,500,1000,2000,5000", "tree sizes (basic events) for scaling experiments")
		seed     = fs.Int64("seed", 1, "workload seed")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-instance timeout")
		listFlag = fs.Bool("list", false, "list available experiments and exit")
		traceOut = fs.String("trace", "", "write a hierarchical span trace of every analysis as JSON")
		metrics  = fs.String("metrics", "", "write a plain-text metrics snapshot ('-' for stderr)")
		pprof    = fs.String("pprof", "", "serve net/http/pprof and expvar on this address while experiments run")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile covering the whole run")
		obsAddr  = fs.String("obs-listen", "", "serve live telemetry on this address: /metrics (Prometheus), /events (SSE bound trajectory), /debug/pprof")

		benchOut  = fs.String("bench", "", "run the nightly benchmark suite and write BENCH JSON to this file")
		baseline  = fs.String("compare", "", "compare the benchmark run against this baseline BENCH JSON, failing on regression")
		benchTime = fs.Duration("benchtime", time.Second, "minimum measuring time per benchmark scenario")
		benchReps = fs.Int("bench-reps", 1, "suite repetitions; the best (lowest) score per scenario is kept, damping shared-runner noise")
		benchTol  = fs.Float64("bench-tolerance", 0.10, "allowed relative score regression before -compare fails")

		fleet        = fs.String("fleet", "", "fleet mode: solve every .json/.txt tree in this directory (or file, or '-' for newline-separated paths on stdin) on one shared worker pool")
		fleetWorkers = fs.Int("fleet-workers", 0, "fleet worker budget (0 = GOMAXPROCS)")
		fleetOut     = fs.String("fleet-out", "", "write the fleet throughput report JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchOut != "" || *baseline != "" {
		return runBenchMode(*benchOut, *baseline, *benchTime, *benchReps, *benchTol, stdout)
	}
	if *fleet != "" {
		return runFleetMode(*fleet, *fleetWorkers, *fleetOut, *timeout, os.Stdin, stdout)
	}
	if *listFlag {
		for _, e := range experiments() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.id, e.title)
		}
		return nil
	}

	p := params{seed: *seed, timeout: *timeout}
	if *traceOut != "" {
		tracer := obs.NewJSONTracer()
		p.tracer = tracer
		defer func() {
			if werr := writeFile(*traceOut, tracer.WriteJSON); err == nil {
				err = werr
			}
		}()
	}
	if *metrics != "" {
		p.metrics = obs.NewMetrics()
		target := *metrics
		defer func() {
			var werr error
			if target == "-" {
				werr = p.metrics.WriteText(os.Stderr)
			} else {
				werr = writeFile(target, p.metrics.WriteText)
			}
			if err == nil {
				err = werr
			}
		}()
	}
	if *obsAddr != "" {
		if p.metrics == nil {
			p.metrics = obs.NewMetrics()
		}
		p.bus = obs.NewEventBus()
		srv := obs.NewServer(p.metrics, p.bus)
		bound, serr := srv.Start(*obsAddr)
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ftbench: telemetry on http://%s/metrics and http://%s/events\n", bound, bound)
	}
	if *pprof != "" {
		bound, stop, perr := obs.StartPprofServer(*pprof)
		if perr != nil {
			return perr
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "ftbench: pprof listening on http://%s/debug/pprof/\n", bound)
	}
	if *cpuProf != "" {
		stop, perr := obs.StartCPUProfile(*cpuProf)
		if perr != nil {
			return perr
		}
		defer stop()
	}
	for _, tok := range strings.Split(*sizes, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 2 {
			return fmt.Errorf("bad size %q", tok)
		}
		p.sizes = append(p.sizes, n)
	}

	want := make(map[string]bool)
	if *expFlag == "all" {
		for _, e := range experiments() {
			want[e.id] = true
		}
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToLower(strings.TrimSpace(id))] = true
		}
	}

	ctx := context.Background()
	ran := 0
	for _, e := range experiments() {
		if !want[e.id] {
			continue
		}
		ran++
		fmt.Fprintf(stdout, "== %s: %s ==\n", strings.ToUpper(e.id), e.title)
		if err := e.run(ctx, stdout, p); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintln(stdout)
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", *expFlag)
	}
	return nil
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
