package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
	"mpmcs4fta/internal/quant"
	"mpmcs4fta/internal/sim"
)

// runE1 reproduces the paper's worked example: the FPS tree's MPMCS is
// {x1, x2} with joint probability 0.02.
func runE1(ctx context.Context, w io.Writer, p params) error {
	tree := gen.FPS()
	sol, err := core.Analyze(ctx, tree, p.options(core.Options{Timeout: p.timeout}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tree: %s (%d events, %d gates)\n", sol.Tree, sol.Stats.Events, sol.Stats.Gates)
	fmt.Fprintf(w, "MPMCS: %v\n", sol.CutSetIDs())
	fmt.Fprintf(w, "probability: %.6g   (paper: {x1,x2} with 0.02)\n", sol.Probability)
	fmt.Fprintf(w, "winner: %s   elapsed: %.3f ms\n", sol.Solver, sol.ElapsedMS)
	status := "MATCH"
	if fmt.Sprintf("%v", sol.CutSetIDs()) != "[x1 x2]" || !close2(sol.Probability, 0.02) {
		status = "MISMATCH"
	}
	fmt.Fprintf(w, "paper agreement: %s\n", status)
	return nil
}

// runE2 reprints Table I from the Step-3 transform.
func runE2(_ context.Context, w io.Writer, p params) error {
	steps, err := core.BuildSteps(gen.FPS(), p.options(core.Options{}))
	if err != nil {
		return err
	}
	paper := map[string]float64{
		"x1": 1.60944, "x2": 2.30259, "x3": 6.90776, "x4": 6.21461,
		"x5": 2.99573, "x6": 2.30259, "x7": 2.99573,
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "event\tp(xi)\twi=-ln(p)\tpaper wi\tscaled")
	for _, weight := range steps.Weights {
		fmt.Fprintf(tw, "%s\t%g\t%.5f\t%.5f\t%d\n",
			weight.ID, weight.Prob, weight.Weight, paper[weight.ID], weight.Scaled)
	}
	return tw.Flush()
}

// runE3 emits the Fig. 2 artefact: the tool's JSON solution document.
func runE3(ctx context.Context, w io.Writer, p params) error {
	sol, err := core.Analyze(ctx, gen.FPS(), p.options(core.Options{Sequential: true, Timeout: p.timeout}))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sol)
}

// runE4 measures wall-clock time of the full pipeline across tree
// sizes — the paper's "thousands of nodes in seconds" claim.
func runE4(ctx context.Context, w io.Writer, p params) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "events\tnodes\tvars\thard\tsoft\ttime\twinner\tP(MPMCS)\t|MPMCS|")
	for _, n := range p.sizes {
		tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed})
		if err != nil {
			return err
		}
		start := time.Now()
		sol, err := core.Analyze(ctx, tree, p.options(core.Options{Timeout: p.timeout}))
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(tw, "%d\t-\t-\t-\t-\t%s\terror: %v\t-\t-\n", n, fmtDur(elapsed), err)
			continue
		}
		stats := tree.Stats()
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%s\t%s\t%.3g\t%d\n",
			n, stats.Events+stats.Gates, sol.Stats.Vars, sol.Stats.HardClauses,
			sol.Stats.SoftClauses, fmtDur(elapsed), sol.Solver, sol.Probability, len(sol.MPMCS))
	}
	return tw.Flush()
}

// runE5 contrasts each engine alone with the parallel portfolio on the
// same instances (Step-5 motivation).
func runE5(ctx context.Context, w io.Writer, p params) error {
	engines := portfolio.DefaultEngines()
	sizes := capSizes(p.sizes, 2000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "events"
	for _, e := range engines {
		header += "\t" + e.Name
	}
	fmt.Fprintln(tw, header+"\tportfolio\twinner")
	for _, n := range sizes {
		tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed})
		if err != nil {
			return err
		}
		steps, err := core.BuildSteps(tree, p.options(core.Options{}))
		if err != nil {
			return err
		}
		row := fmt.Sprintf("%d", n)
		for _, e := range engines {
			engCtx, cancel := context.WithTimeout(ctx, p.timeout)
			start := time.Now()
			_, err := e.Solver.Solve(engCtx, steps.Instance.Clone())
			elapsed := time.Since(start)
			cancel()
			if err != nil {
				row += "\ttimeout"
			} else {
				row += "\t" + fmtDur(elapsed)
			}
		}
		pfCtx, cancel := context.WithTimeout(ctx, p.timeout)
		start := time.Now()
		_, report, err := portfolio.Solve(pfCtx, steps.Instance, engines)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			row += "\terror\t-"
		} else {
			row += "\t" + fmtDur(elapsed) + "\t" + report.Winner
		}
		fmt.Fprintln(tw, row)
	}
	return tw.Flush()
}

// runE6 compares the MaxSAT pipeline with the BDD baseline.
func runE6(ctx context.Context, w io.Writer, p params) error {
	sizes := capSizes(p.sizes, 2000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "events\tmaxsat\tbdd\tbdd nodes\tagree")
	for _, n := range sizes {
		tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed})
		if err != nil {
			return err
		}
		start := time.Now()
		viaSAT, err := core.Analyze(ctx, tree, p.options(core.Options{Timeout: p.timeout}))
		satTime := time.Since(start)
		if err != nil {
			return err
		}
		start = time.Now()
		viaBDD, err := core.AnalyzeBDD(tree, p.options(core.Options{}))
		bddTime := time.Since(start)
		if err != nil {
			// Random trees can blow the BDD up — that asymmetry is the
			// point of the comparison, so report it as a data point.
			fmt.Fprintf(tw, "%d\t%s\t%s\t-\t%v\n", n, fmtDur(satTime), fmtDur(bddTime), err)
			continue
		}
		agree := "yes"
		if !close2(viaSAT.Probability, viaBDD.Probability) {
			agree = fmt.Sprintf("NO (%g vs %g)", viaSAT.Probability, viaBDD.Probability)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%s\n", n, fmtDur(satTime), fmtDur(bddTime), viaBDD.Stats.Vars, agree)
	}
	return tw.Flush()
}

// runE7 measures the native K-of-N threshold encoding against explicit
// AND/OR expansion of voting gates.
func runE7(ctx context.Context, w io.Writer, p params) error {
	sizes := capSizes(p.sizes, 1000)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "events\tnative vars\tnative clauses\tnative time\texpanded vars\texpanded clauses\texpanded time\tagree")
	for _, n := range sizes {
		tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed, VotingFrac: 0.4, MaxFanIn: 6})
		if err != nil {
			return err
		}
		steps, err := core.BuildSteps(tree, p.options(core.Options{}))
		if err != nil {
			return err
		}
		start := time.Now()
		nativeRes, err := solveWPMS(ctx, steps.Instance, p.timeout)
		nativeTime := time.Since(start)
		if err != nil {
			return err
		}

		// Expanded variant: rewrite every AtLeast before encoding.
		f, err := tree.Formula()
		if err != nil {
			return err
		}
		expanded := boolexpr.Simplify(boolexpr.ExpandAtLeast(boolexpr.Not{X: boolexpr.Dual(f)}))
		events := tree.Events()
		order := make([]string, len(events))
		for i, e := range events {
			order[i] = e.ID
		}
		enc, err := cnf.Tseitin(expanded, cnf.TseitinOptions{VarOrder: order})
		if err != nil {
			return err
		}
		inst := &cnf.WCNF{NumVars: enc.Formula.NumVars}
		for _, clause := range enc.Formula.Clauses {
			inst.AddHard(clause...)
		}
		for _, weight := range core.LogWeights(events, core.DefaultScale) {
			if weight.Hard {
				inst.AddHard(cnf.Lit(enc.VarOf[weight.ID]))
			} else if weight.Scaled > 0 {
				inst.AddSoft(weight.Scaled, cnf.Lit(enc.VarOf[weight.ID]))
			}
		}
		start = time.Now()
		expandedRes, err := solveWPMS(ctx, inst, p.timeout)
		expandedTime := time.Since(start)
		if err != nil {
			return err
		}

		agree := "yes"
		if nativeRes.Cost != expandedRes.Cost {
			agree = fmt.Sprintf("NO (%d vs %d)", nativeRes.Cost, expandedRes.Cost)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%d\t%s\t%s\n",
			n, steps.Instance.NumVars, len(steps.Instance.Hard), fmtDur(nativeTime),
			inst.NumVars, len(inst.Hard), fmtDur(expandedTime), agree)
	}
	return tw.Flush()
}

// runE8 compares the Step-2 encodings.
func runE8(ctx context.Context, w io.Writer, p params) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "events\tfull vars\tfull clauses\tfull time\tpg vars\tpg clauses\tpg time\tagree")
	for _, n := range p.sizes {
		tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed})
		if err != nil {
			return err
		}
		full, err := core.BuildSteps(tree, p.options(core.Options{}))
		if err != nil {
			return err
		}
		pg, err := core.BuildSteps(tree, p.options(core.Options{PlaistedGreenbaum: true}))
		if err != nil {
			return err
		}
		start := time.Now()
		fullRes, err := solveWPMS(ctx, full.Instance, p.timeout)
		fullTime := time.Since(start)
		if err != nil {
			return err
		}
		start = time.Now()
		pgRes, err := solveWPMS(ctx, pg.Instance, p.timeout)
		pgTime := time.Since(start)
		if err != nil {
			return err
		}
		agree := "yes"
		if fullRes.Cost != pgRes.Cost {
			agree = fmt.Sprintf("NO (%d vs %d)", fullRes.Cost, pgRes.Cost)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%d\t%s\t%s\n",
			n, full.Instance.NumVars, len(full.Instance.Hard), fmtDur(fullTime),
			pg.Instance.NumVars, len(pg.Instance.Hard), fmtDur(pgTime), agree)
	}
	return tw.Flush()
}

// runE9 ranks the top cut sets of the FPS tree and of a larger random
// tree.
func runE9(ctx context.Context, w io.Writer, p params) error {
	fmt.Fprintln(w, "FPS tree, all ranked cut sets:")
	sols, err := core.AnalyzeTopK(ctx, gen.FPS(), 10, p.options(core.Options{Sequential: true, Timeout: p.timeout}))
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tcut set\tprobability")
	for i, sol := range sols {
		fmt.Fprintf(tw, "%d\t%v\t%.6g\n", i+1, sol.CutSetIDs(), sol.Probability)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	n := 500
	if len(p.sizes) > 0 {
		n = capSizes(p.sizes, 1000)[0]
	}
	tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed})
	if err != nil {
		return err
	}
	start := time.Now()
	ranked, err := core.AnalyzeTopK(ctx, tree, 10, p.options(core.Options{Timeout: p.timeout}))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "random tree (%d events), top %d of its cut sets in %s:\n", n, len(ranked), fmtDur(time.Since(start)))
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\t|set|\tprobability")
	for i, sol := range ranked {
		fmt.Fprintf(tw, "%d\t%d\t%.6g\n", i+1, len(sol.MPMCS), sol.Probability)
	}
	return tw.Flush()
}

// runE10 compares linear-time bottom-up probability with the exact BDD
// computation on strictly tree-shaped workloads, including sizes where
// the BDD exceeds its node budget.
func runE10(_ context.Context, w io.Writer, p params) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "events\tbottom-up\tbdd\tP(top)\tagree")
	for _, n := range p.sizes {
		tree, err := gen.Random(gen.Config{Events: n, Seed: p.seed, NoSharing: true, VotingFrac: 0.2})
		if err != nil {
			return err
		}
		start := time.Now()
		fast, err := quant.BottomUpProbability(tree)
		fastTime := time.Since(start)
		if err != nil {
			return err
		}
		start = time.Now()
		exact, err := quant.TopEventProbability(tree)
		bddTime := time.Since(start)
		if err != nil {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%.4g\t%v\n", n, fmtDur(fastTime), fmtDur(bddTime), fast, err)
			continue
		}
		agree := "yes"
		// Below ~1e-100 the two evaluation orders underflow differently
		// (the BDD's Shannon sums reach exact 0 first); both answers
		// mean "never happens", so call that agreement.
		const negligible = 1e-100
		if !close2(fast, exact) && (fast > negligible || exact > negligible) {
			agree = fmt.Sprintf("NO (%g vs %g)", fast, exact)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%.4g\t%s\n", n, fmtDur(fastTime), fmtDur(bddTime), exact, agree)
	}
	return tw.Flush()
}

// runE11 cross-validates the analytic machinery with Monte-Carlo
// sampling: P(top) by three exact engines vs simulation, and the
// MPMCS's dominance among sampled failures.
func runE11(ctx context.Context, w io.Writer, p params) error {
	const trials = 200000
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "tree\texact P(top)\tmodular\tsimulated\tstderr\tz\tMPMCS dominance")
	trees := []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()}
	for seed := int64(0); seed < 3; seed++ {
		tree, err := gen.Random(gen.Config{
			Events: 20, Seed: p.seed + seed, VotingFrac: 0.2,
			MinProb: 0.01, MaxProb: 0.3,
		})
		if err != nil {
			return err
		}
		trees = append(trees, tree)
	}
	for _, tree := range trees {
		exact, err := quant.TopEventProbability(tree)
		if err != nil {
			return err
		}
		modular, err := quant.ModularProbability(tree)
		if err != nil {
			return err
		}
		sol, err := core.Analyze(ctx, tree, p.options(core.Options{Timeout: p.timeout}))
		if err != nil {
			return err
		}
		top, dominance, err := sim.Dominance(tree, sol.CutSetIDs(), trials, 42)
		if err != nil {
			return err
		}
		z := 0.0
		if top.StdErr > 0 {
			z = (top.Probability - exact) / top.StdErr
		}
		fmt.Fprintf(tw, "%s\t%.6g\t%.6g\t%.6g\t%.2g\t%+.2f\t%.1f%%\n",
			tree.Name(), exact, modular, top.Probability, top.StdErr, z,
			100*dominance.Probability)
	}
	return tw.Flush()
}

func solveWPMS(ctx context.Context, inst *cnf.WCNF, timeout time.Duration) (maxsat.Result, error) {
	runCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, _, err := portfolio.Solve(runCtx, inst, portfolio.DefaultEngines())
	return res, err
}

func capSizes(sizes []int, limit int) []int {
	var out []int
	for _, n := range sizes {
		if n <= limit {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{limit}
	}
	return out
}

func close2(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Microseconds()))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
