package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBenchSuiteSmoke: the suite runs end to end at a tiny benchtime,
// produces a normalized score for every scenario, and the written
// document round-trips through the reader.
func TestBenchSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out strings.Builder
	doc, err := runBenchSuite(time.Millisecond, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) < 2 {
		t.Fatalf("suite too small: %d scenarios", len(doc.Results))
	}
	for _, r := range doc.Results {
		if r.NsPerOp <= 0 || r.Score <= 0 {
			t.Errorf("scenario %s has non-positive measurements: %+v", r.Name, r)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := readBenchDoc(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Results) != len(doc.Results) {
		t.Errorf("round trip lost scenarios: %d != %d", len(again.Results), len(doc.Results))
	}
}

// TestCompareBench: the regression gate fires on score growth beyond
// tolerance and on vanished scenarios, and stays quiet otherwise.
func TestCompareBench(t *testing.T) {
	baseline := &benchDoc{Schema: benchSchema, Results: []benchResult{
		{Name: calibrateName, Score: 1},
		{Name: "a", Score: 10},
		{Name: "b", Score: 4},
		{Name: "gone", Score: 2},
	}}
	current := &benchDoc{Schema: benchSchema, Results: []benchResult{
		{Name: calibrateName, Score: 1},
		{Name: "a", Score: 10.5}, // +5%: inside tolerance
		{Name: "b", Score: 5},    // +25%: regression
		{Name: "new", Score: 9},  // not in baseline: ignored
	}}
	regressions := compareBench(current, baseline, 0.10)
	if len(regressions) != 2 {
		t.Fatalf("want 2 regressions, got %v", regressions)
	}
	joined := strings.Join(regressions, "\n")
	if !strings.Contains(joined, "b:") || !strings.Contains(joined, "gone:") {
		t.Errorf("unexpected regression set:\n%s", joined)
	}
	if got := compareBench(current, current, 0.10); len(got) != 0 {
		t.Errorf("self-comparison regressed: %v", got)
	}
}

// TestMergeBest: per-scenario minimum score wins across repetitions,
// except the calibration loop which is picked by raw time.
func TestMergeBest(t *testing.T) {
	best := &benchDoc{Schema: benchSchema, Results: []benchResult{
		{Name: calibrateName, NsPerOp: 100, Score: 1},
		{Name: "a", NsPerOp: 900, Score: 9},
		{Name: "b", NsPerOp: 400, Score: 4},
	}}
	rep := &benchDoc{Schema: benchSchema, Results: []benchResult{
		{Name: calibrateName, NsPerOp: 80, Score: 1}, // faster calibration
		{Name: "a", NsPerOp: 960, Score: 12},         // noisier: kept out
		{Name: "b", NsPerOp: 240, Score: 3},          // quieter: replaces
	}}
	mergeBest(best, rep)
	want := []float64{1, 9, 3}
	wantNs := []float64{80, 900, 240}
	for i, r := range best.Results {
		if r.Score != want[i] || r.NsPerOp != wantNs[i] {
			t.Errorf("result %d = %+v, want score %v ns %v", i, r, want[i], wantNs[i])
		}
	}
}

// TestCheckedInBaselineIsReadable: the baseline the nightly workflow
// gates against must parse and match the scenario table exactly, in
// both directions — benchScenarios() is the single source of truth,
// and a stale baseline (missing or orphaned names) fails here rather
// than silently ungating a scenario.
func TestCheckedInBaselineIsReadable(t *testing.T) {
	doc, err := readBenchDoc("../../testdata/bench/BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	inBaseline := make(map[string]bool, len(doc.Results))
	for _, r := range doc.Results {
		inBaseline[r.Name] = true
	}
	inSuite := make(map[string]bool)
	for _, name := range scenarioNames() {
		inSuite[name] = true
		if !inBaseline[name] {
			t.Errorf("baseline missing scenario %q — regenerate with: go run ./cmd/ftbench -bench testdata/bench/BENCH_baseline.json", name)
		}
	}
	for _, r := range doc.Results {
		if !inSuite[r.Name] {
			t.Errorf("baseline has orphaned scenario %q not in benchScenarios() — regenerate the baseline", r.Name)
		}
	}
}

// TestReadBenchDocRejectsBadSchema: foreign JSON cannot silently pass
// as a baseline.
func TestReadBenchDocRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBenchDoc(path); err == nil {
		t.Fatal("expected schema error")
	}
}
