package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("experiment %s missing from list", id)
		}
	}
}

func TestRunE1MatchesPaper(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "paper agreement: MATCH") {
		t.Errorf("E1 did not match the paper:\n%s", out.String())
	}
}

func TestRunE2TableI(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e2"}, &out); err != nil {
		t.Fatal(err)
	}
	// Every paper weight must appear, printed to 5 decimals.
	for _, w := range []string{"1.60944", "2.30259", "6.90776", "6.21461", "2.99573"} {
		if !strings.Contains(out.String(), w) {
			t.Errorf("Table I value %s missing:\n%s", w, out.String())
		}
	}
}

func TestRunE3JSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "e3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"mpmcs\"") {
		t.Errorf("E3 missing JSON document:\n%s", out.String())
	}
}

func TestRunSmallScalingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling experiments are slow")
	}
	var out bytes.Buffer
	err := run([]string{"-exp", "e4,e8", "-sizes", "20,50", "-timeout", "60s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "== E4") || !strings.Contains(out.String(), "== E8") {
		t.Errorf("missing experiment headers:\n%s", out.String())
	}
	if strings.Contains(out.String(), "error") {
		t.Errorf("experiment reported an error:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown experiment", []string{"-exp", "e99"}},
		{"bad size", []string{"-exp", "e4", "-sizes", "abc"}},
		{"size too small", []string{"-exp", "e4", "-sizes", "1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, &out); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestCapSizes(t *testing.T) {
	got := capSizes([]int{10, 500, 5000}, 1000)
	if len(got) != 2 || got[0] != 10 || got[1] != 500 {
		t.Errorf("capSizes = %v", got)
	}
	if got := capSizes([]int{9000}, 1000); len(got) != 1 || got[0] != 1000 {
		t.Errorf("capSizes fallback = %v", got)
	}
}

func TestFmtDur(t *testing.T) {
	tests := []struct {
		give string
		want string
	}{
		{"1.5µs", "µs"},
		{"20ms", "ms"},
		{"3s", "s"},
	}
	for _, tt := range tests {
		if !strings.Contains(tt.give, tt.want) {
			t.Errorf("sanity: %s should contain %s", tt.give, tt.want)
		}
	}
}
