package main

// Nightly benchmark mode (-bench / -compare): a fixed scenario suite is
// timed and written as a BENCH_*.json document, and optionally compared
// against a checked-in baseline, failing on regression. Raw wall times
// vary across CI machines, so every scenario's score is normalized by a
// pure-CPU calibration loop measured in the same process: score =
// scenario ns/op ÷ calibration ns/op. A scenario regresses when its
// score exceeds the baseline score by more than the tolerance.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/quant"
)

// benchSchema versions the BENCH JSON document.
const benchSchema = "mpmcs4fta-bench/v1"

// calibrateName is the normalization scenario; it is stored in the
// document but never compared.
const calibrateName = "calibrate"

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	// Score is NsPerOp normalized by the calibration loop's NsPerOp —
	// the machine-independent number the regression gate compares.
	Score float64 `json:"score"`
}

type benchDoc struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"goVersion"`
	Results   []benchResult `json:"results"`
}

type benchScenario struct {
	name string
	run  func() error
}

// benchScenarios is the nightly suite and the ONLY place scenario
// names are defined: the suite runner, the baseline coverage test and
// the regression gate all derive from this one table (see
// scenarioNames), so adding a scenario is a one-line change here plus
// a baseline regeneration. One entry per hot path worth gating
// (pipeline end-to-end, encoding, each oracle, ranked enumeration,
// modular decomposition, fleet throughput). Workloads are seeded, so
// every run times identical instances.
func benchScenarios() []benchScenario {
	ctx := context.Background()
	seq := core.Options{Sequential: true}
	fps := gen.FPS()
	mk := func(events int, voting float64) *ft.Tree {
		tree, err := gen.Random(gen.Config{Events: events, VotingFrac: voting, Seed: 1})
		if err != nil {
			panic(err)
		}
		return tree
	}
	tree200 := mk(200, 0)
	tree500 := mk(500, 0.15)
	// The decomposition workload: the same 8×40 voting-heavy modular
	// tree the seed corpus instance testdata/modular8x40.json was
	// generated from (ftgen -modular 8 -module-events 40 -voting 0.3
	// -seed 7). Voting gates make the monolithic instance hard enough
	// that solving the eight small module instances beats it.
	mod8, err := gen.Modular(gen.ModularConfig{Modules: 8, EventsPerModule: 40, VotingFrac: 0.3, Seed: 7})
	if err != nil {
		panic(err)
	}
	fleetTrees := make([]fleetInstance, 8)
	for i := range fleetTrees {
		tree, err := gen.Modular(gen.ModularConfig{Modules: 4, EventsPerModule: 10, Seed: int64(100 + i)})
		if err != nil {
			panic(err)
		}
		fleetTrees[i] = fleetInstance{name: tree.Name(), tree: tree}
	}
	return []benchScenario{
		{calibrateName, func() error {
			// xorshift64: pure CPU, no allocation, fixed work.
			x := uint64(2463534242)
			for i := 0; i < 1_000_000; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
			}
			if x == 0 {
				return fmt.Errorf("xorshift reached zero")
			}
			return nil
		}},
		{"fps-analyze", func() error {
			_, err := core.Analyze(ctx, fps, seq)
			return err
		}},
		{"random200-analyze", func() error {
			_, err := core.Analyze(ctx, tree200, seq)
			return err
		}},
		{"random500-encode", func() error {
			_, err := core.BuildSteps(tree500, seq)
			return err
		}},
		{"random200-bdd-baseline", func() error {
			_, err := core.AnalyzeBDD(tree200, seq)
			return err
		}},
		{"random200-top-probability", func() error {
			_, err := quant.TopEventProbability(tree200)
			return err
		}},
		{"scada-topk8", func() error {
			_, err := core.AnalyzeTopK(ctx, gen.RedundantSCADA(), 8, seq)
			return err
		}},
		{"modular8x40-analyze", func() error {
			// The default path: planner + scheduled sub-solves.
			_, err := core.Analyze(ctx, mod8, seq)
			return err
		}},
		{"modular8x40-analyze-monolithic", func() error {
			// The flag-off fallback, kept as the decomposition speedup's
			// reference point.
			_, err := core.Analyze(ctx, mod8, core.Options{Sequential: true, NoDecompose: true})
			return err
		}},
		{"fleet8-batch", func() error {
			doc, err := solveFleet(ctx, fleetTrees, 0, 0)
			if err != nil {
				return err
			}
			if doc.Failed > 0 {
				return fmt.Errorf("fleet batch: %d instance(s) failed", doc.Failed)
			}
			return nil
		}},
	}
}

// scenarioNames derives the suite's scenario names from the one table
// above — the single source of truth the checked-in baseline must
// cover exactly.
func scenarioNames() []string {
	scenarios := benchScenarios()
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.name
	}
	return names
}

// measure times run until at least benchtime has elapsed, doubling the
// iteration count each round (the testing.B strategy, dependency-free).
func measure(run func() error, benchtime time.Duration) (benchResult, error) {
	if err := run(); err != nil { // warm-up, also surfaces errors early
		return benchResult{}, err
	}
	n := 1
	for {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := run(); err != nil {
				return benchResult{}, err
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if elapsed >= benchtime || n >= 1<<24 {
			return benchResult{
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
			}, nil
		}
		n *= 2
	}
}

// runBenchSuite measures every scenario and normalizes scores by the
// calibration loop.
func runBenchSuite(benchtime time.Duration, progress io.Writer) (*benchDoc, error) {
	doc := &benchDoc{Schema: benchSchema, GoVersion: runtime.Version()}
	var calibNs float64
	for _, s := range benchScenarios() {
		res, err := measure(s.run, benchtime)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", s.name, err)
		}
		res.Name = s.name
		if s.name == calibrateName {
			calibNs = res.NsPerOp
		}
		fmt.Fprintf(progress, "bench %-26s %12.0f ns/op %10.1f allocs/op\n", s.name, res.NsPerOp, res.AllocsPerOp)
		doc.Results = append(doc.Results, res)
	}
	if calibNs <= 0 {
		return nil, fmt.Errorf("bench: calibration scenario missing")
	}
	for i := range doc.Results {
		doc.Results[i].Score = doc.Results[i].NsPerOp / calibNs
	}
	return doc, nil
}

// bestOfSuites runs the suite reps times and keeps, per scenario, the
// result with the lowest normalized score. On shared CI runners a
// single short measuring window is vulnerable to frequency scaling and
// co-tenant noise; noise only ever inflates a score, so the minimum
// across repetitions is the most faithful estimate of the code's cost.
func bestOfSuites(benchtime time.Duration, reps int, progress io.Writer) (*benchDoc, error) {
	if reps < 1 {
		reps = 1
	}
	var best *benchDoc
	for rep := 0; rep < reps; rep++ {
		if reps > 1 {
			fmt.Fprintf(progress, "bench repetition %d/%d\n", rep+1, reps)
		}
		doc, err := runBenchSuite(benchtime, progress)
		if err != nil {
			return nil, err
		}
		if best == nil {
			best = doc
			continue
		}
		mergeBest(best, doc)
	}
	return best, nil
}

// mergeBest folds a repetition into the running best, per scenario.
// Both documents come from runBenchSuite, so scenario order matches.
func mergeBest(best, doc *benchDoc) {
	for i := range best.Results {
		cur := doc.Results[i]
		better := cur.Score < best.Results[i].Score
		if cur.Name == calibrateName {
			// The calibration loop's score is 1 by construction;
			// compare its raw time instead.
			better = cur.NsPerOp < best.Results[i].NsPerOp
		}
		if better {
			best.Results[i] = cur
		}
	}
}

// compareBench returns one message per regression: a scenario whose
// normalized score exceeds the baseline's by more than tolerance
// (e.g. 0.10 = 10%), or a baseline scenario that vanished.
func compareBench(current, baseline *benchDoc, tolerance float64) []string {
	cur := make(map[string]benchResult, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	var regressions []string
	for _, base := range baseline.Results {
		if base.Name == calibrateName {
			continue
		}
		now, ok := cur[base.Name]
		switch {
		case !ok:
			regressions = append(regressions, fmt.Sprintf("%s: missing from current run", base.Name))
		case base.Score > 0 && now.Score > base.Score*(1+tolerance):
			regressions = append(regressions, fmt.Sprintf("%s: score %.3f vs baseline %.3f (+%.0f%%, tolerance %.0f%%)",
				base.Name, now.Score, base.Score, 100*(now.Score/base.Score-1), 100*tolerance))
		}
	}
	sort.Strings(regressions)
	return regressions
}

// runBenchMode executes -bench/-compare: run the suite, write the JSON
// document, and fail on regression against the baseline if given.
func runBenchMode(outPath, baselinePath string, benchtime time.Duration, reps int, tolerance float64, stdout io.Writer) error {
	doc, err := bestOfSuites(benchtime, reps, stdout)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := writeFile(outPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "bench results written to %s\n", outPath)
	}
	if baselinePath == "" {
		return nil
	}
	baseline, err := readBenchDoc(baselinePath)
	if err != nil {
		return err
	}
	if regressions := compareBench(doc, baseline, tolerance); len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(stdout, "REGRESSION", r)
		}
		return fmt.Errorf("%d benchmark regression(s) vs %s", len(regressions), baselinePath)
	}
	fmt.Fprintf(stdout, "no regression vs %s (tolerance %.0f%%)\n", baselinePath, 100*tolerance)
	return nil
}

func readBenchDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != benchSchema {
		return nil, fmt.Errorf("%s: unknown schema %q (want %q)", path, doc.Schema, benchSchema)
	}
	return &doc, nil
}
