package main

// Fleet mode (-fleet): solve a whole batch of fault-tree instances —
// a directory of .json/.txt files, or a stream of file paths on stdin —
// on one shared scheduler worker pool, and report batch throughput.
// Parallelism comes from the batch, not from within one instance: each
// analysis runs with a sequential portfolio and a single-worker
// decomposition budget, so `-fleet-workers` is the whole run's CPU
// budget. The throughput number also exists as the calibrated
// `fleet8-batch` scenario of the nightly suite, so regressions are
// gated against the checked-in baseline.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/sched"
)

// fleetSchema versions the fleet throughput report.
const fleetSchema = "mpmcs4fta-fleet/v1"

type fleetInstance struct {
	name string
	tree *ft.Tree
}

type fleetResult struct {
	Name        string   `json:"name"`
	Status      string   `json:"status,omitempty"`
	Probability float64  `json:"probability,omitempty"`
	CutSet      []string `json:"cutSet,omitempty"`
	ElapsedMS   float64  `json:"elapsedMillis"`
	Err         string   `json:"err,omitempty"`
}

type fleetDoc struct {
	Schema          string        `json:"schema"`
	Workers         int           `json:"workers"`
	Instances       int           `json:"instances"`
	Solved          int           `json:"solved"`
	Failed          int           `json:"failed"`
	ElapsedMS       float64       `json:"elapsedMillis"`
	InstancesPerSec float64       `json:"instancesPerSec"`
	Results         []fleetResult `json:"results"`
}

// solveFleet runs every instance through core.Analyze on one shared
// sched.Pool and aggregates the batch throughput. Per-instance failures
// (including ErrNoCutSet) are recorded, not fatal: one bad tree must
// not sink the batch.
func solveFleet(ctx context.Context, instances []fleetInstance, workers int, timeout time.Duration) (*fleetDoc, error) {
	pool := sched.New(workers)
	opts := core.Options{
		Sequential: true,
		// One decomposition worker per instance: the fleet pool owns the
		// CPU budget, so an instance must not fan out on its own.
		DecomposeWorkers: 1,
		Timeout:          timeout,
	}
	results := make([]fleetResult, len(instances))
	start := time.Now()
	for i := range instances {
		inst := instances[i]
		slot := &results[i]
		if err := pool.Submit(ctx, func(tctx context.Context) {
			s := time.Now()
			sol, err := core.Analyze(tctx, inst.tree, opts)
			slot.Name = inst.name
			slot.ElapsedMS = float64(time.Since(s).Microseconds()) / 1000
			if err != nil {
				slot.Err = err.Error()
				return
			}
			slot.Status = sol.Status
			slot.Probability = sol.Probability
			slot.CutSet = sol.CutSetIDs()
		}); err != nil {
			pool.Close()
			return nil, fmt.Errorf("fleet: submit %s: %w", inst.name, err)
		}
	}
	pool.Close() // waits for every queued instance
	elapsed := time.Since(start)

	doc := &fleetDoc{
		Schema:    fleetSchema,
		Workers:   pool.Workers(),
		Instances: len(instances),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Results:   results,
	}
	for _, r := range results {
		if r.Err == "" {
			doc.Solved++
		} else {
			doc.Failed++
		}
	}
	if elapsed > 0 {
		doc.InstancesPerSec = float64(len(instances)) / elapsed.Seconds()
	}
	return doc, nil
}

// collectFleet resolves the -fleet operand into named instances: a
// directory (every .json/.txt file inside, sorted), a single tree
// file, or "-" for newline-separated file paths streamed on stdin.
func collectFleet(path string, stdin io.Reader) ([]fleetInstance, error) {
	var files []string
	switch {
	case path == "-":
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" {
				files = append(files, line)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("fleet: read stdin: %w", err)
		}
	default:
		info, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			files = []string{path}
			break
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			ext := filepath.Ext(e.Name())
			if ext == ".json" || ext == ".txt" {
				files = append(files, filepath.Join(path, e.Name()))
			}
		}
		sort.Strings(files)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fleet: no instances under %q", path)
	}

	instances := make([]fleetInstance, 0, len(files))
	for _, file := range files {
		tree, err := loadFleetTree(file)
		if err != nil {
			return nil, fmt.Errorf("fleet: %s: %w", file, err)
		}
		instances = append(instances, fleetInstance{name: filepath.Base(file), tree: tree})
	}
	return instances, nil
}

func loadFleetTree(path string) (*ft.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if filepath.Ext(path) == ".json" {
		return ft.ReadJSON(f)
	}
	return ft.ReadText(f)
}

// runFleetMode executes -fleet: collect, solve, print the summary and
// optionally write the JSON report.
func runFleetMode(path string, workers int, outPath string, timeout time.Duration, stdin io.Reader, stdout io.Writer) error {
	instances, err := collectFleet(path, stdin)
	if err != nil {
		return err
	}
	doc, err := solveFleet(context.Background(), instances, workers, timeout)
	if err != nil {
		return err
	}
	for _, r := range doc.Results {
		line := fmt.Sprintf("fleet %-28s %10.1fms", r.Name, r.ElapsedMS)
		if r.Err != "" {
			line += "  err=" + r.Err
		} else {
			line += fmt.Sprintf("  %s p=%.6g %v", r.Status, r.Probability, r.CutSet)
		}
		fmt.Fprintln(stdout, line)
	}
	fmt.Fprintf(stdout, "fleet: %d instances, %d solved, %d failed, %d workers, %.1fms total, %.2f instances/sec\n",
		doc.Instances, doc.Solved, doc.Failed, doc.Workers, doc.ElapsedMS, doc.InstancesPerSec)
	if outPath != "" {
		if err := writeFile(outPath, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(doc)
		}); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleet report written to %s\n", outPath)
	}
	return nil
}
