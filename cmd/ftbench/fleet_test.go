package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpmcs4fta/internal/gen"
)

// fleetDir writes a small mixed corpus (two JSON trees, one text tree)
// into a temp directory.
func fleetDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		tree, err := gen.Modular(gen.ModularConfig{Modules: 2, EventsPerModule: 6, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tree.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		name := filepath.Join(dir, tree.Name()+".json")
		if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := gen.FPS().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fps.txt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestFleetModeDirectory: -fleet over a directory solves every
// instance, reports throughput and writes a valid report document.
func TestFleetModeDirectory(t *testing.T) {
	dir := fleetDir(t)
	out := filepath.Join(t.TempDir(), "fleet.json")
	var stdout bytes.Buffer
	if err := run([]string{"-fleet", dir, "-fleet-workers", "2", "-fleet-out", out}, &stdout); err != nil {
		t.Fatalf("%v\n%s", err, stdout.String())
	}
	if !strings.Contains(stdout.String(), "instances/sec") {
		t.Fatalf("no throughput line:\n%s", stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc fleetDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != fleetSchema {
		t.Fatalf("schema = %q, want %q", doc.Schema, fleetSchema)
	}
	if doc.Instances != 3 || doc.Solved != 3 || doc.Failed != 0 {
		t.Fatalf("counts: %+v", doc)
	}
	if doc.Workers != 2 || doc.InstancesPerSec <= 0 {
		t.Fatalf("throughput fields: %+v", doc)
	}
	for _, r := range doc.Results {
		if r.Status != "OPTIMAL" || r.Probability <= 0 || len(r.CutSet) == 0 {
			t.Fatalf("instance %s not solved: %+v", r.Name, r)
		}
	}
}

// TestFleetModeStdinStream: "-" reads newline-separated instance paths.
func TestFleetModeStdinStream(t *testing.T) {
	dir := fleetDir(t)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		paths = append(paths, filepath.Join(dir, e.Name()))
	}
	instances, err := collectFleet("-", strings.NewReader(strings.Join(paths, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 3 {
		t.Fatalf("collected %d instances, want 3", len(instances))
	}
	doc, err := solveFleet(context.Background(), instances, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Solved != 3 {
		t.Fatalf("solved %d, want 3: %+v", doc.Solved, doc)
	}
}

// TestFleetBadInstanceDoesNotSinkBatch: one unreadable tree is a
// per-instance failure, not a batch abort.
func TestFleetBadInstanceDoesNotSinkBatch(t *testing.T) {
	dir := fleetDir(t)
	// A tree whose top event cannot occur: Analyze returns ErrNoCutSet.
	if err := os.WriteFile(filepath.Join(dir, "zzz-impossible.txt"), []byte(
		"tree impossible\ntop g1\nevent e1 0\nevent e2 0.5\ngate g1 and e1 e2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	instances, err := collectFleet(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := solveFleet(context.Background(), instances, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Solved != 3 || doc.Failed != 1 {
		t.Fatalf("solved=%d failed=%d, want 3/1", doc.Solved, doc.Failed)
	}
}

// TestFleetEmpty: an empty directory is an error, not a vacuous
// success.
func TestFleetEmpty(t *testing.T) {
	if _, err := collectFleet(t.TempDir(), nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
}
