package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fpsText = `
tree FPS
top top
event x1 0.2
event x2 0.1
event x3 0.001
event x4 0.002
event x5 0.05
event x6 0.1
event x7 0.05
gate detection and x1 x2
gate remote or x6 x7
gate trigger and x5 remote
gate suppression or x3 x4 trigger
gate top or detection suppression
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFPSText(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-sequential"}, &out); err != nil {
		t.Fatal(err)
	}
	var sol struct {
		MPMCS []struct {
			ID string `json:"id"`
		} `json:"mpmcs"`
		Probability float64 `json:"probability"`
	}
	if err := json.Unmarshal(out.Bytes(), &sol); err != nil {
		t.Fatalf("output is not a solution document: %v\n%s", err, out.String())
	}
	if len(sol.MPMCS) != 2 || sol.Probability < 0.0199 || sol.Probability > 0.0201 {
		t.Errorf("unexpected solution: %+v", sol)
	}
}

func TestRunJSONInputAndOutputs(t *testing.T) {
	// Convert the text tree to JSON through the library, then feed it
	// back through the CLI with -output and -dot.
	input := writeTemp(t, "fps.txt", fpsText)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "solution.json")
	dotPath := filepath.Join(dir, "tree.dot")

	var stdout bytes.Buffer
	_, err := run([]string{
		"-input", input,
		"-output", outPath,
		"-dot", dotPath,
		"-sequential",
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"mpmcs\"") {
		t.Errorf("solution file missing mpmcs: %s", data)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "salmon"} {
		if !strings.Contains(string(dot), want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestRunTopK(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-topk", "5", "-sequential"}, &out); err != nil {
		t.Fatal(err)
	}
	var sols []json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &sols); err != nil {
		t.Fatalf("topk output is not an array: %v", err)
	}
	if len(sols) != 5 {
		t.Errorf("got %d solutions, want 5", len(sols))
	}
}

func TestRunBDDEngine(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-engine", "bdd"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Rauzy") {
		t.Errorf("BDD method not reported:\n%s", out.String())
	}
}

func TestRunBDDEngineTopK(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-engine", "bdd", "-topk", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	var sols []json.RawMessage
	if err := json.Unmarshal(out.Bytes(), &sols); err != nil {
		t.Fatalf("bdd topk output is not an array: %v", err)
	}
	if len(sols) != 3 {
		t.Errorf("got %d solutions, want 3", len(sols))
	}
}

func TestRunWCNFExport(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	wcnfPath := filepath.Join(t.TempDir(), "inst.wcnf")
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-wcnf", wcnfPath, "-sequential"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(wcnfPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "p wcnf ") {
		t.Errorf("WCNF export malformed:\n%s", data)
	}
	// The export must contain the Table-I scaled weights as soft
	// clauses.
	if !strings.Contains(string(data), "16094379 1 0") {
		t.Errorf("soft clause for x1 missing:\n%s", data)
	}
}

func TestRunReport(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-report", "-topk", "3", "-sequential"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Solutions           []json.RawMessage `json:"solutions"`
		TopEventProbability float64           `json:"topEventProbability"`
		MinimalCutSets      int64             `json:"minimalCutSets"`
		SPOFs               []string          `json:"singlePointsOfFailure"`
		Importance          []json.RawMessage `json:"importance"`
		Modules             []string          `json:"modules"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.Solutions) != 3 || doc.MinimalCutSets != 5 {
		t.Errorf("report: %d solutions, %d cut sets", len(doc.Solutions), doc.MinimalCutSets)
	}
	if len(doc.SPOFs) != 2 || len(doc.Importance) != 7 || len(doc.Modules) != 5 {
		t.Errorf("report measures incomplete: %+v", doc)
	}
	if doc.TopEventProbability <= 0.02 {
		t.Errorf("P(top) = %v", doc.TopEventProbability)
	}
}

func TestRunErrors(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	bad := writeTemp(t, "bad.txt", "gate g and\n")
	tests := []struct {
		name string
		args []string
	}{
		{"missing input", []string{}},
		{"nonexistent file", []string{"-input", "/does/not/exist"}},
		{"bad tree", []string{"-input", bad}},
		{"bad topk", []string{"-input", input, "-topk", "0"}},
		{"bad engine", []string{"-input", input, "-engine", "quantum"}},
		{"bdd with disjoint", []string{"-input", input, "-engine", "bdd", "-disjoint"}},
		{"bad format", []string{"-input", input, "-format", "yaml"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			code, err := run(tt.args, &out)
			if err == nil {
				t.Error("expected error")
			}
			if code == 0 {
				t.Errorf("exit code 0 for a failed run")
			}
		})
	}
}

func TestRunTraceAndMetrics(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.txt")

	var out bytes.Buffer
	// Positional input (no -input flag) is part of the contract here.
	_, err := run([]string{"-trace", tracePath, "-metrics", metricsPath, input}, &out)
	if err != nil {
		t.Fatal(err)
	}

	// The solution document must carry the winner's solver counters.
	var sol struct {
		Stats struct {
			Solver struct {
				Bounds []json.RawMessage `json:"bounds"`
			} `json:"solver"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(out.Bytes(), &sol); err != nil {
		t.Fatalf("bad solution JSON: %v", err)
	}
	if len(sol.Stats.Solver.Bounds) == 0 {
		t.Errorf("solution stats.solver missing bound trajectory:\n%s", out.String())
	}

	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.Spans) == 0 {
		t.Fatal("trace has no root spans")
	}
	for _, want := range []string{
		`"validate"`, `"formula"`, `"weights"`, `"encode"`, `"solve"`, `"decode"`,
		`"engine:wmsu1"`, `"engine:linear-su"`, `"engine:branch-bound"`,
		`"satCalls"`, `"decisions"`,
	} {
		if !strings.Contains(string(trace), want) {
			t.Errorf("trace missing %s", want)
		}
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(metrics), "analyses 1") {
		t.Errorf("metrics snapshot missing analyses counter:\n%s", metrics)
	}
	if !strings.Contains(string(metrics), "winner.") {
		t.Errorf("metrics snapshot missing winner counter:\n%s", metrics)
	}
}

func TestRunCPUProfile(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	profPath := filepath.Join(t.TempDir(), "cpu.prof")
	var out bytes.Buffer
	if _, err := run([]string{"-cpuprofile", profPath, "-sequential", input}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(profPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile is empty")
	}
}

func TestRunFormatOverride(t *testing.T) {
	// A .dat file containing the text format needs -format text... which
	// is the default for non-.json, so test JSON via override instead.
	jsonTree := `{"name":"t","top":"g","events":[{"id":"a","probability":0.5},{"id":"b","probability":0.5}],"gates":[{"id":"g","type":"and","inputs":["a","b"]}]}`
	input := writeTemp(t, "tree.dat", jsonTree)
	var out bytes.Buffer
	if _, err := run([]string{"-input", input, "-format", "json", "-sequential"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"probability\": 0.25") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

// Exit codes follow the shared taxonomy (internal/serve): 0 OPTIMAL,
// 20 INFEASIBLE with an explicit empty-set document on stdout.
func TestRunExitCodes(t *testing.T) {
	input := writeTemp(t, "fps.txt", fpsText)
	var out bytes.Buffer
	code, err := run([]string{"-input", input, "-sequential"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("optimal run: code %d, err %v, want 0, nil", code, err)
	}

	impossible := `
tree impossible
top top
event never 0
event pump 0.1
gate top and never pump
`
	input = writeTemp(t, "impossible.txt", impossible)
	out.Reset()
	code, err = run([]string{"-input", input, "-sequential"}, &out)
	if err != nil {
		t.Fatalf("infeasible tree is a verdict, not an error: %v", err)
	}
	if code != 20 {
		t.Errorf("infeasible exit code %d, want 20", code)
	}
	var sol struct {
		MPMCS       []json.RawMessage `json:"mpmcs"`
		Probability float64           `json:"probability"`
		Status      string            `json:"status"`
	}
	if err := json.Unmarshal(out.Bytes(), &sol); err != nil {
		t.Fatalf("no empty-set document on stdout: %v\n%s", err, out.String())
	}
	if sol.MPMCS == nil || len(sol.MPMCS) != 0 || sol.Probability != 0 || sol.Status != "INFEASIBLE" {
		t.Errorf("malformed empty-set document: %s", out.String())
	}
}
