// Command mpmcs4fta reproduces the paper's open-source tool: it reads a
// fault tree, computes the Maximum Probability Minimal Cut Set via the
// MaxSAT pipeline (or the BDD baseline), and writes the solution as a
// JSON document. Optionally it emits a Graphviz rendering with the
// MPMCS highlighted — the offline counterpart of the paper's Fig. 2
// browser view.
//
// Usage:
//
//	mpmcs4fta -input tree.json [-format json|text] [-topk N] [-disjoint]
//	          [-engine portfolio|bdd] [-sequential] [-timeout 30s] [-pg]
//	          [-no-decompose] [-decompose-workers N]
//	          [-output out.json] [-dot out.dot] [-wcnf out.wcnf] [-report]
//	          [-trace spans.json] [-metrics metrics.txt] [-pprof addr]
//	          [-cpuprofile cpu.prof] [-obs-listen addr] [-obs-linger 30s]
//
// The input file may also be given as a positional argument.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mpmcs4fta"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/serve"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpmcs4fta:", err)
	}
	os.Exit(code)
}

// run executes the analysis and returns the process exit code from the
// shared taxonomy (internal/serve status table): 0 OPTIMAL, 10
// FEASIBLE (anytime answer, gap reported), 20 INFEASIBLE (no cut set —
// an explicit empty-set document is still written), 4 deadline with
// nothing to report, 2 usage or unreadable input, 1 internal failure.
func run(args []string, stdout io.Writer) (code int, err error) {
	fs := flag.NewFlagSet("mpmcs4fta", flag.ContinueOnError)
	var (
		input      = fs.String("input", "", "fault tree file (required)")
		format     = fs.String("format", "", "input format: json or text (default: by extension)")
		output     = fs.String("output", "", "solution output file (default: stdout)")
		dotFile    = fs.String("dot", "", "write a Graphviz rendering with the MPMCS highlighted")
		topK       = fs.Int("topk", 1, "number of ranked cut sets to compute")
		engine     = fs.String("engine", "portfolio", "solving engine: portfolio or bdd")
		sequential = fs.Bool("sequential", false, "run portfolio engines sequentially (deterministic)")
		noDecomp   = fs.Bool("no-decompose", false, "disable modular decomposition: solve the tree as one monolithic MaxSAT instance")
		decompWork = fs.Int("decompose-workers", 0, "worker budget for concurrent module sub-solves (0 = GOMAXPROCS)")
		timeout    = fs.Duration("timeout", 0, "overall analysis timeout (0 = none)")
		pg         = fs.Bool("pg", false, "use the Plaisted-Greenbaum CNF encoding")
		wcnfFile   = fs.String("wcnf", "", "also export the Step-4 MaxSAT instance in DIMACS WCNF format")
		report     = fs.Bool("report", false, "emit a full FTA report (P(top), SPOFs, cut-set count, importance measures) around the solution")
		disjoint   = fs.Bool("disjoint", false, "with -topk: enumerate event-disjoint cut sets (independent failure modes)")
		traceFile  = fs.String("trace", "", "write a hierarchical span trace of the analysis as JSON")
		metricsOut = fs.String("metrics", "", "write a plain-text metrics snapshot ('-' for stderr)")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the analysis")
		obsListen  = fs.String("obs-listen", "", "serve live telemetry on this address: /metrics (Prometheus), /events (SSE bound trajectory), /debug/pprof")
		obsLinger  = fs.Duration("obs-linger", 0, "with -obs-listen: keep serving telemetry this long after the analysis completes")
	)
	if err := fs.Parse(args); err != nil {
		return serve.ExitUsage, err
	}
	if *input == "" && fs.NArg() == 1 {
		*input = fs.Arg(0)
	}
	if *input == "" {
		fs.Usage()
		return serve.ExitUsage, fmt.Errorf("-input is required")
	}
	if *topK < 1 {
		return serve.ExitUsage, fmt.Errorf("-topk must be positive")
	}

	tree, err := loadTree(*input, *format)
	if err != nil {
		return serve.ExitUsage, err
	}

	opts := mpmcs4fta.Options{
		Sequential:        *sequential,
		PlaistedGreenbaum: *pg,
		Timeout:           *timeout,
		NoDecompose:       *noDecomp,
		DecomposeWorkers:  *decompWork,
	}

	var tracer *mpmcs4fta.JSONTracer
	if *traceFile != "" {
		tracer = mpmcs4fta.NewJSONTracer()
		opts.Tracer = tracer
		defer func() {
			if werr := writeTrace(*traceFile, tracer); werr != nil && err == nil {
				code, err = serve.ExitError, werr
			}
		}()
	}
	var metrics *mpmcs4fta.Metrics
	if *metricsOut != "" {
		metrics = mpmcs4fta.NewMetrics()
		opts.Metrics = metrics
		defer func() {
			if werr := writeMetrics(*metricsOut, metrics); werr != nil && err == nil {
				code, err = serve.ExitError, werr
			}
		}()
	}
	if *obsListen != "" {
		if metrics == nil {
			metrics = mpmcs4fta.NewMetrics()
			opts.Metrics = metrics
		}
		bus := mpmcs4fta.NewEventBus()
		opts.Bus = bus
		srv := mpmcs4fta.NewObsServer(metrics, bus)
		bound, serr := srv.Start(*obsListen)
		if serr != nil {
			return serve.ExitError, serr
		}
		defer srv.Close()
		defer func() {
			// Linger so scrapers and ftmon can still read the terminal
			// frame from the replay ring after a fast analysis.
			if *obsLinger > 0 {
				time.Sleep(*obsLinger)
			}
		}()
		fmt.Fprintf(os.Stderr, "mpmcs4fta: telemetry on http://%s/metrics and http://%s/events\n", bound, bound)
	}
	if *pprofAddr != "" {
		bound, stop, perr := obs.StartPprofServer(*pprofAddr)
		if perr != nil {
			return serve.ExitError, perr
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "mpmcs4fta: pprof listening on http://%s/debug/pprof/\n", bound)
	}
	if *cpuProfile != "" {
		stop, perr := obs.StartCPUProfile(*cpuProfile)
		if perr != nil {
			return serve.ExitError, perr
		}
		defer stop()
	}

	if *wcnfFile != "" {
		steps, err := mpmcs4fta.BuildSteps(tree, opts)
		if err != nil {
			return serve.ExitError, err
		}
		f, err := os.Create(*wcnfFile)
		if err != nil {
			return serve.ExitError, err
		}
		defer f.Close()
		if err := steps.Instance.WriteWCNF(f); err != nil {
			return serve.ExitError, err
		}
	}

	var solutions []*mpmcs4fta.Solution
	switch *engine {
	case "portfolio":
		if *disjoint {
			solutions, err = mpmcs4fta.AnalyzeDisjoint(context.Background(), tree, *topK, opts)
		} else {
			solutions, err = mpmcs4fta.AnalyzeTopK(context.Background(), tree, *topK, opts)
		}
	case "bdd":
		if *disjoint {
			return serve.ExitUsage, fmt.Errorf("-disjoint requires -engine portfolio")
		}
		solutions, err = mpmcs4fta.AnalyzeTopKBDD(tree, *topK, opts)
	default:
		return serve.ExitUsage, fmt.Errorf("unknown engine %q", *engine)
	}
	switch {
	case errors.Is(err, mpmcs4fta.ErrNoCutSet):
		// A definitive verdict about the tree: the top event cannot
		// occur. Report it as an explicit empty-set document, exit 20.
		solutions = []*mpmcs4fta.Solution{{
			Tree:        tree.Name(),
			Method:      "Weighted Partial MaxSAT",
			MPMCS:       []mpmcs4fta.SolutionEvent{},
			Probability: 0,
			Status:      serve.StatusInfeasible,
		}}
		err = nil
	case errors.Is(err, mpmcs4fta.ErrNoAnswer):
		return serve.ExitNoAnswer, err
	case err != nil:
		return serve.ExitError, err
	}
	// FEASIBLE anywhere in the ranking means the run hit its budget:
	// the documents are sound but possibly not optimally ranked.
	exitCode := serve.ExitOK
	for _, sol := range solutions {
		if sol.Status == serve.StatusFeasible {
			exitCode = serve.ExitFeasible
		}
		if sol.Status == serve.StatusInfeasible {
			exitCode = serve.ExitInfeasible
		}
	}

	out := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return serve.ExitError, err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	switch {
	case *report:
		doc, rerr := buildReport(tree, solutions)
		if rerr != nil {
			return serve.ExitError, rerr
		}
		err = enc.Encode(doc)
	case *topK == 1:
		err = enc.Encode(solutions[0])
	default:
		err = enc.Encode(solutions)
	}
	if err != nil {
		return serve.ExitError, fmt.Errorf("encode solution: %w", err)
	}

	if *dotFile != "" {
		highlight := make(map[string]bool)
		for _, e := range solutions[0].MPMCS {
			highlight[e.ID] = true
		}
		f, err := os.Create(*dotFile)
		if err != nil {
			return serve.ExitError, err
		}
		defer f.Close()
		if err := tree.WriteDot(f, mpmcs4fta.DotOptions{
			Highlight:         highlight,
			ShowProbabilities: true,
		}); err != nil {
			return serve.ExitError, err
		}
	}
	return exitCode, nil
}

// ftaReport is the extended output of -report: the ranked solutions in
// context of the classical quantitative measures.
type ftaReport struct {
	Solutions           []*mpmcs4fta.Solution  `json:"solutions"`
	TopEventProbability float64                `json:"topEventProbability"`
	MinimalCutSets      int64                  `json:"minimalCutSets"`
	SPOFs               []string               `json:"singlePointsOfFailure"`
	Importance          []mpmcs4fta.Importance `json:"importance"`
	Modules             []string               `json:"modules"`
}

func buildReport(tree *mpmcs4fta.Tree, solutions []*mpmcs4fta.Solution) (*ftaReport, error) {
	top, err := mpmcs4fta.TopEventProbability(tree)
	if err != nil {
		return nil, err
	}
	count, err := mpmcs4fta.CountMinimalCutSets(tree)
	if err != nil {
		return nil, err
	}
	spofs, err := mpmcs4fta.SinglePointsOfFailure(tree)
	if err != nil {
		return nil, err
	}
	measures, err := mpmcs4fta.ImportanceMeasures(tree)
	if err != nil {
		return nil, err
	}
	modules, err := mpmcs4fta.Modules(tree)
	if err != nil {
		return nil, err
	}
	if spofs == nil {
		spofs = []string{}
	}
	return &ftaReport{
		Solutions:           solutions,
		TopEventProbability: top,
		MinimalCutSets:      count,
		SPOFs:               spofs,
		Importance:          measures,
		Modules:             modules,
	}, nil
}

// writeTrace flushes the recorded span tree to path after the analysis
// (including on error, so aborted runs still leave a partial trace).
func writeTrace(path string, tracer *mpmcs4fta.JSONTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	return f.Close()
}

// writeMetrics dumps the counter registry as sorted "name value" lines;
// "-" writes to stderr so it composes with -output on stdout.
func writeMetrics(path string, m *mpmcs4fta.Metrics) error {
	if path == "-" {
		return m.WriteText(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteText(f); err != nil {
		f.Close()
		return fmt.Errorf("write metrics: %w", err)
	}
	return f.Close()
}

func loadTree(path, format string) (*mpmcs4fta.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "" {
		if strings.HasSuffix(path, ".json") {
			format = "json"
		} else {
			format = "text"
		}
	}
	switch format {
	case "json":
		return mpmcs4fta.LoadTreeJSON(f)
	case "text":
		return mpmcs4fta.LoadTreeText(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}
