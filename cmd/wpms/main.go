// Command wpms is a standalone Weighted Partial MaxSAT solver over
// DIMACS WCNF files, exposing the library's solver portfolio outside
// the fault-tree pipeline. Output follows the MaxSAT-evaluation
// conventions: "c" comments, "o <cost>" for the optimum, "s" for the
// status line, and "v" for the model.
//
// Usage:
//
//	wpms -input instance.wcnf [-engine portfolio|wmsu1|linear-su|branch-bound]
//	     [-timeout 60s] [-quiet]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
	"mpmcs4fta/internal/serve"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wpms:", err)
	}
	os.Exit(code)
}

// run executes the solver and returns the process exit code following
// MaxSAT-evaluation conventions (serve.WPMSExitCode, one row of the
// shared status table): 0 unknown/error, 30 optimum found, 20
// unsatisfiable, 10 satisfiable (anytime incumbent whose optimality
// was not proven before the deadline).
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("wpms", flag.ContinueOnError)
	var (
		input   = fs.String("input", "", "WCNF instance file (required)")
		engine  = fs.String("engine", "portfolio", "engine: portfolio, wmsu1, linear-su or branch-bound")
		timeout = fs.Duration("timeout", 0, "solve timeout (0 = none)")
		quiet   = fs.Bool("quiet", false, "suppress the v (model) line")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *input == "" {
		fs.Usage()
		return 0, fmt.Errorf("-input is required")
	}

	f, err := os.Open(*input)
	if err != nil {
		return 0, err
	}
	inst, err := cnf.ReadWCNFAuto(f)
	f.Close()
	if err != nil {
		return 0, err
	}
	//lint:ignore weightsafe TotalSoftWeight saturates at MaxInt64-1, so the +1 top weight cannot overflow
	top := inst.TotalSoftWeight() + 1
	fmt.Fprintf(stdout, "c wpms: %d vars, %d hard, %d soft, top weight %d\n",
		inst.NumVars, len(inst.Hard), len(inst.Soft), top)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	var (
		res    maxsat.Result
		winner string
	)
	if *engine == "portfolio" {
		var report portfolio.Report
		res, report, err = portfolio.Solve(ctx, inst, portfolio.DefaultEngines())
		winner = report.Winner
	} else {
		solver, serr := engineByName(*engine)
		if serr != nil {
			return 0, serr
		}
		res, err = solver.Solve(ctx, inst)
		winner = solver.Name()
	}
	if err != nil {
		fmt.Fprintln(stdout, "s UNKNOWN")
		return 0, err
	}
	fmt.Fprintf(stdout, "c solved by %s in %v\n", winner, time.Since(start).Round(time.Microsecond))

	switch res.Status {
	case maxsat.Infeasible:
		fmt.Fprintln(stdout, "s UNSATISFIABLE")
	case maxsat.Optimal:
		fmt.Fprintf(stdout, "o %d\n", res.Cost)
		fmt.Fprintln(stdout, "s OPTIMUM FOUND")
		if !*quiet {
			fmt.Fprintln(stdout, "v "+modelLine(res.Model, inst.NumVars))
		}
	case maxsat.Feasible:
		fmt.Fprintf(stdout, "c lower bound %d, optimality gap %d\n", res.LowerBound, res.Gap())
		fmt.Fprintf(stdout, "o %d\n", res.Cost)
		fmt.Fprintln(stdout, "s SATISFIABLE")
		if !*quiet {
			fmt.Fprintln(stdout, "v "+modelLine(res.Model, inst.NumVars))
		}
	default:
		fmt.Fprintln(stdout, "s UNKNOWN")
	}
	return serve.WPMSExitCode(res.Status), nil
}

func engineByName(name string) (maxsat.Solver, error) {
	switch name {
	case "wmsu1":
		return &maxsat.WMSU1{}, nil
	case "linear-su":
		return &maxsat.LinearSU{}, nil
	case "branch-bound":
		return &maxsat.BranchBound{}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q", name)
	}
}

func modelLine(model []bool, numVars int) string {
	var b strings.Builder
	for v := 1; v <= numVars; v++ {
		if v > 1 {
			b.WriteByte(' ')
		}
		if v < len(model) && model[v] {
			b.WriteString(fmt.Sprint(v))
		} else {
			b.WriteString(fmt.Sprint(-v))
		}
	}
	return b.String()
}
