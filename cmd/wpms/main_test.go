package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeWCNF(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.wcnf")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The small instance from the maxsat tests: optimum 5 by setting
// variables 1 and 2 (falsifying the weight-2 and weight-3 softs).
const smallWCNF = `p wcnf 3 5 16
16 1 3 0
16 2 3 0
2 -1 0
3 -2 0
10 -3 0
`

func TestRunOptimum(t *testing.T) {
	path := writeWCNF(t, smallWCNF)
	for _, engine := range []string{"portfolio", "wmsu1", "linear-su", "branch-bound"} {
		t.Run(engine, func(t *testing.T) {
			var out bytes.Buffer
			code, err := run([]string{"-input", path, "-engine", engine}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if code != 30 {
				t.Errorf("exit code %d, want 30", code)
			}
			text := out.String()
			if !strings.Contains(text, "o 5\n") {
				t.Errorf("optimum line missing:\n%s", text)
			}
			if !strings.Contains(text, "s OPTIMUM FOUND") {
				t.Errorf("status line missing:\n%s", text)
			}
			if !strings.Contains(text, "v 1 2 -3") {
				t.Errorf("model line missing or wrong:\n%s", text)
			}
		})
	}
}

func TestRun2022Format(t *testing.T) {
	// The same small instance in the 2022 MaxSAT-evaluation dialect.
	path := writeWCNF(t, "h 1 3 0\nh 2 3 0\n2 -1 0\n3 -2 0\n10 -3 0\n")
	var out bytes.Buffer
	code, err := run([]string{"-input", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 30 || !strings.Contains(out.String(), "o 5\n") {
		t.Errorf("code %d output:\n%s", code, out.String())
	}
}

func TestRunUnsat(t *testing.T) {
	path := writeWCNF(t, "p wcnf 1 2 10\n10 1 0\n10 -1 0\n")
	var out bytes.Buffer
	code, err := run([]string{"-input", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 20 || !strings.Contains(out.String(), "s UNSATISFIABLE") {
		t.Errorf("code %d output:\n%s", code, out.String())
	}
}

func TestRunQuiet(t *testing.T) {
	path := writeWCNF(t, smallWCNF)
	var out bytes.Buffer
	if _, err := run([]string{"-input", path, "-quiet"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "\nv ") {
		t.Errorf("quiet mode printed a model:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeWCNF(t, smallWCNF)
	tests := []struct {
		name string
		args []string
	}{
		{"missing input", nil},
		{"nonexistent", []string{"-input", "/no/such/file"}},
		{"bad engine", []string{"-input", path, "-engine", "quantum"}},
		{"malformed wcnf", []string{"-input", writeWCNF(t, "garbage\n")}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if _, err := run(tt.args, &out); err == nil {
				t.Error("expected error")
			}
		})
	}
}
