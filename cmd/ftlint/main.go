// Command ftlint runs the repo's domain-aware static analyzers (see
// internal/lint): ctxpoll, weightsafe, floatcmp, guardedby, spanclose,
// goroutinewait, and the summary-driven second generation — arenaref
// (clause-arena reference lifetimes across may-GC calls), lockorder
// (global lock-ordering cycles and may-block calls under a mutex),
// exactlyonce (pool-task result delivery that cannot wedge a worker)
// and errtaxonomy (errors.Is over ==, %w over %v, serve responses
// through the status.go table). It is the mechanical enforcement of
// invariants previously restored by hand after incidents.
//
// Standalone over go package patterns:
//
//	ftlint ./...
//	ftlint -json ./internal/sat ./internal/maxsat
//	ftlint -c ctxpoll,weightsafe ./...
//	ftlint -json -baseline testdata/lint/FINDINGS_baseline.json ./...
//
// or as a go vet tool (it speaks cmd/go's vet config protocol):
//
//	go vet -vettool=$(which ftlint) ./...
//
// Findings are suppressed with an auditable directive on or directly
// above the offending line; the reason is mandatory, and a directive
// that no longer suppresses anything is itself a finding (suppression
// rot):
//
//	//lint:ignore ctxpoll sift-down is bounded by the heap height
//
// With -baseline, findings are diffed against a checked-in snapshot:
// only regressions (findings absent from the baseline) fail the run,
// so a new analyzer can gate CI on "no new violations" while legacy
// ones are burned down; resolved baseline entries are listed so the
// snapshot can shrink.
//
// Exit codes (matching ftdiff's contract so CI and nightly jobs can
// tell findings from breakage): 0 no unsuppressed findings (or, with
// -baseline, no regressions), 1 findings reported, 2 usage or load
// error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpmcs4fta/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// cmd/go probes vet tools with -V=full before handing them package
	// configs; both must be answered before normal flag parsing.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		fmt.Fprintf(stdout, "ftlint version v1\n")
		return 0
	}
	// cmd/go also asks which analyzer flags the tool exposes; ftlint
	// runs its full suite unconditionally in vettool mode.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetTool(args[0], stderr)
	}

	fs := flag.NewFlagSet("ftlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit machine-readable findings (schema mpmcs4fta-ftlint/v1) on stdout")
		list     = fs.Bool("list", false, "list the analyzers and exit")
		checks   = fs.String("c", "", "comma-separated subset of analyzers to run (default: all)")
		baseline = fs.String("baseline", "", "diff findings against this checked-in report; only regressions fail")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ftlint [-json] [-list] [-c analyzer,...] [-baseline report.json] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(stderr, "ftlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset, targets, all, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "ftlint:", err)
		return 2
	}
	findings := lint.Run(fset, targets, all, analyzers)
	relativizeFiles(findings)

	failing := findings
	if *baseline != "" {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "ftlint:", err)
			return 2
		}
		regressions, resolved := lint.DiffBaseline(base, findings)
		for _, d := range resolved {
			fmt.Fprintf(stderr, "ftlint: baseline entry resolved (remove it): [%s] %s: %s\n",
				d.Analyzer, d.File, d.Message)
		}
		failing = regressions
		if !*jsonOut {
			findings = regressions
		}
	}
	if *jsonOut {
		if err := writeJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "ftlint:", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(failing) > 0 {
		return 1
	}
	return 0
}

// relativizeFiles rewrites each finding's File to be relative to the
// working directory when possible, so -json reports and baselines are
// comparable across machines and checkouts.
func relativizeFiles(findings []lint.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range findings {
		if rel, err := filepath.Rel(wd, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			findings[i].File = rel
		}
	}
}

// runVetTool analyzes one package unit described by a cmd/go vet
// config. Findings go to stderr in the compiler format cmd/go relays;
// a nonzero exit marks the package as failing vet.
func runVetTool(cfgPath string, stderr io.Writer) int {
	cfg, fset, pkg, err := lint.LoadVetConfig(cfgPath)
	if err != nil {
		if cfg != nil && cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "ftlint:", err)
		return 1
	}
	if err := cfg.WriteVetx(); err != nil {
		fmt.Fprintln(stderr, "ftlint:", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	all := map[string]*lint.Package{pkg.Path: pkg}
	findings := lint.Run(fset, []*lint.Package{pkg}, all, lint.Analyzers())
	for _, d := range findings {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -c flag against the registered suite.
func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	suite := lint.Analyzers()
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*lint.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (ftlint -list shows the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// jsonReport is the -json document; the schema string versions it the
// same way ftbench versions its benchmark artifacts.
type jsonReport struct {
	Schema   string            `json:"schema"`
	Findings []lint.Diagnostic `json:"findings"`
}

func writeJSON(w io.Writer, findings []lint.Diagnostic) error {
	if findings == nil {
		findings = []lint.Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Schema: lint.ReportSchema, Findings: findings})
}
