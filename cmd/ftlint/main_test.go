package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goldens are loaded relative to this package directory.
const (
	weightsGolden = "../../internal/lint/testdata/src/weights"
	cleanPackage  = "../../internal/fp"
)

func TestVersionProbe(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full exited %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ftlint version") {
		t.Errorf("-V=full output %q lacks a version banner", out.String())
	}
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"ctxpoll", "weightsafe", "floatcmp", "guardedby", "spanclose", "goroutinewait",
		"arenaref", "lockorder", "exactlyonce", "errtaxonomy"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks analyzer %q", name)
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-c", "weightsafe", weightsGolden}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on a golden with findings, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[weightsafe]") {
		t.Errorf("stdout lacks weightsafe findings:\n%s", out.String())
	}
}

func TestCleanExitZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{cleanPackage}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on a clean package, want 0 (stdout: %s, stderr: %s)",
			code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-c", "weightsafe", weightsGolden}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var report struct {
		Schema   string `json:"schema"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Schema != "mpmcs4fta-ftlint/v1" {
		t.Errorf("schema = %q, want mpmcs4fta-ftlint/v1", report.Schema)
	}
	if len(report.Findings) == 0 {
		t.Fatal("-json reported no findings on the weightsafe golden")
	}
	for _, f := range report.Findings {
		if f.Analyzer != "weightsafe" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", cleanPackage}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Errorf("clean -json output must carry an empty findings array, got:\n%s", out.String())
	}
}

// TestBaselineGate drives the -baseline rollout mechanism end to end:
// a report captured from one run fully covers the next (exit 0), an
// empty baseline turns every finding into a regression (exit 1), and a
// baseline entry that no longer fires is listed as resolved.
func TestBaselineGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")

	// Capture the golden's findings as the baseline.
	var report, errOut bytes.Buffer
	if code := run([]string{"-json", "-c", "weightsafe", weightsGolden}, &report, &errOut); code != 1 {
		t.Fatalf("capture run exited %d, want 1 (stderr: %s)", code, errOut.String())
	}
	if err := os.WriteFile(baseline, report.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Same findings against their own snapshot: no regressions, exit 0.
	var out bytes.Buffer
	errOut.Reset()
	if code := run([]string{"-c", "weightsafe", "-baseline", baseline, weightsGolden}, &out, &errOut); code != 0 {
		t.Fatalf("baseline-covered run exited %d, want 0 (stdout: %s, stderr: %s)",
			code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("baseline-covered run printed findings:\n%s", out.String())
	}

	// An empty baseline gates on absolute cleanliness again: exit 1.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"schema":"mpmcs4fta-ftlint/v1","findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-c", "weightsafe", "-baseline", empty, weightsGolden}, &out, &errOut); code != 1 {
		t.Fatalf("empty-baseline run exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "[weightsafe]") {
		t.Errorf("regressions were not printed:\n%s", out.String())
	}

	// A clean package against the captured baseline: every entry is
	// resolved, reported on stderr, exit 0.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-c", "weightsafe", "-baseline", baseline, cleanPackage}, &out, &errOut); code != 0 {
		t.Fatalf("resolved-entries run exited %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "baseline entry resolved") {
		t.Errorf("stderr lacks the resolved-entry notices:\n%s", errOut.String())
	}

	// An unreadable baseline is a usage error: exit 2.
	if code := run([]string{"-baseline", filepath.Join(dir, "missing.json"), cleanPackage}, &out, &errOut); code != 2 {
		t.Fatalf("missing-baseline run exited %d, want 2", code)
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-c", "nosuchanalyzer", cleanPackage},
		{"./does/not/exist"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}

// TestVetToolProtocol builds the real binary and drives it through
// cmd/go, proving the -vettool integration end to end: a clean package
// passes, a golden full of violations fails with the findings relayed.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "ftlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/fp")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}

	vet = exec.Command("go", "vet", "-vettool="+bin, "./internal/lint/testdata/src/weights")
	vet.Dir = repoRoot
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on the weightsafe golden passed, want failure:\n%s", out)
	}
	if _, isExit := err.(*exec.ExitError); !isExit {
		t.Fatalf("go vet did not run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unchecked") {
		t.Errorf("go vet output lacks the relayed weightsafe findings:\n%s", out)
	}
}
