package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goldens are loaded relative to this package directory.
const (
	weightsGolden = "../../internal/lint/testdata/src/weights"
	cleanPackage  = "../../internal/fp"
)

func TestVersionProbe(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errOut); code != 0 {
		t.Fatalf("-V=full exited %d, want 0 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ftlint version") {
		t.Errorf("-V=full output %q lacks a version banner", out.String())
	}
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"ctxpoll", "weightsafe", "floatcmp", "guardedby", "spanclose", "goroutinewait"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output lacks analyzer %q", name)
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-c", "weightsafe", weightsGolden}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d on a golden with findings, want 1 (stderr: %s)", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[weightsafe]") {
		t.Errorf("stdout lacks weightsafe findings:\n%s", out.String())
	}
}

func TestCleanExitZero(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{cleanPackage}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d on a clean package, want 0 (stdout: %s, stderr: %s)",
			code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean run printed findings:\n%s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", "-c", "weightsafe", weightsGolden}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errOut.String())
	}
	var report struct {
		Schema   string `json:"schema"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Schema != "mpmcs4fta-ftlint/v1" {
		t.Errorf("schema = %q, want mpmcs4fta-ftlint/v1", report.Schema)
	}
	if len(report.Findings) == 0 {
		t.Fatal("-json reported no findings on the weightsafe golden")
	}
	for _, f := range report.Findings {
		if f.Analyzer != "weightsafe" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", cleanPackage}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), `"findings": []`) {
		t.Errorf("clean -json output must carry an empty findings array, got:\n%s", out.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-c", "nosuchanalyzer", cleanPackage},
		{"./does/not/exist"},
		{"-badflag"},
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}

// TestVetToolProtocol builds the real binary and drives it through
// cmd/go, proving the -vettool integration end to end: a clean package
// passes, a golden full of violations fails with the findings relayed.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "ftlint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/fp")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on a clean package failed: %v\n%s", err, out)
	}

	vet = exec.Command("go", "vet", "-vettool="+bin, "./internal/lint/testdata/src/weights")
	vet.Dir = repoRoot
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on the weightsafe golden passed, want failure:\n%s", out)
	}
	if _, isExit := err.(*exec.ExitError); !isExit {
		t.Fatalf("go vet did not run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unchecked") {
		t.Errorf("go vet output lacks the relayed weightsafe findings:\n%s", out)
	}
}
