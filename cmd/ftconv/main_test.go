package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpmcs4fta"
)

const sampleText = `
tree Sample
top t
event a 0.1
event b 0.2
event c 0.3
gate g 2of3 a b c
gate t or g a
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tree.txt")
	if err := os.WriteFile(path, []byte(sampleText), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertTextToJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-input", writeSample(t), "-to", "json"}, &out); err != nil {
		t.Fatal(err)
	}
	tree, err := mpmcs4fta.LoadTreeJSON(&out)
	if err != nil {
		t.Fatalf("output is not loadable JSON: %v", err)
	}
	if tree.NumEvents() != 3 || tree.Gate("g").K != 2 {
		t.Errorf("conversion lost structure: %d events", tree.NumEvents())
	}
}

func TestConvertJSONToText(t *testing.T) {
	// First produce JSON, then convert back.
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "tree.json")
	var buf bytes.Buffer
	if err := run([]string{"-input", writeSample(t), "-to", "json", "-output", jsonPath}, &buf); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-input", jsonPath, "-to", "text"}, &out); err != nil {
		t.Fatal(err)
	}
	tree, err := mpmcs4fta.LoadTreeText(&out)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if tree.Name() != "Sample" {
		t.Errorf("name = %q", tree.Name())
	}
}

func TestConvertDot(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-input", writeSample(t), "-to", "dot", "-probabilities"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "2/3", "p=0.1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("DOT missing %q:\n%s", want, out.String())
		}
	}
}

func TestStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-input", writeSample(t), "-to", "stats"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"events", "3", "voting 1", "minimal cut sets"} {
		if !strings.Contains(text, want) {
			t.Errorf("stats missing %q:\n%s", want, text)
		}
	}
}

func TestConvertErrors(t *testing.T) {
	sample := writeSample(t)
	tests := []struct {
		name string
		args []string
	}{
		{"missing input", nil},
		{"unknown to", []string{"-input", sample, "-to", "yaml"}},
		{"unknown from", []string{"-input", sample, "-from", "yaml"}},
		{"nonexistent", []string{"-input", "/no/such/file"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, &out); err == nil {
				t.Error("expected error")
			}
		})
	}
}
