// Command ftconv converts fault trees between the JSON and text
// interchange formats, renders Graphviz DOT, and prints structural
// statistics — the glue tool for moving workloads between the other
// commands and external FTA software.
//
// Usage:
//
//	ftconv -input tree.json -to text [-output tree.txt]
//	ftconv -input tree.txt -to dot -probabilities
//	ftconv -input tree.json -to stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"mpmcs4fta"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftconv:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftconv", flag.ContinueOnError)
	var (
		input  = fs.String("input", "", "fault tree file (required)")
		from   = fs.String("from", "", "input format: json or text (default: by extension)")
		to     = fs.String("to", "json", "output format: json, text, dot or stats")
		output = fs.String("output", "", "output file (default: stdout)")
		probs  = fs.Bool("probabilities", false, "annotate DOT events with probabilities")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}

	tree, err := loadTree(*input, *from)
	if err != nil {
		return err
	}

	out := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	switch *to {
	case "json":
		return tree.WriteJSON(out)
	case "text":
		return tree.WriteText(out)
	case "dot":
		return tree.WriteDot(out, mpmcs4fta.DotOptions{ShowProbabilities: *probs})
	case "stats":
		return writeStats(out, tree)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
}

func writeStats(w io.Writer, tree *mpmcs4fta.Tree) error {
	stats := tree.Stats()
	modules, err := mpmcs4fta.Modules(tree)
	if err != nil {
		return err
	}
	cutSets, err := mpmcs4fta.CountMinimalCutSets(tree)
	if err != nil {
		return err
	}
	treeShaped, err := tree.IsTreeShaped()
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "name\t%s\n", tree.Name())
	fmt.Fprintf(tw, "top\t%s\n", tree.Top())
	fmt.Fprintf(tw, "events\t%d\n", stats.Events)
	fmt.Fprintf(tw, "gates\t%d (and %d, or %d, voting %d)\n",
		stats.Gates, stats.AndGates, stats.OrGates, stats.VotingGates)
	fmt.Fprintf(tw, "depth\t%d\n", stats.Depth)
	fmt.Fprintf(tw, "tree shaped\t%v\n", treeShaped)
	fmt.Fprintf(tw, "modules\t%d\n", len(modules))
	fmt.Fprintf(tw, "minimal cut sets\t%d\n", cutSets)
	return tw.Flush()
}

func loadTree(path, format string) (*mpmcs4fta.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if format == "" {
		if strings.HasSuffix(path, ".json") {
			format = "json"
		} else {
			format = "text"
		}
	}
	switch format {
	case "json":
		return mpmcs4fta.LoadTreeJSON(f)
	case "text":
		return mpmcs4fta.LoadTreeText(f)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}
