// Pipeline walks the paper's six resolution steps explicitly on the
// Fire Protection System tree, printing every intermediate artefact:
// the structure function f(t), the Step-1 success formula Y(t), the
// Step-2 Tseitin CNF, the Step-3 −log weight table (Table I), the
// Step-4 Weighted Partial MaxSAT instance, the Step-5 portfolio run,
// and the Step-6 reverse transformation.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"mpmcs4fta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tree := mpmcs4fta.ExampleFPS()
	steps, err := mpmcs4fta.BuildSteps(tree, mpmcs4fta.Options{})
	if err != nil {
		return err
	}

	fmt.Println("Fault tree function f(t):")
	fmt.Printf("  %v\n\n", steps.FaultFormula)

	fmt.Println("Step 1 — success tree Y(t) (gates flipped, y = ¬x):")
	fmt.Printf("  %v\n\n", steps.SuccessFormula)

	fmt.Println("Step 2 — Tseitin CNF of ¬Y(t):")
	fmt.Printf("  %d variables (%d inputs + %d auxiliary), %d clauses\n\n",
		steps.Encoding.Formula.NumVars,
		steps.Encoding.NumInputVars,
		steps.Encoding.Formula.NumVars-steps.Encoding.NumInputVars,
		steps.Encoding.Formula.NumClauses())

	fmt.Println("Step 3 — probabilities transformed into log-space (Table I):")
	fmt.Printf("  %-6s %-8s %-10s %s\n", "event", "p(xi)", "wi=-ln(p)", "scaled int")
	for _, w := range steps.Weights {
		fmt.Printf("  %-6s %-8g %-10.5f %d\n", w.ID, w.Prob, w.Weight, w.Scaled)
	}
	fmt.Println()

	fmt.Println("Step 4 — Weighted Partial MaxSAT instance:")
	fmt.Printf("  %d hard clauses, %d soft (unit) clauses, total soft weight %d\n\n",
		len(steps.Instance.Hard), len(steps.Instance.Soft), steps.Instance.TotalSoftWeight())

	fmt.Println("Step 5 — parallel portfolio resolution:")
	sol, err := mpmcs4fta.Analyze(context.Background(), tree, mpmcs4fta.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  winner: %s (%.3f ms)\n", sol.Solver, sol.ElapsedMS)
	fmt.Printf("  falsified y variables → MPMCS: %v\n\n", sol.CutSetIDs())

	fmt.Println("Step 6 — reverse log-space transformation:")
	fmt.Printf("  Σ wi = %.5f\n", sol.LogCost)
	fmt.Printf("  PF(t) = exp(−Σ wi) = %.6f\n", math.Exp(-sol.LogCost))
	fmt.Printf("  direct product        = %.6f\n", sol.Probability)
	return nil
}
