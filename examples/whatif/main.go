// Whatif demonstrates interactive risk exploration on the paper's FPS
// tree: the encoded instance is reused across queries (Analyzer), so
// each what-if costs only a MaxSAT solve. It sweeps the DDoS event's
// probability, finds the exact point where each event would take over
// the MPMCS, and cross-validates the analytic answers with Monte-Carlo
// simulation.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mpmcs4fta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	tree := mpmcs4fta.ExampleFPS()
	analyzer, err := mpmcs4fta.NewAnalyzer(tree, mpmcs4fta.Options{})
	if err != nil {
		return err
	}

	base, err := analyzer.Analyze(ctx, nil)
	if err != nil {
		return err
	}
	fmt.Printf("Baseline MPMCS: %v (p = %.4g)\n\n", base.CutSetIDs(), base.Probability)

	fmt.Println("What if the DDoS attack probability (x7) grows?")
	for _, p := range []float64{0.05, 0.2, 0.5, 0.9} {
		sol, err := analyzer.Analyze(ctx, map[string]float64{"x7": p})
		if err != nil {
			return err
		}
		fmt.Printf("  p(x7) = %-5.2f → MPMCS %v (p = %.4g)\n", p, sol.CutSetIDs(), sol.Probability)
	}
	fmt.Println()

	fmt.Println("Switch points: the probability at which each event enters the MPMCS")
	for _, id := range []string{"x3", "x4", "x6", "x7"} {
		p, found, err := analyzer.SwitchPoint(ctx, id, 1e-6)
		if err != nil {
			return err
		}
		if found {
			fmt.Printf("  %-3s enters the MPMCS at p ≈ %.6f\n", id, p)
		} else {
			fmt.Printf("  %-3s never dominates\n", id)
		}
	}
	fmt.Println()

	fmt.Println("All cut sets with probability ≥ 0.002:")
	sols, err := mpmcs4fta.AnalyzeAbove(ctx, tree, 0.002, mpmcs4fta.Options{})
	if err != nil {
		return err
	}
	for i, sol := range sols {
		fmt.Printf("  %d. %-8s p = %.4g\n", i+1, strings.Join(sol.CutSetIDs(), ","), sol.Probability)
	}
	fmt.Println()

	const trials = 200000
	exact, err := mpmcs4fta.TopEventProbability(tree)
	if err != nil {
		return err
	}
	top, dominance, err := mpmcs4fta.SimulateDominance(tree, base.CutSetIDs(), trials, 42)
	if err != nil {
		return err
	}
	fmt.Printf("Monte-Carlo check (%d trials):\n", trials)
	fmt.Printf("  P(top): simulated %.5f ± %.5f, exact %.5f\n", top.Probability, top.StdErr, exact)
	fmt.Printf("  MPMCS dominance: %.1f%% of failures had both sensors down\n", 100*dominance.Probability)
	return nil
}
