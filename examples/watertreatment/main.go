// Watertreatment analyses a cyber-physical water-treatment plant whose
// fault tree uses K-of-N voting gates — the operator the paper lists as
// future work. It ranks the top cut sets, lists single points of
// failure, and reports the classical importance measures so the MPMCS
// can be read in context.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mpmcs4fta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildPlant() (*mpmcs4fta.Tree, error) {
	t := mpmcs4fta.NewTree("WaterTreatment")
	events := []struct {
		id, desc string
		prob     float64
	}{
		{"ph1", "pH sensor 1 drifts", 0.02},
		{"ph2", "pH sensor 2 drifts", 0.03},
		{"ph3", "pH sensor 3 drifts", 0.025},
		{"plc", "PLC logic corrupted", 0.004},
		{"hmi", "HMI workstation compromised", 0.006},
		{"net", "Control network flooded", 0.008},
		{"dos", "Chlorine dosing pump jams", 0.005},
		{"val", "Dosing valve stuck", 0.007},
		{"pow", "Backup power fails", 0.002},
		{"ops", "Operator misses alarm", 0.05},
	}
	for _, e := range events {
		if err := t.AddEventDesc(e.id, e.desc, e.prob); err != nil {
			return nil, err
		}
	}
	steps := []error{
		// 2-of-3 pH sensors must agree; losing the majority blinds dosing.
		t.AddVoting("sensors", 2, "ph1", "ph2", "ph3"),
		// The control path fails if the PLC is corrupted, or the HMI and
		// network are both compromised (attacker pivots).
		t.AddAnd("cyberPath", "hmi", "net"),
		t.AddOr("control", "plc", "cyberPath"),
		// Dosing hardware fails mechanically or loses power.
		t.AddOr("dosing", "dos", "val", "pow"),
		// Overdosing reaches the public only if the operator also
		// misses the alarm.
		t.AddOr("automatic", "sensors", "control", "dosing"),
		t.AddAnd("top", "automatic", "ops"),
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	t.SetTop("top")
	return t, nil
}

func run() error {
	tree, err := buildPlant()
	if err != nil {
		return err
	}
	ctx := context.Background()

	total, err := mpmcs4fta.CountMinimalCutSets(tree)
	if err != nil {
		return err
	}
	pTop, err := mpmcs4fta.TopEventProbability(tree)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d minimal cut sets, P(top) = %.6g\n\n", tree.Name(), total, pTop)

	ranked, err := mpmcs4fta.AnalyzeTopK(ctx, tree, 5, mpmcs4fta.Options{})
	if err != nil {
		return err
	}
	fmt.Println("Top cut sets by probability:")
	for i, sol := range ranked {
		fmt.Printf("  %d. %-16s p = %.6g\n", i+1, strings.Join(sol.CutSetIDs(), ","), sol.Probability)
	}
	fmt.Println()

	spofs, err := mpmcs4fta.SinglePointsOfFailure(tree)
	if err != nil {
		return err
	}
	fmt.Printf("Single points of failure: %v\n\n", spofs)

	measures, err := mpmcs4fta.ImportanceMeasures(tree)
	if err != nil {
		return err
	}
	fmt.Println("Importance measures (sorted by Birnbaum):")
	fmt.Printf("  %-5s %-10s %-12s %-8s\n", "event", "birnbaum", "criticality", "RAW")
	for _, m := range measures {
		fmt.Printf("  %-5s %-10.4g %-12.4g %-8.4g\n", m.Event, m.Birnbaum, m.Criticality, m.RAW)
	}
	return nil
}
