// Scalability demonstrates the paper's headline claim — "the method is
// able to scale to fault trees with thousands of nodes in seconds" — by
// generating progressively larger random fault trees and timing the
// full MaxSAT pipeline against the BDD baseline.
//
// Flags:
//
//	-sizes 500,1000,2000,5000   tree sizes (basic events)
//	-seed 1                     workload seed
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"mpmcs4fta"
)

func main() {
	sizesFlag := flag.String("sizes", "500,1000,2000,5000", "comma-separated tree sizes")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()
	if err := run(*sizesFlag, *seed); err != nil {
		log.Fatal(err)
	}
}

func run(sizesFlag string, seed int64) error {
	var sizes []int
	for _, tok := range strings.Split(sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return fmt.Errorf("bad size %q", tok)
		}
		sizes = append(sizes, n)
	}

	ctx := context.Background()
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %s\n",
		"events", "nodes", "maxsat", "bdd", "P(MPMCS)", "winner")
	for _, n := range sizes {
		tree, err := mpmcs4fta.RandomTree(mpmcs4fta.RandomTreeConfig{Events: n, Seed: seed})
		if err != nil {
			return err
		}
		stats := tree.Stats()

		start := time.Now()
		sol, err := mpmcs4fta.Analyze(ctx, tree, mpmcs4fta.Options{})
		if err != nil {
			return err
		}
		satTime := time.Since(start)

		start = time.Now()
		bddSol, err := mpmcs4fta.AnalyzeBDD(tree, mpmcs4fta.Options{})
		bddTime := time.Since(start)
		bddCol := bddTime.Round(time.Millisecond).String()
		agree := ""
		if err != nil {
			// Large random trees can exceed the BDD node budget; the
			// MaxSAT pipeline keeps going — that asymmetry is the point.
			bddCol = "blow-up"
		} else if diff := sol.Probability - bddSol.Probability; diff > 1e-9*sol.Probability || -diff > 1e-9*sol.Probability {
			agree = "  DISAGREEMENT with BDD!"
		}
		fmt.Printf("%-8d %-8d %-10s %-10s %-10.3g %s%s\n",
			n, stats.Events+stats.Gates,
			satTime.Round(time.Millisecond), bddCol,
			sol.Probability, sol.Solver, agree)
	}
	return nil
}
