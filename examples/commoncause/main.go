// Commoncause shows why redundancy claims need common-cause analysis:
// a 2-of-3 redundant sensor array looks extremely reliable until a
// beta-factor CCF group couples the channels, at which point the shared
// failure mode dominates both P(top) and the MPMCS.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mpmcs4fta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildArray() (*mpmcs4fta.Tree, error) {
	t := mpmcs4fta.NewTree("SensorArray")
	for _, id := range []string{"sensor-a", "sensor-b", "sensor-c"} {
		if err := t.AddEventDesc(id, "Sensor channel fails", 0.01); err != nil {
			return nil, err
		}
	}
	if err := t.AddEventDesc("logic", "Voter logic fails", 1e-4); err != nil {
		return nil, err
	}
	if err := t.AddVoting("majority", 2, "sensor-a", "sensor-b", "sensor-c"); err != nil {
		return nil, err
	}
	if err := t.AddOr("top", "majority", "logic"); err != nil {
		return nil, err
	}
	t.SetTop("top")
	return t, nil
}

func report(label string, tree *mpmcs4fta.Tree) error {
	ctx := context.Background()
	p, err := mpmcs4fta.TopEventProbability(tree)
	if err != nil {
		return err
	}
	sol, err := mpmcs4fta.Analyze(ctx, tree, mpmcs4fta.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("%-18s P(top) = %-10.3g MPMCS = %-28s p = %.3g\n",
		label, p, strings.Join(sol.CutSetIDs(), ","), sol.Probability)
	return nil
}

func run() error {
	independent, err := buildArray()
	if err != nil {
		return err
	}
	if err := report("independent:", independent); err != nil {
		return err
	}

	for _, beta := range []float64{0.01, 0.05, 0.1} {
		tree, err := buildArray()
		if err != nil {
			return err
		}
		group, err := tree.CCFGroupsFromPrefix("sensor-", beta)
		if err != nil {
			return err
		}
		coupled, err := mpmcs4fta.ApplyCCF(tree, []mpmcs4fta.CCFGroup{group})
		if err != nil {
			return err
		}
		if err := report(fmt.Sprintf("beta = %.2f:", beta), coupled); err != nil {
			return err
		}
	}

	fmt.Println()
	fmt.Println("Reading: with independent channels the most likely failure is a")
	fmt.Println("sensor pair (1e-4). A beta-factor of just 0.05 makes the shared")
	fmt.Println("failure mode 5x more likely than any pair, and P(top) more than")
	fmt.Println("doubles — the redundancy claim silently rested on independence.")
	return nil
}
