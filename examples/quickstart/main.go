// Quickstart: build the paper's Fire Protection System fault tree with
// the public API and compute its Maximum Probability Minimal Cut Set.
//
// Expected output: MPMCS {x1, x2} with probability 0.02 — the sensors
// are individually unreliable enough that their joint failure is the
// most likely way the system fails, despite two single points of
// failure existing elsewhere in the tree.
package main

import (
	"context"
	"fmt"
	"log"

	"mpmcs4fta"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The tree can also be loaded from JSON or the text format; here we
	// build Fig. 1 of the paper by hand to show the builder API.
	tree := mpmcs4fta.NewTree("FPS")
	events := []struct {
		id   string
		desc string
		prob float64
	}{
		{"x1", "Smoke sensor 1 fails", 0.2},
		{"x2", "Smoke sensor 2 fails", 0.1},
		{"x3", "No water supply", 0.001},
		{"x4", "Sprinkler nozzles blocked", 0.002},
		{"x5", "Automatic trigger fails", 0.05},
		{"x6", "Communication channel fails", 0.1},
		{"x7", "DDoS attack on control channel", 0.05},
	}
	for _, e := range events {
		if err := tree.AddEventDesc(e.id, e.desc, e.prob); err != nil {
			return err
		}
	}
	steps := []error{
		tree.AddAnd("detection", "x1", "x2"),
		tree.AddOr("remote", "x6", "x7"),
		tree.AddAnd("trigger", "x5", "remote"),
		tree.AddOr("suppression", "x3", "x4", "trigger"),
		tree.AddOr("top", "detection", "suppression"),
	}
	for _, err := range steps {
		if err != nil {
			return err
		}
	}
	tree.SetTop("top")

	sol, err := mpmcs4fta.Analyze(context.Background(), tree, mpmcs4fta.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("Fault tree: %s (%d events, %d gates)\n", sol.Tree, sol.Stats.Events, sol.Stats.Gates)
	fmt.Printf("MPMCS: %v\n", sol.CutSetIDs())
	fmt.Printf("Joint probability: %.6g\n", sol.Probability)
	fmt.Printf("Solved by: %s in %.3f ms\n", sol.Solver, sol.ElapsedMS)
	for _, e := range sol.MPMCS {
		fmt.Printf("  %-3s p=%-6g w=%.5f  %s\n", e.ID, e.Prob, e.Weight, e.Description)
	}
	return nil
}
