package mpmcs4fta_test

import (
	"context"
	"fmt"
	"log"

	"mpmcs4fta"
)

// The paper's worked example: building Fig. 1 and computing the MPMCS.
func ExampleAnalyze() {
	tree := mpmcs4fta.ExampleFPS()
	sol, err := mpmcs4fta.Analyze(context.Background(), tree, mpmcs4fta.Options{Sequential: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MPMCS:", sol.CutSetIDs())
	fmt.Printf("probability: %.6g\n", sol.Probability)
	// Output:
	// MPMCS: [x1 x2]
	// probability: 0.02
}

// Ranking every minimal cut set of the FPS tree by probability.
func ExampleAnalyzeTopK() {
	sols, err := mpmcs4fta.AnalyzeTopK(context.Background(), mpmcs4fta.ExampleFPS(), 5,
		mpmcs4fta.Options{Sequential: true})
	if err != nil {
		log.Fatal(err)
	}
	for i, sol := range sols {
		fmt.Printf("%d. %v %.6g\n", i+1, sol.CutSetIDs(), sol.Probability)
	}
	// Output:
	// 1. [x1 x2] 0.02
	// 2. [x5 x6] 0.005
	// 3. [x5 x7] 0.0025
	// 4. [x4] 0.002
	// 5. [x3] 0.001
}

// The Step-3 weight transform reproduces the paper's Table I.
func ExampleBuildSteps() {
	steps, err := mpmcs4fta.BuildSteps(mpmcs4fta.ExampleFPS(), mpmcs4fta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range steps.Weights[:3] {
		fmt.Printf("%s p=%g w=%.5f\n", w.ID, w.Prob, w.Weight)
	}
	// Output:
	// x1 p=0.2 w=1.60944
	// x2 p=0.1 w=2.30259
	// x3 p=0.001 w=6.90776
}

// Qualitative analysis: all minimal cut sets and single points of
// failure.
func ExampleMinimalCutSets() {
	tree := mpmcs4fta.ExampleFPS()
	sets, err := mpmcs4fta.MinimalCutSets(tree)
	if err != nil {
		log.Fatal(err)
	}
	spofs, err := mpmcs4fta.SinglePointsOfFailure(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cut sets:", len(sets))
	fmt.Println("SPOFs:", spofs)
	// Output:
	// cut sets: 5
	// SPOFs: [x3 x4]
}

// Exact quantification through three independent engines.
func ExampleTopEventProbability() {
	tree := mpmcs4fta.ExampleFPS()
	viaBDD, err := mpmcs4fta.TopEventProbability(tree)
	if err != nil {
		log.Fatal(err)
	}
	viaModular, err := mpmcs4fta.ModularProbability(tree)
	if err != nil {
		log.Fatal(err)
	}
	viaBottomUp, err := mpmcs4fta.BottomUpProbability(tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BDD:       %.7f\n", viaBDD)
	fmt.Printf("modular:   %.7f\n", viaModular)
	fmt.Printf("bottom-up: %.7f\n", viaBottomUp)
	// Output:
	// BDD:       0.0300217
	// modular:   0.0300217
	// bottom-up: 0.0300217
}

// What-if exploration with a cached analyzer: raising the DDoS
// probability flips the MPMCS.
func ExampleNewAnalyzer() {
	analyzer, err := mpmcs4fta.NewAnalyzer(mpmcs4fta.ExampleFPS(),
		mpmcs4fta.Options{Sequential: true})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := analyzer.Analyze(context.Background(), map[string]float64{"x7": 0.9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MPMCS with p(x7)=0.9:", sol.CutSetIDs())
	// Output:
	// MPMCS with p(x7)=0.9: [x5 x7]
}
