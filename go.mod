module mpmcs4fta

go 1.22
