package mpmcs4fta

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusLoadsAndAnalyzes drives every tree in testdata/ through both
// loaders and the full pipeline, cross-checking MaxSAT against the BDD
// baseline — the corpus doubles as an integration regression suite and
// as documentation of the interchange formats.
func TestCorpusLoadsAndAnalyzes(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 5 {
		t.Fatalf("corpus too small: %v", matches)
	}
	ctx := context.Background()
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tree, err := LoadTreeJSON(f)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := Analyze(ctx, tree, Options{Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Probability <= 0 || sol.Probability > 1 {
				t.Errorf("P(MPMCS) = %v", sol.Probability)
			}
			bddSol, err := AnalyzeBDD(tree, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sol.Probability-bddSol.Probability) > 1e-9*sol.Probability {
				t.Errorf("MaxSAT %v vs BDD %v", sol.Probability, bddSol.Probability)
			}
		})
	}
}

// TestCorpusTextJSONAgree loads each tree in both formats and checks
// they describe the same structure.
func TestCorpusTextJSONAgree(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, txtPath := range matches {
		txtPath := txtPath
		t.Run(filepath.Base(txtPath), func(t *testing.T) {
			jsonPath := strings.TrimSuffix(txtPath, ".txt") + ".json"
			tf, err := os.Open(txtPath)
			if err != nil {
				t.Fatal(err)
			}
			defer tf.Close()
			jf, err := os.Open(jsonPath)
			if err != nil {
				t.Fatal(err)
			}
			defer jf.Close()

			fromText, err := LoadTreeText(tf)
			if err != nil {
				t.Fatal(err)
			}
			fromJSON, err := LoadTreeJSON(jf)
			if err != nil {
				t.Fatal(err)
			}
			if fromText.NumEvents() != fromJSON.NumEvents() || fromText.NumGates() != fromJSON.NumGates() {
				t.Fatalf("formats disagree: %d/%d events, %d/%d gates",
					fromText.NumEvents(), fromJSON.NumEvents(),
					fromText.NumGates(), fromJSON.NumGates())
			}
			for _, e := range fromJSON.Events() {
				other := fromText.Event(e.ID)
				if other == nil || other.Prob != e.Prob {
					t.Errorf("event %s differs between formats", e.ID)
				}
			}
			pText, err := TopEventProbability(fromText)
			if err != nil {
				t.Fatal(err)
			}
			pJSON, err := TopEventProbability(fromJSON)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pText-pJSON) > 1e-12 {
				t.Errorf("P(top) differs: %v vs %v", pText, pJSON)
			}
		})
	}
}

// TestCorpusKnownAnswers pins the headline numbers for the named trees
// so regressions in any layer surface immediately.
func TestCorpusKnownAnswers(t *testing.T) {
	tests := []struct {
		file      string
		mpmcs     []string
		prob      float64
		tolerance float64
	}{
		{"fps.json", []string{"x1", "x2"}, 0.02, 1e-12},
		{"pressuretank.json", []string{"k2"}, 3e-5, 1e-12},
		{"redundantscada.json", []string{"sw"}, 0.003, 1e-12},
		{"railwaycrossing.json", []string{"bm", "dv"}, 0.005 * 0.05, 1e-15},
	}
	ctx := context.Background()
	for _, tt := range tests {
		t.Run(tt.file, func(t *testing.T) {
			f, err := os.Open(filepath.Join("testdata", tt.file))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			tree, err := LoadTreeJSON(f)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := Analyze(ctx, tree, Options{Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			got := sol.CutSetIDs()
			if len(got) != len(tt.mpmcs) {
				t.Fatalf("MPMCS = %v, want %v", got, tt.mpmcs)
			}
			for i := range got {
				if got[i] != tt.mpmcs[i] {
					t.Fatalf("MPMCS = %v, want %v", got, tt.mpmcs)
				}
			}
			if math.Abs(sol.Probability-tt.prob) > tt.tolerance {
				t.Errorf("probability = %v, want %v", sol.Probability, tt.prob)
			}
		})
	}
}
