package mpmcs4fta

// Benchmarks regenerating the paper's tables and figures — one
// testing.B target per experiment in DESIGN.md (E1–E9). Run with
//
//	go test -bench=. -benchmem
//
// The cmd/ftbench binary prints the same series as human-readable
// tables; these targets give the per-iteration timings.

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
	"mpmcs4fta/internal/sat"
)

// BenchmarkE1FPSExample measures the end-to-end pipeline on the paper's
// Fig. 1 tree (Experiment E1).
func BenchmarkE1FPSExample(b *testing.B) {
	ctx := context.Background()
	tree := ExampleFPS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := Analyze(ctx, tree, Options{Sequential: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Probability < 0.0199 || sol.Probability > 0.0201 {
			b.Fatalf("wrong answer: %v", sol.Probability)
		}
	}
}

// BenchmarkE2LogTransform measures Steps 1–4 (Table I construction
// included) without solving (Experiment E2).
func BenchmarkE2LogTransform(b *testing.B) {
	tree := ExampleFPS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		steps, err := BuildSteps(tree, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(steps.Weights) != 7 {
			b.Fatal("bad weights")
		}
	}
}

// BenchmarkE3JSONSolution measures producing the Fig. 2 JSON document
// (Experiment E3).
func BenchmarkE3JSONSolution(b *testing.B) {
	ctx := context.Background()
	tree := ExampleFPS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sol, err := Analyze(ctx, tree, Options{Sequential: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := jsonMarshal(sol); err != nil {
			b.Fatal(err)
		}
	}
}

func jsonMarshal(sol *Solution) ([]byte, error) {
	return json.Marshal(sol)
}

// BenchmarkE4Scalability measures the full pipeline across tree sizes —
// the paper's "thousands of nodes in seconds" series (Experiment E4).
func BenchmarkE4Scalability(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{50, 100, 500, 1000, 2000, 5000} {
		tree, err := gen.Random(gen.Config{Events: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("events=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(ctx, tree, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5Portfolio measures each engine alone against the parallel
// portfolio on the same instance (Experiment E5, the Step-5 ablation).
func BenchmarkE5Portfolio(b *testing.B) {
	ctx := context.Background()
	tree, err := gen.Random(gen.Config{Events: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	steps, err := core.BuildSteps(tree, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range portfolio.DefaultEngines() {
		b.Run("engine="+engine.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Solver.Solve(ctx, steps.Instance.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("engine=portfolio", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := portfolio.Solve(ctx, steps.Instance, portfolio.DefaultEngines()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE6BDDBaseline compares the MaxSAT pipeline against the BDD
// engine on the same trees (Experiment E6, the paper's future-work
// comparison).
func BenchmarkE6BDDBaseline(b *testing.B) {
	ctx := context.Background()
	// Sizes stop at 200: random trees beyond that routinely exceed the
	// BDD node budget (see EXPERIMENTS.md, E6), while MaxSAT continues
	// into the thousands (BenchmarkE4Scalability).
	for _, n := range []int{50, 100, 200} {
		tree, err := gen.Random(gen.Config{Events: n, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("maxsat/events=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(ctx, tree, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("bdd/events=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := AnalyzeBDD(tree, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7VotingGates compares the native K-of-N threshold encoding
// against AND/OR expansion (Experiment E7, the paper's second
// future-work item).
func BenchmarkE7VotingGates(b *testing.B) {
	ctx := context.Background()
	tree, err := gen.Random(gen.Config{Events: 300, Seed: 1, VotingFrac: 0.4, MaxFanIn: 6})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("native", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Analyze(ctx, tree, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("expanded-shannon", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, err := expandedInstance(tree, boolexpr.ExpandAtLeast)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := portfolio.Solve(ctx, inst, portfolio.DefaultEngines()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("expanded-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, err := expandedInstance(tree, boolexpr.ExpandAtLeastNaive)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := portfolio.Solve(ctx, inst, portfolio.DefaultEngines()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// expandedInstance builds the WPMS instance with voting gates expanded
// to AND/OR before encoding, mirroring ftbench's E7.
func expandedInstance(tree *Tree, expand func(boolexpr.Expr) boolexpr.Expr) (*cnf.WCNF, error) {
	f, err := tree.Formula()
	if err != nil {
		return nil, err
	}
	expanded := boolexpr.Simplify(expand(boolexpr.Not{X: boolexpr.Dual(f)}))
	events := tree.Events()
	order := make([]string, len(events))
	for i, e := range events {
		order[i] = e.ID
	}
	enc, err := cnf.Tseitin(expanded, cnf.TseitinOptions{VarOrder: order})
	if err != nil {
		return nil, err
	}
	inst := &cnf.WCNF{NumVars: enc.Formula.NumVars}
	for _, clause := range enc.Formula.Clauses {
		inst.AddHard(clause...)
	}
	for _, w := range core.LogWeights(events, core.DefaultScale) {
		if w.Hard {
			inst.AddHard(cnf.Lit(enc.VarOf[w.ID]))
		} else if w.Scaled > 0 {
			inst.AddSoft(w.Scaled, cnf.Lit(enc.VarOf[w.ID]))
		}
	}
	return inst, nil
}

// BenchmarkE8Encodings compares full Tseitin with Plaisted-Greenbaum
// (Experiment E8, the Step-2 ablation).
func BenchmarkE8Encodings(b *testing.B) {
	ctx := context.Background()
	tree, err := gen.Random(gen.Config{Events: 1000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, pg := range []bool{false, true} {
		name := "full"
		if pg {
			name = "plaisted-greenbaum"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(ctx, tree, Options{PlaistedGreenbaum: pg}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9TopK measures ranked enumeration of the ten most probable
// cut sets (Experiment E9).
func BenchmarkE9TopK(b *testing.B) {
	ctx := context.Background()
	tree, err := gen.Random(gen.Config{Events: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sols, err := AnalyzeTopK(ctx, tree, 10, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(sols) == 0 {
			b.Fatal("no solutions")
		}
	}
}

// BenchmarkSATSolver measures raw CDCL throughput on a hard structured
// instance (pigeonhole), isolating the substrate from the pipeline.
func BenchmarkSATSolver(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sat.New(0, sat.Options{})
		addPigeonhole(s, 7, 6)
		status, err := s.Solve(ctx)
		if err != nil || status != sat.Unsat {
			b.Fatalf("%v, %v", status, err)
		}
	}
}

func addPigeonhole(s *sat.Solver, pigeons, holes int) {
	v := func(i, j int) cnf.Lit { return cnf.Lit(i*holes + j + 1) }
	for i := 0; i < pigeons; i++ {
		clause := make([]cnf.Lit, holes)
		for j := 0; j < holes; j++ {
			clause[j] = v(i, j)
		}
		s.AddClause(clause...)
	}
	for j := 0; j < holes; j++ {
		for i1 := 0; i1 < pigeons; i1++ {
			for i2 := i1 + 1; i2 < pigeons; i2++ {
				s.AddClause(-v(i1, j), -v(i2, j))
			}
		}
	}
}

// BenchmarkMaxSATEngines measures each MaxSAT algorithm on a common
// small MPMCS instance. The size is deliberately modest: LinearSU's
// model-improving search degrades sharply on fine-grained weights (see
// EXPERIMENTS.md E5), and a benchmark must terminate for every engine.
func BenchmarkMaxSATEngines(b *testing.B) {
	ctx := context.Background()
	tree, err := gen.Random(gen.Config{Events: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	steps, err := core.BuildSteps(tree, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	engines := []maxsat.Solver{&maxsat.WMSU1{}, &maxsat.LinearSU{}, &maxsat.BranchBound{}}
	for _, engine := range engines {
		b.Run(engine.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Solve(ctx, steps.Instance.Clone()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
