package ft

// Native Go fuzz targets for the two fault-tree input formats. Both
// readers validate what they accept, so the fuzz invariant is twofold:
// anything accepted is a valid tree (Validate passes, top reachable),
// and the writers are exact inverses — write → read → write is
// byte-stable. Seed corpora live under testdata/fuzz/<target>/.
//
//	go test -fuzz=FuzzTreeText -fuzztime=30s ./internal/ft

import (
	"bytes"
	"testing"
)

func FuzzTreeJSON(f *testing.F) {
	f.Add([]byte(`{"name":"demo","top":"g","events":[{"id":"a","probability":0.1},{"id":"b","probability":0.2}],"gates":[{"id":"g","type":"and","inputs":["a","b"]}]}`))
	f.Add([]byte(`{"top":"g","events":[{"id":"a","probability":0.5},{"id":"b","probability":0.5},{"id":"c","probability":0.5}],"gates":[{"id":"g","type":"voting","k":2,"inputs":["a","b","c"]}]}`))
	f.Add([]byte(`{"top":"missing","events":[],"gates":[]}`))
	f.Add([]byte(`{"top":"g","events":[{"id":"a","probability":2}],"gates":[{"id":"g","type":"and","inputs":["a"]}]}`))
	f.Add([]byte(`{"top":"a","events":[{"id":"a","probability":0.1}],"gates":[{"id":"a","type":"or","inputs":["a"]}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("reader accepted an invalid tree: %v", err)
		}
		first, err := tree.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal accepted tree: %v", err)
		}
		again, err := ReadJSON(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("re-read own output: %v\n%s", err, first)
		}
		second, err := again.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip changed the tree:\nbefore %s\nafter  %s", first, second)
		}
	})
}

func FuzzTreeText(f *testing.F) {
	f.Add([]byte("tree demo\ntop g\nevent a 0.1 first event\nevent b 0.2\ngate g and a b\n"))
	f.Add([]byte("# voting\ntop g\nevent a 0.5\nevent b 0.5\nevent c 0.5\ngate g 2of3 a b c\n"))
	f.Add([]byte("top g\nevent a 1e-6\nevent b 0.3\ngate h or a b\ngate g and h a\n"))
	f.Add([]byte("event a nan\n"))
	f.Add([]byte("gate g 2of9 a b\n"))
	f.Add([]byte("top g\ngate g and g\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("reader accepted an invalid tree: %v", err)
		}
		var first bytes.Buffer
		if err := tree.WriteText(&first); err != nil {
			t.Fatalf("write accepted tree: %v", err)
		}
		again, err := ReadText(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := again.WriteText(&second); err != nil {
			t.Fatalf("re-write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round trip changed the tree:\nbefore %s\nafter  %s", first.Bytes(), second.Bytes())
		}
	})
}
