package ft

import (
	"fmt"

	"mpmcs4fta/internal/boolexpr"
)

// Formula compiles the tree into its structure function f(t): a Boolean
// expression over the basic-event ids that is true exactly when the top
// event occurs. Shared subtrees are duplicated in the expression (the
// Tseitin encoder in internal/cnf re-shares them via definition caching).
func (t *Tree) Formula() (boolexpr.Expr, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	memo := make(map[string]boolexpr.Expr, len(t.gates))
	return t.nodeFormula(t.top, memo), nil
}

func (t *Tree) nodeFormula(id string, memo map[string]boolexpr.Expr) boolexpr.Expr {
	if _, ok := t.events[id]; ok {
		return boolexpr.V(id)
	}
	if e, ok := memo[id]; ok {
		return e
	}
	g := t.gates[id]
	xs := make([]boolexpr.Expr, len(g.Inputs))
	for i, in := range g.Inputs {
		xs[i] = t.nodeFormula(in, memo)
	}
	var e boolexpr.Expr
	switch g.Type {
	case GateAnd:
		e = boolexpr.And{Xs: xs}
	case GateOr:
		e = boolexpr.Or{Xs: xs}
	case GateVoting:
		e = boolexpr.AtLeast{K: g.K, Xs: xs}
	default:
		panic(fmt.Sprintf("ft: gate %q has invalid type %d", id, int(g.Type)))
	}
	memo[id] = e
	return e
}

// SuccessFormula compiles the tree's success function X(t) = ¬f(t),
// i.e. the paper's Step-1 Success Tree, in the renamed y-variable form
// the paper calls Y(t): gates flipped, variables positive, with
// y_i = ¬x_i. Evaluating the result under y equals evaluating ¬f under
// x = ¬y.
func (t *Tree) SuccessFormula() (boolexpr.Expr, error) {
	f, err := t.Formula()
	if err != nil {
		return nil, err
	}
	return boolexpr.Dual(f), nil
}
