package ft

import (
	"reflect"
	"testing"
)

func TestModulesPureTree(t *testing.T) {
	// In a strictly tree-shaped structure every gate is a module.
	tree := buildFPS(t)
	modules, err := tree.Modules()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"detection", "remote", "suppression", "top", "trigger"}
	if !reflect.DeepEqual(modules, want) {
		t.Errorf("Modules = %v, want %v", modules, want)
	}
}

func TestModulesSharedEvent(t *testing.T) {
	// Event s is shared between two gates: neither gate is a module,
	// but the top still is.
	tree := New("shared")
	for _, id := range []string{"a", "b", "s"} {
		if err := tree.AddEvent(id, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddAnd("left", "a", "s"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("right", "b", "s"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("top", "left", "right"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	modules, err := tree.Modules()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(modules, []string{"top"}) {
		t.Errorf("Modules = %v, want [top]", modules)
	}
}

func TestModulesSharedGateInsideModule(t *testing.T) {
	// A shared gate g under a single enclosing gate "mid": mid is a
	// module (it contains both parents of g), the parents are not.
	tree := New("nested")
	for _, id := range []string{"a", "b", "c"} {
		if err := tree.AddEvent(id, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddOr("g", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("p1", "g", "c"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("p2", "g", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("mid", "p1", "p2"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("d", 0.2); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("top", "mid", "d"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	modules, err := tree.Modules()
	if err != nil {
		t.Fatal(err)
	}
	// p2 shares "a" with g's subtree but contains g... p1 shares c?
	// g is shared by p1 and p2 → not a module unless both parents are
	// inside its subtree (they are not). p1 contains g whose other
	// parent p2 is outside → not a module. mid contains g, p1, p2, a,
	// b, c entirely → module. top always.
	want := []string{"mid", "top"}
	if !reflect.DeepEqual(modules, want) {
		t.Errorf("Modules = %v, want %v", modules, want)
	}
}

func TestModulesInvalidTree(t *testing.T) {
	if _, err := New("bad").Modules(); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestParents(t *testing.T) {
	tree := buildFPS(t)
	parents, err := tree.Parents()
	if err != nil {
		t.Fatal(err)
	}
	if got := parents["x1"]; !reflect.DeepEqual(got, []string{"detection"}) {
		t.Errorf("parents(x1) = %v", got)
	}
	if got := parents["top"]; len(got) != 0 {
		t.Errorf("parents(top) = %v, want empty", got)
	}
	if got := parents["trigger"]; !reflect.DeepEqual(got, []string{"suppression"}) {
		t.Errorf("parents(trigger) = %v", got)
	}
}

func TestIsTreeShaped(t *testing.T) {
	tree := buildFPS(t)
	shaped, err := tree.IsTreeShaped()
	if err != nil || !shaped {
		t.Errorf("FPS should be tree shaped: %v, %v", shaped, err)
	}

	dag := New("dag")
	for _, id := range []string{"a", "b"} {
		if err := dag.AddEvent(id, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := dag.AddAnd("g1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := dag.AddAnd("g2", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := dag.AddOr("top", "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	dag.SetTop("top")
	shaped, err = dag.IsTreeShaped()
	if err != nil || shaped {
		t.Errorf("shared events should not be tree shaped: %v, %v", shaped, err)
	}
}
