package ft

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// treeJSON is the on-disk JSON representation of a fault tree, mirroring
// the input format of the MPMCS4FTA tool: a flat node list plus the top
// event id.
type treeJSON struct {
	Name   string      `json:"name,omitempty"`
	Top    string      `json:"top"`
	Events []eventJSON `json:"events"`
	Gates  []gateJSON  `json:"gates"`
}

type eventJSON struct {
	ID          string  `json:"id"`
	Description string  `json:"description,omitempty"`
	Probability float64 `json:"probability"`
}

type gateJSON struct {
	ID          string   `json:"id"`
	Description string   `json:"description,omitempty"`
	Type        string   `json:"type"`
	K           int      `json:"k,omitempty"`
	Inputs      []string `json:"inputs"`
}

// MarshalJSON implements json.Marshaler with deterministic node order.
func (t *Tree) MarshalJSON() ([]byte, error) {
	doc := treeJSON{Name: t.name, Top: t.top}
	for _, e := range t.Events() {
		doc.Events = append(doc.Events, eventJSON{
			ID:          e.ID,
			Description: e.Description,
			Probability: e.Prob,
		})
	}
	for _, g := range t.Gates() {
		doc.Gates = append(doc.Gates, gateJSON{
			ID:          g.ID,
			Description: g.Description,
			Type:        gateTypeName(g.Type),
			K:           g.K,
			Inputs:      g.Inputs,
		})
	}
	sort.Slice(doc.Events, func(i, j int) bool { return doc.Events[i].ID < doc.Events[j].ID })
	sort.Slice(doc.Gates, func(i, j int) bool { return doc.Gates[i].ID < doc.Gates[j].ID })
	return json.Marshal(doc)
}

// UnmarshalJSON implements json.Unmarshaler. The resulting tree is
// validated structurally (duplicate ids, probability ranges, thresholds)
// but full Validate is left to the caller so partially built documents
// can still be inspected.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var doc treeJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("ft: decode tree: %w", err)
	}
	rebuilt := New(doc.Name)
	rebuilt.SetTop(doc.Top)
	for _, e := range doc.Events {
		if err := rebuilt.AddEventDesc(e.ID, e.Description, e.Probability); err != nil {
			return err
		}
	}
	for _, g := range doc.Gates {
		typ, err := parseGateType(g.Type)
		if err != nil {
			return fmt.Errorf("ft: gate %q: %w", g.ID, err)
		}
		if err := rebuilt.AddGate(g.ID, g.Description, typ, g.K, g.Inputs...); err != nil {
			return err
		}
	}
	*t = *rebuilt
	return nil
}

// WriteJSON writes the tree as indented JSON.
func (t *Tree) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("ft: encode tree: %w", err)
	}
	return nil
}

// ReadJSON parses a fault tree from JSON and validates it.
func ReadJSON(r io.Reader) (*Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ft: read tree: %w", err)
	}
	tree := New("")
	if err := json.Unmarshal(data, tree); err != nil {
		return nil, err
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	return tree, nil
}

func gateTypeName(typ GateType) string {
	switch typ {
	case GateAnd:
		return "and"
	case GateOr:
		return "or"
	case GateVoting:
		return "voting"
	default:
		return "unknown"
	}
}

func parseGateType(s string) (GateType, error) {
	switch s {
	case "and", "AND":
		return GateAnd, nil
	case "or", "OR":
		return GateOr, nil
	case "voting", "VOTING", "kofn", "atleast":
		return GateVoting, nil
	default:
		return 0, fmt.Errorf("unknown gate type %q", s)
	}
}
