package ft

import (
	"math"
	"testing"
)

// buildRedundantPair returns a tree where two redundant pumps must both
// fail: the canonical CCF showcase (an AND of near-identical parts).
func buildRedundantPair(t *testing.T) *Tree {
	t.Helper()
	tree := New("pumps")
	if err := tree.AddEvent("pump-a", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("pump-b", 0.01); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "pump-a", "pump-b"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	return tree
}

func TestApplyCCFStructure(t *testing.T) {
	tree := buildRedundantPair(t)
	group := CCFGroup{ID: "pumps", Members: []string{"pump-a", "pump-b"}, Beta: 0.1}
	out, err := tree.ApplyCCF([]CCFGroup{group})
	if err != nil {
		t.Fatal(err)
	}
	// The original tree is untouched.
	if tree.Event("pump-a") == nil || tree.HasNode("ccf-pumps") {
		t.Error("ApplyCCF mutated the original tree")
	}
	// The transformed tree: pump-a is now an OR gate over the
	// independent residual and the shared event.
	g := out.Gate("pump-a")
	if g == nil || g.Type != GateOr {
		t.Fatalf("pump-a not rewired: %+v", g)
	}
	ccf := out.Event("ccf-pumps")
	if ccf == nil {
		t.Fatal("common-cause event missing")
	}
	if math.Abs(ccf.Prob-0.1*0.01) > 1e-15 {
		t.Errorf("ccf probability = %v, want β·p̄ = 0.001", ccf.Prob)
	}
	indep := out.Event("pump-a-indep")
	if indep == nil || math.Abs(indep.Prob-0.009) > 1e-15 {
		t.Errorf("independent residual = %+v, want p(1−β) = 0.009", indep)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyCCFSingleEventTriggersViaCommonCause(t *testing.T) {
	tree := buildRedundantPair(t)
	out, err := tree.ApplyCCF([]CCFGroup{{ID: "p", Members: []string{"pump-a", "pump-b"}, Beta: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	// The shared event alone now fails the AND of both pumps.
	got, err := out.Eval(map[string]bool{"ccf-p": true})
	if err != nil || !got {
		t.Errorf("common cause alone should fail both pumps: %v, %v", got, err)
	}
	// Independent residuals must still require both.
	got, err = out.Eval(map[string]bool{"pump-a-indep": true})
	if err != nil || got {
		t.Errorf("one independent failure should not trip the top: %v, %v", got, err)
	}
	got, err = out.Eval(map[string]bool{"pump-a-indep": true, "pump-b-indep": true})
	if err != nil || !got {
		t.Errorf("both independent failures should trip the top: %v, %v", got, err)
	}
}

func TestApplyCCFErrors(t *testing.T) {
	tree := buildRedundantPair(t)
	tests := []struct {
		name  string
		group CCFGroup
	}{
		{"no id", CCFGroup{Members: []string{"pump-a", "pump-b"}, Beta: 0.1}},
		{"one member", CCFGroup{ID: "g", Members: []string{"pump-a"}, Beta: 0.1}},
		{"beta zero", CCFGroup{ID: "g", Members: []string{"pump-a", "pump-b"}, Beta: 0}},
		{"beta one", CCFGroup{ID: "g", Members: []string{"pump-a", "pump-b"}, Beta: 1}},
		{"unknown member", CCFGroup{ID: "g", Members: []string{"pump-a", "ghost"}, Beta: 0.1}},
		{"gate member", CCFGroup{ID: "g", Members: []string{"pump-a", "top"}, Beta: 0.1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tree.ApplyCCF([]CCFGroup{tt.group}); err == nil {
				t.Error("expected error")
			}
		})
	}

	// Overlapping groups are rejected.
	groups := []CCFGroup{
		{ID: "g1", Members: []string{"pump-a", "pump-b"}, Beta: 0.1},
		{ID: "g2", Members: []string{"pump-b", "pump-a"}, Beta: 0.1},
	}
	if _, err := tree.ApplyCCF(groups); err == nil {
		t.Error("overlapping groups accepted")
	}
}

func TestCCFGroupsFromPrefix(t *testing.T) {
	tree := buildRedundantPair(t)
	group, err := tree.CCFGroupsFromPrefix("pump-", 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(group.Members) != 2 || group.Members[0] != "pump-a" || group.Beta != 0.15 {
		t.Errorf("group = %+v", group)
	}
	if _, err := tree.CCFGroupsFromPrefix("zzz", 0.1); err == nil {
		t.Error("empty prefix match accepted")
	}
}
