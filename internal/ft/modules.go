package ft

import "sort"

// Modules returns the ids of gates that are modules: gates whose entire
// subtree (gates and events alike) is reachable from the top only
// through them. Modules are independent subsystems — the classical
// prerequisite for divide-and-conquer fault-tree analysis (Dutuit &
// Rauzy). The top gate is always a module. Nodes unreachable from the
// top are ignored. The tree must be valid.
func (t *Tree) Modules() ([]string, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}

	// Index reachable nodes.
	index := make(map[string]int)
	var orderIDs []string
	var collect func(id string)
	collect = func(id string) {
		if _, seen := index[id]; seen {
			return
		}
		index[id] = len(orderIDs)
		orderIDs = append(orderIDs, id)
		if g, ok := t.gates[id]; ok {
			for _, in := range g.Inputs {
				collect(in)
			}
		}
	}
	collect(t.top)

	// Parent lists over reachable nodes.
	parents := make([][]int, len(orderIDs))
	for id, idx := range index {
		g, ok := t.gates[id]
		if !ok {
			continue
		}
		for _, in := range g.Inputs {
			childIdx := index[in]
			parents[childIdx] = append(parents[childIdx], idx)
		}
	}

	// desc[i] = bitset of reachable nodes in i's subtree (including i).
	words := (len(orderIDs) + 63) / 64
	desc := make([][]uint64, len(orderIDs))
	var fill func(id string) []uint64
	fill = func(id string) []uint64 {
		idx := index[id]
		if desc[idx] != nil {
			return desc[idx]
		}
		set := make([]uint64, words)
		set[idx/64] |= 1 << uint(idx%64)
		desc[idx] = set // placed before recursion; DAG is acyclic so safe
		if g, ok := t.gates[id]; ok {
			for _, in := range g.Inputs {
				child := fill(in)
				for w := range set {
					set[w] |= child[w]
				}
			}
		}
		return set
	}
	fill(t.top)

	contains := func(set []uint64, idx int) bool {
		return set[idx/64]&(1<<uint(idx%64)) != 0
	}

	var modules []string
	for id := range t.gates {
		idx, reachable := index[id]
		if !reachable {
			continue
		}
		isModule := true
		set := desc[idx]
		for childIdx := 0; childIdx < len(orderIDs) && isModule; childIdx++ {
			if childIdx == idx || !contains(set, childIdx) {
				continue
			}
			for _, parent := range parents[childIdx] {
				if !contains(set, parent) {
					isModule = false
					break
				}
			}
		}
		if isModule {
			modules = append(modules, id)
		}
	}
	sort.Strings(modules)
	return modules, nil
}

// Parents returns, for every reachable node, the ids of the gates that
// list it as an input. The top node maps to an empty slice.
func (t *Tree) Parents() (map[string][]string, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := make(map[string][]string)
	var walk func(id string)
	seen := make(map[string]bool)
	walk = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		if _, ok := out[id]; !ok {
			out[id] = nil
		}
		g, ok := t.gates[id]
		if !ok {
			return
		}
		for _, in := range g.Inputs {
			out[in] = append(out[in], id)
			walk(in)
		}
	}
	walk(t.top)
	for id := range out {
		sort.Strings(out[id])
	}
	return out, nil
}

// IsTreeShaped reports whether every reachable node except the top has
// exactly one parent — i.e. the structure is a tree, not a shared DAG.
// Several fast analyses (bottom-up probability) require this.
func (t *Tree) IsTreeShaped() (bool, error) {
	parents, err := t.Parents()
	if err != nil {
		return false, err
	}
	for id, ps := range parents {
		if id == t.top {
			continue
		}
		if len(ps) != 1 {
			return false, nil
		}
	}
	return true, nil
}

// DFSEventOrder returns the basic events in depth-first traversal
// order from the top event — the classical BDD variable-ordering
// heuristic for fault trees (events of one subsystem stay adjacent).
// Events unreachable from the top are appended in insertion order so
// the result always covers every event.
func (t *Tree) DFSEventOrder() []string {
	seen := make(map[string]bool, t.NumEvents())
	order := make([]string, 0, t.NumEvents())
	var walk func(id string)
	walk = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		if g := t.gates[id]; g != nil {
			for _, in := range g.Inputs {
				walk(in)
			}
			return
		}
		if t.events[id] != nil {
			order = append(order, id)
		}
	}
	if t.top != "" {
		walk(t.top)
	}
	for _, e := range t.Events() {
		if !seen[e.ID] {
			order = append(order, e.ID)
		}
	}
	return order
}
