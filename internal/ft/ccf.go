package ft

import (
	"fmt"
	"math"
	"sort"
)

// CCFGroup declares a common-cause failure group under the beta-factor
// model: each member event fails independently with probability
// (1−β)·p, or together with every other member through a shared
// common-cause event of probability β·p̄, where p̄ is the geometric mean
// of the members' probabilities (the usual convention when members are
// near-identical components).
type CCFGroup struct {
	// ID names the group; the injected common-cause event is "ccf-<ID>".
	ID string
	// Members are basic-event ids; at least two are required.
	Members []string
	// Beta is the common-cause fraction in (0,1).
	Beta float64
}

// ApplyCCF returns a new tree with every group's common-cause event
// injected: each member event e is replaced (everywhere it is
// referenced) by an OR gate over the independent residual of e and the
// group's shared event. The original tree is unchanged.
func (t *Tree) ApplyCCF(groups []CCFGroup) (*Tree, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := t.Clone()
	memberGroup := make(map[string]string)
	for _, g := range groups {
		if g.ID == "" {
			return nil, fmt.Errorf("ft: CCF group without id")
		}
		if len(g.Members) < 2 {
			return nil, fmt.Errorf("ft: CCF group %q needs at least 2 members", g.ID)
		}
		if g.Beta <= 0 || g.Beta >= 1 {
			return nil, fmt.Errorf("ft: CCF group %q has beta %v outside (0,1)", g.ID, g.Beta)
		}
		product := 1.0
		for _, id := range g.Members {
			e := out.Event(id)
			if e == nil {
				return nil, fmt.Errorf("ft: CCF group %q member %q is not a basic event", g.ID, id)
			}
			if prev, taken := memberGroup[id]; taken {
				return nil, fmt.Errorf("ft: event %q in CCF groups %q and %q", id, prev, g.ID)
			}
			memberGroup[id] = g.ID
			product *= e.Prob
		}
		geoMean := math.Pow(product, 1/float64(len(g.Members)))

		ccfID := "ccf-" + g.ID
		if err := out.AddEventDesc(ccfID, fmt.Sprintf("Common cause (%s)", g.ID), g.Beta*geoMean); err != nil {
			return nil, err
		}

		// Rewire each member: rename the original event to the
		// independent residual, then install an OR gate under the old
		// id so every existing reference picks up the CCF term.
		for _, id := range g.Members {
			e := out.Event(id)
			indepID := id + "-indep"
			if out.HasNode(indepID) {
				return nil, fmt.Errorf("ft: id %q already taken", indepID)
			}
			if err := out.AddEventDesc(indepID, e.Description, e.Prob*(1-g.Beta)); err != nil {
				return nil, err
			}
			if err := out.replaceEventWithGate(id, GateOr, indepID, ccfID); err != nil {
				return nil, err
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("ft: CCF transformation broke the tree: %w", err)
	}
	return out, nil
}

// replaceEventWithGate removes the event with the given id and installs
// an OR/AND gate under the same id, preserving all references.
func (t *Tree) replaceEventWithGate(id string, typ GateType, inputs ...string) error {
	if t.Event(id) == nil {
		return fmt.Errorf("ft: %q is not a basic event", id)
	}
	delete(t.events, id)
	in := make([]string, len(inputs))
	copy(in, inputs)
	t.gates[id] = &Gate{ID: id, Type: typ, Inputs: in}
	// Insertion order already contains id; the node merely changed kind.
	return nil
}

// CCFGroupsFromPrefix is a convenience that groups events sharing an id
// prefix (e.g. "pump-" matching pump-a, pump-b) into one CCF group.
func (t *Tree) CCFGroupsFromPrefix(prefix string, beta float64) (CCFGroup, error) {
	var members []string
	for _, e := range t.Events() {
		if len(e.ID) >= len(prefix) && e.ID[:len(prefix)] == prefix {
			members = append(members, e.ID)
		}
	}
	sort.Strings(members)
	if len(members) < 2 {
		return CCFGroup{}, fmt.Errorf("ft: prefix %q matches %d events, need at least 2", prefix, len(members))
	}
	return CCFGroup{ID: prefix, Members: members, Beta: beta}, nil
}
