package ft

import (
	"testing"

	"mpmcs4fta/internal/boolexpr"
)

func TestFormulaFPS(t *testing.T) {
	tree := buildFPS(t)
	f, err := tree.Formula()
	if err != nil {
		t.Fatal(err)
	}
	// The structure function must agree with direct tree evaluation on
	// every assignment.
	vars := boolexpr.Vars(f)
	if len(vars) != 7 {
		t.Fatalf("formula has %d vars, want 7", len(vars))
	}
	boolexpr.AllAssignments(vars, func(assign map[string]bool) bool {
		want, err := tree.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Eval(assign); got != want {
			t.Fatalf("formula and tree disagree under %v: %v vs %v", assign, got, want)
		}
		return true
	})
}

func TestFormulaInvalid(t *testing.T) {
	tree := New("t")
	if _, err := tree.Formula(); err == nil {
		t.Error("Formula on invalid tree should fail")
	}
}

func TestFormulaVoting(t *testing.T) {
	tree := New("vote")
	for _, id := range []string{"a", "b", "c"} {
		if err := tree.AddEvent(id, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddVoting("v", 2, "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("v")
	f, err := tree.Formula()
	if err != nil {
		t.Fatal(err)
	}
	want := boolexpr.NewAtLeast(2, boolexpr.V("a"), boolexpr.V("b"), boolexpr.V("c"))
	if !boolexpr.Equal(f, want) {
		t.Errorf("Formula = %v, want %v", f, want)
	}
}

// TestSuccessFormulaDuality verifies X(t) = ¬f(t) under the variable
// renaming y = ¬x, i.e. the paper's Step-1 identity, on the FPS tree.
func TestSuccessFormulaDuality(t *testing.T) {
	tree := buildFPS(t)
	f, err := tree.Formula()
	if err != nil {
		t.Fatal(err)
	}
	y, err := tree.SuccessFormula()
	if err != nil {
		t.Fatal(err)
	}
	vars := boolexpr.Vars(f)
	boolexpr.AllAssignments(vars, func(assign map[string]bool) bool {
		comp := make(map[string]bool, len(vars))
		for _, v := range vars {
			comp[v] = !assign[v]
		}
		if y.Eval(comp) != !f.Eval(assign) {
			t.Fatalf("success formula duality violated under %v", assign)
		}
		return true
	})
}

func TestFormulaSharedSubtreeConsistent(t *testing.T) {
	tree := New("dag")
	for _, id := range []string{"a", "b"} {
		if err := tree.AddEvent(id, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddAnd("shared", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("root", "shared", "shared"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("root")
	f, err := tree.Formula()
	if err != nil {
		t.Fatal(err)
	}
	boolexpr.AllAssignments([]string{"a", "b"}, func(assign map[string]bool) bool {
		want, err := tree.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		if f.Eval(assign) != want {
			t.Fatalf("disagreement under %v", assign)
		}
		return true
	})
}
