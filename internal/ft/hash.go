package ft

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
)

// CanonicalHash returns a content address for the tree's analysis
// semantics: two trees hash equal exactly when every MPMCS-style query
// (Analyze, AnalyzeTopK, the quantitative measures) is guaranteed the
// same answer on both. It is the cache key of the mpmcsd solution
// cache, so the invariances are deliberately conservative:
//
//   - Gate ids and descriptions are normalized away: internal nodes are
//     identified purely by their position in the canonical structure,
//     so renaming a gate does not change the hash. (Gate ids never
//     appear in a Solution document.)
//   - Child order is irrelevant: a gate's inputs are hashed as a sorted
//     multiset, so permuting inputs does not change the hash.
//   - Only the sub-DAG reachable from the top event contributes:
//     disconnected islands cannot influence any analysis.
//   - The tree's name is excluded — it is presentation, not semantics.
//
// Everything that can influence an answer document is included: the
// gate types and voting thresholds along each path, and for every
// reachable basic event its id, description and the exact bit pattern
// of its probability (Solution documents carry all three).
//
// The hash is a SHA-256 Merkle digest over the reachable DAG, so
// shared subtrees are hashed once and the cost is linear in the number
// of reachable nodes. The returned string is "sha256:<hex>". The tree
// must validate.
func CanonicalHash(t *Tree) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	memo := make(map[string][sha256.Size]byte, len(t.gates)+len(t.events))
	root := t.hashNode(t.top, memo)
	sum := sha256.Sum256(append([]byte("mpmcs4fta-tree-v1\x00"), root[:]...))
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// hashNode computes the Merkle digest of one node. Events hash their
// identity and probability bits; gates hash their type, threshold and
// the sorted child digests. The tree is validated, so every id resolves
// and the recursion terminates (no cycles).
func (t *Tree) hashNode(id string, memo map[string][sha256.Size]byte) [sha256.Size]byte {
	if sum, ok := memo[id]; ok {
		return sum
	}
	h := sha256.New()
	if e, ok := t.events[id]; ok {
		h.Write([]byte("event\x00"))
		writeLenPrefixed(h, e.ID)
		writeLenPrefixed(h, e.Description)
		var bits [8]byte
		binary.BigEndian.PutUint64(bits[:], probBits(e.Prob))
		h.Write(bits[:])
	} else {
		g := t.gates[id]
		fmt.Fprintf(h, "gate\x00%d\x00%d\x00%d\x00", int(g.Type), g.K, len(g.Inputs))
		children := make([][sha256.Size]byte, len(g.Inputs))
		for i, in := range g.Inputs {
			children[i] = t.hashNode(in, memo)
		}
		sort.Slice(children, func(i, j int) bool {
			return string(children[i][:]) < string(children[j][:])
		})
		for _, c := range children {
			h.Write(c[:])
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	memo[id] = sum
	return sum
}

// writeLenPrefixed writes a length-prefixed string so concatenated
// fields cannot alias each other ("ab"+"c" vs "a"+"bc").
func writeLenPrefixed(h interface{ Write([]byte) (int, error) }, s string) {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

// probBits canonicalizes a probability to its IEEE-754 bit pattern.
// Validation rejects NaN and values outside [0,1]; negative zero is
// folded into +0 so the two representations of p=0 hash equal.
func probBits(p float64) uint64 {
	bits := math.Float64bits(p)
	if bits == math.Float64bits(math.Copysign(0, -1)) {
		bits = 0
	}
	return bits
}
