package ft

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// DotOptions controls Graphviz rendering.
type DotOptions struct {
	// Highlight is a set of event ids to emphasise — typically the
	// MPMCS, matching the paper's Fig. 2 visualisation.
	Highlight map[string]bool
	// ShowProbabilities annotates event labels with probabilities.
	ShowProbabilities bool
}

// WriteDot renders the tree as a Graphviz digraph. Gates are boxes
// labelled with their operator, events are ellipses, highlighted events
// are filled. The output is deterministic.
func (t *Tree) WriteDot(w io.Writer, opts DotOptions) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", nonEmpty(t.name, "faulttree"))
	fmt.Fprintln(bw, "  rankdir=TB;")
	fmt.Fprintln(bw, "  node [fontname=\"Helvetica\"];")

	events := t.Events()
	sort.Slice(events, func(i, j int) bool { return events[i].ID < events[j].ID })
	for _, e := range events {
		label := e.ID
		if opts.ShowProbabilities {
			label = fmt.Sprintf("%s\\np=%s", e.ID, formatProb(e.Prob))
		}
		attrs := []string{fmt.Sprintf("label=%q", label), "shape=ellipse"}
		if opts.Highlight[e.ID] {
			attrs = append(attrs, "style=filled", "fillcolor=salmon")
		}
		fmt.Fprintf(bw, "  %q [%s];\n", e.ID, strings.Join(attrs, ", "))
	}

	gates := t.Gates()
	sort.Slice(gates, func(i, j int) bool { return gates[i].ID < gates[j].ID })
	for _, g := range gates {
		op := strings.ToUpper(gateTypeName(g.Type))
		if g.Type == GateVoting {
			op = fmt.Sprintf("%d/%d", g.K, len(g.Inputs))
		}
		label := fmt.Sprintf("%s\\n%s", g.ID, op)
		shape := "box"
		if g.ID == t.top {
			shape = "doubleoctagon"
		}
		fmt.Fprintf(bw, "  %q [label=%q, shape=%s];\n", g.ID, label, shape)
	}

	for _, g := range gates {
		for _, in := range g.Inputs {
			fmt.Fprintf(bw, "  %q -> %q;\n", g.ID, in)
		}
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ft: write dot: %w", err)
	}
	return nil
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}
