package ft

import (
	"bytes"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

// genTree is a quick.Generator for small random valid trees built
// directly with the ft API (independent of internal/gen, which this
// package cannot import).
type genTree struct {
	T *Tree
}

// Generate implements quick.Generator.
func (genTree) Generate(r *rand.Rand, _ int) reflect.Value {
	tree := New("q" + strconv.Itoa(r.Intn(1000)))
	numEvents := 3 + r.Intn(8)
	ids := make([]string, 0, numEvents)
	for i := 0; i < numEvents; i++ {
		id := "e" + strconv.Itoa(i)
		if err := tree.AddEvent(id, r.Float64()); err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	available := append([]string(nil), ids...)
	gateSeq := 0
	for len(available) > 1 {
		fanIn := 2 + r.Intn(3)
		if fanIn > len(available) {
			fanIn = len(available)
		}
		inputs := make([]string, 0, fanIn)
		for i := 0; i < fanIn; i++ {
			pick := r.Intn(len(available))
			inputs = append(inputs, available[pick])
			available[pick] = available[len(available)-1]
			available = available[:len(available)-1]
		}
		gateSeq++
		id := "g" + strconv.Itoa(gateSeq)
		var err error
		switch r.Intn(3) {
		case 0:
			err = tree.AddAnd(id, inputs...)
		case 1:
			err = tree.AddOr(id, inputs...)
		default:
			err = tree.AddVoting(id, 1+r.Intn(len(inputs)), inputs...)
		}
		if err != nil {
			panic(err)
		}
		available = append(available, id)
	}
	tree.SetTop(available[0])
	return reflect.ValueOf(genTree{T: tree})
}

func ftQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(139))}
}

// TestQuickJSONRoundTripPreservesEval: serialising and reloading never
// changes the structure function.
func TestQuickJSONRoundTripPreservesEval(t *testing.T) {
	property := func(g genTree, pattern uint16) bool {
		var buf bytes.Buffer
		if err := g.T.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		failed := patternAssignment(g.T, uint64(pattern))
		want, err1 := g.T.Eval(failed)
		got, err2 := back.Eval(failed)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(property, ftQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickTextRoundTripPreservesEval: same property for the text
// format.
func TestQuickTextRoundTripPreservesEval(t *testing.T) {
	property := func(g genTree, pattern uint16) bool {
		var buf bytes.Buffer
		if err := g.T.WriteText(&buf); err != nil {
			return false
		}
		back, err := ReadText(&buf)
		if err != nil {
			return false
		}
		failed := patternAssignment(g.T, uint64(pattern))
		want, err1 := g.T.Eval(failed)
		got, err2 := back.Eval(failed)
		return err1 == nil && err2 == nil && got == want
	}
	if err := quick.Check(property, ftQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneEquivalent: a clone evaluates identically and is fully
// detached from the original.
func TestQuickCloneEquivalent(t *testing.T) {
	property := func(g genTree, pattern uint16) bool {
		clone := g.T.Clone()
		failed := patternAssignment(g.T, uint64(pattern))
		want, err1 := g.T.Eval(failed)
		got, err2 := clone.Eval(failed)
		if err1 != nil || err2 != nil || got != want {
			return false
		}
		// Mutate the clone's probabilities; the original's stay.
		events := g.T.Events()
		orig := events[0].Prob
		if err := clone.SetProb(events[0].ID, 1-orig); err != nil {
			return false
		}
		return g.T.Event(events[0].ID).Prob == orig
	}
	if err := quick.Check(property, ftQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickModulesDefinition: every reported module's proper
// descendants have all their parents inside the module's subtree.
func TestQuickModulesDefinition(t *testing.T) {
	property := func(g genTree) bool {
		modules, err := g.T.Modules()
		if err != nil {
			return false
		}
		parents, err := g.T.Parents()
		if err != nil {
			return false
		}
		for _, moduleID := range modules {
			inside := descendantSet(g.T, moduleID)
			for id := range inside {
				if id == moduleID {
					continue
				}
				for _, parent := range parents[id] {
					if !inside[parent] {
						return false
					}
				}
			}
		}
		// The top gate must always be reported.
		found := false
		for _, id := range modules {
			if id == g.T.Top() {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(property, ftQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickDFSOrderCoversAllEvents: the heuristic order is a
// permutation of the event set.
func TestQuickDFSOrderCoversAllEvents(t *testing.T) {
	property := func(g genTree) bool {
		order := g.T.DFSEventOrder()
		if len(order) != g.T.NumEvents() {
			return false
		}
		seen := make(map[string]bool, len(order))
		for _, id := range order {
			if seen[id] || g.T.Event(id) == nil {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(property, ftQuickConfig()); err != nil {
		t.Error(err)
	}
}

// descendantSet returns all ids in the subtree rooted at id.
func descendantSet(t *Tree, id string) map[string]bool {
	out := make(map[string]bool)
	var walk func(string)
	walk = func(n string) {
		if out[n] {
			return
		}
		out[n] = true
		if g := t.Gate(n); g != nil {
			for _, in := range g.Inputs {
				walk(in)
			}
		}
	}
	walk(id)
	return out
}

// patternAssignment derives a failure assignment from a bit pattern.
func patternAssignment(t *Tree, pattern uint64) map[string]bool {
	failed := make(map[string]bool)
	for i, e := range t.Events() {
		failed[e.ID] = pattern&(1<<uint(i%64)) != 0
	}
	return failed
}
