package ft

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tree := buildFPS(t)
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTree(t, tree, back)
}

func TestJSONRoundTripVoting(t *testing.T) {
	tree := New("vote")
	for _, id := range []string{"a", "b", "c"} {
		if err := tree.AddEvent(id, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddVoting("v", 2, "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("v")
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := back.Gate("v")
	if g == nil || g.Type != GateVoting || g.K != 2 {
		t.Errorf("voting gate lost in round trip: %+v", g)
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"syntax", "{not json"},
		{"bad gate type", `{"top":"g","events":[{"id":"a","probability":0.1}],"gates":[{"id":"g","type":"xor","inputs":["a"]}]}`},
		{"bad probability", `{"top":"g","events":[{"id":"a","probability":7}],"gates":[{"id":"g","type":"or","inputs":["a"]}]}`},
		{"dangling input", `{"top":"g","events":[],"gates":[{"id":"g","type":"or","inputs":["ghost"]}]}`},
		{"duplicate id", `{"top":"g","events":[{"id":"a","probability":0.1},{"id":"a","probability":0.2}],"gates":[{"id":"g","type":"or","inputs":["a"]}]}`},
		{"missing top", `{"events":[{"id":"a","probability":0.1}],"gates":[{"id":"g","type":"or","inputs":["a"]}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.give)); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	tree := buildFPS(t)
	tree.Event("x1").Description = "Sensor 1 fails"
	var buf bytes.Buffer
	if err := tree.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTree(t, tree, back)
	if back.Event("x1").Description != "Sensor 1 fails" {
		t.Error("description lost in text round trip")
	}
}

func TestReadTextFormat(t *testing.T) {
	src := `
# Fire protection system
tree FPS
top t

event x1 0.2 Sensor 1
event x2 0.1
gate g and x1 x2
gate t or g x1
`
	tree, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Name() != "FPS" || tree.Top() != "t" {
		t.Errorf("name=%q top=%q", tree.Name(), tree.Top())
	}
	if tree.Event("x1").Description != "Sensor 1" {
		t.Errorf("description = %q", tree.Event("x1").Description)
	}
}

func TestReadTextVoting(t *testing.T) {
	src := `
top v
event a 0.1
event b 0.1
event c 0.1
gate v 2of3 a b c
`
	tree, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Gate("v")
	if g.Type != GateVoting || g.K != 2 {
		t.Errorf("gate = %+v", g)
	}
}

func TestReadTextErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"unknown decl", "frob x\n"},
		{"tree no name", "tree\n"},
		{"top arity", "top a b\n"},
		{"event no prob", "event a\n"},
		{"event bad prob", "event a xyz\n"},
		{"gate too short", "gate g and\n"},
		{"gate bad type", "event a 0.1\ngate g nand a\ntop g\n"},
		{"kofn mismatch", "event a 0.1\nevent b 0.1\ngate g 2of3 a b\ntop g\n"},
		{"invalid final tree", "event a 0.1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadText(strings.NewReader(tt.give)); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestWriteDot(t *testing.T) {
	tree := buildFPS(t)
	var buf bytes.Buffer
	err := tree.WriteDot(&buf, DotOptions{
		Highlight:         map[string]bool{"x1": true, "x2": true},
		ShowProbabilities: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"FPS\"",
		"fillcolor=salmon",
		"doubleoctagon",
		`"detection" -> "x1";`,
		"p=0.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDotVotingLabel(t *testing.T) {
	tree := New("")
	for _, id := range []string{"a", "b", "c"} {
		if err := tree.AddEvent(id, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddVoting("v", 2, "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("v")
	var buf bytes.Buffer
	if err := tree.WriteDot(&buf, DotOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2/3") {
		t.Errorf("voting gate label missing:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "digraph \"faulttree\"") {
		t.Error("fallback graph name missing")
	}
}

// assertSameTree checks structural equality of two trees.
func assertSameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.Top() != b.Top() {
		t.Errorf("top: %q vs %q", a.Top(), b.Top())
	}
	if a.NumEvents() != b.NumEvents() || a.NumGates() != b.NumGates() {
		t.Fatalf("size mismatch: %d/%d events, %d/%d gates",
			a.NumEvents(), b.NumEvents(), a.NumGates(), b.NumGates())
	}
	for _, e := range a.Events() {
		other := b.Event(e.ID)
		if other == nil || other.Prob != e.Prob {
			t.Errorf("event %s: %+v vs %+v", e.ID, e, other)
		}
	}
	for _, g := range a.Gates() {
		other := b.Gate(g.ID)
		if other == nil || other.Type != g.Type || other.K != g.K {
			t.Errorf("gate %s: %+v vs %+v", g.ID, g, other)
			continue
		}
		if len(other.Inputs) != len(g.Inputs) {
			t.Errorf("gate %s input count: %d vs %d", g.ID, len(g.Inputs), len(other.Inputs))
			continue
		}
		for i := range g.Inputs {
			if g.Inputs[i] != other.Inputs[i] {
				t.Errorf("gate %s input %d: %q vs %q", g.ID, i, g.Inputs[i], other.Inputs[i])
			}
		}
	}
}
