// Package ft models static fault trees: basic events carrying failure
// probabilities, combined by AND, OR and K-of-N voting gates up to a top
// event. Trees are DAGs — gates may share inputs — which matches the
// classical fault-tree formalism (Vesely et al., Fault Tree Handbook).
//
// The package is a pure data model plus validation, compilation to
// Boolean formulas (internal/boolexpr), and interchange formats (JSON,
// a compact text format, and Graphviz DOT export).
package ft

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// GateType enumerates the supported gate kinds.
type GateType int

// Supported gate kinds. Voting gates are true when at least K inputs are
// true (the "k-out-of-n" operator listed as future work in the paper).
const (
	GateAnd GateType = iota + 1
	GateOr
	GateVoting
)

// String implements fmt.Stringer.
func (g GateType) String() string {
	switch g {
	case GateAnd:
		return "and"
	case GateOr:
		return "or"
	case GateVoting:
		return "voting"
	default:
		return fmt.Sprintf("GateType(%d)", int(g))
	}
}

// BasicEvent is a leaf of the fault tree: an atomic failure mode with an
// occurrence probability.
type BasicEvent struct {
	ID          string
	Description string
	Prob        float64
}

// Gate is an internal node combining child nodes (events or other gates).
type Gate struct {
	ID          string
	Description string
	Type        GateType
	K           int // threshold; meaningful only for GateVoting
	Inputs      []string
}

// Tree is a fault tree: a set of basic events and gates with a designated
// top event. The zero value is not usable; construct with New.
type Tree struct {
	name   string
	top    string
	events map[string]*BasicEvent
	gates  map[string]*Gate
	order  []string // ids in insertion order, for deterministic iteration
}

// Sentinel errors returned by tree construction and validation.
var (
	ErrDuplicateID  = errors.New("ft: duplicate node id")
	ErrEmptyID      = errors.New("ft: empty node id")
	ErrBadProb      = errors.New("ft: probability outside [0,1]")
	ErrNoInputs     = errors.New("ft: gate has no inputs")
	ErrBadThreshold = errors.New("ft: voting threshold outside 1..len(inputs)")
	ErrUnknownNode  = errors.New("ft: reference to unknown node")
	ErrNoTop        = errors.New("ft: top event not set")
	ErrCycle        = errors.New("ft: tree contains a cycle")
	ErrTopIsEvent   = errors.New("ft: top node must be a gate")
)

// New returns an empty fault tree with the given name.
func New(name string) *Tree {
	return &Tree{
		name:   name,
		events: make(map[string]*BasicEvent),
		gates:  make(map[string]*Gate),
	}
}

// Name returns the tree's name.
func (t *Tree) Name() string { return t.name }

// SetName changes the tree's name.
func (t *Tree) SetName(name string) { t.name = name }

// Top returns the id of the top event ("" if unset).
func (t *Tree) Top() string { return t.top }

// SetTop designates the top node. The node may be added later; Validate
// checks that it exists.
func (t *Tree) SetTop(id string) { t.top = id }

// AddEvent adds a basic event with the given failure probability.
func (t *Tree) AddEvent(id string, prob float64) error {
	return t.AddEventDesc(id, "", prob)
}

// AddEventDesc adds a basic event with a human-readable description.
func (t *Tree) AddEventDesc(id, desc string, prob float64) error {
	if err := t.checkNewID(id); err != nil {
		return err
	}
	if math.IsNaN(prob) || prob < 0 || prob > 1 {
		return fmt.Errorf("%w: event %q has probability %v", ErrBadProb, id, prob)
	}
	t.events[id] = &BasicEvent{ID: id, Description: desc, Prob: prob}
	t.order = append(t.order, id)
	return nil
}

// AddAnd adds an AND gate over the given inputs.
func (t *Tree) AddAnd(id string, inputs ...string) error {
	return t.addGate(id, "", GateAnd, 0, inputs)
}

// AddOr adds an OR gate over the given inputs.
func (t *Tree) AddOr(id string, inputs ...string) error {
	return t.addGate(id, "", GateOr, 0, inputs)
}

// AddVoting adds a K-of-N voting gate: true when at least k inputs are
// true.
func (t *Tree) AddVoting(id string, k int, inputs ...string) error {
	return t.addGate(id, "", GateVoting, k, inputs)
}

// AddGate adds a gate of arbitrary type with a description. For
// non-voting gates k is ignored.
func (t *Tree) AddGate(id, desc string, typ GateType, k int, inputs ...string) error {
	return t.addGate(id, desc, typ, k, inputs)
}

func (t *Tree) addGate(id, desc string, typ GateType, k int, inputs []string) error {
	if err := t.checkNewID(id); err != nil {
		return err
	}
	if typ != GateAnd && typ != GateOr && typ != GateVoting {
		return fmt.Errorf("ft: gate %q has unknown type %d", id, int(typ))
	}
	if len(inputs) == 0 {
		return fmt.Errorf("%w: gate %q", ErrNoInputs, id)
	}
	if typ == GateVoting && (k < 1 || k > len(inputs)) {
		return fmt.Errorf("%w: gate %q has k=%d over %d inputs", ErrBadThreshold, id, k, len(inputs))
	}
	if typ != GateVoting {
		k = 0
	}
	in := make([]string, len(inputs))
	copy(in, inputs)
	t.gates[id] = &Gate{ID: id, Description: desc, Type: typ, K: k, Inputs: in}
	t.order = append(t.order, id)
	return nil
}

func (t *Tree) checkNewID(id string) error {
	if id == "" {
		return ErrEmptyID
	}
	if _, ok := t.events[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	if _, ok := t.gates[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	return nil
}

// Event returns the basic event with the given id, or nil.
func (t *Tree) Event(id string) *BasicEvent { return t.events[id] }

// Gate returns the gate with the given id, or nil.
func (t *Tree) Gate(id string) *Gate { return t.gates[id] }

// HasNode reports whether id names an event or a gate.
func (t *Tree) HasNode(id string) bool {
	_, isEvent := t.events[id]
	_, isGate := t.gates[id]
	return isEvent || isGate
}

// Events returns the basic events in insertion order. The returned slice
// is fresh, but elements point at the tree's nodes.
func (t *Tree) Events() []*BasicEvent {
	out := make([]*BasicEvent, 0, len(t.events))
	for _, id := range t.order {
		if e, ok := t.events[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

// Gates returns the gates in insertion order.
func (t *Tree) Gates() []*Gate {
	out := make([]*Gate, 0, len(t.gates))
	for _, id := range t.order {
		if g, ok := t.gates[id]; ok {
			out = append(out, g)
		}
	}
	return out
}

// NumEvents returns the number of basic events.
func (t *Tree) NumEvents() int { return len(t.events) }

// NumGates returns the number of gates.
func (t *Tree) NumGates() int { return len(t.gates) }

// Probabilities returns a map from event id to failure probability.
func (t *Tree) Probabilities() map[string]float64 {
	out := make(map[string]float64, len(t.events))
	for id, e := range t.events {
		out[id] = e.Prob
	}
	return out
}

// SetProb updates the probability of an existing event.
func (t *Tree) SetProb(id string, prob float64) error {
	e, ok := t.events[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if math.IsNaN(prob) || prob < 0 || prob > 1 {
		return fmt.Errorf("%w: event %q probability %v", ErrBadProb, id, prob)
	}
	e.Prob = prob
	return nil
}

// Validate checks structural well-formedness: the top node is set, is a
// gate, every gate input references an existing node, and the gate graph
// is acyclic. It returns the first problem found.
func (t *Tree) Validate() error {
	if t.top == "" {
		return ErrNoTop
	}
	if !t.HasNode(t.top) {
		return fmt.Errorf("%w: top %q", ErrUnknownNode, t.top)
	}
	if _, ok := t.events[t.top]; ok {
		return fmt.Errorf("%w: %q", ErrTopIsEvent, t.top)
	}
	for _, g := range t.gates {
		for _, in := range g.Inputs {
			if !t.HasNode(in) {
				return fmt.Errorf("%w: gate %q references %q", ErrUnknownNode, g.ID, in)
			}
		}
	}
	return t.checkAcyclic()
}

func (t *Tree) checkAcyclic() error {
	const (
		inProgress = 1
		done       = 2
	)
	state := make(map[string]int, len(t.gates))
	var visit func(id string) error
	visit = func(id string) error {
		g, ok := t.gates[id]
		if !ok {
			return nil // events are always leaves
		}
		switch state[id] {
		case done:
			return nil
		case inProgress:
			return fmt.Errorf("%w: through gate %q", ErrCycle, id)
		}
		state[id] = inProgress
		for _, in := range g.Inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		state[id] = done
		return nil
	}
	// Check from every gate so cycles in unreachable islands are caught.
	ids := make([]string, 0, len(t.gates))
	for id := range t.gates {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// Eval computes the top event's truth value given the set of failed
// basic events. Event ids absent from failed are treated as not failed.
// The tree must be valid.
func (t *Tree) Eval(failed map[string]bool) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	memo := make(map[string]bool, len(t.gates))
	return t.evalNode(t.top, failed, memo), nil
}

func (t *Tree) evalNode(id string, failed map[string]bool, memo map[string]bool) bool {
	if e, ok := t.events[id]; ok {
		return failed[e.ID]
	}
	if v, ok := memo[id]; ok {
		return v
	}
	g := t.gates[id]
	var result bool
	switch g.Type {
	case GateAnd:
		result = true
		for _, in := range g.Inputs {
			if !t.evalNode(in, failed, memo) {
				result = false
				break
			}
		}
	case GateOr:
		for _, in := range g.Inputs {
			if t.evalNode(in, failed, memo) {
				result = true
				break
			}
		}
	case GateVoting:
		count := 0
		for _, in := range g.Inputs {
			if t.evalNode(in, failed, memo) {
				count++
			}
		}
		result = count >= g.K
	}
	memo[id] = result
	return result
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	out := New(t.name)
	out.top = t.top
	out.order = append([]string(nil), t.order...)
	for id, e := range t.events {
		copied := *e
		out.events[id] = &copied
	}
	for id, g := range t.gates {
		copied := *g
		copied.Inputs = append([]string(nil), g.Inputs...)
		out.gates[id] = &copied
	}
	return out
}

// Stats summarises a tree's structure.
type Stats struct {
	Events      int
	Gates       int
	AndGates    int
	OrGates     int
	VotingGates int
	Depth       int // longest path from top to a leaf, in nodes
}

// Stats computes structural statistics. Depth is 0 for an invalid tree.
func (t *Tree) Stats() Stats {
	s := Stats{Events: len(t.events), Gates: len(t.gates)}
	for _, g := range t.gates {
		switch g.Type {
		case GateAnd:
			s.AndGates++
		case GateOr:
			s.OrGates++
		case GateVoting:
			s.VotingGates++
		}
	}
	if t.Validate() == nil {
		depths := make(map[string]int, len(t.gates))
		s.Depth = t.depth(t.top, depths)
	}
	return s
}

func (t *Tree) depth(id string, memo map[string]int) int {
	if _, ok := t.events[id]; ok {
		return 1
	}
	if d, ok := memo[id]; ok {
		return d
	}
	deepest := 0
	for _, in := range t.gates[id].Inputs {
		if d := t.depth(in, memo); d > deepest {
			deepest = d
		}
	}
	memo[id] = deepest + 1
	return deepest + 1
}
