package ft

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The compact text format, one declaration per line:
//
//	# comment
//	tree <name>
//	top <id>
//	event <id> <probability> [description...]
//	gate <id> and|or <input> <input> ...
//	gate <id> <k>of<n> <input> <input> ...
//
// Blank lines and lines starting with '#' are ignored. The format exists
// so that workloads can be written by hand and diffed easily; JSON is the
// tool-interchange format.

// ReadText parses the compact text format and validates the tree.
func ReadText(r io.Reader) (*Tree, error) {
	tree := New("")
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseTextLine(tree, line); err != nil {
			return nil, fmt.Errorf("ft: line %d: %w", lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("ft: read text: %w", err)
	}
	if err := tree.Validate(); err != nil {
		return nil, err
	}
	return tree, nil
}

func parseTextLine(tree *Tree, line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case "tree":
		if len(fields) < 2 {
			return fmt.Errorf("tree declaration needs a name")
		}
		tree.SetName(strings.Join(fields[1:], " "))
	case "top":
		if len(fields) != 2 {
			return fmt.Errorf("top declaration needs exactly one id")
		}
		tree.SetTop(fields[1])
	case "event":
		if len(fields) < 3 {
			return fmt.Errorf("event declaration needs id and probability")
		}
		prob, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("event %q: bad probability %q", fields[1], fields[2])
		}
		desc := strings.Join(fields[3:], " ")
		return tree.AddEventDesc(fields[1], desc, prob)
	case "gate":
		if len(fields) < 4 {
			return fmt.Errorf("gate declaration needs id, type and inputs")
		}
		id, typeStr, inputs := fields[1], fields[2], fields[3:]
		switch typeStr {
		case "and":
			return tree.AddAnd(id, inputs...)
		case "or":
			return tree.AddOr(id, inputs...)
		default:
			k, ok := parseKofN(typeStr, len(inputs))
			if !ok {
				return fmt.Errorf("gate %q: unknown type %q", id, typeStr)
			}
			return tree.AddVoting(id, k, inputs...)
		}
	default:
		return fmt.Errorf("unknown declaration %q", fields[0])
	}
	return nil
}

// parseKofN accepts "2of3" style voting specifiers and checks the
// declared n against the actual input count.
func parseKofN(s string, numInputs int) (int, bool) {
	parts := strings.SplitN(s, "of", 2)
	if len(parts) != 2 {
		return 0, false
	}
	k, err1 := strconv.Atoi(parts[0])
	n, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || n != numInputs {
		return 0, false
	}
	return k, true
}

// WriteText writes the tree in the compact text format with
// deterministic node order.
func (t *Tree) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.name != "" {
		fmt.Fprintf(bw, "tree %s\n", t.name)
	}
	if t.top != "" {
		fmt.Fprintf(bw, "top %s\n", t.top)
	}
	events := t.Events()
	sort.Slice(events, func(i, j int) bool { return events[i].ID < events[j].ID })
	for _, e := range events {
		if e.Description != "" {
			fmt.Fprintf(bw, "event %s %s %s\n", e.ID, formatProb(e.Prob), e.Description)
		} else {
			fmt.Fprintf(bw, "event %s %s\n", e.ID, formatProb(e.Prob))
		}
	}
	gates := t.Gates()
	sort.Slice(gates, func(i, j int) bool { return gates[i].ID < gates[j].ID })
	for _, g := range gates {
		typeStr := gateTypeName(g.Type)
		if g.Type == GateVoting {
			typeStr = fmt.Sprintf("%dof%d", g.K, len(g.Inputs))
		}
		fmt.Fprintf(bw, "gate %s %s %s\n", g.ID, typeStr, strings.Join(g.Inputs, " "))
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ft: write text: %w", err)
	}
	return nil
}

func formatProb(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}
