package ft

import (
	"errors"
	"testing"
)

// buildFPS constructs the paper's Fig. 1 Fire Protection System tree.
func buildFPS(t *testing.T) *Tree {
	t.Helper()
	tree := New("FPS")
	events := []struct {
		id   string
		prob float64
	}{
		{"x1", 0.2}, {"x2", 0.1}, {"x3", 0.001}, {"x4", 0.002},
		{"x5", 0.05}, {"x6", 0.1}, {"x7", 0.05},
	}
	for _, e := range events {
		if err := tree.AddEvent(e.id, e.prob); err != nil {
			t.Fatalf("AddEvent(%s): %v", e.id, err)
		}
	}
	mustAdd := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(tree.AddAnd("detection", "x1", "x2"))
	mustAdd(tree.AddOr("remote", "x6", "x7"))
	mustAdd(tree.AddAnd("trigger", "x5", "remote"))
	mustAdd(tree.AddOr("suppression", "x3", "x4", "trigger"))
	mustAdd(tree.AddOr("top", "detection", "suppression"))
	tree.SetTop("top")
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return tree
}

func TestBuildAndAccessors(t *testing.T) {
	tree := buildFPS(t)
	if tree.Name() != "FPS" {
		t.Errorf("Name = %q", tree.Name())
	}
	if tree.Top() != "top" {
		t.Errorf("Top = %q", tree.Top())
	}
	if tree.NumEvents() != 7 || tree.NumGates() != 5 {
		t.Errorf("counts = %d events, %d gates; want 7, 5", tree.NumEvents(), tree.NumGates())
	}
	if e := tree.Event("x1"); e == nil || e.Prob != 0.2 {
		t.Errorf("Event(x1) = %+v", e)
	}
	if g := tree.Gate("detection"); g == nil || g.Type != GateAnd || len(g.Inputs) != 2 {
		t.Errorf("Gate(detection) = %+v", g)
	}
	if tree.Event("detection") != nil || tree.Gate("x1") != nil {
		t.Error("cross-kind lookups should return nil")
	}
	if !tree.HasNode("x3") || tree.HasNode("nope") {
		t.Error("HasNode misbehaves")
	}
}

func TestEventsOrderDeterministic(t *testing.T) {
	tree := buildFPS(t)
	events := tree.Events()
	want := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	for i, e := range events {
		if e.ID != want[i] {
			t.Fatalf("Events()[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
	gates := tree.Gates()
	wantGates := []string{"detection", "remote", "trigger", "suppression", "top"}
	for i, g := range gates {
		if g.ID != wantGates[i] {
			t.Fatalf("Gates()[%d] = %s, want %s", i, g.ID, wantGates[i])
		}
	}
}

func TestAddErrors(t *testing.T) {
	tree := New("t")
	if err := tree.AddEvent("", 0.5); !errors.Is(err, ErrEmptyID) {
		t.Errorf("empty id: got %v", err)
	}
	if err := tree.AddEvent("a", -0.1); !errors.Is(err, ErrBadProb) {
		t.Errorf("negative prob: got %v", err)
	}
	if err := tree.AddEvent("a", 1.5); !errors.Is(err, ErrBadProb) {
		t.Errorf("prob > 1: got %v", err)
	}
	if err := tree.AddEvent("a", 0.5); err != nil {
		t.Fatalf("valid event: %v", err)
	}
	if err := tree.AddEvent("a", 0.5); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate event: got %v", err)
	}
	if err := tree.AddAnd("a", "x"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("gate with event id: got %v", err)
	}
	if err := tree.AddAnd("g"); !errors.Is(err, ErrNoInputs) {
		t.Errorf("gate without inputs: got %v", err)
	}
	if err := tree.AddVoting("g", 0, "a"); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("k=0 voting: got %v", err)
	}
	if err := tree.AddVoting("g", 3, "a", "a"); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("k>n voting: got %v", err)
	}
	if err := tree.AddGate("g", "", GateType(99), 0, "a"); err == nil {
		t.Error("unknown gate type accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("no top", func(t *testing.T) {
		tree := New("t")
		if err := tree.Validate(); !errors.Is(err, ErrNoTop) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("unknown top", func(t *testing.T) {
		tree := New("t")
		tree.SetTop("ghost")
		if err := tree.Validate(); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("top is event", func(t *testing.T) {
		tree := New("t")
		if err := tree.AddEvent("e", 0.1); err != nil {
			t.Fatal(err)
		}
		tree.SetTop("e")
		if err := tree.Validate(); !errors.Is(err, ErrTopIsEvent) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("dangling input", func(t *testing.T) {
		tree := New("t")
		if err := tree.AddOr("g", "ghost"); err != nil {
			t.Fatal(err)
		}
		tree.SetTop("g")
		if err := tree.Validate(); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		tree := New("t")
		if err := tree.AddOr("a", "b"); err != nil {
			t.Fatal(err)
		}
		if err := tree.AddOr("b", "a"); err != nil {
			t.Fatal(err)
		}
		tree.SetTop("a")
		if err := tree.Validate(); !errors.Is(err, ErrCycle) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("self loop", func(t *testing.T) {
		tree := New("t")
		if err := tree.AddAnd("a", "a"); err != nil {
			t.Fatal(err)
		}
		tree.SetTop("a")
		if err := tree.Validate(); !errors.Is(err, ErrCycle) {
			t.Errorf("got %v", err)
		}
	})
}

func TestEvalFPS(t *testing.T) {
	tree := buildFPS(t)
	tests := []struct {
		name   string
		failed map[string]bool
		want   bool
	}{
		{"nothing failed", nil, false},
		{"both sensors", map[string]bool{"x1": true, "x2": true}, true},
		{"single sensor", map[string]bool{"x1": true}, false},
		{"no water", map[string]bool{"x3": true}, true},
		{"trigger chain", map[string]bool{"x5": true, "x7": true}, true},
		{"trigger incomplete", map[string]bool{"x6": true, "x7": true}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tree.Eval(tt.failed)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Eval(%v) = %v, want %v", tt.failed, got, tt.want)
			}
		})
	}
}

func TestEvalVoting(t *testing.T) {
	tree := New("vote")
	for _, id := range []string{"a", "b", "c"} {
		if err := tree.AddEvent(id, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddVoting("v", 2, "a", "b", "c"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("v")
	got, err := tree.Eval(map[string]bool{"a": true, "c": true})
	if err != nil || !got {
		t.Errorf("2-of-3 with two failures: got %v, %v", got, err)
	}
	got, err = tree.Eval(map[string]bool{"b": true})
	if err != nil || got {
		t.Errorf("2-of-3 with one failure: got %v, %v", got, err)
	}
}

func TestEvalInvalidTree(t *testing.T) {
	tree := New("t")
	if _, err := tree.Eval(nil); err == nil {
		t.Error("Eval on invalid tree should fail")
	}
}

func TestSharedSubtreeDAG(t *testing.T) {
	// A DAG where gate "shared" feeds two parents.
	tree := New("dag")
	for _, id := range []string{"a", "b", "c"} {
		if err := tree.AddEvent(id, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddOr("shared", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("left", "shared", "c"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("right", "shared", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("root", "left", "right"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("root")
	if err := tree.Validate(); err != nil {
		t.Fatalf("DAG should validate: %v", err)
	}
	got, err := tree.Eval(map[string]bool{"a": true})
	if err != nil || !got {
		t.Errorf("Eval = %v, %v; want true (right = shared & a)", got, err)
	}
}

func TestSetProb(t *testing.T) {
	tree := buildFPS(t)
	if err := tree.SetProb("x1", 0.9); err != nil {
		t.Fatal(err)
	}
	if tree.Event("x1").Prob != 0.9 {
		t.Error("SetProb did not update")
	}
	if err := tree.SetProb("ghost", 0.5); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("SetProb unknown: %v", err)
	}
	if err := tree.SetProb("x1", 2); !errors.Is(err, ErrBadProb) {
		t.Errorf("SetProb bad prob: %v", err)
	}
}

func TestProbabilities(t *testing.T) {
	tree := buildFPS(t)
	probs := tree.Probabilities()
	if len(probs) != 7 || probs["x3"] != 0.001 {
		t.Errorf("Probabilities = %v", probs)
	}
}

func TestClone(t *testing.T) {
	tree := buildFPS(t)
	clone := tree.Clone()
	if err := clone.SetProb("x1", 0.99); err != nil {
		t.Fatal(err)
	}
	if tree.Event("x1").Prob != 0.2 {
		t.Error("mutating the clone changed the original")
	}
	clone.Gate("detection").Inputs[0] = "x9"
	if tree.Gate("detection").Inputs[0] != "x1" {
		t.Error("clone shares gate input slices with the original")
	}
}

func TestStats(t *testing.T) {
	tree := buildFPS(t)
	s := tree.Stats()
	want := Stats{Events: 7, Gates: 5, AndGates: 2, OrGates: 3, Depth: 5}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestStatsInvalidTreeDepthZero(t *testing.T) {
	tree := New("t")
	if err := tree.AddEvent("a", 0.1); err != nil {
		t.Fatal(err)
	}
	if d := tree.Stats().Depth; d != 0 {
		t.Errorf("Depth = %d on invalid tree, want 0", d)
	}
}

func TestGateTypeString(t *testing.T) {
	if GateAnd.String() != "and" || GateOr.String() != "or" || GateVoting.String() != "voting" {
		t.Error("GateType.String mismatch")
	}
	if GateType(42).String() != "GateType(42)" {
		t.Error("unknown GateType.String mismatch")
	}
}
