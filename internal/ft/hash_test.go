package ft

import (
	"strings"
	"testing"
)

// hashTree builds the reference tree used across the hash tests:
//
//	top = AND(g1, g2); g1 = OR(a, b); g2 = VOTING2(b, c, d)
func hashTree(t *testing.T) *Tree {
	t.Helper()
	tree := New("reference")
	for _, e := range []struct {
		id string
		p  float64
	}{{"a", 0.1}, {"b", 0.2}, {"c", 0.3}, {"d", 0.4}} {
		if err := tree.AddEvent(e.id, e.p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddOr("g1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddVoting("g2", 2, "b", "c", "d"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	return tree
}

func mustHash(t *testing.T, tree *Tree) string {
	t.Helper()
	h, err := CanonicalHash(tree)
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	if !strings.HasPrefix(h, "sha256:") || len(h) != len("sha256:")+64 {
		t.Fatalf("malformed hash %q", h)
	}
	return h
}

func TestCanonicalHashDeterministic(t *testing.T) {
	a := mustHash(t, hashTree(t))
	b := mustHash(t, hashTree(t))
	if a != b {
		t.Errorf("same construction hashed differently: %s vs %s", a, b)
	}
	if c := mustHash(t, hashTree(t).Clone()); c != a {
		t.Errorf("clone hashed differently: %s vs %s", c, a)
	}
}

// Permuting gate inputs and the node insertion order is a no-op.
func TestCanonicalHashPermutedChildren(t *testing.T) {
	ref := mustHash(t, hashTree(t))

	// Insertion order scrambled, every input list reversed.
	tree := New("permuted")
	for _, e := range []struct {
		id string
		p  float64
	}{{"d", 0.4}, {"c", 0.3}, {"b", 0.2}, {"a", 0.1}} {
		if err := tree.AddEvent(e.id, e.p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddVoting("g2", 2, "d", "c", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("g1", "b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "g2", "g1"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	if got := mustHash(t, tree); got != ref {
		t.Errorf("permuted children changed the hash: %s vs %s", got, ref)
	}
}

// Renaming internal gates (and the tree itself) is a no-op: gate ids
// never reach a solution document.
func TestCanonicalHashRenamedGates(t *testing.T) {
	ref := mustHash(t, hashTree(t))

	tree := New("totally-different-name")
	for _, e := range []struct {
		id string
		p  float64
	}{{"a", 0.1}, {"b", 0.2}, {"c", 0.3}, {"d", 0.4}} {
		if err := tree.AddEvent(e.id, e.p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddOr("left-subsystem", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddVoting("right-subsystem", 2, "b", "c", "d"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddGate("system-failure", "described!", GateAnd, 0, "left-subsystem", "right-subsystem"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("system-failure")
	if got := mustHash(t, tree); got != ref {
		t.Errorf("renamed gates changed the hash: %s vs %s", got, ref)
	}
}

// Nodes unreachable from the top cannot influence any analysis and so
// do not influence the hash.
func TestCanonicalHashIgnoresUnreachable(t *testing.T) {
	ref := mustHash(t, hashTree(t))
	tree := hashTree(t)
	if err := tree.AddEvent("orphan", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("island", "orphan", "a"); err != nil {
		t.Fatal(err)
	}
	if got := mustHash(t, tree); got != ref {
		t.Errorf("unreachable island changed the hash: %s vs %s", got, ref)
	}
}

// Every semantic change must change the hash.
func TestCanonicalHashSensitivity(t *testing.T) {
	ref := mustHash(t, hashTree(t))

	cases := []struct {
		name   string
		mutate func(t *testing.T, tree *Tree)
	}{
		{"changed probability", func(t *testing.T, tree *Tree) {
			if err := tree.SetProb("c", 0.30000001); err != nil {
				t.Fatal(err)
			}
		}},
		{"renamed event", func(t *testing.T, tree *Tree) {
			// Rebuild g1 = OR(a2, b) with event a renamed to a2.
			if err := tree.AddEvent("a2", 0.1); err != nil {
				t.Fatal(err)
			}
			tree.gates["g1"].Inputs = []string{"a2", "b"}
		}},
		{"changed event description", func(t *testing.T, tree *Tree) {
			tree.events["a"].Description = "pump fails"
		}},
		{"changed gate type", func(t *testing.T, tree *Tree) {
			tree.gates["g1"].Type = GateAnd
		}},
		{"changed voting threshold", func(t *testing.T, tree *Tree) {
			tree.gates["g2"].K = 3
		}},
		{"extra child", func(t *testing.T, tree *Tree) {
			tree.gates["g1"].Inputs = append(tree.gates["g1"].Inputs, "c")
		}},
		{"different sharing", func(t *testing.T, tree *Tree) {
			// b out of g2: VOTING2(b,c,d) → VOTING2(a,c,d).
			tree.gates["g2"].Inputs = []string{"a", "c", "d"}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tree := hashTree(t)
			tc.mutate(t, tree)
			if got := mustHash(t, tree); got == ref {
				t.Errorf("%s did not change the hash", tc.name)
			}
		})
	}
}

// Duplicate-child multisets must not collapse: OR(a,a,b) ≠ OR(a,b,b).
func TestCanonicalHashDuplicateChildren(t *testing.T) {
	build := func(inputs ...string) *Tree {
		tree := New("dup")
		if err := tree.AddEvent("a", 0.1); err != nil {
			t.Fatal(err)
		}
		if err := tree.AddEvent("b", 0.2); err != nil {
			t.Fatal(err)
		}
		if err := tree.AddOr("top", inputs...); err != nil {
			t.Fatal(err)
		}
		tree.SetTop("top")
		return tree
	}
	if mustHash(t, build("a", "a", "b")) == mustHash(t, build("a", "b", "b")) {
		t.Error("OR(a,a,b) and OR(a,b,b) hashed equal")
	}
}

func TestCanonicalHashInvalidTree(t *testing.T) {
	tree := New("bad")
	if _, err := CanonicalHash(tree); err == nil {
		t.Error("expected error for tree without top")
	}
}
