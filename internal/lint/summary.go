package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncSummary is the interprocedural behaviour summary of one declared
// function, computed once per Run over every loaded module package and
// shared by the second-generation analyzers (arenaref, lockorder). Each
// field is a conservative may-property: false means "provably does
// not", true means "might".
type FuncSummary struct {
	// MayGC: the function may trigger an arena compaction — a call to
	// an arena reloc (directly or transitively). A compaction rewrites
	// clause refs through forwarding pointers; refs held in locals
	// across such a call are stale.
	MayGC bool
	// MayMove: the function may grow an arena (alloc's append can move
	// the backing array) or compact it. Slice views aliasing arena
	// storage are invalid after such a call; refs survive growth but
	// not compaction.
	MayMove bool
	// MayBlock: the function may park its goroutine — a channel
	// send/receive outside a select with a default case, a range over
	// a channel, select without default, sync.WaitGroup.Wait,
	// time.Sleep, or an http.ResponseWriter write (a stuck client can
	// exert backpressure through the response body).
	MayBlock bool
	// Blocks names the first blocking operation that seeded MayBlock,
	// for diagnostics ("channel send", "call to Pool.Submit", ...).
	Blocks string
	// Acquires lists the mutex classes the function locks itself
	// (Lock/RLock on a sync.Mutex/RWMutex), directly or transitively,
	// keyed by mutexKeyOf.
	Acquires map[string]bool
}

// Summaries indexes FuncSummary by the function's types.Object. The
// zero value is usable and empty (vettool mode degrades to whatever the
// single package shows; absent callees summarize as "does nothing").
type Summaries struct {
	funcs map[types.Object]*FuncSummary
}

// Of returns the summary for a callee object, or the empty summary when
// the callee is unknown (stdlib, dynamic call, vettool mode).
func (s *Summaries) Of(obj types.Object) FuncSummary {
	if s == nil || obj == nil {
		return FuncSummary{}
	}
	if sum, ok := s.funcs[obj]; ok {
		return *sum
	}
	return FuncSummary{}
}

// summarize computes the fixed point of FuncSummary over the static
// call graph of every loaded module package: seed each declared
// function with its directly-observable behaviour, then propagate
// callee properties to callers until nothing changes (the same shape as
// ctxpoll's pollingFuncs, generalised to four properties).
//
// Function literals are deliberately excluded from seeding: defining a
// closure that blocks does not block the definer, and calls through
// closure variables are not statically resolvable anyway — the summary
// is an under-approximation on dynamic calls, which is the right bias
// for analyzers that report violations.
func summarize(all map[string]*Package) *Summaries {
	type declInfo struct {
		decl *ast.FuncDecl
		info *types.Info
	}
	decls := make(map[types.Object]declInfo)
	sums := make(map[types.Object]*FuncSummary)
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				decls[obj] = declInfo{decl: fd, info: pkg.Info}
				sums[obj] = seedSummary(pkg.Info, fd.Body)
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, di := range decls {
			sum := sums[obj]
			inspectSkippingFuncLits(di.decl.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := calleeOf(di.info, call)
				if callee == nil || callee == obj {
					return
				}
				cs, ok := sums[callee]
				if !ok {
					return
				}
				if cs.MayGC && !sum.MayGC {
					sum.MayGC, changed = true, true
				}
				if cs.MayMove && !sum.MayMove {
					sum.MayMove, changed = true, true
				}
				if cs.MayBlock && !sum.MayBlock {
					sum.MayBlock, changed = true, true
					sum.Blocks = "call to " + callee.Name() + " (" + cs.Blocks + ")"
				}
				for key := range cs.Acquires {
					if !sum.Acquires[key] {
						if sum.Acquires == nil {
							sum.Acquires = make(map[string]bool)
						}
						sum.Acquires[key], changed = true, true
					}
				}
			})
		}
	}
	return &Summaries{funcs: sums}
}

// seedSummary records the directly-observable behaviour of one body.
func seedSummary(info *types.Info, body *ast.BlockStmt) *FuncSummary {
	sum := &FuncSummary{}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			if kind, gc := arenaOp(info, e); kind != "" {
				sum.MayMove = true
				if gc {
					sum.MayGC = true
				}
			}
			if reason := blockingCall(info, e); reason != "" && !sum.MayBlock {
				sum.MayBlock, sum.Blocks = true, reason
			}
			if key, op, ok := mutexOpKey(info, e); ok && (op == "Lock" || op == "RLock") {
				if sum.Acquires == nil {
					sum.Acquires = make(map[string]bool)
				}
				sum.Acquires[key] = true
			}
		case *ast.SendStmt:
			if !insideNonBlockingSelect(body, e.Pos()) && !sum.MayBlock {
				sum.MayBlock, sum.Blocks = true, "channel send"
			}
		case *ast.UnaryExpr:
			if e.Op.String() == "<-" && !insideNonBlockingSelect(body, e.Pos()) && !sum.MayBlock {
				sum.MayBlock, sum.Blocks = true, "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) && !sum.MayBlock {
				sum.MayBlock, sum.Blocks = true, "select without default"
			}
		case *ast.RangeStmt:
			if t := info.Types[e.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok && !sum.MayBlock {
					sum.MayBlock, sum.Blocks = true, "range over channel"
				}
			}
		}
	})
	return sum
}

// blockingCall classifies calls that park the goroutine by themselves:
// WaitGroup.Wait, time.Sleep, and writes on an http.ResponseWriter
// (client backpressure).
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := info.Types[sel.X].Type
	switch sel.Sel.Name {
	case "Wait":
		if recv != nil && strings.HasSuffix(recv.String(), "sync.WaitGroup") {
			return "WaitGroup.Wait"
		}
	case "Sleep":
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			return "time.Sleep"
		}
	case "Write", "WriteHeader":
		if recv != nil && recv.String() == "net/http.ResponseWriter" {
			return "http response write"
		}
	}
	return ""
}

// insideNonBlockingSelect reports whether pos sits in a CommClause of a
// select statement that has a default case — the non-blocking
// send/receive idiom (obs fan-out, sched tryReserve).
func insideNonBlockingSelect(root ast.Node, pos token.Pos) bool {
	nonBlocking := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || pos < sel.Pos() || pos > sel.End() {
			return true
		}
		// The op must be a comm clause's communication, not a case body:
		// a send in a case BODY blocks like any other send. Comm exprs
		// sit between the case keyword and its colon.
		for _, c := range sel.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil && pos >= cc.Comm.Pos() && pos <= cc.Comm.End() && selectHasDefault(sel) {
				nonBlocking = true
			}
		}
		return true
	})
	return nonBlocking
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// arenaOp classifies calls on an arena-like receiver: a named type
// whose method set includes alloc, lits and reloc (the clause-arena
// shape, matched structurally so goldens and future arenas qualify).
// Returns the operation kind ("alloc" or "reloc") and whether it
// compacts (reloc rewrites refs; alloc only moves storage).
func arenaOp(info *types.Info, call *ast.CallExpr) (kind string, gc bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "alloc", "reloc":
	default:
		return "", false
	}
	if !isArenaType(info.Types[sel.X].Type) {
		return "", false
	}
	return sel.Sel.Name, sel.Sel.Name == "reloc"
}

// isArenaType reports whether t (possibly a pointer) is a named type
// with alloc, lits and reloc methods — the structural signature of a
// compacting arena.
func isArenaType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	var haveAlloc, haveLits, haveReloc bool
	for i := 0; i < named.NumMethods(); i++ {
		switch named.Method(i).Name() {
		case "alloc":
			haveAlloc = true
		case "lits":
			haveLits = true
		case "reloc":
			haveReloc = true
		}
	}
	return haveAlloc && haveLits && haveReloc
}

// mutexOpKey matches <expr>.Lock/Unlock/RLock/RUnlock on a sync.Mutex
// or sync.RWMutex and returns the mutex's class key. Unlike guardedby's
// mutexOp (which keys by the rendered expression for per-function
// tracking), the class key identifies the mutex across functions and
// packages, so acquisition orders observed in different places compose
// into one ordering graph.
func mutexOpKey(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recv := info.Types[sel.X].Type
	if recv == nil || !isMutexType(recv) {
		return "", "", false
	}
	return mutexKeyOf(info, sel.X), sel.Sel.Name, true
}

// mutexKeyOf derives a cross-function identity for a mutex expression:
// for a struct field (x.mu) the owning named type plus field name
// ("obs.EventBus.mu" — every instance of the type shares one lock
// class); for a plain variable, the package-qualified variable name.
// Unresolvable shapes fall back to the rendered expression.
func mutexKeyOf(info *types.Info, x ast.Expr) string {
	switch e := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if owner := namedRecvType(info.Types[e.X].Type); owner != nil {
			return qualifiedName(owner.Obj()) + "." + e.Sel.Name
		}
		if obj := info.Uses[e.Sel]; obj != nil {
			return qualifiedName(obj)
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return qualifiedName(obj)
		}
	}
	return types.ExprString(x)
}

// namedRecvType strips pointers off t and returns the named type, if
// any.
func namedRecvType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// qualifiedName renders "pkg.Name" with the short package name: stable
// across load roots, readable in findings.
func qualifiedName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}
