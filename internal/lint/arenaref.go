package lint

import (
	"go/ast"
	"go/types"
)

// ArenaRef enforces the clause-arena lifetime rules from
// internal/sat/arena.go:
//
//   - a ref obtained from alloc is stale after any call that may
//     compact the arena (reloc rewrites live refs through forwarding
//     pointers, but only the refs the GC can reach — watch lists,
//     reasons, clause databases — never locals);
//   - a literal-slice view obtained from lits aliases arena storage and
//     is stale after any call that may grow OR compact the arena
//     (alloc's append can move the backing array).
//
// Whether a call invalidates is decided interprocedurally via the
// function-summary pass (MayGC / MayMove), so a ref held across an
// innocuous helper is fine while one held across reduceDB — which ends
// in maybeGC — is a finding. This is exactly the stale-reference class
// the PR 7 compacting GC made possible; it corrupts clauses silently
// (the ref indexes into reclaimed or rewritten storage) rather than
// crashing.
//
// The scan is per-function and source-order, the guardedby compromise:
// no path sensitivity, zero false positives on straight-line solver
// code. Obtaining a fresh ref/view after the invalidating call clears
// the taint.
var ArenaRef = &Analyzer{
	Name: "arenaref",
	Doc: "an arena clauseRef or lits() view obtained before a may-GC " +
		"(or, for views, may-alloc) call must not be used after it",
	Run: runArenaRef,
}

func runArenaRef(pass *Pass) {
	if !pathEndsIn(pass.Pkg.Path, "sat", "arena") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkArenaLifetimes(pass, fd)
		}
	}
}

// arenaTaint is the per-variable lifetime state.
type arenaTaint struct {
	kind string // "ref" or "view"
	// src is the alloc/lits call the value came from. The walk visits
	// the assignment before its RHS call, so without this the value's
	// own source alloc would immediately invalidate it.
	src      *ast.CallExpr
	stale    bool   // an invalidating call happened since it was obtained
	staleBy  string // what invalidated it, for the finding message
	reported bool   // one finding per variable per staleness
}

// checkArenaLifetimes walks one function in source order, tracking
// locals bound to alloc results (refs) and lits results (views),
// marking them stale at invalidating calls, and reporting subsequent
// uses.
func checkArenaLifetimes(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	taints := make(map[types.Object]*arenaTaint)
	inspectSkippingFuncLits(fd.Body, func(n ast.Node) {
		switch e := n.(type) {
		case *ast.AssignStmt:
			// A (re)assignment from alloc/lits makes the variable fresh;
			// any other reassignment drops the tracking (the value is no
			// longer an arena alias).
			for i, lhs := range e.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				// Arena ops are single-valued, so a multi-value assignment
				// (x, y := f()) can only clear the tracking.
				if len(e.Rhs) == len(e.Lhs) {
					if kind := arenaSource(info, e.Rhs[i]); kind != "" {
						call := ast.Unparen(e.Rhs[i]).(*ast.CallExpr)
						taints[obj] = &arenaTaint{kind: kind, src: call}
						continue
					}
				}
				delete(taints, obj)
			}
		case *ast.CallExpr:
			kind, gc := arenaOp(info, e)
			sum := FuncSummary{}
			if callee := calleeOf(info, e); callee != nil {
				sum = pass.Summaries.Of(callee)
			}
			mayGC := gc || sum.MayGC
			mayMove := kind != "" || sum.MayMove
			if !mayGC && !mayMove {
				return
			}
			by := describeInvalidator(info, e, mayGC)
			for _, t := range taints {
				if t.stale || t.src == e {
					continue
				}
				if mayGC || t.kind == "view" {
					t.stale, t.staleBy = true, by
				}
			}
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return
			}
			t, ok := taints[obj]
			if !ok || !t.stale || t.reported {
				return
			}
			t.reported = true
			what := "arena ref"
			rule := "a compaction rewrites refs through forwarding pointers and never updates locals"
			if t.kind == "view" {
				what = "lits() view"
				rule = "the view aliases arena storage, which the call may have moved or reclaimed"
			}
			pass.Reportf(e.Pos(), "%s %s is stale: it was obtained before %s, and %s; "+
				"re-fetch it after the call", what, e.Name, t.staleBy, rule)
		}
	})
}

// arenaSource classifies an assignment RHS: "ref" for an arena alloc
// call, "view" for an arena lits call, "" otherwise.
func arenaSource(info *types.Info, rhs ast.Expr) string {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if !isArenaType(info.Types[sel.X].Type) {
		return ""
	}
	switch sel.Sel.Name {
	case "alloc":
		return "ref"
	case "lits":
		return "view"
	}
	return ""
}

// describeInvalidator renders the invalidating call for the finding.
func describeInvalidator(info *types.Info, call *ast.CallExpr, gc bool) string {
	name := "a call"
	if callee := calleeOf(info, call); callee != nil {
		name = "the call to " + callee.Name()
	}
	if gc {
		return name + " (may compact the arena)"
	}
	return name + " (may grow the arena)"
}
