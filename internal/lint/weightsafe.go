package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// WeightSafe enforces checked arithmetic on soft-clause weights and
// cost totals. The 2022 MaxSAT-evaluation WCNF dialect permits
// individual weights near 2^63, so raw int64 + and * on weight-typed
// values can silently wrap (the overflow class fixed in PR 4's
// soft-weight total guard). Additions and multiplications whose
// operands are weight-typed — an int64 whose identifier, field,
// indexed map/slice or called function matches (?i)weight|cost — must
// go through the overflow-checked cnf.AddWeights/cnf.MulWeights
// helpers, or carry an auditable //lint:ignore weightsafe <reason>
// stating why the value is already bounded.
var WeightSafe = &Analyzer{
	Name: "weightsafe",
	Doc: "raw + / * on weight-typed int64s must use the checked " +
		"cnf.AddWeights/cnf.MulWeights helpers",
	Run: runWeightSafe,
}

// weightNamePattern decides whether an expression denotes a weight or
// cost quantity. Deliberately a name heuristic: the repo has no single
// named weight type (weights flow through int64 fields, maps and
// accumulators), and names are what the domain invariant is written
// in.
var weightNamePattern = regexp.MustCompile(`(?i)weight|cost`)

func runWeightSafe(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if (e.Op == token.ADD || e.Op == token.MUL) &&
					isInt64(info.Types[e.X].Type) &&
					(weightNamed(e.X) || weightNamed(e.Y)) {
					pass.Reportf(e.OpPos, "unchecked %q on weight-typed int64 may overflow; "+
						"use cnf.AddWeights/cnf.MulWeights or annotate why the operands are bounded", e.Op)
				}
			case *ast.AssignStmt:
				if (e.Tok == token.ADD_ASSIGN || e.Tok == token.MUL_ASSIGN) &&
					len(e.Lhs) == 1 && len(e.Rhs) == 1 &&
					isInt64(info.Types[e.Lhs[0]].Type) &&
					(weightNamed(e.Lhs[0]) || weightNamed(e.Rhs[0])) {
					pass.Reportf(e.TokPos, "unchecked %q on weight-typed int64 may overflow; "+
						"use cnf.AddWeights/cnf.MulWeights or annotate why the operands are bounded", e.Tok)
				}
			}
			return true
		})
	}
}

// weightNamed reports whether the expression's terminal name looks
// weight-typed.
func weightNamed(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return weightNamePattern.MatchString(e.Name)
	case *ast.SelectorExpr:
		return weightNamePattern.MatchString(e.Sel.Name)
	case *ast.IndexExpr:
		return weightNamed(e.X)
	case *ast.StarExpr:
		return weightNamed(e.X)
	case *ast.CallExpr:
		return weightNamed(e.Fun)
	}
	return false
}

func isInt64(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Int64
}
