package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces mutex discipline on annotated struct fields.
// A field whose declaration carries a comment matching
//
//	// guarded by <mutexField>
//
// may only be read or written while the owning struct's named mutex is
// held in the same function (a preceding <x>.<mutexField>.Lock() or
// RLock(), not yet released), or from a function whose name ends in
// "Locked" — the repo's convention for helpers that assert the caller
// holds the lock (e.g. portfolio.Bounds.checkMeetLocked).
//
// The lock tracking is a source-order scan, not a full CFG: locks
// taken in one branch are considered held in siblings. That trades a
// class of false negatives for zero false positives on the repo's
// straight-line lock sections, which is the right bias for a CI gate
// on shared portfolio bound state and obs counters.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated '// guarded by mu' may only be accessed with " +
		"the mutex held or from *Locked functions",
	Run: runGuardedBy,
}

var guardedByPattern = regexp.MustCompile(`guarded by (\w+)`)

func runGuardedBy(pass *Pass) {
	guarded := guardedFields(pass.All)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkLockDiscipline(pass, fd, guarded)
		}
	}
}

// guardedFields collects annotated fields across all loaded packages:
// field object -> guarding mutex field name.
func guardedFields(all map[string]*Package) map[types.Object]string {
	guarded := make(map[types.Object]string)
	for _, pkg := range all {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mu := fieldGuard(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						if obj := pkg.Info.Defs[name]; obj != nil {
							guarded[obj] = mu
						}
					}
				}
				return true
			})
		}
	}
	return guarded
}

// fieldGuard extracts the guarding mutex name from the field's doc or
// trailing comment.
func fieldGuard(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByPattern.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkLockDiscipline scans one function in source order, tracking
// which "<base>.<mu>" mutexes are held, and reports guarded-field
// accesses outside a held section.
func checkLockDiscipline(pass *Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	info := pass.Pkg.Info
	held := make(map[string]int) // "<base>.<mu>" -> lock depth
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.DeferStmt:
			// defer x.mu.Unlock() keeps the lock held to function end:
			// process the call for Lock (not expected) but swallow the
			// Unlock so it does not decrement.
			if base, op, ok := mutexOp(info, e.Call); ok && (op == "Unlock" || op == "RUnlock") {
				_ = base
				return false
			}
			return true
		case *ast.CallExpr:
			if base, op, ok := mutexOp(info, e); ok {
				switch op {
				case "Lock", "RLock":
					held[base]++
				case "Unlock", "RUnlock":
					held[base]--
				}
			}
			return true
		case *ast.SelectorExpr:
			obj := info.Uses[e.Sel]
			mu, ok := guarded[obj]
			if !ok {
				return true
			}
			base := types.ExprString(e.X)
			if held[base+"."+mu] <= 0 {
				pass.Reportf(e.Sel.Pos(), "field %s is guarded by %s but accessed without holding it: "+
					"lock %s.%s first, or access it from a function named *Locked", e.Sel.Name, mu, base, mu)
			}
			return true
		}
		return true
	})
}

// mutexOp matches calls of the form <base>.<mu>.Lock/Unlock/RLock/
// RUnlock on a sync.Mutex or sync.RWMutex and returns the rendered
// "<base>.<mu>" key and the operation.
func mutexOp(info *types.Info, call *ast.CallExpr) (base, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	recv := info.Types[sel.X].Type
	if recv == nil || !isMutexType(recv) {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

func isMutexType(t types.Type) bool {
	s := t.String()
	return strings.HasSuffix(s, "sync.Mutex") || strings.HasSuffix(s, "sync.RWMutex")
}
