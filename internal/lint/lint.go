// Package lint is the repo's domain-aware static analysis suite: a
// small, dependency-free analysis framework (built directly on go/ast
// and go/types, loading type information from the go tool's export
// data) plus the analyzers that enforce this codebase's solver
// invariants — context polling in engine loops, checked weight
// arithmetic, epsilon-based probability comparison, mutex-guarded
// field access, span lifecycle, goroutine joining, arena reference
// lifetimes, lock ordering, exactly-once result delivery and the
// serve-boundary error taxonomy. The second-generation analyzers
// (arenaref, lockorder, exactlyonce, errtaxonomy) share one
// interprocedural function-summary pass (summary.go): per-function
// may-trigger-arena-GC, may-block and acquires-mutex properties,
// computed as a fixed point over the module call graph.
//
// The analyzers encode invariants whose violations were previously
// found only by fuzzing or production incidents (see PR 4: a CDCL loop
// that polled ctx only on conflicts, an int64 overflow in soft-weight
// totals, racy portfolio bound state). Running them on every PR turns
// those bug classes into build failures.
//
// Findings can be suppressed with an auditable directive:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line directly above it. The
// reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is the one-paragraph description shown by ftlint -list.
	Doc string
	// Run reports the analyzer's findings for one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package under analysis.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every loaded package.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// All maps import path to every module package loaded alongside
	// Pkg (its module dependencies included), for interprocedural
	// reasoning. In vettool mode only Pkg itself is present.
	All map[string]*Package
	// Summaries holds the per-function interprocedural summaries
	// (may-GC, may-block, acquires) computed once per Run over All; the
	// second-generation analyzers consult it instead of re-walking the
	// call graph. In vettool mode it covers the single package, so
	// cross-package properties degrade to "unknown" (no finding).
	Summaries *Summaries

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the check that fired ("ignore" for malformed
	// suppression directives).
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"-"`
	// File, Line and Col mirror Pos for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message describes the violated invariant.
	Message string `json:"message"`
}

// String formats the finding the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full suite in stable order: the six
// intra-procedural first-generation analyzers, then the four
// summary-driven second-generation ones.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxPoll,
		WeightSafe,
		FloatCmp,
		GuardedBy,
		SpanClose,
		GoroutineWait,
		ArenaRef,
		LockOrder,
		ExactlyOnce,
		ErrTaxonomy,
	}
}

// Run applies the analyzers to every target package and returns the
// surviving findings: suppressed ones are dropped, malformed
// suppression directives are added, and the result is sorted by
// position. all may include dependency packages beyond the targets;
// analyzers use it for cross-package reasoning but findings are only
// reported for targets.
func Run(fset *token.FileSet, targets []*Package, all map[string]*Package, analyzers []*Analyzer) []Diagnostic {
	sums := summarize(all)
	var diags []Diagnostic
	for _, pkg := range targets {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, All: all, Summaries: sums, diags: &diags}
			a.Run(pass)
		}
	}
	// Suppression is per-file: map each file to its package's parsed
	// directives, drop suppressed findings, and surface malformed
	// directives as findings of their own.
	var kept []Diagnostic
	byFile := make(map[string]*directives)
	var allDirs []*directives
	for _, pkg := range targets {
		dirs := directivesFor(fset, pkg)
		kept = append(kept, dirs.malformed...)
		allDirs = append(allDirs, dirs)
		for _, f := range pkg.Files {
			byFile[fset.Position(f.Pos()).Filename] = dirs
		}
	}
	for _, d := range diags {
		if dirs, ok := byFile[d.Pos.Filename]; ok && dirs.suppresses(d) {
			continue
		}
		kept = append(kept, d)
	}
	// Suppression rot: a well-formed directive that suppressed nothing
	// (and whose analyzers all ran, so that is a proof) is a finding —
	// it documents a violation that no longer exists and would silently
	// swallow the next real one.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range Analyzers() {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	for _, dirs := range allDirs {
		kept = append(kept, dirs.unused(ran, fullSuite)...)
	}
	for i := range kept {
		kept[i].File = kept[i].Pos.Filename
		kept[i].Line = kept[i].Pos.Line
		kept[i].Col = kept[i].Pos.Column
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// pathEndsIn reports whether the import path's final element is one of
// names — the scoping rule analyzers use so golden-test packages under
// testdata/src mirror the real package layout.
func pathEndsIn(path string, names ...string) bool {
	elem := path
	if i := lastSlash(path); i >= 0 {
		elem = path[i+1:]
	}
	for _, n := range names {
		if elem == n {
			return true
		}
	}
	return false
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// isTestFile reports whether the file was compiled from a _test.go
// source. The standalone loader never sees test files (go list GoFiles
// excludes them), but vettool mode analyses test variants too; the
// suite deliberately skips them — tests may compare floats exactly
// against goldens, spin bounded loops, and so on.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	name := fset.Position(f.Pos()).Filename
	return len(name) >= 8 && name[len(name)-8:] == "_test.go"
}
