package lint

import (
	"go/ast"
	"go/types"
)

// ExactlyOnce enforces the result-delivery contract between sched.Pool
// tasks and their consumers in the decomp executor and the serve
// handlers. Pool.Submit guarantees an accepted task runs exactly once —
// but only if the task can actually finish. A task (or handler) that
// sends its result on an unbuffered channel wedges a pool worker
// forever when the consumer has already given up (client disconnect,
// context expiry); a wedged worker shrinks the pool for every later
// request. The two safe shapes, both used by the shipped code, are:
//
//   - send on a channel provably buffered for every send it receives
//     (make(chan T, 1) per task, or make(chan T, len(plan.Nodes)) for a
//     fan-in) — the send completes regardless of the consumer;
//   - send inside a select that also watches ctx.Done() (or has a
//     default), so abandonment cancels the send.
//
// Every other send statement in decomp/serve is a finding. Buffering is
// resolved through closure boundaries: a channel made in the enclosing
// function and sent on inside the submitted task closure counts,
// because the make and the send share one variable.
var ExactlyOnce = &Analyzer{
	Name: "exactlyonce",
	Doc: "sends in decomp/serve must use a provably-buffered channel or " +
		"a select with ctx.Done()/default, so abandoned consumers cannot wedge pool workers",
	Run: runExactlyOnce,
}

func runExactlyOnce(pass *Pass) {
	if !pathEndsIn(pass.Pkg.Path, "decomp", "serve") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			buffered := bufferedChans(info, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				send, ok := n.(*ast.SendStmt)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && buffered[obj] {
						return true
					}
				}
				if inGuardedSelect(info, fd.Body, send) {
					return true
				}
				pass.Reportf(send.Pos(), "naked send: the channel is not provably buffered and the send "+
					"is not in a select with ctx.Done() or default; an abandoned consumer wedges "+
					"the sender (and its pool worker) forever")
				return true
			})
		}
	}
}

// bufferedChans collects the channel variables the function (closures
// included — they share scope) creates with a provably non-zero
// capacity: a constant > 0, or a len()/cap() call sizing the buffer to
// the fan-in.
func bufferedChans(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	buffered := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if chanCapNonZero(info, rhs) {
				buffered[obj] = true
			}
		}
		return true
	})
	return buffered
}

// chanCapNonZero reports whether rhs is make(chan T, cap) with a
// provably non-zero capacity.
func chanCapNonZero(info *types.Info, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "make" || info.Uses[fun] != types.Universe.Lookup("make") {
		return false
	}
	if _, isChan := info.Types[call.Args[0]].Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	capArg := call.Args[1]
	if tv, ok := info.Types[capArg]; ok && tv.Value != nil {
		// Constant capacity: non-zero means buffered.
		return tv.Value.String() != "0"
	}
	// len(x)/cap(x): the fan-in idiom — one slot per producer.
	if capCall, ok := ast.Unparen(capArg).(*ast.CallExpr); ok {
		if fn, ok := ast.Unparen(capCall.Fun).(*ast.Ident); ok && (fn.Name == "len" || fn.Name == "cap") {
			return info.Uses[fn] == types.Universe.Lookup(fn.Name)
		}
	}
	return false
}

// inGuardedSelect reports whether the send is the communication of a
// select case whose siblings include a ctx.Done() receive or a default
// clause — the cancellable-send idiom.
func inGuardedSelect(info *types.Info, root ast.Node, send *ast.SendStmt) bool {
	guarded := false
	ast.Inspect(root, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		isComm := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == send {
				isComm = true
			}
		}
		if !isComm {
			return true
		}
		if selectHasDefault(sel) || selectWatchesDone(info, sel) {
			guarded = true
		}
		return true
	})
	return guarded
}

// selectWatchesDone reports whether any comm clause of the select
// receives from a context's Done channel.
func selectWatchesDone(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		found := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if s, ok := call.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Done" && isContextType(info.Types[s.X].Type) {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
