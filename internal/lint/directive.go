package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// where <analyzer> is an analyzer name or "*" and <reason> is a
// mandatory free-text justification. The directive suppresses matching
// findings reported on its own line (trailing comment) or on the line
// directly below it (standalone comment line).
const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed, well-formed suppression. used tracks
// whether it suppressed at least one finding in the current Run, the
// input to the unused-directive (suppression rot) check.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // names, or ["*"]
	used      bool
}

// directives is the per-package suppression table.
type directives struct {
	byLine map[string][]*ignoreDirective // filename -> directives
	// malformed holds the findings for directives missing a reason or
	// analyzer list; an unauditable suppression is itself a violation.
	malformed []Diagnostic
}

// directivesFor parses every //lint:ignore comment in the package.
func directivesFor(fset *token.FileSet, pkg *Package) *directives {
	d := &directives{byLine: make(map[string][]*ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if names == "" || reason == "" {
					d.malformed = append(d.malformed, Diagnostic{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				d.byLine[pos.Filename] = append(d.byLine[pos.Filename], &ignoreDirective{
					pos:       pos,
					analyzers: strings.Split(names, ","),
				})
			}
		}
	}
	return d
}

// suppresses reports whether a well-formed directive covers the
// finding — same file, directive on the finding's line or the line
// above, analyzer named (or "*") — and marks the covering directive
// used.
func (d *directives) suppresses(diag Diagnostic) bool {
	for _, dir := range d.byLine[diag.Pos.Filename] {
		if dir.pos.Line != diag.Pos.Line && dir.pos.Line != diag.Pos.Line-1 {
			continue
		}
		for _, name := range dir.analyzers {
			if name == "*" || name == diag.Analyzer {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// unused returns a finding for every directive that suppressed nothing
// even though all the analyzers it names were part of the run ("*"
// needs the full suite): the violation it once covered is gone, and a
// stale directive would silently swallow the next real finding on its
// line. Directives naming analyzers outside the run are skipped — a
// `-c` subset run cannot tell whether they still fire.
func (d *directives) unused(ran map[string]bool, fullSuite bool) []Diagnostic {
	var out []Diagnostic
	for _, dirs := range d.byLine {
		for _, dir := range dirs {
			if dir.used || !coveredByRun(dir.analyzers, ran, fullSuite) {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "ignore",
				Pos:      dir.pos,
				Message: "unused //lint:ignore directive: no " + strings.Join(dir.analyzers, ",") +
					" finding on this or the next line; remove it (suppression rot hides the next real finding)",
			})
		}
	}
	return out
}

// coveredByRun reports whether every analyzer the directive names was
// part of this run, so "unused" is a proof rather than a guess.
func coveredByRun(names []string, ran map[string]bool, fullSuite bool) bool {
	for _, name := range names {
		if name == "*" {
			if !fullSuite {
				return false
			}
			continue
		}
		if !ran[name] {
			return false
		}
	}
	return true
}
