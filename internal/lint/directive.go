package lint

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. The full form is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// where <analyzer> is an analyzer name or "*" and <reason> is a
// mandatory free-text justification. The directive suppresses matching
// findings reported on its own line (trailing comment) or on the line
// directly below it (standalone comment line).
const ignorePrefix = "//lint:ignore"

// ignoreDirective is one parsed, well-formed suppression.
type ignoreDirective struct {
	line      int
	analyzers []string // names, or ["*"]
}

// directives is the per-package suppression table.
type directives struct {
	byLine map[string][]ignoreDirective // filename -> directives
	// malformed holds the findings for directives missing a reason or
	// analyzer list; an unauditable suppression is itself a violation.
	malformed []Diagnostic
}

// directivesFor parses every //lint:ignore comment in the package.
func directivesFor(fset *token.FileSet, pkg *Package) *directives {
	d := &directives{byLine: make(map[string][]ignoreDirective)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				if names == "" || reason == "" {
					d.malformed = append(d.malformed, Diagnostic{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				d.byLine[pos.Filename] = append(d.byLine[pos.Filename], ignoreDirective{
					line:      pos.Line,
					analyzers: strings.Split(names, ","),
				})
			}
		}
	}
	return d
}

// suppresses reports whether a well-formed directive covers the
// finding: same file, directive on the finding's line or the line
// above, analyzer named (or "*").
func (d *directives) suppresses(diag Diagnostic) bool {
	for _, dir := range d.byLine[diag.Pos.Filename] {
		if dir.line != diag.Pos.Line && dir.line != diag.Pos.Line-1 {
			continue
		}
		for _, name := range dir.analyzers {
			if name == "*" || name == diag.Analyzer {
				return true
			}
		}
	}
	return false
}
