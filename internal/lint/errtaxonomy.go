package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the error-handling discipline the serve-side
// status taxonomy depends on:
//
//  1. Sentinel comparisons use errors.Is, never == or != against a
//     package-level error variable. The engines wrap their sentinels
//     (fmt.Errorf("%w: ...", ErrInterrupted)) as errors travel up
//     through maxsat → portfolio → core, so an == that happens to work
//     today silently stops matching the first time a layer adds
//     context — the exact bug class behind PR 9's
//     deadline-vs-infeasible misclassification.
//
//  2. Wrapping uses %w. An error formatted with %v or %s is flattened
//     to text: errors.Is/As stop seeing it, and the taxonomy mapping at
//     the serve boundary degrades to string matching.
//
//  3. Every response the serve package writes goes through the
//     status.go table: writeJSON's status-code argument must be an
//     HTTPStatus(...) call, not a literal or an http.Status* constant,
//     so a verdict's HTTP code, exit code and JSON status can never
//     disagree. (Rules 1 and 2 apply module-wide; rule 3 only in
//     serve-suffixed packages.)
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc: "sentinel errors are compared with errors.Is (never ==/!=), wrapped " +
		"with %w (never %v/%s), and serve responses map through the status.go taxonomy",
	Run: runErrTaxonomy,
}

func runErrTaxonomy(pass *Pass) {
	info := pass.Pkg.Info
	serveScoped := pathEndsIn(pass.Pkg.Path, "serve")
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op != token.EQL && e.Op != token.NEQ {
					return true
				}
				if sentinel := sentinelOperand(info, e.X, e.Y); sentinel != "" {
					pass.Reportf(e.OpPos, "sentinel comparison %s %s: wrapped errors stop matching; "+
						"use errors.Is(err, %s)", e.Op, sentinel, sentinel)
				}
			case *ast.CallExpr:
				if isErrorfCall(info, e) {
					checkErrorfVerbs(pass, info, e)
				}
				if serveScoped {
					checkServeBoundary(pass, info, e)
				}
			}
			return true
		})
	}
}

// sentinelOperand reports the rendered name of a package-level error
// variable compared against another error value, or "" when the
// comparison is not a sentinel test (nil checks and non-error operands
// are fine).
func sentinelOperand(info *types.Info, x, y ast.Expr) string {
	if !isErrorType(info.Types[x].Type) || !isErrorType(info.Types[y].Type) {
		return ""
	}
	for _, operand := range []ast.Expr{x, y} {
		var id *ast.Ident
		switch e := ast.Unparen(operand).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			continue
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.Pkg() == nil {
			continue
		}
		// Package-level error variables are the sentinel convention
		// (core.ErrNoCutSet, io.EOF, ...).
		if obj.Parent() == obj.Pkg().Scope() {
			return types.ExprString(operand)
		}
	}
	return ""
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// isErrorfCall matches fmt.Errorf.
func isErrorfCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt"
}

// checkErrorfVerbs pairs the constant format string's verbs with the
// variadic arguments and reports error-typed arguments formatted with
// anything but %w.
func checkErrorfVerbs(pass *Pass, info *types.Info, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string: nothing to pair against
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		if i >= len(verbs) {
			break
		}
		if verbs[i] == 'w' {
			continue
		}
		if isErrorType(info.Types[arg].Type) {
			pass.Reportf(arg.Pos(), "error formatted with %%%c flattens it to text: errors.Is/As "+
				"stop matching through this layer; wrap with %%w instead", verbs[i])
		}
	}
}

// formatVerbs extracts the verb letters of a format string in argument
// order, skipping %% and flag/width/precision characters.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*[]", rune(format[i])) {
			i++
		}
		if i >= len(format) || format[i] == '%' {
			continue
		}
		verbs = append(verbs, format[i])
	}
	return verbs
}

// checkServeBoundary enforces rule 3: a call to a function named
// writeJSON must derive its status-code argument from the taxonomy
// (HTTPStatus(...)), keeping every surface's spelling of a verdict in
// one table.
func checkServeBoundary(pass *Pass, info *types.Info, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "writeJSON" || len(call.Args) < 2 {
		return
	}
	code := ast.Unparen(call.Args[1])
	if inner, ok := code.(*ast.CallExpr); ok {
		if fn, ok := ast.Unparen(inner.Fun).(*ast.Ident); ok && fn.Name == "HTTPStatus" {
			return
		}
	}
	pass.Reportf(code.Pos(), "response status bypasses the taxonomy: pass HTTPStatus(<status>) "+
		"so the HTTP code, exit code and JSON status stay consistent (status.go)")
}
