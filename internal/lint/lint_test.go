package lint

import (
	"strings"
	"testing"
)

func TestCtxPoll(t *testing.T)       { runAnalyzerTest(t, CtxPoll, "sat") }
func TestFloatCmp(t *testing.T)      { runAnalyzerTest(t, FloatCmp, "quant") }
func TestWeightSafe(t *testing.T)    { runAnalyzerTest(t, WeightSafe, "weights") }
func TestGuardedBy(t *testing.T)     { runAnalyzerTest(t, GuardedBy, "guarded") }
func TestSpanClose(t *testing.T)     { runAnalyzerTest(t, SpanClose, "spans") }
func TestGoroutineWait(t *testing.T) { runAnalyzerTest(t, GoroutineWait, "portfolio") }
func TestArenaRef(t *testing.T)      { runAnalyzerTest(t, ArenaRef, "arena") }
func TestLockOrder(t *testing.T)     { runAnalyzerTest(t, LockOrder, "sched") }
func TestExactlyOnce(t *testing.T)   { runAnalyzerTest(t, ExactlyOnce, "decomp") }
func TestErrTaxonomy(t *testing.T)   { runAnalyzerTest(t, ErrTaxonomy, "errtax", "serve") }

// TestIgnoreDirectives proves the suppression contract: reasons are
// mandatory, coverage is one line, matching is by analyzer name or "*".
func TestIgnoreDirectives(t *testing.T) { runAnalyzerTest(t, WeightSafe, "ignore") }

// TestUnusedDirectives pins the suppression-rot finding format and the
// subset-run semantics: only directives whose every named analyzer ran
// can be proven unused ("*" needs the full suite).
func TestUnusedDirectives(t *testing.T) { runAnalyzerTest(t, WeightSafe, "unused") }

// TestScopedAnalyzersSkipForeignPackages runs the scoped analyzers
// against goldens full of violations that live OUTSIDE their scope: no
// findings may appear.
func TestScopedAnalyzersSkipForeignPackages(t *testing.T) {
	fset, targets, all, err := Load(".", "./testdata/src/weights", "./testdata/src/ignore")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, a := range []*Analyzer{CtxPoll, FloatCmp, GoroutineWait, ArenaRef, LockOrder, ExactlyOnce} {
		var diags []Diagnostic
		for _, pkg := range targets {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, All: all, diags: &diags}
			a.Run(pass)
		}
		for _, d := range diags {
			t.Errorf("%s fired outside its package scope: %s", a.Name, d)
		}
	}
}

// TestAnalyzersRegistered pins the suite composition ftlint -list and
// the CI job advertise.
func TestAnalyzersRegistered(t *testing.T) {
	wantNames := []string{"ctxpoll", "weightsafe", "floatcmp", "guardedby", "spanclose", "goroutinewait",
		"arenaref", "lockorder", "exactlyonce", "errtaxonomy"}
	got := Analyzers()
	if len(got) != len(wantNames) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(wantNames))
	}
	for i, a := range got {
		if a.Name != wantNames[i] {
			t.Errorf("Analyzers()[%d].Name = %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q lacks Doc or Run", a.Name)
		}
	}
}

// TestRepoIsClean is the self-application gate: the repo's own tree
// must have zero unsuppressed findings. A new violation anywhere fails
// this test (and CI) until it is fixed or carries a reasoned ignore.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	fset, targets, all, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	findings := Run(fset, targets, all, Analyzers())
	for _, d := range findings {
		t.Errorf("unsuppressed finding in repo: %s", d)
	}
}

// TestDiagnosticString pins the compiler-style rendering CI logs rely
// on.
func TestDiagnosticString(t *testing.T) {
	fset, targets, all, err := Load(".", "./testdata/src/weights")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := Run(fset, targets, all, []*Analyzer{WeightSafe})
	if len(findings) == 0 {
		t.Fatal("expected findings in the weightsafe golden")
	}
	s := findings[0].String()
	if !strings.Contains(s, "[weightsafe]") || !strings.Contains(s, "weights.go:") {
		t.Errorf("Diagnostic.String() = %q, want file:line and [analyzer] tag", s)
	}
}
