// Package spans is the spanclose golden: every span obtained from a
// StartSpan call must be ended or handed off on all paths. The local
// tracer/span doubles satisfy the analyzer's structural match (a
// StartSpan method whose result has an End method).
package spans

import "errors"

type span struct{}

func (span) End()         {}
func (span) SetInt(int64) {}

type tracer struct{}

func (tracer) StartSpan(name string) span { return span{} }

func leaks(tr tracer, n int64) {
	sp := tr.StartSpan("work") // want "not ended on all paths"
	sp.SetInt(n)
}

func leaksOnEarlyReturn(tr tracer, fail bool) error {
	sp := tr.StartSpan("work") // want "not ended on all paths"
	if fail {
		return errors.New("failed") // exits without ending sp
	}
	sp.End()
	return nil
}

func deferred(tr tracer) {
	sp := tr.StartSpan("work")
	defer sp.End()
}

func endedOnBothBranches(tr tracer, fail bool) error {
	sp := tr.StartSpan("work")
	if fail {
		sp.End()
		return errors.New("failed")
	}
	sp.End()
	return nil
}

func discarded(tr tracer) {
	tr.StartSpan("work") // want "discarded without End"
}

func discardedBlank(tr tracer) {
	_ = tr.StartSpan("work") // want "discarded without End"
}

func overwritten(tr tracer) {
	sp := tr.StartSpan("first") // want "overwritten before being ended"
	sp = tr.StartSpan("second")
	sp.End()
}

// handedOff transfers the End obligation to the callee, the way the
// portfolio hands engine spans to recordEngineSpan.
func handedOff(tr tracer, own func(span)) {
	sp := tr.StartSpan("work")
	own(sp)
}

func returned(tr tracer) span {
	sp := tr.StartSpan("work")
	return sp
}

func capturedByClosure(tr tracer) func() {
	sp := tr.StartSpan("work")
	return func() { sp.End() }
}

func methodUseIsNotEscape(tr tracer, n int64) {
	sp := tr.StartSpan("work")
	sp.SetInt(n)
	sp.End()
}

func startedInLoop(tr tracer, items []int) {
	for range items {
		sp := tr.StartSpan("item") // want "not ended by the end of the iteration"
		sp.SetInt(1)
	}
}

func endedInLoop(tr tracer, items []int) {
	for range items {
		sp := tr.StartSpan("item")
		sp.End()
	}
}

// annotatedLeak shows the suppression path for a deliberate handoff the
// analyzer cannot see.
func annotatedLeak(tr tracer) {
	//lint:ignore spanclose process exit ends the trace; the span is intentionally left open
	sp := tr.StartSpan("daemon")
	sp.SetInt(1)
}
