// Package weights is the weightsafe golden. The analyzer is unscoped
// (weight arithmetic is a repo-wide invariant), so any path works.
package weights

// addWeights stands in for cnf.AddWeights; the parameter names are
// deliberately neutral so the helper body itself is not weight-typed.
func addWeights(a, b int64) (int64, bool) {
	sum := a + b
	if (b > 0 && sum < a) || (b < 0 && sum > a) {
		return 0, false
	}
	return sum, true
}

func accumulate(weights []int64) int64 {
	var totalWeight int64
	for _, w := range weights {
		totalWeight += w // want "unchecked"
	}
	return totalWeight
}

func scaleCost(cost int64, n int64) int64 {
	return cost * n // want "unchecked"
}

func mergeByLit(weightOf map[int]int64, l int, w int64) {
	weightOf[l] += w // want "unchecked"
}

func checkedAccumulate(weights []int64) (int64, bool) {
	var total int64
	for _, w := range weights {
		sum, ok := addWeights(total, w)
		if !ok {
			return 0, false
		}
		total = sum
	}
	return total, true
}

// plain int64 arithmetic with neutral names is out of scope.
func neutralNames(a, b int64) int64 {
	return a + b
}

// non-int64 weight-named values are out of scope: the invariant is
// about int64 accumulators.
func floatWeight(weight float64) float64 {
	return weight * 2
}

// subtraction cannot silently exceed the weight domain built by
// addition, so it is out of scope.
func refund(totalWeight, w int64) int64 {
	return totalWeight - w
}

// annotatedBounded shows the suppression path for provably bounded
// accumulation.
func annotatedBounded(weightOf []int64) int64 {
	var sum int64
	for i := range weightOf {
		//lint:ignore weightsafe sums a subset of an already validated total
		sum += weightOf[i]
	}
	return sum
}
