// Package arena is the arenaref golden: refs die at compaction, views
// die at any growth, and the invalidation is interprocedural — a call
// whose summary is may-GC kills refs held across it.
package arena

type lit uint32

type clauseRef uint32

// clauseArena mirrors the sat arena's structural signature (alloc,
// lits, reloc) so isArenaType matches it.
type clauseArena struct {
	data []lit
}

func (a *clauseArena) alloc(lits []lit) clauseRef {
	r := clauseRef(len(a.data))
	a.data = append(a.data, lit(len(lits)))
	a.data = append(a.data, lits...)
	return r
}

func (a *clauseArena) lits(r clauseRef) []lit {
	n := int(a.data[r])
	return a.data[int(r)+1 : int(r)+1+n]
}

func (a *clauseArena) reloc(r *clauseRef, to *clauseArena) {
	*r = to.alloc(a.lits(*r))
}

type solver struct {
	ca   clauseArena
	refs []clauseRef
}

// garbageCollect is the compaction seed: it calls reloc, so its summary
// is may-GC, and every caller holding refs across it inherits the
// hazard.
func (s *solver) garbageCollect() {
	to := clauseArena{}
	for i := range s.refs {
		s.ca.reloc(&s.refs[i], &to)
	}
	s.ca = to
}

// refAcrossGC is the core true positive: the ref predates a compaction
// (via the may-GC summary of garbageCollect), so using it afterwards
// indexes rewritten storage.
func (s *solver) refAcrossGC(c []lit) int {
	cr := s.ca.alloc(c)
	s.garbageCollect()
	return int(cr) // want "arena ref cr is stale"
}

// viewAcrossAlloc: a lits view dies at a mere alloc — append may move
// the backing array — even though refs survive growth.
func (s *solver) viewAcrossAlloc(r clauseRef, c []lit) lit {
	view := s.ca.lits(r)
	s.ca.alloc(c)
	return view[0] // want "view view is stale"
}

// refAcrossAlloc is the negative for refs: indices survive growth, so a
// ref crossing an alloc is fine (this is AddClause's shape).
func (s *solver) refAcrossAlloc(c []lit) clauseRef {
	cr := s.ca.alloc(c)
	s.ca.alloc(c)
	s.refs = append(s.refs, cr)
	return cr
}

// refetchAfterGC is the negative for the re-fetch idiom: obtaining a
// fresh view after the invalidating call clears the taint.
func (s *solver) refetchAfterGC(r clauseRef, c []lit) lit {
	view := s.ca.lits(r)
	_ = view[0]
	s.ca.alloc(c)
	view = s.ca.lits(r)
	return view[0]
}

// suppressed: a provably-safe crossing carries an auditable reason.
func (s *solver) suppressed(c []lit) int {
	cr := s.ca.alloc(c)
	s.garbageCollect()
	//lint:ignore arenaref golden: exercising the suppression path for a ref the GC provably forwards
	return int(cr)
}
