// Package guarded is the guardedby golden: fields annotated
// "// guarded by <mu>" must be accessed with the mutex held or from
// *Locked functions.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int64 // guarded by mu

	hits int64 // unannotated: out of scope
}

func readUnlocked(c *counter) int64 {
	return c.n // want "guarded by mu"
}

func writeUnlocked(c *counter) {
	c.n = 4 // want "guarded by mu"
}

func readLocked(c *counter) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func writeLocked(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func accessAfterUnlock(c *counter) int64 {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	return c.n // want "guarded by mu"
}

// bumpLocked follows the repo convention: the Locked suffix asserts the
// caller holds the mutex.
func (c *counter) bumpLocked() {
	c.n++
}

func unannotatedIsFree(c *counter) int64 {
	return c.hits
}

type rwCounter struct {
	mu sync.RWMutex
	v  int64 // guarded by mu
}

func readRLocked(c *rwCounter) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.v
}

func readRUnlocked(c *rwCounter) int64 {
	return c.v // want "guarded by mu"
}

// annotatedException shows the suppression path: single-goroutine setup
// before the value is shared.
func annotatedException() *counter {
	c := &counter{}
	//lint:ignore guardedby the counter has not been shared yet
	c.n = 1
	return c
}
