// Package ignore is the suppression-directive golden, exercised with
// weightsafe findings: directives need a named analyzer AND a non-empty
// reason, cover only their own line or the line below, and match by
// analyzer name or "*".
package ignore

func suppressedAbove(totalWeight, w int64) int64 {
	//lint:ignore weightsafe bounded by the validated instance total
	totalWeight += w
	return totalWeight
}

func suppressedSameLine(totalWeight, w int64) int64 {
	totalWeight += w //lint:ignore weightsafe bounded by the validated instance total
	return totalWeight
}

func suppressedWildcard(totalWeight, w int64) int64 {
	//lint:ignore * bounded by the validated instance total
	totalWeight += w
	return totalWeight
}

// missingReason: an unauditable directive is itself a finding, and it
// suppresses nothing — the underlying violation is still reported.
func missingReason(totalWeight, w int64) int64 {
	/* want "malformed" */ //lint:ignore weightsafe
	totalWeight += w       // want "unchecked"
	return totalWeight
}

// wrongAnalyzer: a well-formed directive for a different analyzer does
// not cover the finding.
func wrongAnalyzer(totalWeight, w int64) int64 {
	//lint:ignore ctxpoll the loop below is bounded
	totalWeight += w // want "unchecked"
	return totalWeight
}

// tooFarAway: directives reach exactly one line down, no further — and
// a directive that covers nothing is itself reported as suppression
// rot.
func tooFarAway(totalWeight, w int64) int64 {
	/* want "unused" */ //lint:ignore weightsafe bounded by the validated instance total

	totalWeight += w // want "unchecked"
	return totalWeight
}

// multiName: one directive can name several analyzers.
func multiName(totalWeight, w int64) int64 {
	//lint:ignore weightsafe,ctxpoll bounded by the validated instance total
	totalWeight += w
	return totalWeight
}
