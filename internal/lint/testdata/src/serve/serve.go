// Package serve is the errtaxonomy golden for the boundary rule: every
// writeJSON status code must come from the HTTPStatus taxonomy table.
package serve

import (
	"encoding/json"
	"net/http"
)

type document struct {
	Status string `json:"status"`
}

func writeJSON(w http.ResponseWriter, code int, doc *document) {
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(doc)
}

// HTTPStatus mirrors the status.go table: one verdict, one code.
func HTTPStatus(status string) int {
	switch status {
	case "OPTIMAL":
		return 200
	default:
		return 500
	}
}

// rawLiteral is the true positive: a hand-written code can drift from
// the table.
func rawLiteral(w http.ResponseWriter) {
	writeJSON(w, 200, &document{Status: "OPTIMAL"}) // want "response status bypasses the taxonomy"
}

// httpConst is a positive too: http.StatusOK bypasses the table just as
// thoroughly as 200 does.
func httpConst(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, &document{Status: "OPTIMAL"}) // want "response status bypasses the taxonomy"
}

// viaTable is the negative: the code is derived from the verdict.
func viaTable(w http.ResponseWriter, status string) {
	writeJSON(w, HTTPStatus(status), &document{Status: status})
}

// suppressed: a health endpoint with no verdict to map.
func suppressed(w http.ResponseWriter) {
	//lint:ignore errtaxonomy golden: liveness probe has no taxonomy verdict
	writeJSON(w, 204, &document{})
}
