// Package portfolio is the goroutinewait golden: the directory name
// puts it in the analyzer's scope (portfolio/obs/cmd).
package portfolio

import "sync"

func nakedGoroutine(work func()) {
	go work() // want "without a join"
}

func waitGroupJoin(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func channelJoin(work func() int) int {
	done := make(chan int, 1)
	go func() { done <- work() }()
	return <-done
}

func selectJoin(work func(), stop chan struct{}) {
	go work()
	select {
	case <-stop:
	}
}

func rangeJoin(work func(chan int)) int {
	results := make(chan int)
	go work(results)
	total := 0
	for v := range results {
		total += v
	}
	return total
}

func noGoroutines(work func()) {
	work()
}

// annotatedDetached shows the suppression path: the goroutine's
// lifetime is owned elsewhere.
func annotatedDetached(serve func()) {
	//lint:ignore goroutinewait server goroutine lives until the stop function closes the listener
	go serve()
}
