// Package sched is the lockorder golden: ABBA ordering cycles are
// reported (directly and through callee acquire-summaries), blocking
// operations under a held mutex are reported, and the non-blocking
// select-with-default idiom is exempt.
package sched

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int
}

type index struct {
	mu   sync.Mutex
	keys []string
}

var (
	reg registry
	idx index
)

// lockAB and lockBA take the same two locks in opposite orders: both
// nested acquisitions lie on the cycle, so both edges are findings.
func lockAB() {
	reg.mu.Lock()
	idx.mu.Lock() // want "lock-ordering cycle"
	idx.mu.Unlock()
	reg.mu.Unlock()
}

func lockBA() {
	idx.mu.Lock()
	reg.mu.Lock() // want "lock-ordering cycle"
	reg.mu.Unlock()
	idx.mu.Unlock()
}

// lockViaCallee closes a cycle through a callee's acquires-summary:
// holding idx.mu, it calls touchRegistry, which locks reg.mu.
func lockViaCallee() {
	idx.mu.Lock()
	touchRegistry() // want "lock-ordering cycle"
	idx.mu.Unlock()
}

func touchRegistry() {
	reg.mu.Lock()
	reg.items = nil
	reg.mu.Unlock()
}

type worker struct {
	mu      sync.Mutex
	results chan int
	wg      sync.WaitGroup
}

// sendUnderLock parks the goroutine with the lock held when the
// channel is full.
func (w *worker) sendUnderLock(v int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.results <- v // want "channel send while holding sched.worker.mu"
}

// waitUnderLock blocks on peers that may need the same lock.
func (w *worker) waitUnderLock() {
	w.mu.Lock()
	w.wg.Wait() // want `call to Wait may block \(WaitGroup.Wait\) while holding sched.worker.mu`
	w.mu.Unlock()
}

// blockViaCallee: the blocking operation hides behind a call — the
// may-block summary of drain carries it to the locked caller.
func (w *worker) blockViaCallee() {
	w.mu.Lock()
	w.drain() // want "may block"
	w.mu.Unlock()
}

func (w *worker) drain() int {
	return <-w.results
}

// tryPublish is the negative: a send under the lock inside a select
// with default never parks (the obs fan-out idiom).
func (w *worker) tryPublish(v int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case w.results <- v:
		return true
	default:
		return false
	}
}

// sendOutsideLock is the negative for ordering: release first, then
// block.
func (w *worker) sendOutsideLock(v int) {
	w.mu.Lock()
	w.results = make(chan int, 1)
	w.mu.Unlock()
	w.results <- v
}

// suppressedReplay mirrors the obs Subscribe replay: provably fits the
// buffer, suppressed with the reason.
func (w *worker) suppressedReplay(evs []int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, ev := range evs {
		//lint:ignore lockorder golden: replay is sized to the buffer, the send cannot block
		w.results <- ev
	}
}
