// Package sat is the ctxpoll golden: the directory name puts it in the
// analyzer's scope (import paths ending in sat/maxsat/portfolio).
package sat

import "context"

func spinsForever(stop func() bool) {
	for { // want "never polls the context"
		if stop() {
			return
		}
	}
}

func pollsDirectly(ctx context.Context, stop func() bool) {
	for {
		if ctx.Err() != nil {
			return
		}
		if stop() {
			return
		}
	}
}

func pollsViaDone(ctx context.Context, work chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-work:
		}
	}
}

func handsContextDown(ctx context.Context, step func(context.Context) bool) {
	for {
		if step(ctx) {
			return
		}
	}
}

type engine struct {
	ctx  context.Context
	left int
}

func (e *engine) canceled() bool { return e.ctx.Err() != nil }

// pollsInterprocedurally exercises the fixed-point: canceled() polls,
// so a loop calling it is covered.
func (e *engine) pollsInterprocedurally() {
	for {
		if e.canceled() {
			return
		}
		e.left--
	}
}

// closureDoesNotCount: a context poll inside a function literal defined
// in the loop is not a poll of the loop itself.
func closureDoesNotCount(ctx context.Context) {
	for { // want "never polls the context"
		probe := func() error { return ctx.Err() }
		_ = probe
	}
}

// conditionBoundedLoop has a loop condition, so it is out of scope by
// construction.
func conditionBoundedLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

// annotatedBounded shows the suppression path for provably bounded
// condition-less loops.
func annotatedBounded(i int64) int64 {
	//lint:ignore ctxpoll doubles each iteration, so terminates in at most 63 steps
	for k := uint(1); ; k++ {
		if int64(1)<<k > i {
			return int64(k)
		}
	}
}
