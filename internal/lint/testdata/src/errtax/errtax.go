// Package errtax is the errtaxonomy golden for the module-wide rules:
// sentinel comparisons must use errors.Is, and wrapping must use %w.
package errtax

import (
	"errors"
	"fmt"
	"io"
)

// ErrNoCutSet mirrors the core sentinel convention: a package-level
// error variable that layers above wrap with context.
var ErrNoCutSet = errors.New("no cut set")

var errBudget = errors.New("budget exhausted")

func compareEq(err error) bool {
	return err == ErrNoCutSet // want `sentinel comparison == ErrNoCutSet`
}

func compareNeq(err error) bool {
	return err != errBudget // want `sentinel comparison != errBudget`
}

func compareImported(err error) bool {
	return err == io.EOF // want `sentinel comparison == io.EOF`
}

// compareIs is the negative: errors.Is sees through wrapping.
func compareIs(err error) bool {
	return errors.Is(err, ErrNoCutSet)
}

// compareNil is the negative for nil checks: nil is not a sentinel.
func compareNil(err error) bool {
	return err == nil
}

func wrapWithV(err error) error {
	return fmt.Errorf("solve: %v", err) // want `error formatted with %v flattens it to text`
}

func wrapWithS(n int, err error) error {
	return fmt.Errorf("node %d: %s", n, err) // want `error formatted with %s flattens it to text`
}

// wrapWithW is the negative: %w preserves the chain (and since Go 1.20,
// several %w verbs may appear in one format).
func wrapWithW(err error) error {
	return fmt.Errorf("solve: %w: %w", ErrNoCutSet, err)
}

// wrapText is the negative for non-error arguments: %v on a string is
// ordinary formatting.
func wrapText(name string) error {
	return fmt.Errorf("unknown gate %v", name)
}

// suppressed: a deliberate flattening at a display-only boundary.
func suppressed(err error) string {
	//lint:ignore errtaxonomy golden: log line, the chain is preserved by the caller
	return fmt.Errorf("render: %v", err).Error()
}
