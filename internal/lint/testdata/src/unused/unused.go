// Package unused pins the suppression-rot contract: a directive that
// suppresses nothing while every analyzer it names ran is itself a
// finding, with subset runs ("-c") giving stale directives the benefit
// of the doubt.
package unused

// consumed is the negative: the directive covers a live weightsafe
// finding, so it is used.
func consumed(totalWeight, w int64) int64 {
	//lint:ignore weightsafe bounded by the validated instance total
	totalWeight += w
	return totalWeight
}

// rotted is the true positive, pinning the exact finding format: the
// violation this directive once covered is gone.
func rotted(totalWeight, w int64) int64 {
	/* want "unused //lint:ignore directive: no weightsafe finding on this or the next line; remove it \\(suppression rot hides the next real finding\\)" */ //lint:ignore weightsafe the add below used to overflow
	return totalWeight
}

// outsideRun is the negative for subset runs: this test runs weightsafe
// only, so whether a ctxpoll finding would fire here is unknowable and
// the directive is left alone.
func outsideRun(totalWeight, w int64) int64 {
	//lint:ignore ctxpoll polling loop was removed, pending full-suite confirmation
	return totalWeight
}

// wildcardOutsideRun: "*" needs the full suite to be provably unused —
// a single-analyzer run says nothing about the other nine.
func wildcardOutsideRun(totalWeight, w int64) int64 {
	//lint:ignore * covered a finding only the full suite can re-derive
	return totalWeight
}
