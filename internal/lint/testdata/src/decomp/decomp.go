// Package decomp is the exactlyonce golden: a send that is neither
// provably buffered nor guarded by ctx.Done()/default can wedge a pool
// worker forever once the consumer gives up.
package decomp

import "context"

type result struct {
	node string
	val  float64
}

// nakedSend is the true positive: the channel arrives as a parameter,
// so its capacity is unknowable here, and nothing guards the send.
func nakedSend(out chan result, r result) {
	out <- r // want "naked send"
}

// perTaskBuffer is the negative for the one-slot idiom: the task owns a
// make(chan T, 1), so the send completes whether or not anyone reads.
func perTaskBuffer(r result) <-chan result {
	ch := make(chan result, 1)
	go func() {
		ch <- r
	}()
	return ch
}

// fanInBuffer is the negative for the sized fan-in: one slot per
// producer, so every send completes.
func fanInBuffer(items []string) []result {
	results := make(chan result, len(items))
	for _, it := range items {
		go func(name string) {
			results <- result{node: name}
		}(it)
	}
	out := make([]result, 0, len(items))
	for range items {
		out = append(out, <-results)
	}
	return out
}

// cancellableSend is the negative for the guarded-select idiom: the
// consumer's abandonment (ctx cancelled) releases the sender.
func cancellableSend(ctx context.Context, out chan result, r result) {
	select {
	case out <- r:
	case <-ctx.Done():
	}
}

// optimisticSend is the negative for select-with-default: the send
// never parks.
func optimisticSend(out chan result, r result) bool {
	select {
	case out <- r:
		return true
	default:
		return false
	}
}

// sendInCaseBody is a positive even though a select is nearby: the send
// is in a case BODY, not a comm clause, so the guard does not cover it.
func sendInCaseBody(ctx context.Context, out chan result, r result) {
	select {
	case <-ctx.Done():
		out <- r // want "naked send"
	}
}

// suppressed: the caller contract guarantees a consumer, recorded as an
// auditable reason.
func suppressed(out chan result, r result) {
	//lint:ignore exactlyonce golden: the sole caller blocks on this receive before returning
	out <- r
}
