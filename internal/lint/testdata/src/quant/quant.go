// Package quant is the floatcmp golden: the directory name puts it in
// the analyzer's scope (quant/bdd/core/differ).
package quant

import "math"

func exactEqual(a, b float64) bool {
	return a == b // want "floating-point"
}

func exactNotEqual(a, b float64) bool {
	return a != b // want "floating-point"
}

func mixedOperands(p float64, scaled int64) bool {
	return p == float64(scaled) // want "floating-point"
}

// ordering comparisons are fine: they are well-defined on floats.
func ordered(a, b float64) bool {
	return a < b || a > b
}

// integer equality is out of scope.
func intEqual(i, j int64) bool {
	return i == j
}

// toleranceCompare is the sanctioned shape (what fp.EqTol does).
func toleranceCompare(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// annotatedSentinel shows the suppression path for a deliberate exact
// comparison.
func annotatedSentinel(probs []float64) bool {
	for i := 1; i < len(probs); i++ {
		//lint:ignore floatcmp exact comparison keeps the ordering a strict weak order
		if probs[i] != probs[i-1] {
			return false
		}
	}
	return true
}
