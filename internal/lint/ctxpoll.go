package lint

import (
	"go/ast"
	"go/types"
)

// CtxPoll enforces the cancellation invariant on solver engine loops:
// every for loop that can iterate indefinitely (no loop condition) in
// the sat, maxsat and portfolio packages must reach a context poll —
// a ctx.Err()/ctx.Done() check, a call that passes a context.Context
// down (the callee is presumed to honor it), or a call to a function
// in this module whose body provably polls.
//
// This is the exact bug class fixed twice in PR 4: a CDCL search loop
// that polled ctx only on conflicts ignored a 100ms deadline for 74
// seconds on a conflict-free descent. Bounded condition-less loops
// (heap sift-downs, trail walks) are suppressed with an auditable
// //lint:ignore ctxpoll <why the loop is bounded>.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "condition-less for loops in sat/maxsat/portfolio must reach a " +
		"ctx.Err/ctx.Done poll or a call that provably polls",
	Run: runCtxPoll,
}

func runCtxPoll(pass *Pass) {
	if !pathEndsIn(pass.Pkg.Path, "sat", "maxsat", "portfolio") {
		return
	}
	polls := pollingFuncs(pass.All)
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !reachesPoll(pass.Pkg.Info, loop.Body, polls) {
				pass.Reportf(loop.For, "indefinitely iterating loop never polls the context: "+
					"add a ctx.Err()/ctx.Done() check or a call that polls, or annotate why the loop is bounded")
			}
			return true
		})
	}
}

// pollingFuncs computes, over every loaded module package, the set of
// functions whose bodies (transitively) poll a context: a fixed point
// over the static call graph seeded with functions that poll directly.
func pollingFuncs(all map[string]*Package) map[types.Object]bool {
	type declInfo struct {
		decl *ast.FuncDecl
		info *types.Info
	}
	decls := make(map[types.Object]declInfo)
	polls := make(map[types.Object]bool)
	for _, pkg := range all {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				decls[obj] = declInfo{decl: fd, info: pkg.Info}
				if pollsDirectly(pkg.Info, fd.Body) {
					polls[obj] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, di := range decls {
			if polls[obj] {
				continue
			}
			found := false
			inspectSkippingFuncLits(di.decl.Body, func(n ast.Node) {
				if found {
					return
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := calleeOf(di.info, call); callee != nil && polls[callee] {
						found = true
					}
				}
			})
			if found {
				polls[obj] = true
				changed = true
			}
		}
	}
	return polls
}

// reachesPoll reports whether the loop body contains a direct context
// poll, a call handing a context down, or a call to a known polling
// function. Function literals are skipped: defining a closure inside
// the loop does not mean it runs every iteration.
func reachesPoll(info *types.Info, body *ast.BlockStmt, polls map[types.Object]bool) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if found {
			return
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if isDirectCtxPoll(info, call) || passesContext(info, call) {
			found = true
			return
		}
		if callee := calleeOf(info, call); callee != nil && polls[callee] {
			found = true
		}
	})
	return found
}

// pollsDirectly reports whether the body itself checks a context or
// hands one to a callee (not counting nested function literals).
func pollsDirectly(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if found {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isDirectCtxPoll(info, call) || passesContext(info, call) {
				found = true
			}
		}
	})
	return found
}

// isDirectCtxPoll matches ctx.Err() and ctx.Done() on a
// context.Context value.
func isDirectCtxPoll(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	return isContextType(info.Types[sel.X].Type)
}

// passesContext reports whether the call forwards a context.Context
// argument; such callees are presumed to honor cancellation (the
// engines' Solve(ctx, ...) contract).
func passesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// calleeOf resolves the called function or method object, if static.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// inspectSkippingFuncLits walks the tree in source order but does not
// descend into function literals.
func inspectSkippingFuncLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
