package lint

import (
	"go/ast"
	"strings"
)

// GoroutineWait forbids fire-and-forget goroutines in the portfolio,
// the observability layer and the command binaries: a function that
// launches a goroutine must also contain a visible join — a Wait()
// call (sync.WaitGroup, errgroup), a channel receive, a range over a
// channel, or a select. The portfolio's anytime contract depends on
// every engine goroutine being collected before Solve returns (PR 4's
// goroutine-leak regression tests exist because an uncollected engine
// kept publishing bounds into a dead race); an intentionally detached
// goroutine must carry //lint:ignore goroutinewait <who owns its
// lifetime>.
var GoroutineWait = &Analyzer{
	Name: "goroutinewait",
	Doc: "no naked go statements in portfolio/obs/cmd without a " +
		"WaitGroup, channel or select join in the same function",
	Run: runGoroutineWait,
}

func runGoroutineWait(pass *Pass) {
	if !pathEndsIn(pass.Pkg.Path, "portfolio", "obs") && !strings.Contains(pass.Pkg.Path, "/cmd/") {
		return
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var gos []*ast.GoStmt
			joined := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					gos = append(gos, n)
				case *ast.SelectStmt:
					joined = true
				case *ast.UnaryExpr:
					if n.Op.String() == "<-" {
						joined = true
					}
				case *ast.RangeStmt:
					if isChannelRange(pass, n) {
						joined = true
					}
				case *ast.CallExpr:
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						joined = true
					}
				}
				return true
			})
			if joined {
				continue
			}
			for _, g := range gos {
				pass.Reportf(g.Go, "goroutine launched without a join in %s: add a WaitGroup/channel/select join, "+
					"or annotate who owns the goroutine's lifetime", fd.Name.Name)
			}
		}
	}
}

// isChannelRange reports whether the range statement iterates a
// channel.
func isChannelRange(pass *Pass, r *ast.RangeStmt) bool {
	tv, ok := pass.Pkg.Info.Types[r.X]
	if !ok || tv.Type == nil {
		return false
	}
	return strings.HasPrefix(tv.Type.Underlying().String(), "chan")
}
