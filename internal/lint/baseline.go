package lint

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReportSchema identifies the ftlint -json report format, which is also
// the checked-in baseline format — a report IS a valid baseline.
const ReportSchema = "mpmcs4fta-ftlint/v1"

// Baseline is a checked-in findings snapshot (the -json report format),
// the rollout mechanism for new analyzers: CI diffs the current
// findings against it and gates on regressions — new findings — rather
// than absolute cleanliness, so an analyzer can land before every
// legacy violation is fixed, while the count can only go down.
type Baseline struct {
	Schema   string       `json:"schema"`
	Findings []Diagnostic `json:"findings"`
}

// LoadBaseline reads a baseline report from disk.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: read baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parse baseline %s: %w", path, err)
	}
	return &b, nil
}

// DiffBaseline splits the current findings against the baseline:
// regressions are findings not present in the baseline (these fail the
// gate), resolved are baseline entries that no longer fire (these
// should be removed from the checked-in file). Matching is by analyzer,
// file and message — line numbers drift with unrelated edits, so they
// are deliberately not part of the key — and is multiset-aware: three
// identical findings against a baseline holding two leaves one
// regression.
func DiffBaseline(base *Baseline, findings []Diagnostic) (regressions, resolved []Diagnostic) {
	counts := make(map[string]int, len(base.Findings))
	for _, d := range base.Findings {
		counts[baselineKey(d)]++
	}
	for _, d := range findings {
		key := baselineKey(d)
		if counts[key] > 0 {
			counts[key]--
			continue
		}
		regressions = append(regressions, d)
	}
	// Whatever is left in the baseline multiset was not matched by a
	// current finding: resolved.
	for _, d := range base.Findings {
		key := baselineKey(d)
		if counts[key] > 0 {
			counts[key]--
			resolved = append(resolved, d)
		}
	}
	return regressions, resolved
}

func baselineKey(d Diagnostic) string {
	return d.Analyzer + "|" + d.File + "|" + d.Message
}
