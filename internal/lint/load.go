package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package: the unit analyzers operate on.
// Module packages carry full syntax so analyzers can reason
// interprocedurally (e.g. ctxpoll's polling-closure computation);
// standard-library dependencies are imported from compiler export data
// and have no syntax.
type Package struct {
	// Path is the package's import path.
	Path string
	// Name is the package name.
	Name string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files holds the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression and object tables.
	Info *types.Info
}

// listedPackage mirrors the go list -json fields the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (deps included, export data
// built) and type-checks every non-standard package from source in
// dependency order. It returns the packages matched by the patterns
// and a map of every module package loaded (targets plus their module
// dependencies) keyed by import path, all sharing one FileSet.
//
// Standard-library imports are satisfied from the compiler export data
// the go tool reports, so loading works offline and without any
// third-party machinery.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, map[string]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}

	fset := token.NewFileSet()
	exports := make(map[string]string) // import path -> export data file
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	imp := &moduleImporter{
		fset:    fset,
		source:  make(map[string]*types.Package),
		gc:      newExportImporter(fset, exports),
		exports: exports,
	}

	all := make(map[string]*Package)
	var loaded []*Package
	// go list -deps emits dependencies before dependents, so every
	// module import of a package is already in imp.source when the
	// package itself is reached.
	for _, lp := range listed {
		if lp.Standard || lp.Name == "" {
			continue
		}
		if lp.Error != nil && len(lp.GoFiles) == 0 {
			return nil, nil, nil, fmt.Errorf("lint: load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, lp, imp)
		if err != nil {
			return nil, nil, nil, err
		}
		imp.source[lp.ImportPath] = pkg.Types
		all[lp.ImportPath] = pkg
		loaded = append(loaded, pkg)
	}

	// The targets are the listed packages that are not mere
	// dependencies: go list reports deps first, so match the patterns
	// again via a second, dependency-free listing.
	targetPaths, err := goListPaths(dir, patterns)
	if err != nil {
		return nil, nil, nil, err
	}
	var targets []*Package
	for _, path := range targetPaths {
		if pkg, ok := all[path]; ok {
			targets = append(targets, pkg)
		}
	}
	if len(targets) == 0 {
		return nil, nil, nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	return fset, targets, all, nil
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, lp listedPackage, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect best-effort; first hard error returned below
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Dir:   lp.Dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// newTypesInfo allocates the object tables analyzers rely on.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// moduleImporter resolves module packages from the already
// source-checked set and everything else from export data.
type moduleImporter struct {
	fset    *token.FileSet
	source  map[string]*types.Package
	gc      types.Importer
	exports map[string]string
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.source[path]; ok {
		return pkg, nil
	}
	return m.gc.Import(path)
}

// newExportImporter returns a gc-export-data importer whose lookup is
// driven by the import path -> export file map from go list (or, in
// vettool mode, from the vet config).
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// goList runs go list -deps -export -json and decodes the package
// stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=Dir,ImportPath,Name,Standard,Export,GoFiles,Error",
		"--",
	}, patterns...)
	out, err := runGo(dir, args)
	if err != nil {
		return nil, err
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// goListPaths resolves patterns to import paths only.
func goListPaths(dir string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "--"}, patterns...)
	out, err := runGo(dir, args)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			paths = append(paths, line)
		}
	}
	return paths, nil
}

func runGo(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}
