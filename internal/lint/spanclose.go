package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanClose enforces the obs span lifecycle: every span obtained from
// a StartSpan call must be ended on every path out of the function
// that starts it. An unended span corrupts the recorded trace tree
// (duration zero, children attached to a region that never closed) and
// is invisible until someone reads a trace from a failing production
// solve.
//
// The analyzer runs a statement-level abstract interpretation over the
// function body: branches fork the ended/unended state and merge
// conservatively (a span is ended after an if/switch/select only if
// every surviving arm ended it). Ownership transfer counts as ending:
// passing the span to a callee, returning it, storing it, or
// capturing it in a function literal hands the End obligation to the
// receiver (the portfolio hands spans to engine goroutines this way).
var SpanClose = &Analyzer{
	Name: "spanclose",
	Doc:  "every obs span started must be ended (or handed off) on all paths",
	Run:  runSpanClose,
}

func runSpanClose(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &spanWalker{pass: pass, info: pass.Pkg.Info, reported: make(map[types.Object]bool)}
				st, terminated := w.block(body.List, spanState{})
				if !terminated {
					w.leak(st, body.Rbrace)
				}
			}
			return true // nested FuncLits are visited (and analyzed) separately
		})
	}
}

// spanState maps each tracked span variable to whether it has been
// ended (or handed off) on the current path.
type spanState map[types.Object]bool

func (st spanState) clone() spanState {
	out := make(spanState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

type spanWalker struct {
	pass     *Pass
	info     *types.Info
	reported map[types.Object]bool
	starts   map[types.Object]token.Pos
}

// report flags a span once, at its StartSpan site.
func (w *spanWalker) report(obj types.Object, exit token.Pos, what string) {
	if w.reported[obj] {
		return
	}
	w.reported[obj] = true
	pos := obj.Pos()
	if p, ok := w.starts[obj]; ok {
		pos = p
	}
	w.pass.Reportf(pos, "span %q %s (exit at %s); call End on every path or defer it",
		obj.Name(), what, w.pass.Fset.Position(exit))
}

// leak reports every span still unended at a function exit.
func (w *spanWalker) leak(st spanState, exit token.Pos) {
	for obj, ended := range st {
		if !ended {
			w.report(obj, exit, "is not ended on all paths")
		}
	}
}

// block runs the walker over a statement list. terminated means every
// path through the list returns or panics.
func (w *spanWalker) block(stmts []ast.Stmt, st spanState) (spanState, bool) {
	st = st.clone()
	for _, s := range stmts {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *spanWalker) stmt(s ast.Stmt, st spanState) (spanState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.scanEscapes(st, s.Rhs...)
		for i, rhs := range s.Rhs {
			if call, ok := startSpanCall(w.info, rhs); ok {
				w.trackAssign(st, s.Lhs, i, len(s.Rhs), call)
			}
		}
		return st, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				w.scanEscapes(st, vs.Values...)
				for i, v := range vs.Values {
					if call, ok := startSpanCall(w.info, v); ok && i < len(vs.Names) {
						w.track(st, vs.Names[i], call)
					}
				}
			}
		}
		return st, false

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if obj := endCallReceiver(w.info, call); obj != nil {
				w.scanEscapes(st, call.Args...)
				if _, tracked := st[obj]; tracked {
					st[obj] = true
					return st, false
				}
			}
			if _, isStart := startSpanCall(w.info, s.X); isStart {
				w.pass.Reportf(call.Pos(), "span discarded without End: assign it and end it, or hand it to an owner")
				return st, false
			}
			if isTerminatorCall(call) {
				w.scanEscapes(st, call.Args...)
				return st, true
			}
		}
		w.scanEscapes(st, s.X)
		return st, false

	case *ast.DeferStmt:
		if obj := endCallReceiver(w.info, s.Call); obj != nil {
			if _, tracked := st[obj]; tracked {
				st[obj] = true
				return st, false
			}
		}
		w.scanEscapes(st, s.Call)
		return st, false

	case *ast.ReturnStmt:
		w.scanEscapes(st, s.Results...)
		w.leak(st, s.Return)
		return st, true

	case *ast.BlockStmt:
		return w.block(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.scanEscapes(st, s.Cond)
		thenSt, thenTerm := w.block(s.Body.List, st)
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		return merge(thenSt, thenTerm, elseSt, elseTerm)

	case *ast.ForStmt:
		return w.loop(st, s.Init, s.Cond, s.Post, s.Body)

	case *ast.RangeStmt:
		w.scanEscapes(st, s.X)
		return w.loop(st, nil, nil, nil, s.Body)

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.scanEscapes(st, s.Tag)
		return w.branches(st, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		return w.branches(st, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
		// A select with no default still runs exactly one case, so no
		// implicit fall-through arm.
		return w.branches(st, bodies, true)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.GoStmt:
		w.scanEscapes(st, s.Call)
		return st, false

	case *ast.SendStmt:
		w.scanEscapes(st, s.Chan, s.Value)
		return st, false

	case *ast.IncDecStmt:
		return st, false

	case *ast.BranchStmt:
		// break/continue/goto: treated as falling through. This can
		// miss a leak via an early break, but never falsely flags the
		// common end-then-break shape.
		return st, false

	default:
		return st, false
	}
}

// loop analyzes a for/range body: spans started inside the body must
// be ended by the end of each iteration; spans from outside remain in
// whatever state the zero-iteration path leaves them (the loop may not
// run).
func (w *spanWalker) loop(st spanState, init ast.Stmt, cond ast.Expr, post ast.Stmt, body *ast.BlockStmt) (spanState, bool) {
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	if cond != nil {
		w.scanEscapes(st, cond)
	}
	bodySt, terminated := w.block(body.List, st)
	if post != nil {
		bodySt, _ = w.stmt(post, bodySt)
	}
	if !terminated {
		for obj, ended := range bodySt {
			if _, outer := st[obj]; !outer && !ended {
				w.report(obj, body.Rbrace, "started inside a loop is not ended by the end of the iteration")
			}
		}
	}
	// Zero-iteration path: outer spans keep their pre-loop state,
	// except those the body provably ended on every iteration AND that
	// the pre-state already... be conservative: pre-loop state wins.
	return st, false
}

// branches merges the arms of a switch/select. fallthroughCovered
// marks bodies as exhaustive (select, or switch with default); without
// it the pre-branch state joins the merge.
func (w *spanWalker) branches(st spanState, bodies [][]ast.Stmt, exhaustive bool) (spanState, bool) {
	if len(bodies) == 0 {
		return st, false
	}
	mergedSet := false
	var merged spanState
	var mergedTerm bool
	consider := func(s spanState, term bool) {
		if !mergedSet {
			merged, mergedTerm, mergedSet = s, term, true
			return
		}
		merged, mergedTerm = merge(merged, mergedTerm, s, term)
	}
	for _, body := range bodies {
		bSt, bTerm := w.block(body, st)
		consider(bSt, bTerm)
	}
	if !exhaustive {
		consider(st.clone(), false)
	}
	return merged, mergedTerm
}

// caseBodies collects the statement lists of a switch body's clauses.
func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

// hasDefaultClause reports whether a switch body has a default case.
func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// merge joins two branch outcomes: terminated branches drop out; a
// span is ended only if ended in every surviving branch.
func merge(a spanState, aTerm bool, b spanState, bTerm bool) (spanState, bool) {
	switch {
	case aTerm && bTerm:
		return a, true
	case aTerm:
		return b, false
	case bTerm:
		return a, false
	}
	out := a.clone()
	for obj, ended := range b {
		if prev, ok := out[obj]; ok {
			out[obj] = prev && ended
		} else {
			out[obj] = ended
		}
	}
	return out, false
}

// trackAssign handles span-producing right-hand sides.
func (w *spanWalker) trackAssign(st spanState, lhs []ast.Expr, i, nRhs int, call *ast.CallExpr) {
	var target ast.Expr
	if nRhs == len(lhs) {
		target = lhs[i]
	} else if len(lhs) == 1 {
		target = lhs[0]
	} else {
		return
	}
	ident, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		// Stored into a field, map or slice: ownership moved to the
		// container.
		return
	}
	if ident.Name == "_" {
		w.pass.Reportf(call.Pos(), "span discarded without End: assign it and end it, or hand it to an owner")
		return
	}
	w.track(st, ident, call)
}

// track begins tracking the span bound to ident.
func (w *spanWalker) track(st spanState, ident *ast.Ident, call *ast.CallExpr) {
	obj := w.info.Defs[ident]
	if obj == nil {
		obj = w.info.Uses[ident] // reassignment of an existing variable
	}
	if obj == nil {
		return
	}
	if ended, tracked := st[obj]; tracked && !ended {
		w.report(obj, call.Pos(), "is overwritten before being ended")
	}
	if w.starts == nil {
		w.starts = make(map[types.Object]token.Pos)
	}
	w.starts[obj] = call.Pos()
	st[obj] = false
}

// scanEscapes marks tracked spans as handed off when they are used in
// any way other than calling their own methods: passed as an argument,
// returned, stored, captured by a closure.
func (w *spanWalker) scanEscapes(st spanState, exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				// A closure capturing the span owns its End obligation,
				// even when the capture's only use is calling End.
				ast.Inspect(n.Body, func(m ast.Node) bool {
					if ident, ok := m.(*ast.Ident); ok {
						if obj := w.info.Uses[ident]; obj != nil {
							if _, tracked := st[obj]; tracked {
								st[obj] = true
							}
						}
					}
					return true
				})
				return false
			case *ast.SelectorExpr:
				// v.End()/v.SetInt()/v.StartSpan(): method access on
				// the span is not an escape; skip the receiver ident.
				if ident, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := w.info.Uses[ident]; obj != nil {
						if _, tracked := st[obj]; tracked {
							return false
						}
					}
				}
				return true
			case *ast.Ident:
				if obj := w.info.Uses[n]; obj != nil {
					if _, tracked := st[obj]; tracked {
						st[obj] = true // handed off: owner must End it
					}
				}
				return true
			}
			return true
		})
	}
}

// startSpanCall matches calls to a method named StartSpan whose result
// type has an End method (obs.Tracer.StartSpan, obs.Span.StartSpan and
// their golden-test doubles).
func startSpanCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	case *ast.Ident:
		name = fun.Name
	default:
		return nil, false
	}
	if name != "StartSpan" {
		return nil, false
	}
	tv, ok := info.Types[call]
	if !ok {
		return nil, false
	}
	return call, hasEndMethod(tv.Type)
}

// endCallReceiver matches v.End() on a span-typed variable and returns
// v's object.
func endCallReceiver(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" || len(call.Args) != 0 {
		return nil
	}
	ident, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[ident]
}

// hasEndMethod reports whether the type's method set contains End().
func hasEndMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		for i := 0; i < iface.NumMethods(); i++ {
			if iface.Method(i).Name() == "End" {
				return true
			}
		}
		return false
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "End" {
			return true
		}
	}
	// Also consider the pointer method set for value results.
	ms = types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "End" {
			return true
		}
	}
	return false
}

// isTerminatorCall matches panic(...) and os.Exit(...).
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if ident, ok := fun.X.(*ast.Ident); ok {
			return ident.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}
