package lint

import (
	"go/ast"
	"go/token"
)

// LockOrder enforces two deadlock invariants across the service-side
// packages (serve, sched, decomp, portfolio, obs):
//
//  1. Consistent lock ordering. Every observed nested acquisition —
//     taking mutex B while holding mutex A, directly or through a
//     callee whose summary acquires B — contributes an edge A→B to a
//     global lock-ordering graph built over all loaded packages. An
//     edge that lies on a cycle is reported: two goroutines taking the
//     same pair of locks in opposite orders is the textbook ABBA
//     deadlock, and it only manifests under contention.
//
//  2. No blocking while holding a mutex. A channel operation that can
//     park (send/receive outside a select with default), or a call
//     whose summary is may-block (Pool.Submit's backoff wait,
//     WaitGroup.Wait, an http write), made while a mutex is held,
//     stalls every other goroutine that needs the lock — the
//     slow-subscriber-stalls-the-solver class the obs bus was
//     explicitly designed to avoid.
//
// Mutexes are identified by class (owning type + field, via
// mutexKeyOf), so acquisition orders observed in different functions
// and packages compose. The per-function scan is source-order with the
// guardedby defer convention: a deferred Unlock keeps the lock held to
// function end. Function literals are skipped — a closure defined under
// a lock does not necessarily run under it.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock acquisitions must follow one global order and must not " +
		"wrap may-block operations (channel waits, Pool.Submit, HTTP writes)",
	Run: runLockOrder,
}

// lockOrderScope is the package set whose lock graphs compose; the
// solver core manages no cross-goroutine mutexes on its hot path.
func lockOrderScope(path string) bool {
	return pathEndsIn(path, "serve", "sched", "decomp", "portfolio", "obs")
}

// lockEdge is one observed nested acquisition: to was locked while from
// was held, at pos.
type lockEdge struct {
	from, to string
	pos      token.Pos
}

func runLockOrder(pass *Pass) {
	if !lockOrderScope(pass.Pkg.Path) {
		return
	}
	// Build the global ordering graph from every in-scope package, then
	// report only the edges observed in this package — each pass owns
	// its own findings, and the graph is identical from every side.
	var edges []lockEdge
	graph := make(map[string]map[string]bool)
	for _, pkg := range pass.All {
		if !lockOrderScope(pkg.Path) {
			continue
		}
		scanPackageLocks(pass, pkg, func(e lockEdge) {
			edges = append(edges, e)
			if graph[e.from] == nil {
				graph[e.from] = make(map[string]bool)
			}
			graph[e.from][e.to] = true
		})
	}
	for _, e := range edges {
		if !posInPackage(pass, e.pos) {
			continue
		}
		if reaches(graph, e.to, e.from, make(map[string]bool)) {
			pass.Reportf(e.pos, "acquiring %s while holding %s creates a lock-ordering cycle: "+
				"%s is (transitively) held elsewhere when %s is acquired; pick one global order",
				e.to, e.from, e.to, e.from)
		}
	}
}

// scanPackageLocks walks every function of pkg, emitting ordering edges
// through edge() and reporting may-block-under-mutex findings when the
// function belongs to the pass's own package.
func scanPackageLocks(pass *Pass, pkg *Package, edge func(lockEdge)) {
	report := pkg.Path == pass.Pkg.Path
	for _, f := range pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanFuncLocks(pass, pkg, fd, report, edge)
		}
	}
}

// scanFuncLocks is the per-function source-order scan: it tracks held
// mutex classes, emits ordering edges on nested acquisition (direct or
// via callee Acquires summaries), and flags blocking operations under a
// held lock.
func scanFuncLocks(pass *Pass, pkg *Package, fd *ast.FuncDecl, report bool, edge func(lockEdge)) {
	info := pkg.Info
	held := make(map[string]int)
	heldOrder := []string{} // acquisition order, for readable findings
	heldAny := func() (string, bool) {
		for i := len(heldOrder) - 1; i >= 0; i-- {
			if held[heldOrder[i]] > 0 {
				return heldOrder[i], true
			}
		}
		return "", false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			// A closure defined under the lock does not necessarily run
			// under it; its body is scanned when it runs (or never —
			// under-approximation is the right bias here).
			return false
		case *ast.DeferStmt:
			// Same convention as guardedby: a deferred Unlock keeps the
			// lock held to function end, so swallow it (skip the call so
			// the Unlock below never decrements).
			if _, op, ok := mutexOpKey(info, e.Call); ok && (op == "Unlock" || op == "RUnlock") {
				return false
			}
		case *ast.CallExpr:
			if key, op, ok := mutexOpKey(info, e); ok {
				switch op {
				case "Lock", "RLock":
					if holder, nested := heldAny(); nested && holder != key {
						edge(lockEdge{from: holder, to: key, pos: e.Pos()})
					}
					held[key]++
					heldOrder = append(heldOrder, key)
				case "Unlock", "RUnlock":
					held[key]--
				}
				return true
			}
			holder, locked := heldAny()
			if !locked {
				return true
			}
			// Direct stdlib blockers (WaitGroup.Wait, time.Sleep, http
			// writes) have no summary — classify them in place.
			if reason := blockingCall(info, e); reason != "" {
				if report {
					name := reason
					if s, ok := e.Fun.(*ast.SelectorExpr); ok {
						name = s.Sel.Name
					}
					pass.Reportf(e.Pos(), "call to %s may block (%s) while holding %s: "+
						"a stalled peer holds up every goroutine waiting on the lock; "+
						"move the call outside the critical section", name, reason, holder)
				}
				return true
			}
			callee := calleeOf(info, e)
			if callee == nil {
				return true
			}
			sum := pass.Summaries.Of(callee)
			for acquired := range sum.Acquires {
				if acquired != holder {
					edge(lockEdge{from: holder, to: acquired, pos: e.Pos()})
				}
			}
			if sum.MayBlock && report {
				pass.Reportf(e.Pos(), "call to %s may block (%s) while holding %s: "+
					"a stalled peer holds up every goroutine waiting on the lock; "+
					"move the call outside the critical section", callee.Name(), sum.Blocks, holder)
			}
		case *ast.SendStmt:
			if holder, locked := heldAny(); locked && report && !insideNonBlockingSelect(fd.Body, e.Pos()) {
				pass.Reportf(e.Pos(), "channel send while holding %s may block: "+
					"a full or unbuffered channel parks the goroutine with the lock held; "+
					"use a select with default or send outside the critical section", holder)
			}
		case *ast.UnaryExpr:
			if e.Op != token.ARROW {
				return true
			}
			if holder, locked := heldAny(); locked && report && !insideNonBlockingSelect(fd.Body, e.Pos()) {
				pass.Reportf(e.Pos(), "channel receive while holding %s may block: "+
					"an empty channel parks the goroutine with the lock held; "+
					"receive outside the critical section", holder)
			}
		}
		return true
	})
}

// reaches reports whether 'to' is reachable from 'from' in the ordering
// graph.
func reaches(graph map[string]map[string]bool, from, to string, seen map[string]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for next := range graph[from] {
		if reaches(graph, next, to, seen) {
			return true
		}
	}
	return false
}

// posInPackage reports whether pos falls in one of the pass package's
// files.
func posInPackage(pass *Pass, pos token.Pos) bool {
	name := pass.Fset.Position(pos).Filename
	for _, f := range pass.Pkg.Files {
		if pass.Fset.Position(f.Pos()).Filename == name {
			return true
		}
	}
	return false
}
