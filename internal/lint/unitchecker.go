package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"os"
)

// VetConfig mirrors the JSON configuration cmd/go hands a -vettool for
// each package unit: the file set to analyze plus the import universe
// as compiler export data. Only the fields ftlint consumes are
// declared; unknown fields are ignored by encoding/json.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// LoadVetConfig reads a cmd/go vet configuration file and type-checks
// the unit it describes. The returned package map contains only the
// unit itself: cross-package syntax is unavailable in vettool mode, so
// analyzers fall back to their intraprocedural/per-call heuristics.
func LoadVetConfig(path string) (*VetConfig, *token.FileSet, *Package, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: read vet config: %w", err)
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, nil, nil, fmt.Errorf("lint: parse vet config %s: %w", path, err)
	}
	fset := token.NewFileSet()
	pkg, err := typeCheck(fset, listedPackage{
		Dir:        cfg.Dir,
		ImportPath: cfg.ImportPath,
		GoFiles:    cfg.GoFiles, // cmd/go hands these as absolute paths
	}, vetImporter(fset, &cfg))
	if err != nil {
		return &cfg, nil, nil, err
	}
	return &cfg, fset, pkg, nil
}

// WriteVetx writes the (empty) facts file cmd/go expects a vettool to
// produce; ftlint's analyzers exchange no facts.
func (cfg *VetConfig) WriteVetx() error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// vetImporter satisfies imports from the export data files named in
// the vet config, applying the config's import map (vendoring etc.).
func vetImporter(fset *token.FileSet, cfg *VetConfig) types.Importer {
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	gc := newExportImporter(fset, exports)
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
