package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runAnalyzerTest loads testdata/src/<dir> through the real loader,
// runs one analyzer (suppression and directive handling included, via
// Run), and checks the findings against the golden's expectation
// comments:
//
//	code // want "regexp"
//
// Each want comment expects, on its own line, one finding per quoted
// regexp (double- or back-quoted); findings on lines without a matching
// want, and wants without a matching finding, fail the test. This is
// the analysistest contract, rebuilt on the stdlib-only framework.
func runAnalyzerTest(t *testing.T, analyzer *Analyzer, dirs ...string) {
	t.Helper()
	patterns := make([]string, len(dirs))
	for i, d := range dirs {
		patterns[i] = "./testdata/src/" + d
	}
	fset, targets, all, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("load %v: %v", patterns, err)
	}
	findings := Run(fset, targets, all, []*Analyzer{analyzer})

	wants := parseWants(t, fset, targets)
	for _, d := range findings {
		key := posKey(d.File, d.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no %s finding matched want %q", key, analyzer.Name, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func posKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// wantPattern extracts the quoted regexps of a want comment. Both
// double quotes (with escapes) and backquotes are accepted.
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants collects expectation comments from every golden file,
// keyed by file:line.
func parseWants(t *testing.T, fset *token.FileSet, pkgs []*Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					if strings.HasPrefix(c.Text, "/*") {
						text = strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
					}
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					quoted := wantPattern.FindAllString(text[len("want "):], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s: want comment with no quoted regexp: %s", pos, c.Text)
					}
					for _, q := range quoted {
						var expr string
						if q[0] == '`' {
							expr = q[1 : len(q)-1]
						} else {
							var err error
							expr, err = strconv.Unquote(q)
							if err != nil {
								t.Fatalf("%s: bad want string %s: %v", pos, q, err)
							}
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
						}
						key := posKey(pos.Filename, pos.Line)
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}
