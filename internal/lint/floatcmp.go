package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != on floating-point values in the
// probability-bearing packages (quant, bdd, core, differ). The
// pipeline converts probabilities through -log transforms, BDD
// convolutions and integer scaling; two mathematically equal
// probabilities routinely differ in the last ulp, so exact comparison
// is either a latent bug or an undocumented sentinel check. Both cases
// must be explicit: tolerance comparison through fp.Eq/fp.EqTol,
// sentinel checks through fp.Zero/fp.One, or an auditable
// //lint:ignore floatcmp <reason>.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "no ==/!= on float64 probabilities in quant/bdd/core/differ; " +
		"use the fp epsilon/sentinel helpers",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	if !pathEndsIn(pass.Pkg.Path, "quant", "bdd", "core", "differ") {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(*ast.BinaryExpr)
			if !ok || (e.Op != token.EQL && e.Op != token.NEQ) {
				return true
			}
			if isFloat(info.Types[e.X].Type) || isFloat(info.Types[e.Y].Type) {
				pass.Reportf(e.OpPos, "floating-point %q comparison; use fp.Eq/fp.EqTol for tolerance "+
					"or fp.Zero/fp.One for exact sentinel checks", e.Op)
			}
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
