package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func diag(analyzer, file, message string, line int) Diagnostic {
	return Diagnostic{Analyzer: analyzer, File: file, Line: line, Message: message}
}

// TestDiffBaseline pins the gate semantics: matching ignores line
// numbers (they drift with unrelated edits), is multiset-aware, and
// splits cleanly into regressions (fail) and resolved (remove from the
// checked-in file).
func TestDiffBaseline(t *testing.T) {
	base := &Baseline{
		Schema: ReportSchema,
		Findings: []Diagnostic{
			diag("ctxpoll", "internal/sat/solver.go", "poll the context", 10),
			diag("lockorder", "internal/obs/events.go", "channel send while holding", 20),
			diag("lockorder", "internal/obs/events.go", "channel send while holding", 21),
		},
	}

	findings := []Diagnostic{
		// Same finding, different line: still baseline-covered.
		diag("ctxpoll", "internal/sat/solver.go", "poll the context", 99),
		// Only one of the two identical lockorder entries still fires:
		// the other is resolved.
		diag("lockorder", "internal/obs/events.go", "channel send while holding", 20),
		// Brand new: a regression.
		diag("errtaxonomy", "internal/differ/differ.go", "sentinel comparison", 7),
	}

	regressions, resolved := DiffBaseline(base, findings)
	if len(regressions) != 1 || regressions[0].Analyzer != "errtaxonomy" {
		t.Fatalf("regressions = %v, want the single errtaxonomy finding", regressions)
	}
	if len(resolved) != 1 || resolved[0].Analyzer != "lockorder" {
		t.Fatalf("resolved = %v, want the single surplus lockorder entry", resolved)
	}

	// A third identical finding against a baseline holding two is a
	// regression: the multiset is counted, not the set.
	findings = append(findings, diag("lockorder", "internal/obs/events.go", "channel send while holding", 22),
		diag("lockorder", "internal/obs/events.go", "channel send while holding", 23))
	regressions, resolved = DiffBaseline(base, findings)
	if len(regressions) != 2 {
		t.Fatalf("got %d regressions, want 2 (errtaxonomy + third lockorder copy)", len(regressions))
	}
	if len(resolved) != 0 {
		t.Fatalf("resolved = %v, want none once both baseline copies are matched", resolved)
	}
}

// TestLoadBaseline round-trips the checked-in report format.
func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	want := Baseline{
		Schema:   ReportSchema,
		Findings: []Diagnostic{diag("floatcmp", "internal/ft/ft.go", "float equality", 3)},
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if got.Schema != want.Schema || len(got.Findings) != 1 || got.Findings[0].Analyzer != "floatcmp" {
		t.Fatalf("LoadBaseline = %+v, want %+v", got, want)
	}

	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("LoadBaseline on a missing file: want error, got nil")
	}
}
