package fp

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{0, 0, true},
		{1, 1 + 1e-12, true}, // within relative tolerance
		{1, 1 + 1e-6, false}, // outside
		{1e-30, 1.0000000001e-30, true},
		{1e-30, 2e-30, false},             // relative, not absolute: tiny values still distinguished
		{0, 1e-9, false},                  // zero only matches (sub)denormal neighbours
		{math.Inf(1), math.Inf(1), false}, // Inf-Inf is NaN; NaN <= x is false
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqTolMatchesDifferSemantics(t *testing.T) {
	// EqTol must reproduce the oracle comparison the differential
	// harness always used: |a-b| <= tol*max(|a|,|b|,1e-300).
	if !EqTol(0.5, 0.5+4e-10, 1e-9) {
		t.Error("within-tolerance probabilities compare unequal")
	}
	if EqTol(0.5, 0.5+6e-10, 1e-9) {
		t.Error("out-of-tolerance probabilities compare equal")
	}
}

func TestSentinels(t *testing.T) {
	if !Zero(0) || !Zero(math.Copysign(0, -1)) {
		t.Error("Zero must accept both signed zeros")
	}
	if Zero(math.SmallestNonzeroFloat64) {
		t.Error("Zero must be exact")
	}
	if !One(1) || One(math.Nextafter(1, 2)) || One(math.Nextafter(1, 0)) {
		t.Error("One must be exact")
	}
}
