// Package fp centralises the repo's floating-point comparison policy.
// Probabilities flow through -log transforms, integer scaling, BDD
// convolutions and back; two mathematically equal values routinely
// differ in the last ulp, so raw == / != on float64s is either a
// latent bug or an undocumented sentinel check. The floatcmp analyzer
// (internal/lint) forbids raw equality in the probability-bearing
// packages and points here: tolerance comparison through Eq/EqTol,
// boundary-probability sentinels through Zero/One.
package fp

import "math"

// DefaultTol is the relative tolerance used across the repo for
// probability agreement: the BDD oracle, the differential harness and
// the benchmark cross-checks all compare at 1e-9.
const DefaultTol = 1e-9

// tiny floors the relative-error denominator so comparisons against
// zero degrade to a meaningful absolute test instead of dividing by
// zero; 1e-300 sits far below any probability the pipeline produces.
const tiny = 1e-300

// Eq reports whether a and b are equal within DefaultTol relative
// tolerance.
func Eq(a, b float64) bool {
	return EqTol(a, b, DefaultTol)
}

// EqTol reports whether a and b are equal within the given relative
// tolerance: |a-b| <= tol * max(|a|, |b|, tiny).
func EqTol(a, b, tol float64) bool {
	larger := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(larger, tiny)
}

// Zero reports whether x is exactly +0 or -0. It exists for sentinel
// checks — an unset option, a p=0 never-fails event — where exactness
// is the point and must be visible at the call site.
func Zero(x float64) bool {
	return x == 0
}

// One reports whether x is exactly 1: the p=1 always-fails sentinel of
// the weight transform (such events cost nothing to fail).
func One(x float64) bool {
	return x == 1
}
