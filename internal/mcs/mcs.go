// Package mcs provides classical minimal-cut-set machinery for fault
// trees: the MOCUS top-down expansion algorithm, an exhaustive
// truth-table oracle for small trees, minimisation, and cut-set
// predicates. It complements the MaxSAT pipeline (internal/core) and
// the BDD engine (internal/bdd) as a baseline and as test oracles.
package mcs

import (
	"fmt"
	"sort"

	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/ft"
)

// CutSet is a set of basic-event ids, kept sorted.
type CutSet []string

// Probability returns the joint probability of the cut set: the product
// of the member events' probabilities.
func (c CutSet) Probability(probs map[string]float64) float64 {
	p := 1.0
	for _, id := range c {
		p *= probs[id]
	}
	return p
}

// contains reports whether c ⊇ other (both sorted).
func (c CutSet) contains(other CutSet) bool {
	if len(other) > len(c) {
		return false
	}
	i := 0
	for _, want := range other {
		for i < len(c) && c[i] < want {
			i++
		}
		if i >= len(c) || c[i] != want {
			return false
		}
		i++
	}
	return true
}

// normalize sorts and deduplicates a set's members.
func normalize(set []string) CutSet {
	sorted := append([]string(nil), set...)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			out = append(out, id)
		}
	}
	return CutSet(out)
}

// SortSets orders cut sets lexicographically (shorter first on ties),
// for deterministic output.
func SortSets(sets []CutSet) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Minimize removes duplicates and supersets, leaving only minimal sets.
func Minimize(sets []CutSet) []CutSet {
	bySize := make([]CutSet, len(sets))
	copy(bySize, sets)
	sort.Slice(bySize, func(i, j int) bool { return len(bySize[i]) < len(bySize[j]) })
	var out []CutSet
	for _, candidate := range bySize {
		redundant := false
		for _, kept := range out {
			if candidate.contains(kept) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, candidate)
		}
	}
	SortSets(out)
	return out
}

// MOCUS computes all minimal cut sets by top-down expansion of the
// tree's structure function (the classical MOCUS algorithm). Voting
// gates are expanded into AND/OR form first. Worst-case output is
// exponential; use the BDD engine for large trees.
func MOCUS(t *ft.Tree) ([]CutSet, error) {
	f, err := t.Formula()
	if err != nil {
		return nil, err
	}
	expanded := boolexpr.Simplify(boolexpr.ExpandAtLeast(f))
	if !boolexpr.IsMonotone(expanded) {
		return nil, fmt.Errorf("mcs: structure function is not monotone")
	}
	sets := expand(expanded)
	return Minimize(sets), nil
}

// expand returns the (not necessarily minimal) cut sets of a monotone
// And/Or/Var expression.
func expand(e boolexpr.Expr) []CutSet {
	switch x := e.(type) {
	case boolexpr.Var:
		return []CutSet{{x.Name}}
	case boolexpr.Or:
		var out []CutSet
		for _, c := range x.Xs {
			out = append(out, expand(c)...)
		}
		return out
	case boolexpr.And:
		out := []CutSet{{}}
		for _, c := range x.Xs {
			child := expand(c)
			if len(child) == 0 {
				return nil // conjunction with an unsatisfiable operand
			}
			next := make([]CutSet, 0, len(out)*len(child))
			for _, left := range out {
				for _, right := range child {
					merged := make([]string, 0, len(left)+len(right))
					merged = append(merged, left...)
					merged = append(merged, right...)
					next = append(next, normalize(merged))
				}
			}
			out = next
		}
		return out
	case boolexpr.Const:
		if x.B {
			return []CutSet{{}}
		}
		return nil
	}
	// Simplify + ExpandAtLeast leave no other node kinds.
	panic(fmt.Sprintf("mcs: unexpected expression type %T", e))
}

// Exhaustive computes all minimal cut sets by truth-table enumeration —
// the oracle used in tests. It refuses trees with more than MaxOracleEvents
// events.
func Exhaustive(t *ft.Tree) ([]CutSet, error) {
	if t.NumEvents() > MaxOracleEvents {
		return nil, fmt.Errorf("mcs: %d events exceed the exhaustive oracle limit %d", t.NumEvents(), MaxOracleEvents)
	}
	f, err := t.Formula()
	if err != nil {
		return nil, err
	}
	events := t.Events()
	vars := make([]string, len(events))
	for i, e := range events {
		vars[i] = e.ID
	}
	var out []CutSet
	boolexpr.AllAssignments(vars, func(assign map[string]bool) bool {
		if !f.Eval(assign) {
			return true
		}
		// Minimal under monotonicity: no single removal stays true.
		for _, v := range vars {
			if !assign[v] {
				continue
			}
			assign[v] = false
			sat := f.Eval(assign)
			assign[v] = true
			if sat {
				return true
			}
		}
		var set []string
		for _, v := range vars {
			if assign[v] {
				set = append(set, v)
			}
		}
		out = append(out, normalize(set))
		return true
	})
	SortSets(out)
	return out, nil
}

// MaxOracleEvents bounds the exhaustive oracle (2^n evaluations).
const MaxOracleEvents = 22

// IsCutSet reports whether failing exactly the given events triggers the
// top event.
func IsCutSet(t *ft.Tree, set []string) (bool, error) {
	failed := make(map[string]bool, len(set))
	for _, id := range set {
		if t.Event(id) == nil {
			return false, fmt.Errorf("mcs: %q is not a basic event", id)
		}
		failed[id] = true
	}
	return t.Eval(failed)
}

// IsMinimalCutSet reports whether the set is a cut set none of whose
// proper subsets is (single-removal check, exact for coherent trees).
func IsMinimalCutSet(t *ft.Tree, set []string) (bool, error) {
	cut, err := IsCutSet(t, set)
	if err != nil || !cut {
		return false, err
	}
	norm := normalize(set)
	failed := make(map[string]bool, len(norm))
	for _, id := range norm {
		failed[id] = true
	}
	for _, id := range norm {
		failed[id] = false
		still, err := t.Eval(failed)
		failed[id] = true
		if err != nil {
			return false, err
		}
		if still {
			return false, nil
		}
	}
	return true, nil
}

// SPOFs returns the single points of failure: events that alone trigger
// the top event (the qualitative measure named in the paper's §II).
func SPOFs(t *ft.Tree) ([]string, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var out []string
	for _, e := range t.Events() {
		cut, err := IsCutSet(t, []string{e.ID})
		if err != nil {
			return nil, err
		}
		if cut {
			out = append(out, e.ID)
		}
	}
	sort.Strings(out)
	return out, nil
}

// MaxProbability returns the cut set with the highest joint probability
// among the given sets, breaking ties deterministically (lexicographic).
// It returns nil for an empty input.
func MaxProbability(sets []CutSet, probs map[string]float64) (CutSet, float64) {
	var (
		best     CutSet
		bestProb float64
	)
	ordered := make([]CutSet, len(sets))
	copy(ordered, sets)
	SortSets(ordered)
	for _, set := range ordered {
		if p := set.Probability(probs); p > bestProb {
			best, bestProb = set, p
		}
	}
	return best, bestProb
}
