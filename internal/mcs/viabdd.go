package mcs

import (
	"mpmcs4fta/internal/bdd"
	"mpmcs4fta/internal/ft"
)

// ViaBDD computes all minimal cut sets through the BDD engine (Rauzy's
// algorithm): polynomial in the BDD size rather than in the number of
// products, so it scales far beyond MOCUS. The output order matches
// MOCUS (lexicographic).
func ViaBDD(t *ft.Tree) ([]CutSet, error) {
	f, err := t.Formula()
	if err != nil {
		return nil, err
	}
	m, err := bdd.NewManager(t.DFSEventOrder())
	if err != nil {
		return nil, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := m.FromExpr(f)
	if err != nil {
		return nil, err
	}
	family, err := m.MinimalCutSets(ref)
	if err != nil {
		return nil, err
	}
	sets := m.ZSets(family)
	out := make([]CutSet, len(sets))
	for i, set := range sets {
		out[i] = CutSet(set)
	}
	SortSets(out)
	return out, nil
}

// CountViaBDD returns the number of minimal cut sets without
// enumerating them — usable even when the family is astronomically
// large.
func CountViaBDD(t *ft.Tree) (int64, error) {
	f, err := t.Formula()
	if err != nil {
		return 0, err
	}
	m, err := bdd.NewManager(t.DFSEventOrder())
	if err != nil {
		return 0, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := m.FromExpr(f)
	if err != nil {
		return 0, err
	}
	family, err := m.MinimalCutSets(ref)
	if err != nil {
		return 0, err
	}
	return m.ZCount(family), nil
}
