package mcs

import (
	"reflect"
	"testing"

	"mpmcs4fta/internal/gen"
)

func TestPathSetsFPS(t *testing.T) {
	sets, err := PathSetsViaBDD(gen.FPS())
	if err != nil {
		t.Fatal(err)
	}
	// Y(t) = (y1|y2) & y3 & y4 & (y5 | (y6&y7)): its minimal cut sets
	// are the FPS minimal path sets.
	want := []CutSet{
		{"x1", "x3", "x4", "x5"},
		{"x1", "x3", "x4", "x6", "x7"},
		{"x2", "x3", "x4", "x5"},
		{"x2", "x3", "x4", "x6", "x7"},
	}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("PathSets = %v, want %v", sets, want)
	}
}

func TestIsPathSet(t *testing.T) {
	tree := gen.FPS()
	tests := []struct {
		name string
		set  []string
		want bool
	}{
		{"minimal path set", []string{"x1", "x3", "x4", "x5"}, true},
		{"superset still path set", []string{"x1", "x2", "x3", "x4", "x5"}, true},
		{"not a path set", []string{"x1", "x3", "x4"}, false},
		{"empty set", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := IsPathSet(tree, tt.set)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("IsPathSet(%v) = %v, want %v", tt.set, got, tt.want)
			}
		})
	}
	if _, err := IsPathSet(tree, []string{"ghost"}); err == nil {
		t.Error("unknown event accepted")
	}
}

// TestPathSetsBlockEveryCutSet: cut sets and path sets must intersect —
// the defining duality of coherent fault trees.
func TestPathSetsBlockEveryCutSet(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tree, err := gen.Random(gen.Config{Events: 9, Seed: seed, VotingFrac: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		cuts, err := ViaBDD(tree)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := PathSetsViaBDD(tree)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range cuts {
			inCut := make(map[string]bool, len(cut))
			for _, id := range cut {
				inCut[id] = true
			}
			for _, path := range paths {
				intersects := false
				for _, id := range path {
					if inCut[id] {
						intersects = true
						break
					}
				}
				if !intersects {
					t.Fatalf("seed %d: cut %v and path %v are disjoint", seed, cut, path)
				}
			}
		}
	}
}

// TestPathSetsAreMinimal: removing any element from a minimal path set
// stops it being a path set.
func TestPathSetsAreMinimal(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tree, err := gen.Random(gen.Config{Events: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		paths, err := PathSetsViaBDD(tree)
		if err != nil {
			t.Fatal(err)
		}
		for _, path := range paths {
			ok, err := IsPathSet(tree, path)
			if err != nil || !ok {
				t.Fatalf("seed %d: %v is not a path set (%v)", seed, path, err)
			}
			for drop := range path {
				smaller := append(append(CutSet{}, path[:drop]...), path[drop+1:]...)
				ok, err := IsPathSet(tree, smaller)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					t.Fatalf("seed %d: %v is not minimal (%v suffices)", seed, path, smaller)
				}
			}
		}
	}
}
