package mcs

import (
	"fmt"

	"mpmcs4fta/internal/bdd"
	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/ft"
)

// PathSetsViaBDD computes all minimal path sets: minimal sets of basic
// events whose simultaneous *functioning* guarantees the top event
// cannot occur. They are the minimal cut sets of the success tree (the
// paper's Step-1 dual), and the qualitative complement of the cut-set
// view: cut sets say how the system fails, path sets say what keeps it
// alive.
func PathSetsViaBDD(t *ft.Tree) ([]CutSet, error) {
	f, err := t.Formula()
	if err != nil {
		return nil, err
	}
	dual := boolexpr.Dual(f)
	m, err := bdd.NewManager(t.DFSEventOrder())
	if err != nil {
		return nil, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := m.FromExpr(dual)
	if err != nil {
		return nil, err
	}
	family, err := m.MinimalCutSets(ref)
	if err != nil {
		return nil, err
	}
	sets := m.ZSets(family)
	out := make([]CutSet, len(sets))
	for i, set := range sets {
		out[i] = CutSet(set)
	}
	SortSets(out)
	return out, nil
}

// IsPathSet reports whether keeping exactly the given events functional
// prevents the top event regardless of every other event failing.
func IsPathSet(t *ft.Tree, set []string) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	working := make(map[string]bool, len(set))
	for _, id := range set {
		if t.Event(id) == nil {
			return false, fmt.Errorf("mcs: %q is not a basic event", id)
		}
		working[id] = true
	}
	// Fail everything outside the set.
	failed := make(map[string]bool, t.NumEvents())
	for _, e := range t.Events() {
		failed[e.ID] = !working[e.ID]
	}
	top, err := t.Eval(failed)
	if err != nil {
		return false, err
	}
	return !top, nil
}
