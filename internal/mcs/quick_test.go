package mcs

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
)

// genTree is a quick.Generator producing small random fault trees.
type genTree struct {
	T *ft.Tree
}

// Generate implements quick.Generator.
func (genTree) Generate(r *rand.Rand, _ int) reflect.Value {
	tree, err := gen.Random(gen.Config{
		Events:     4 + r.Intn(8),
		Seed:       r.Int63(),
		VotingFrac: 0.25,
	})
	if err != nil {
		panic(err) // generator misconfiguration, not a property failure
	}
	return reflect.ValueOf(genTree{T: tree})
}

func mcsQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(109))}
}

// TestQuickMOCUSSetsAreMinimalCutSets: every reported set is a cut set
// and is minimal.
func TestQuickMOCUSSetsAreMinimalCutSets(t *testing.T) {
	property := func(g genTree) bool {
		sets, err := MOCUS(g.T)
		if err != nil {
			return false
		}
		for _, set := range sets {
			ok, err := IsMinimalCutSet(g.T, set)
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, mcsQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickMOCUSAgreesWithBDD: the classical expansion and the BDD
// route enumerate identical families.
func TestQuickMOCUSAgreesWithBDD(t *testing.T) {
	property := func(g genTree) bool {
		mocus, err := MOCUS(g.T)
		if err != nil {
			return false
		}
		viaBDD, err := ViaBDD(g.T)
		if err != nil {
			return false
		}
		if len(mocus) != len(viaBDD) {
			return false
		}
		for i := range mocus {
			if !reflect.DeepEqual(mocus[i], viaBDD[i]) {
				return false
			}
		}
		count, err := CountViaBDD(g.T)
		return err == nil && count == int64(len(mocus))
	}
	if err := quick.Check(property, mcsQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimizeProducesAntichain: no output set contains another.
func TestQuickMinimizeProducesAntichain(t *testing.T) {
	property := func(g genTree) bool {
		sets, err := MOCUS(g.T)
		if err != nil {
			return false
		}
		minimized := Minimize(sets)
		for i := range minimized {
			for j := range minimized {
				if i != j && minimized[i].contains(minimized[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, mcsQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickMaxProbabilityIsMaximal: no enumerated set beats the
// reported maximum.
func TestQuickMaxProbabilityIsMaximal(t *testing.T) {
	property := func(g genTree) bool {
		sets, err := MOCUS(g.T)
		if err != nil {
			return false
		}
		probs := g.T.Probabilities()
		_, best := MaxProbability(sets, probs)
		for _, set := range sets {
			if set.Probability(probs) > best+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, mcsQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickSPOFsAreSingletonCutSets: SPOF ⇔ the singleton {e} is a cut
// set.
func TestQuickSPOFsAreSingletonCutSets(t *testing.T) {
	property := func(g genTree) bool {
		spofs, err := SPOFs(g.T)
		if err != nil {
			return false
		}
		isSPOF := make(map[string]bool, len(spofs))
		for _, id := range spofs {
			isSPOF[id] = true
		}
		for _, e := range g.T.Events() {
			cut, err := IsCutSet(g.T, []string{e.ID})
			if err != nil {
				return false
			}
			if cut != isSPOF[e.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, mcsQuickConfig()); err != nil {
		t.Error(err)
	}
}
