package mcs

import (
	"math"
	"reflect"
	"testing"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
)

func TestMOCUSFPS(t *testing.T) {
	sets, err := MOCUS(gen.FPS())
	if err != nil {
		t.Fatal(err)
	}
	want := []CutSet{
		{"x1", "x2"},
		{"x3"},
		{"x4"},
		{"x5", "x6"},
		{"x5", "x7"},
	}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("MOCUS = %v, want %v", sets, want)
	}
}

func TestExhaustiveMatchesMOCUS(t *testing.T) {
	trees := []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()}
	for _, tree := range trees {
		mocus, err := MOCUS(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		oracle, err := Exhaustive(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		if !reflect.DeepEqual(mocus, oracle) {
			t.Errorf("%s: MOCUS %v != oracle %v", tree.Name(), mocus, oracle)
		}
	}
}

func TestMOCUSMatchesOracleOnRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		tree, err := gen.Random(gen.Config{Events: 10, Seed: seed, VotingFrac: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		mocus, err := MOCUS(tree)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		oracle, err := Exhaustive(tree)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(mocus, oracle) {
			t.Errorf("seed %d: MOCUS %v != oracle %v", seed, mocus, oracle)
		}
	}
}

func TestExhaustiveRefusesLargeTrees(t *testing.T) {
	tree, err := gen.Random(gen.Config{Events: MaxOracleEvents + 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(tree); err == nil {
		t.Error("oracle accepted an oversized tree")
	}
}

func TestMinimize(t *testing.T) {
	sets := []CutSet{
		{"a", "b"},
		{"a"},
		{"a", "b", "c"},
		{"b", "c"},
		{"a"},
	}
	got := Minimize(sets)
	want := []CutSet{{"a"}, {"b", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Minimize = %v, want %v", got, want)
	}
}

func TestCutSetProbability(t *testing.T) {
	probs := map[string]float64{"x1": 0.2, "x2": 0.1}
	if p := (CutSet{"x1", "x2"}).Probability(probs); math.Abs(p-0.02) > 1e-15 {
		t.Errorf("Probability = %v, want 0.02", p)
	}
	if p := (CutSet{}).Probability(probs); p != 1 {
		t.Errorf("empty set probability = %v, want 1", p)
	}
}

func TestIsCutSet(t *testing.T) {
	tree := gen.FPS()
	tests := []struct {
		name string
		set  []string
		want bool
	}{
		{"mpmcs", []string{"x1", "x2"}, true},
		{"single sensor", []string{"x1"}, false},
		{"superset", []string{"x1", "x2", "x5"}, true},
		{"spof", []string{"x3"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := IsCutSet(tree, tt.set)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("IsCutSet(%v) = %v, want %v", tt.set, got, tt.want)
			}
		})
	}
	if _, err := IsCutSet(tree, []string{"ghost"}); err == nil {
		t.Error("unknown event accepted")
	}
	if _, err := IsCutSet(tree, []string{"detection"}); err == nil {
		t.Error("gate id accepted as event")
	}
}

func TestIsMinimalCutSet(t *testing.T) {
	tree := gen.FPS()
	tests := []struct {
		name string
		set  []string
		want bool
	}{
		{"minimal pair", []string{"x1", "x2"}, true},
		{"non-cut", []string{"x1"}, false},
		{"superset not minimal", []string{"x1", "x2", "x5"}, false},
		{"spof minimal", []string{"x4"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := IsMinimalCutSet(tree, tt.set)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("IsMinimalCutSet(%v) = %v, want %v", tt.set, got, tt.want)
			}
		})
	}
}

func TestSPOFs(t *testing.T) {
	got, err := SPOFs(gen.FPS())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"x3", "x4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SPOFs = %v, want %v", got, want)
	}

	spofs, err := SPOFs(gen.PressureTank())
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"k2", "t1"}
	if !reflect.DeepEqual(spofs, want) {
		t.Errorf("PressureTank SPOFs = %v, want %v", spofs, want)
	}
}

func TestMaxProbability(t *testing.T) {
	tree := gen.FPS()
	sets, err := MOCUS(tree)
	if err != nil {
		t.Fatal(err)
	}
	best, prob := MaxProbability(sets, tree.Probabilities())
	if !reflect.DeepEqual(best, CutSet{"x1", "x2"}) {
		t.Errorf("best = %v, want [x1 x2]", best)
	}
	if math.Abs(prob-0.02) > 1e-15 {
		t.Errorf("prob = %v, want 0.02", prob)
	}
	if best, prob := MaxProbability(nil, nil); best != nil || prob != 0 {
		t.Errorf("empty input: %v, %v", best, prob)
	}
}

func TestContains(t *testing.T) {
	tests := []struct {
		a, b CutSet
		want bool
	}{
		{CutSet{"a", "b", "c"}, CutSet{"a", "c"}, true},
		{CutSet{"a", "b"}, CutSet{"a", "b"}, true},
		{CutSet{"a"}, CutSet{"a", "b"}, false},
		{CutSet{"a", "c"}, CutSet{"b"}, false},
		{CutSet{"a", "b"}, CutSet{}, true},
	}
	for _, tt := range tests {
		if got := tt.a.contains(tt.b); got != tt.want {
			t.Errorf("%v contains %v = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}
