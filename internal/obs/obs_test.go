package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopSpanZeroAllocs(t *testing.T) {
	tr := Nop()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.StartSpan("analyze")
		root.SetString("tree", "fps")
		root.SetInt("events", 3)
		child := root.StartSpan("solve")
		child.SetBool("completed", true)
		child.SetFloat("ms", 1.5)
		child.End()
		root.End()
	})
	if allocs != 0 {
		t.Errorf("no-op span tree allocated %v objects per run, want 0", allocs)
	}
}

func TestNopSpanNotRecording(t *testing.T) {
	if Nop().StartSpan("x").Recording() {
		t.Error("no-op span claims to be recording")
	}
	if NopSpan().Recording() {
		t.Error("NopSpan claims to be recording")
	}
}

func TestJSONTracerSpanTree(t *testing.T) {
	tr := NewJSONTracer()
	root := tr.StartSpan("analyze")
	root.SetString("tree", "fps")
	child := root.StartSpan("solve")
	child.SetInt("engines", 6)
	grand := child.StartSpan("engine:wmsu1")
	grand.SetBool("completed", true)
	time.Sleep(time.Millisecond)
	grand.End()
	child.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "analyze" {
		t.Fatalf("roots = %+v", roots)
	}
	if got := roots[0].Attrs["tree"]; got != "fps" {
		t.Errorf("root attr tree = %v", got)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "solve" {
		t.Fatalf("children = %+v", roots[0].Children)
	}
	solve := roots[0].Children[0]
	if len(solve.Children) != 1 || solve.Children[0].Name != "engine:wmsu1" {
		t.Fatalf("grandchildren = %+v", solve.Children)
	}
	if solve.Children[0].DurationMS <= 0 {
		t.Errorf("ended span has duration %v", solve.Children[0].DurationMS)
	}
	if !root.Recording() {
		t.Error("JSON span not recording")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans []*SpanRecord `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Spans) != 1 {
		t.Errorf("decoded %d root spans", len(doc.Spans))
	}
}

func TestJSONTracerConcurrent(t *testing.T) {
	tr := NewJSONTracer()
	root := tr.StartSpan("solve")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.StartSpan(fmt.Sprintf("engine:%d", i))
			sp.SetInt("conflicts", int64(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Roots()[0].Children); got != 8 {
		t.Errorf("got %d engine spans, want 8", got)
	}
}

func TestContextSpanPlumbing(t *testing.T) {
	ctx := context.Background()
	if sp := SpanFromContext(ctx); sp.Recording() {
		t.Error("empty context should yield the no-op span")
	}
	tr := NewJSONTracer()
	root := tr.StartSpan("root")
	ctx = ContextWithSpan(ctx, root)
	if sp := SpanFromContext(ctx); !sp.Recording() {
		t.Error("context lost the recording span")
	}
}

func TestMetrics(t *testing.T) {
	m := NewMetrics()
	m.Add("analyses", 1)
	m.Add("analyses", 2)
	m.Add("conflicts", 40)
	if got := m.Get("analyses"); got != 3 {
		t.Errorf("analyses = %d", got)
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "analyses 3\nconflicts 40\n"
	if buf.String() != want {
		t.Errorf("WriteText = %q, want %q", buf.String(), want)
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.Add("x", 1) // must not panic
	if m.Get("x") != 0 || m.Snapshot() != nil {
		t.Error("nil metrics should read as empty")
	}
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteText: %v %q", err, buf.String())
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				m.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get("n"); got != 1600 {
		t.Errorf("n = %d, want 1600", got)
	}
}

func TestSolverStatsAdd(t *testing.T) {
	a := SolverStats{SATCalls: 2, Conflicts: 10, Decisions: 20}
	a.RecordBound(1, 0, 5)
	b := SolverStats{SATCalls: 1, Conflicts: 5, Restarts: 2}
	b.RecordBound(1, 3, 3)
	a.Add(b)
	if a.SATCalls != 3 || a.Conflicts != 15 || a.Restarts != 2 {
		t.Errorf("Add result %+v", a)
	}
	if len(a.Bounds) != 2 || a.Bounds[1].Lower != 3 {
		t.Errorf("bounds %+v", a.Bounds)
	}
}

func TestStartPprofServer(t *testing.T) {
	addr, stop, err := StartPprofServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}
}

func TestStartCPUProfile(t *testing.T) {
	path := t.TempDir() + "/cpu.prof"
	stop, err := StartCPUProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile is empty")
	}
	if _, err := StartCPUProfile(t.TempDir() + "/nope/cpu.prof"); err == nil {
		t.Error("expected error for unwritable path")
	} else if !strings.Contains(err.Error(), "cpu profile") {
		t.Errorf("error %v", err)
	}
}

// TestSolverStatsEngineTagging covers the bound-trajectory attribution
// added for the live telemetry stream: Start names the engine, every
// recorded step carries the engine tag and a wall-clock stamp, and
// TagEngine retags already-recorded steps (the portfolio renames
// trajectories under its registered engine names).
func TestSolverStatsEngineTagging(t *testing.T) {
	var s SolverStats
	s.Start("wmsu1")
	if s.Engine() != "wmsu1" {
		t.Fatalf("Engine() = %q after Start, want wmsu1", s.Engine())
	}
	s.RecordBound(1, 0, 9)
	s.RecordBound(2, 3, 7)
	for i, step := range s.Bounds {
		if step.Engine != "wmsu1" {
			t.Errorf("step %d engine %q, want wmsu1", i, step.Engine)
		}
		if step.AtMS < 0 {
			t.Errorf("step %d has negative wall-clock stamp %v", i, step.AtMS)
		}
	}

	s.TagEngine("wmsu1-strat")
	if s.Engine() != "wmsu1-strat" {
		t.Errorf("Engine() = %q after TagEngine, want wmsu1-strat", s.Engine())
	}
	for i, step := range s.Bounds {
		if step.Engine != "wmsu1-strat" {
			t.Errorf("step %d engine %q after retag, want wmsu1-strat", i, step.Engine)
		}
	}
}

// TestSolverStatsAddKeepsEngineTags: merged trajectories must stay
// attributable — concatenation is only sound because each BoundStep
// carries its own engine tag.
func TestSolverStatsAddKeepsEngineTags(t *testing.T) {
	var a, b SolverStats
	a.Start("linear-su")
	a.RecordBound(1, 0, 5)
	b.Start("branch-bound")
	b.RecordBound(1, 2, 4)
	a.Add(b)
	if len(a.Bounds) != 2 {
		t.Fatalf("merged %d bound steps, want 2", len(a.Bounds))
	}
	if a.Bounds[0].Engine != "linear-su" || a.Bounds[1].Engine != "branch-bound" {
		t.Errorf("merged trajectory lost attribution: %+v", a.Bounds)
	}
}

// TestSolverStatsRecordBoundWithoutStart: standalone engine use (no
// portfolio, no Start call) must still stamp timestamps lazily and
// leave the engine tag empty rather than panic.
func TestSolverStatsRecordBoundWithoutStart(t *testing.T) {
	var s SolverStats
	s.RecordBound(1, 1, 2)
	if len(s.Bounds) != 1 || s.Bounds[0].AtMS < 0 {
		t.Fatalf("lazy clock failed: %+v", s.Bounds)
	}
}
