package obs

import (
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime/pprof"
)

// StartPprofServer serves the net/http/pprof handlers (and expvar's
// /debug/vars) on addr and returns the bound address plus a stop
// function. It uses a private mux, so importing this package does not
// pollute http.DefaultServeMux.
func StartPprofServer(addr string) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: pprof listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/debug/vars", http.DefaultServeMux) // expvar registers there
	srv := &http.Server{Handler: mux}
	//lint:ignore goroutinewait server goroutine lives until the returned stop function calls srv.Close
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed after stop
	return ln.Addr().String(), srv.Close, nil
}

// StartCPUProfile writes a CPU profile to path until the returned stop
// function is called.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}
