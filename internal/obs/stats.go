package obs

import "time"

// SolverStats aggregates the work counters of one MaxSAT engine run —
// the per-call statistics the MaxSAT-evaluation literature uses to
// characterise solvers. Engines fill it in even when interrupted, so
// the portfolio can report what every member did, including losers.
type SolverStats struct {
	// SATCalls counts oracle invocations (successive SAT calls for the
	// SAT-backed engines; 0 for branch-and-bound).
	SATCalls int64 `json:"satCalls"`
	// Conflicts, Decisions, Propagations, Restarts, LearntClauses and
	// DeletedClauses sum the CDCL counters over all SAT calls. For
	// branch-and-bound, Decisions counts branch assignments,
	// Propagations unit propagations and Conflicts dead ends.
	Conflicts      int64 `json:"conflicts"`
	Decisions      int64 `json:"decisions"`
	Propagations   int64 `json:"propagations"`
	Restarts       int64 `json:"restarts"`
	LearntClauses  int64 `json:"learntClauses"`
	DeletedClauses int64 `json:"deletedClauses"`
	// Bounds is the cost-bound trajectory: how the engine closed in on
	// the optimum, one step per bound improvement. Steps carry the
	// recording engine's name, so trajectories merged by Add stay
	// separable into per-engine series.
	Bounds []BoundStep `json:"bounds,omitempty"`

	// engine names the run for BoundStep tagging; set by Start or
	// TagEngine, never serialised (each step carries its own copy).
	engine string
	// t0 anchors BoundStep wall-clock stamps; zero means "first
	// RecordBound starts the clock".
	t0 time.Time
}

// BoundStep is one point of an engine's cost-bound trajectory.
type BoundStep struct {
	// Engine names the engine that recorded the step, so trajectories
	// aggregated across portfolio members remain plottable per engine.
	Engine string `json:"engine,omitempty"`
	// Call is the engine's progress index when the bound moved: the
	// SAT-call count for SAT-backed engines, the decision count for
	// branch-and-bound.
	Call int64 `json:"call"`
	// Lower is the best proven lower bound on the optimum so far.
	Lower int64 `json:"lower"`
	// Upper is the best model cost found so far; -1 means no model yet.
	Upper int64 `json:"upper"`
	// AtMS is the wall-clock offset of the step in milliseconds since
	// the engine started, aligning trajectories from stats, JSON traces
	// and the /events stream on one time axis.
	AtMS float64 `json:"atMillis"`
}

// Start names the run and starts its trajectory clock; call it at
// engine entry so BoundSteps carry the engine tag and a wall-clock
// offset.
func (s *SolverStats) Start(engine string) {
	s.engine = engine
	s.t0 = time.Now()
}

// RecordBound appends a trajectory step, stamped with the engine name
// and the milliseconds since Start (the first step starts the clock if
// Start was never called).
func (s *SolverStats) RecordBound(call, lower, upper int64) {
	now := time.Now()
	if s.t0.IsZero() {
		s.t0 = now
	}
	s.Bounds = append(s.Bounds, BoundStep{
		Engine: s.engine,
		Call:   call,
		Lower:  lower,
		Upper:  upper,
		AtMS:   sinceMillis(s.t0, now),
	})
}

// TagEngine renames the run and restamps every recorded step: the
// portfolio registers engines under configuration-specific names
// ("linear-su-rnd") the algorithm itself does not know, so it retags
// collected stats after the race.
func (s *SolverStats) TagEngine(engine string) {
	s.engine = engine
	for i := range s.Bounds {
		s.Bounds[i].Engine = engine
	}
}

// Engine returns the run's engine tag.
func (s *SolverStats) Engine() string { return s.engine }

// BoundTraffic counts cooperative bound-sharing events in a portfolio
// race: how often engines published improving models and lower bounds
// through the shared bound manager, and whether the race was closed by
// the bounds meeting (lower ≥ upper) rather than by a single engine
// finishing. The per-engine bound trajectories live in
// SolverStats.Bounds; this is the cross-engine traffic summary.
type BoundTraffic struct {
	// ModelsPublished counts PublishModel calls across all engines.
	ModelsPublished int64 `json:"modelsPublished"`
	// ModelsImproved counts the publications that lowered the global
	// upper bound (the rest arrived too late to matter).
	ModelsImproved int64 `json:"modelsImproved"`
	// LowerBoundsPublished counts PublishLower calls across all engines.
	LowerBoundsPublished int64 `json:"lowerBoundsPublished"`
	// LowerBoundsImproved counts the publications that raised the global
	// lower bound.
	LowerBoundsImproved int64 `json:"lowerBoundsImproved"`
	// RaceClosedByBounds reports that the race terminated because the
	// shared lower bound met the shared upper bound — a cooperative
	// optimality proof no single engine completed on its own.
	RaceClosedByBounds bool `json:"raceClosedByBounds,omitempty"`
}

// Add accumulates another run's counters into s. Bound trajectories
// are concatenated, but each step keeps its engine tag, so the merged
// series separates back into per-engine trajectories (interleaving
// untagged steps from different engines would yield a meaningless
// non-monotone series). Useful for aggregating across portfolio
// members or successive analyses.
func (s *SolverStats) Add(o SolverStats) {
	s.SATCalls += o.SATCalls
	s.Conflicts += o.Conflicts
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Restarts += o.Restarts
	s.LearntClauses += o.LearntClauses
	s.DeletedClauses += o.DeletedClauses
	s.Bounds = append(s.Bounds, o.Bounds...)
}
