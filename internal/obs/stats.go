package obs

// SolverStats aggregates the work counters of one MaxSAT engine run —
// the per-call statistics the MaxSAT-evaluation literature uses to
// characterise solvers. Engines fill it in even when interrupted, so
// the portfolio can report what every member did, including losers.
type SolverStats struct {
	// SATCalls counts oracle invocations (successive SAT calls for the
	// SAT-backed engines; 0 for branch-and-bound).
	SATCalls int64 `json:"satCalls"`
	// Conflicts, Decisions, Propagations, Restarts, LearntClauses and
	// DeletedClauses sum the CDCL counters over all SAT calls. For
	// branch-and-bound, Decisions counts branch assignments,
	// Propagations unit propagations and Conflicts dead ends.
	Conflicts      int64 `json:"conflicts"`
	Decisions      int64 `json:"decisions"`
	Propagations   int64 `json:"propagations"`
	Restarts       int64 `json:"restarts"`
	LearntClauses  int64 `json:"learntClauses"`
	DeletedClauses int64 `json:"deletedClauses"`
	// Bounds is the cost-bound trajectory: how the engine closed in on
	// the optimum, one step per bound improvement.
	Bounds []BoundStep `json:"bounds,omitempty"`
}

// BoundStep is one point of an engine's cost-bound trajectory.
type BoundStep struct {
	// Call is the engine's progress index when the bound moved: the
	// SAT-call count for SAT-backed engines, the decision count for
	// branch-and-bound.
	Call int64 `json:"call"`
	// Lower is the best proven lower bound on the optimum so far.
	Lower int64 `json:"lower"`
	// Upper is the best model cost found so far; -1 means no model yet.
	Upper int64 `json:"upper"`
}

// RecordBound appends a trajectory step.
func (s *SolverStats) RecordBound(call, lower, upper int64) {
	s.Bounds = append(s.Bounds, BoundStep{Call: call, Lower: lower, Upper: upper})
}

// BoundTraffic counts cooperative bound-sharing events in a portfolio
// race: how often engines published improving models and lower bounds
// through the shared bound manager, and whether the race was closed by
// the bounds meeting (lower ≥ upper) rather than by a single engine
// finishing. The per-engine bound trajectories live in
// SolverStats.Bounds; this is the cross-engine traffic summary.
type BoundTraffic struct {
	// ModelsPublished counts PublishModel calls across all engines.
	ModelsPublished int64 `json:"modelsPublished"`
	// ModelsImproved counts the publications that lowered the global
	// upper bound (the rest arrived too late to matter).
	ModelsImproved int64 `json:"modelsImproved"`
	// LowerBoundsPublished counts PublishLower calls across all engines.
	LowerBoundsPublished int64 `json:"lowerBoundsPublished"`
	// LowerBoundsImproved counts the publications that raised the global
	// lower bound.
	LowerBoundsImproved int64 `json:"lowerBoundsImproved"`
	// RaceClosedByBounds reports that the race terminated because the
	// shared lower bound met the shared upper bound — a cooperative
	// optimality proof no single engine completed on its own.
	RaceClosedByBounds bool `json:"raceClosedByBounds,omitempty"`
}

// Add accumulates another run's counters into s; the bound trajectory
// is concatenated. Useful for aggregating across portfolio members or
// successive analyses.
func (s *SolverStats) Add(o SolverStats) {
	s.SATCalls += o.SATCalls
	s.Conflicts += o.Conflicts
	s.Decisions += o.Decisions
	s.Propagations += o.Propagations
	s.Restarts += o.Restarts
	s.LearntClauses += o.LearntClauses
	s.DeletedClauses += o.DeletedClauses
	s.Bounds = append(s.Bounds, o.Bounds...)
}
