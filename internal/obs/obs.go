// Package obs is the repo's zero-dependency observability layer:
// hierarchical tracing for the six-step MPMCS pipeline, per-engine
// solver telemetry types, a small counter registry exportable as plain
// text or expvar, and pprof helpers.
//
// The design rule is that observability must cost nothing when unused:
// the no-op Tracer and Span are zero-size values whose method calls
// neither allocate nor synchronise, so the pipeline can be
// instrumented unconditionally. Callers that compute attribute values
// eagerly should guard the computation with Span.Recording.
package obs

import (
	"context"
	"time"
)

// Tracer produces root spans. Implementations must be safe for
// concurrent use; the portfolio writes spans from several goroutines.
type Tracer interface {
	// StartSpan opens a root span with the given name.
	StartSpan(name string) Span
}

// Span is one timed region of work. Spans nest: children opened via
// StartSpan are recorded under their parent. Attribute setters may be
// called until End; calls after End are ignored by the no-op span and
// best-effort for recording spans.
type Span interface {
	// StartSpan opens a child span.
	StartSpan(name string) Span
	// Recording reports whether the span actually records anything.
	// Use it to skip computing expensive attribute values.
	Recording() bool
	// SetInt attaches an integer attribute.
	SetInt(key string, v int64)
	// SetFloat attaches a float attribute.
	SetFloat(key string, v float64)
	// SetString attaches a string attribute.
	SetString(key string, v string)
	// SetBool attaches a boolean attribute.
	SetBool(key string, v bool)
	// SetValue attaches an arbitrary JSON-marshalable attribute (used
	// for structured values like bound trajectories). Boxing the value
	// may allocate — guard with Recording on hot paths.
	SetValue(key string, v any)
	// End closes the span, fixing its duration.
	End()
}

// SpanStarter is the common capability of Tracer (root spans) and Span
// (child spans); pipeline stages accept it so they can run both at the
// top level and nested under a caller's span.
type SpanStarter interface {
	StartSpan(name string) Span
}

// nopTracer and nopSpan are the disabled-path implementations. Both
// are zero-size, so storing them in an interface does not allocate.
type (
	nopTracer struct{}
	nopSpan   struct{}
)

// Nop returns the no-op Tracer.
func Nop() Tracer { return nopTracer{} }

// NopSpan returns the no-op Span.
func NopSpan() Span { return nopSpan{} }

func (nopTracer) StartSpan(string) Span { return nopSpan{} }

func (nopSpan) StartSpan(string) Span    { return nopSpan{} }
func (nopSpan) Recording() bool          { return false }
func (nopSpan) SetInt(string, int64)     {}
func (nopSpan) SetFloat(string, float64) {}
func (nopSpan) SetString(string, string) {}
func (nopSpan) SetBool(string, bool)     {}
func (nopSpan) SetValue(string, any)     {}
func (nopSpan) End()                     {}

// ctxKey keys the span stored in a context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying the span, for plumbing
// through APIs that take a context but no explicit span (the portfolio
// and its engines). Only call it when the span is recording: the
// derived context allocates.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by the context, or the
// no-op span when none is present.
func SpanFromContext(ctx context.Context) Span {
	if s, ok := ctx.Value(ctxKey{}).(Span); ok {
		return s
	}
	return nopSpan{}
}

// sinceMillis converts a duration since t0 to fractional milliseconds,
// the unit used throughout the JSON artefacts.
func sinceMillis(t0, t time.Time) float64 {
	return float64(t.Sub(t0).Microseconds()) / 1000
}
