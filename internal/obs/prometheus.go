package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format 0.0.4: counters and gauges as single samples, histograms as
// cumulative le= buckets plus _sum and _count. Metric names are
// sanitised to the Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]*), so
// the registry's dotted names ("solve.sat_calls") export cleanly.
// No-op on a nil registry.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	counters := m.Snapshot()
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := PrometheusName(k)
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", name, name, counters[k])
	}

	gauges := m.GaugeSnapshot()
	names = names[:0]
	for k := range gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		name := PrometheusName(k)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", name, name, formatPromValue(gauges[k]))
	}

	hists := m.histogramSnapshot()
	names = names[:0]
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := hists[k]
		name := PrometheusName(k)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		bounds, cumulative := h.Snapshot()
		for i, le := range bounds {
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatPromValue(le), cumulative[i])
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatPromValue(h.Sum()))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count())
	}
	return bw.Flush()
}

// formatPromValue renders a float the way Prometheus expects: shortest
// decimal representation, no exponent surprises for the common cases.
func formatPromValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusName maps a registry metric name onto the Prometheus
// charset: every character outside [a-zA-Z0-9_:] becomes an
// underscore, and a leading digit gains an underscore prefix.
func PrometheusName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// ValidatePrometheusText checks that the reader's contents parse as
// Prometheus text exposition format 0.0.4: every line is a comment, a
// blank, or "name[{labels}] value [timestamp]" with a well-formed name
// and a parseable value, and every # TYPE declares a known metric
// type. Returns the number of samples on success. The CI smoke job
// and ftmon -once use it to gate the /metrics endpoint.
func ValidatePrometheusText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if fields := strings.Fields(line); len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return samples, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
			}
			continue
		}
		name, value, ok := splitPromSample(line)
		if !ok {
			return samples, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		if !validPromName(name) {
			return samples, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return samples, fmt.Errorf("line %d: invalid sample value %q", lineNo, value)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	return samples, nil
}

// splitPromSample splits a sample line into metric name (with any
// label set stripped) and value, tolerating an optional trailing
// timestamp.
func splitPromSample(line string) (name, value string, ok bool) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", false
		}
		name = line[:i]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", "", false
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", false
	}
	return name, fields[0], true
}

// validPromName reports whether the name matches
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if i == 0 && !alpha {
			return false
		}
		if !alpha && !(r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}
