package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics is a small named-counter registry — the process-level
// aggregate view that complements per-analysis traces. All methods are
// safe for concurrent use and safe on a nil receiver (a nil *Metrics
// is the disabled state, so callers can record unconditionally).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64 // guarded by mu
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]int64)}
}

// Add increments the named counter by delta. No-op on a nil receiver.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Get returns the named counter's value (0 when absent or nil).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// Snapshot returns a copy of all counters.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}

// WriteText writes a plain-text snapshot, one "name value" line per
// counter, sorted by name — the format the CLI --metrics flag emits.
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, snap[k]); err != nil {
			return err
		}
	}
	return nil
}

// Publish exposes the registry under the given expvar name as a JSON
// map, so a process already serving /debug/vars (e.g. via the --pprof
// flag) exports the counters with no extra plumbing. Publishing the
// same name twice panics (an expvar property), so call once per
// process.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
