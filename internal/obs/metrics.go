package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Metrics is a small named-metric registry — counters, gauges and
// histograms — the process-level aggregate view that complements
// per-analysis traces. All methods are safe for concurrent use and
// safe on a nil receiver (a nil *Metrics is the disabled state, so
// callers can record unconditionally). Hot paths should look up a
// *Histogram handle once (Histogram) and Observe on it directly
// rather than going through the registry map per observation.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]int64      // guarded by mu
	gauges     map[string]float64    // guarded by mu
	histograms map[string]*Histogram // guarded by mu; values are internally atomic
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]int64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*Histogram),
	}
}

// Add increments the named counter by delta. No-op on a nil receiver.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Get returns the named counter's value (0 when absent or nil).
func (m *Metrics) Get(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge sets the named gauge to the given value. No-op on a nil
// receiver.
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Gauge returns the named gauge's value (0 when absent or nil).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Subsequent calls ignore the bounds and
// return the existing histogram, so concurrent callers agree on one
// instance. Returns nil on a nil receiver — and Histogram.Observe is
// nil-safe, so the handle can be used unconditionally.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		m.histograms[name] = h
	}
	return h
}

// Observe records one value into the named histogram, creating it with
// the given bounds on first use. Convenience for cold paths; hot paths
// should cache the Histogram handle.
func (m *Metrics) Observe(name string, bounds []float64, v float64) {
	m.Histogram(name, bounds).Observe(v)
}

// Snapshot returns a copy of all counters.
func (m *Metrics) Snapshot() map[string]int64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		out[k] = v
	}
	return out
}

// GaugeSnapshot returns a copy of all gauges.
func (m *Metrics) GaugeSnapshot() map[string]float64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]float64, len(m.gauges))
	for k, v := range m.gauges {
		out[k] = v
	}
	return out
}

// histogramSnapshot returns the histogram handles under the lock; the
// handles themselves are safe to read concurrently.
func (m *Metrics) histogramSnapshot() map[string]*Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*Histogram, len(m.histograms))
	for k, v := range m.histograms {
		out[k] = v
	}
	return out
}

// WriteText writes a plain-text snapshot of the counters, one
// "name value" line per counter, sorted by name — the format the CLI
// --metrics flag emits. Gauges follow as "name value" with a float
// value, then histograms as "name_count"/"name_sum" summary lines; the
// full bucket breakdown is Prometheus-only (WritePrometheus).
func (m *Metrics) WriteText(w io.Writer) error {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, snap[k]); err != nil {
			return err
		}
	}
	gauges := m.GaugeSnapshot()
	names = names[:0]
	for k := range gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %g\n", k, gauges[k]); err != nil {
			return err
		}
	}
	hists := m.histogramSnapshot()
	names = names[:0]
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := hists[k]
		if _, err := fmt.Fprintf(w, "%s_count %d\n%s_sum %g\n", k, h.Count(), k, h.Sum()); err != nil {
			return err
		}
	}
	return nil
}

// Publish exposes the registry under the given expvar name as a JSON
// map, so a process already serving /debug/vars (e.g. via the --pprof
// flag) exports the counters with no extra plumbing. Publishing the
// same name twice panics (an expvar property), so call once per
// process.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
