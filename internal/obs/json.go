package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SpanRecord is one recorded span in the JSON trace document. Times
// are milliseconds relative to the tracer's creation, so traces are
// reproducible modulo machine speed.
type SpanRecord struct {
	Name       string         `json:"name"`
	StartMS    float64        `json:"startMillis"`
	DurationMS float64        `json:"durationMillis"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanRecord  `json:"children,omitempty"`
}

// JSONTracer records spans in memory and writes them out as a single
// JSON document (one span tree per root span). It is safe for
// concurrent use.
type JSONTracer struct {
	mu    sync.Mutex
	t0    time.Time
	roots []*SpanRecord
}

var _ Tracer = (*JSONTracer)(nil)

// NewJSONTracer returns an empty tracer; its clock starts now.
func NewJSONTracer() *JSONTracer {
	return &JSONTracer{t0: time.Now()}
}

// StartSpan implements Tracer.
func (t *JSONTracer) StartSpan(name string) Span {
	rec := &SpanRecord{Name: name, StartMS: sinceMillis(t.t0, time.Now())}
	t.mu.Lock()
	t.roots = append(t.roots, rec)
	t.mu.Unlock()
	return &jsonSpan{tracer: t, rec: rec, start: time.Now()}
}

// Roots returns the recorded root spans. The returned slice is a
// snapshot; the span trees themselves are shared, so callers should
// finish tracing before inspecting them.
func (t *JSONTracer) Roots() []*SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*SpanRecord, len(t.roots))
	copy(out, t.roots)
	return out
}

// traceDoc is the serialised trace document.
type traceDoc struct {
	Spans []*SpanRecord `json:"spans"`
}

// WriteJSON writes the trace as an indented JSON document.
func (t *JSONTracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDoc{Spans: t.roots})
}

// jsonSpan is the recording Span. All mutation goes through the
// tracer's mutex: span trees are written from portfolio goroutines.
type jsonSpan struct {
	tracer *JSONTracer
	rec    *SpanRecord
	start  time.Time
}

var _ Span = (*jsonSpan)(nil)

// StartSpan implements Span.
func (s *jsonSpan) StartSpan(name string) Span {
	rec := &SpanRecord{Name: name, StartMS: sinceMillis(s.tracer.t0, time.Now())}
	s.tracer.mu.Lock()
	s.rec.Children = append(s.rec.Children, rec)
	s.tracer.mu.Unlock()
	return &jsonSpan{tracer: s.tracer, rec: rec, start: time.Now()}
}

// Recording implements Span.
func (s *jsonSpan) Recording() bool { return true }

func (s *jsonSpan) set(key string, v any) {
	s.tracer.mu.Lock()
	if s.rec.Attrs == nil {
		s.rec.Attrs = make(map[string]any)
	}
	s.rec.Attrs[key] = v
	s.tracer.mu.Unlock()
}

// SetInt implements Span.
func (s *jsonSpan) SetInt(key string, v int64) { s.set(key, v) }

// SetFloat implements Span.
func (s *jsonSpan) SetFloat(key string, v float64) { s.set(key, v) }

// SetString implements Span.
func (s *jsonSpan) SetString(key string, v string) { s.set(key, v) }

// SetBool implements Span.
func (s *jsonSpan) SetBool(key string, v bool) { s.set(key, v) }

// SetValue implements Span.
func (s *jsonSpan) SetValue(key string, v any) { s.set(key, v) }

// End implements Span.
func (s *jsonSpan) End() {
	d := sinceMillis(s.start, time.Now())
	s.tracer.mu.Lock()
	s.rec.DurationMS = d
	s.tracer.mu.Unlock()
}
