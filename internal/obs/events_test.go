package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventBusNilSafe(t *testing.T) {
	var b *EventBus
	if b.Enabled() {
		t.Fatal("nil bus reports enabled")
	}
	b.Publish(Heartbeat{Engine: "x"}) // must not panic
	if sub := b.Subscribe(8); sub != nil {
		t.Fatal("nil bus handed out a subscription")
	}
	if b.Published() != 0 || b.Dropped() != 0 || b.Subscribers() != 0 || b.QueueDepth() != 0 {
		t.Fatal("nil bus reports non-zero state")
	}
	if b.Replay() != nil {
		t.Fatal("nil bus has a replay ring")
	}
	var s *Subscription
	s.Close() // must not panic
	if s.Events() != nil || s.Dropped() != 0 {
		t.Fatal("nil subscription misbehaves")
	}
}

func TestEventBusPublishSubscribe(t *testing.T) {
	b := NewEventBus()
	sub := b.Subscribe(16)
	defer sub.Close()

	b.Publish(EngineStarted{Engine: "wmsu1"})
	b.Publish(BoundImproved{Engine: "wmsu1", Lower: 3, Upper: 10})

	ev := <-sub.Events()
	if ev.Seq != 1 || ev.Kind != KindEngineStarted {
		t.Fatalf("first event = %+v, want seq 1 kind %s", ev, KindEngineStarted)
	}
	ev = <-sub.Events()
	if ev.Seq != 2 || ev.Kind != KindBoundImproved {
		t.Fatalf("second event = %+v, want seq 2 kind %s", ev, KindBoundImproved)
	}
	bi, ok := ev.Data.(BoundImproved)
	if !ok || bi.Lower != 3 || bi.Upper != 10 {
		t.Fatalf("payload = %#v, want the published BoundImproved", ev.Data)
	}
	if ev.AtMS < 0 {
		t.Fatalf("negative event timestamp %v", ev.AtMS)
	}
	if got := b.Published(); got != 2 {
		t.Fatalf("Published() = %d, want 2", got)
	}
}

// TestEventBusReplay: a subscriber arriving after the events still sees
// the recent history — what makes a late /events connection useful.
func TestEventBusReplay(t *testing.T) {
	b := NewEventBusRing(4)
	for i := int64(1); i <= 6; i++ {
		b.Publish(BoundImproved{Lower: i, Upper: 100})
	}
	sub := b.Subscribe(16)
	defer sub.Close()
	// Ring capacity 4: events 3..6 survive.
	for want := int64(3); want <= 6; want++ {
		ev := <-sub.Events()
		if ev.Data.(BoundImproved).Lower != want {
			t.Fatalf("replayed event lower = %d, want %d", ev.Data.(BoundImproved).Lower, want)
		}
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected extra replay event %+v", ev)
	default:
	}
}

// TestEventBusReplayLargerThanBuffer: replay must not deadlock when the
// ring holds more events than the subscriber's channel.
func TestEventBusReplayLargerThanBuffer(t *testing.T) {
	b := NewEventBus()
	for i := int64(0); i < 100; i++ {
		b.Publish(Heartbeat{Conflicts: i})
	}
	sub := b.Subscribe(8)
	defer sub.Close()
	// Only the newest 8 fit: conflicts 92..99.
	first := <-sub.Events()
	if got := first.Data.(Heartbeat).Conflicts; got != 92 {
		t.Fatalf("first replayed heartbeat conflicts = %d, want 92", got)
	}
}

// TestEventBusSlowSubscriberDrops: a subscriber that stops reading
// loses events but never blocks Publish.
func TestEventBusSlowSubscriberDrops(t *testing.T) {
	b := NewEventBusRing(0)
	sub := b.Subscribe(2)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(Heartbeat{Conflicts: int64(i)}) // would deadlock if sends blocked
	}
	if got := b.Dropped(); got != 8 {
		t.Fatalf("bus dropped %d events, want 8", got)
	}
	if got := sub.Dropped(); got != 8 {
		t.Fatalf("subscription dropped %d events, want 8", got)
	}
	if depth := b.QueueDepth(); depth != 2 {
		t.Fatalf("queue depth %d, want 2", depth)
	}
}

func TestEventBusCloseIdempotent(t *testing.T) {
	b := NewEventBus()
	sub := b.Subscribe(4)
	sub.Close()
	sub.Close() // second close must not panic
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers after close, want 0", n)
	}
	b.Publish(Heartbeat{}) // publishing after close must not panic
	if _, ok := <-sub.Events(); ok {
		t.Fatal("closed subscription channel still delivers")
	}
}

// TestEventBusConcurrentPublishers hammers the bus from many
// goroutines while subscribers churn — the -race workout backing the
// portfolio's concurrent publishing paths.
func TestEventBusConcurrentPublishers(t *testing.T) {
	b := NewEventBus()
	const publishers = 8
	const perPublisher = 500

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(id int64) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish(BoundImproved{Engine: "e", Lower: id, Upper: int64(i)})
			}
		}(int64(p))
	}
	// Subscribers connect, read a little, and walk away mid-stream.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := b.Subscribe(32)
			timeout := time.After(2 * time.Second)
		read:
			// Drain up to 50 events; publishers may already be done, so a
			// bare receive could block forever — bail out on the timer.
			for i := 0; i < 50; i++ {
				select {
				case _, ok := <-sub.Events():
					if !ok {
						break read
					}
				case <-timeout:
					break read
				}
			}
			sub.Close()
		}()
	}
	wg.Wait()
	if got := b.Published(); got != publishers*perPublisher {
		t.Fatalf("Published() = %d, want %d", got, publishers*perPublisher)
	}
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers left registered, want 0", n)
	}
}

// TestEventBusSequenceMonotone: sequence numbers observed by one
// subscriber strictly increase even under concurrent publishing.
func TestEventBusSequenceMonotone(t *testing.T) {
	b := NewEventBusRing(0)
	sub := b.Subscribe(4096)
	defer sub.Close()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 256; i++ {
				b.Publish(Heartbeat{})
			}
		}()
	}
	wg.Wait()
	var last uint64
	for i := 0; i < 4*256; i++ {
		ev := <-sub.Events()
		if ev.Seq <= last {
			t.Fatalf("sequence went from %d to %d", last, ev.Seq)
		}
		last = ev.Seq
	}
}
