package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution recorder sized for solver
// hot paths: Observe is lock-free (one atomic add per bucket plus a
// CAS loop for the sum) so the SAT search loop can record
// conflict-clause lengths without contending with the /metrics
// scraper. Buckets follow the Prometheus convention: bucket i counts
// observations ≤ bounds[i], and a final implicit +Inf bucket catches
// the rest.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, immutable after creation
	counts  []atomic.Int64
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given sorted upper bounds.
// The bounds slice is not copied; do not mutate it afterwards.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one value. No-op on a nil receiver, so call sites
// can hold a possibly-nil *Histogram and record unconditionally.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Snapshot returns the bucket upper bounds and the cumulative count at
// or below each bound (Prometheus le= semantics), excluding the +Inf
// bucket whose cumulative count is Count().
func (h *Histogram) Snapshot() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = h.bounds
	cumulative = make([]int64, len(h.bounds))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative
}

// Default bucket sets for the solver's three live distributions. All
// are coarse on purpose: the histograms answer "did the distribution
// shift", not "what is the p99 exactly".
var (
	// DurationBuckets covers per-SAT-call latency in seconds, from
	// sub-millisecond incremental calls to multi-minute hard instances.
	DurationBuckets = []float64{0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 60, 300}
	// LengthBuckets covers learnt conflict-clause lengths in literals.
	LengthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// DepthBuckets covers queue/trail depths.
	DepthBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}
)
