package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// EventBus is the live-telemetry fan-out point: solver layers publish
// typed events (bound improvements, engine lifecycle, restarts,
// heartbeats) and any number of subscribers — SSE streams, terminal
// monitors, tests — consume them concurrently. It complements the
// post-hoc artefacts (spans, SolverStats): the same information, but
// observable while a multi-minute solve is still in flight.
//
// The design rules mirror the tracer's:
//
//   - A nil *EventBus is the disabled state. Every method is safe on a
//     nil receiver and does nothing; publishers guard event
//     construction with Enabled() (the Recording() analogue) so the
//     disabled path neither allocates nor synchronises.
//   - Publishing never blocks on a subscriber. A subscriber whose
//     channel is full loses the event (counted in Dropped); a slow or
//     stuck SSE client can therefore never stall a solver goroutine.
//   - A bounded replay ring keeps the most recent events, so a
//     subscriber that connects mid-solve (or just after it finishes)
//     still sees the recent bound trajectory and the terminal frame.
type EventBus struct {
	t0 time.Time

	mu      sync.Mutex
	seq     uint64          // events published so far; guarded by mu
	subs    []*Subscription // guarded by mu
	ring    []Event         // replay buffer, oldest first; guarded by mu
	ringCap int
	dropped int64 // events lost to full subscriber channels; guarded by mu
}

// DefaultEventRing is the replay-ring capacity of NewEventBus.
const DefaultEventRing = 512

// NewEventBus returns an enabled bus whose replay ring keeps the last
// DefaultEventRing events. Its clock (the AtMS stamp) starts now.
func NewEventBus() *EventBus { return NewEventBusRing(DefaultEventRing) }

// NewEventBusRing returns an enabled bus with a replay ring of the
// given capacity (0 disables replay).
func NewEventBusRing(ringCap int) *EventBus {
	if ringCap < 0 {
		ringCap = 0
	}
	return &EventBus{t0: time.Now(), ringCap: ringCap}
}

// Enabled reports whether events are being collected. It is the
// publisher-side guard: skip building payloads when false.
func (b *EventBus) Enabled() bool { return b != nil }

// Publish stamps the payload with a sequence number and the
// milliseconds since the bus was created, appends it to the replay
// ring, and fans it out to every subscriber without blocking. No-op on
// a nil bus.
func (b *EventBus) Publish(p EventPayload) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev := Event{Seq: b.seq, Kind: p.EventKind(), AtMS: sinceMillis(b.t0, time.Now()), Data: p}
	if b.ringCap > 0 {
		if len(b.ring) == b.ringCap {
			copy(b.ring, b.ring[1:])
			b.ring[len(b.ring)-1] = ev
		} else {
			b.ring = append(b.ring, ev)
		}
	}
	for _, sub := range b.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a subscriber with the given channel capacity (a
// non-positive buffer gets a small default). The most recent replay
// events that fit the buffer are delivered immediately, so late
// subscribers see the current trajectory. The caller must Close the
// subscription; an abandoned one silently drops events but costs the
// publishers nothing. Returns nil on a nil bus.
func (b *EventBus) Subscribe(buffer int) *Subscription {
	if b == nil {
		return nil
	}
	if buffer <= 0 {
		buffer = 64
	}
	sub := &Subscription{bus: b, ch: make(chan Event, buffer)}
	b.mu.Lock()
	replay := b.ring
	if len(replay) > buffer {
		replay = replay[len(replay)-buffer:]
	}
	for _, ev := range replay {
		//lint:ignore lockorder replay is pre-truncated to the buffer capacity and the channel is not yet registered, so every send fits without blocking
		sub.ch <- ev // fits by construction: the channel is empty
	}
	b.subs = append(b.subs, sub)
	b.mu.Unlock()
	return sub
}

// Subscribers returns the number of active subscriptions.
func (b *EventBus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Published returns the number of events published so far.
func (b *EventBus) Published() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return int64(b.seq)
}

// Dropped returns the number of events lost to full subscriber
// channels, summed over all subscribers (past and present).
func (b *EventBus) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// QueueDepth returns the total number of events currently buffered in
// subscriber channels — the live backlog the /metrics endpoint exports
// as a gauge.
func (b *EventBus) QueueDepth() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	depth := 0
	for _, sub := range b.subs {
		depth += len(sub.ch)
	}
	return depth
}

// Replay returns a copy of the replay ring, oldest first.
func (b *EventBus) Replay() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.ring))
	copy(out, b.ring)
	return out
}

// Subscription is one subscriber's view of the bus.
type Subscription struct {
	bus *EventBus
	ch  chan Event
	// closed is set once in Close under the bus lock; Publish holds the
	// same lock, so a send on the closed channel is impossible. (The
	// guard is cross-object — bus.mu — which the guardedby annotation
	// form cannot express.)
	closed  bool
	dropped atomic.Int64 // events this subscriber lost to a full channel
}

// Events returns the subscriber's channel. It is closed by Close, so
// ranging over it terminates once the subscription ends. Returns nil
// on a nil subscription.
func (s *Subscription) Events() <-chan Event {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped returns the number of events this subscriber lost to a full
// channel.
func (s *Subscription) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped.Load()
}

// Close unregisters the subscription and closes its channel. Safe to
// call more than once and on a nil subscription. Publishes and Close
// both run under the bus lock, so a publisher can never send on the
// closed channel.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	if !s.closed {
		s.closed = true
		for i, sub := range b.subs {
			if sub == s {
				b.subs = append(b.subs[:i], b.subs[i+1:]...)
				break
			}
		}
		close(s.ch)
	}
	b.mu.Unlock()
}

// busKey keys the event bus stored in a context.
type busKey struct{}

// ContextWithBus returns a context carrying the bus, for plumbing into
// APIs that take a context but no explicit bus (the portfolio and its
// engines). Only call it when the bus is enabled: the derived context
// allocates.
func ContextWithBus(ctx context.Context, b *EventBus) context.Context {
	return context.WithValue(ctx, busKey{}, b)
}

// BusFromContext returns the bus carried by the context, or nil (the
// disabled bus) when none is present.
func BusFromContext(ctx context.Context) *EventBus {
	if b, ok := ctx.Value(busKey{}).(*EventBus); ok {
		return b
	}
	return nil
}

// engineNameKey keys the registered engine name stored in a context.
type engineNameKey struct{}

// ContextWithEngineName returns a context naming the engine run it
// feeds: the portfolio registers configuration-specific names
// ("linear-su-rnd") the algorithms themselves do not know, and this
// override makes live events and stats carry the registered name.
// Only set it when telemetry is on: the derived context allocates.
func ContextWithEngineName(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, engineNameKey{}, name)
}

// EngineNameFromContext returns the engine-name override, or "".
func EngineNameFromContext(ctx context.Context) string {
	if n, ok := ctx.Value(engineNameKey{}).(string); ok {
		return n
	}
	return ""
}

// metricsKey keys the metrics registry stored in a context.
type metricsKey struct{}

// ContextWithMetrics returns a context carrying the registry, so that
// solver layers below the Options plumbing (the MaxSAT engines) can
// record per-call histograms. Only call it with a non-nil registry:
// the derived context allocates.
func ContextWithMetrics(ctx context.Context, m *Metrics) context.Context {
	return context.WithValue(ctx, metricsKey{}, m)
}

// MetricsFromContext returns the registry carried by the context, or
// nil (the disabled registry) when none is present.
func MetricsFromContext(ctx context.Context) *Metrics {
	if m, ok := ctx.Value(metricsKey{}).(*Metrics); ok {
		return m
	}
	return nil
}

// Event is the envelope every published payload is wrapped in: a
// monotone sequence number, the payload kind, the bus-relative
// wall-clock stamp in milliseconds, and the payload itself. It is the
// JSON document of one SSE frame on the /events endpoint.
type Event struct {
	Seq  uint64       `json:"seq"`
	Kind string       `json:"kind"`
	AtMS float64      `json:"atMillis"`
	Data EventPayload `json:"data"`
}

// EventPayload is implemented by every typed solver event.
type EventPayload interface {
	// EventKind returns the payload's wire name (the SSE event type).
	EventKind() string
}

// Event kinds, as they appear in Event.Kind and SSE "event:" lines.
const (
	KindSolveStarted   = "solveStarted"
	KindSolveFinished  = "solveFinished"
	KindEngineStarted  = "engineStarted"
	KindEngineFinished = "engineFinished"
	KindBoundImproved  = "boundImproved"
	KindRestartFired   = "restartFired"
	KindHeartbeat      = "heartbeat"
	KindModuleStarted  = "moduleStarted"
	KindModuleFinished = "moduleFinished"
)

// SolveStarted opens one MaxSAT solve: the instance dimensions the
// portfolio is about to race on.
type SolveStarted struct {
	Vars        int `json:"vars"`
	HardClauses int `json:"hardClauses"`
	SoftClauses int `json:"softClauses"`
	Engines     int `json:"engines"`
}

// EventKind implements EventPayload.
func (SolveStarted) EventKind() string { return KindSolveStarted }

// SolveFinished is the terminal frame of one solve: the outcome every
// /events subscriber waits for.
type SolveFinished struct {
	Status     string  `json:"status"`
	Winner     string  `json:"winner,omitempty"`
	Cost       int64   `json:"cost"`
	LowerBound int64   `json:"lowerBound"`
	ElapsedMS  float64 `json:"elapsedMillis"`
	Err        string  `json:"err,omitempty"`
}

// EventKind implements EventPayload.
func (SolveFinished) EventKind() string { return KindSolveFinished }

// EngineStarted marks one portfolio member entering the race.
type EngineStarted struct {
	Engine string `json:"engine"`
}

// EventKind implements EventPayload.
func (EngineStarted) EventKind() string { return KindEngineStarted }

// EngineFinished marks one portfolio member leaving the race.
type EngineFinished struct {
	Engine     string `json:"engine"`
	Status     string `json:"status"`
	Cost       int64  `json:"cost"`
	LowerBound int64  `json:"lowerBound"`
	Err        string `json:"err,omitempty"`
}

// EventKind implements EventPayload.
func (EngineFinished) EventKind() string { return KindEngineFinished }

// BoundImproved reports the cooperative race's global bounds after an
// improvement: Upper only ever decreases (-1 until the first model),
// Lower only ever increases. Published from the shared bound manager
// under its lock, so the event stream is monotone even with all
// engines publishing concurrently.
type BoundImproved struct {
	// Engine names the publisher whose model or proof moved the bound.
	Engine string `json:"engine"`
	// Lower is the global proven lower bound on the optimum.
	Lower int64 `json:"lower"`
	// Upper is the global incumbent cost; -1 before any model.
	Upper int64 `json:"upper"`
	// Closed marks the improvement that made the bounds meet — the
	// cooperative optimality proof.
	Closed bool `json:"closed,omitempty"`
}

// EventKind implements EventPayload.
func (BoundImproved) EventKind() string { return KindBoundImproved }

// RestartFired reports one CDCL restart.
type RestartFired struct {
	Engine    string `json:"engine"`
	Restarts  int64  `json:"restarts"`
	Conflicts int64  `json:"conflicts"`
}

// EventKind implements EventPayload.
func (RestartFired) EventKind() string { return KindRestartFired }

// ModuleStarted opens one node of a modular decomposition plan: an
// independent sub-tree about to be solved as its own MaxSAT instance.
// Engine-level events published while the module solves carry the same
// bus, so a subscriber can attribute them by bracketing between the
// module's start and finish frames.
type ModuleStarted struct {
	// Module is the module gate's id in the original tree.
	Module string `json:"module"`
	// Events is the number of real basic events in the module's
	// quotient (nested modules count as one pseudo-event each).
	Events int `json:"events"`
	// Children lists nested modules already solved and substituted as
	// pseudo-events.
	Children []string `json:"children,omitempty"`
}

// EventKind implements EventPayload.
func (ModuleStarted) EventKind() string { return KindModuleStarted }

// ModuleFinished closes one decomposition-plan node with its local
// verdict; the analysis-level terminal frame is still SolveFinished.
type ModuleFinished struct {
	Module string `json:"module"`
	Status string `json:"status"`
	// Probability is the module's MPMCS probability — the value it
	// contributes to its parent as a pseudo-event (0 when the module
	// can never occur).
	Probability float64 `json:"probability"`
	Winner      string  `json:"winner,omitempty"`
	ElapsedMS   float64 `json:"elapsedMillis"`
	Err         string  `json:"err,omitempty"`
}

// EventKind implements EventPayload.
func (ModuleFinished) EventKind() string { return KindModuleFinished }

// Heartbeat is a periodic snapshot of a running engine's work
// counters (since the engine's last counter reset — for the SAT-backed
// engines, the current SAT call).
type Heartbeat struct {
	Engine       string `json:"engine"`
	Conflicts    int64  `json:"conflicts"`
	Decisions    int64  `json:"decisions"`
	Propagations int64  `json:"propagations"`
	Restarts     int64  `json:"restarts"`
	Learnt       int64  `json:"learnt"`
	// TrailDepth is the current assignment-trail length (the
	// propagation queue's high-water view of search depth).
	TrailDepth int `json:"trailDepth"`
	// LearntDB is the number of learnt clauses currently retained
	// (after deletions), as opposed to Learnt, the cumulative count.
	LearntDB int `json:"learntDB,omitempty"`
	// ArenaWords is the clause arena's footprint in 4-byte words — the
	// whole clause database, live and not-yet-collected.
	ArenaWords int `json:"arenaWords,omitempty"`
	// ClauseGCs counts compactions of the clause arena so far.
	ClauseGCs int64 `json:"clauseGCs,omitempty"`
}

// EventKind implements EventPayload.
func (Heartbeat) EventKind() string { return KindHeartbeat }
