package obs

import (
	"bufio"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// startTestServer starts a Server on a random port and returns its
// base URL; cleanup stops it.
func startTestServer(t *testing.T, m *Metrics, bus *EventBus) string {
	t.Helper()
	srv := NewServer(m, bus)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + addr
}

func TestServerMetricsPrometheus(t *testing.T) {
	m := NewMetrics()
	m.Add("analyses", 3)
	m.Add("winner.wmsu1-strat", 2) // dotted+dashed name needs sanitising
	m.SetGauge("queue.depth", 7)
	h := m.Histogram("solver.sat_call_seconds", DurationBuckets)
	h.Observe(0.002)
	h.Observe(0.3)
	h.Observe(999) // lands in +Inf

	bus := NewEventBus()
	bus.Publish(Heartbeat{})
	base := startTestServer(t, m, bus)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}
	var body strings.Builder
	samples, err := ValidatePrometheusText(io.TeeReader(resp.Body, &body))
	if err != nil {
		t.Fatalf("invalid Prometheus exposition: %v\n%s", err, body.String())
	}
	if samples == 0 {
		t.Fatal("no samples served")
	}
	text := body.String()
	for _, want := range []string{
		"analyses 3",
		"winner_wmsu1_strat 2",
		"queue_depth 7",
		`solver_sat_call_seconds_bucket{le="+Inf"} 3`,
		"solver_sat_call_seconds_count 3",
		"obs_bus_events_published 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
}

func TestServerEventsSSE(t *testing.T) {
	bus := NewEventBus()
	bus.Publish(SolveStarted{Vars: 10, Engines: 2})
	base := startTestServer(t, nil, bus)

	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// Late publication must reach the already-connected stream too.
	bus.Publish(SolveFinished{Status: "OPTIMAL", Cost: 42})

	r := bufio.NewReader(resp.Body)
	var frames []string
	var data strings.Builder
	deadline := time.After(5 * time.Second)
	for len(frames) < 2 {
		select {
		case <-deadline:
			t.Fatalf("timed out; frames so far: %q", frames)
		default:
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v (frames %q)", err, frames)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "" && data.Len() > 0:
			frames = append(frames, data.String())
			data.Reset()
		}
	}
	if !strings.Contains(frames[0], `"kind":"solveStarted"`) {
		t.Errorf("first frame %q, want the replayed solveStarted", frames[0])
	}
	if !strings.Contains(frames[1], `"kind":"solveFinished"`) || !strings.Contains(frames[1], `"cost":42`) {
		t.Errorf("second frame %q, want the live solveFinished", frames[1])
	}
}

func TestServerHealthzAndPprof(t *testing.T) {
	base := startTestServer(t, nil, nil)
	for _, path := range []string{"/healthz", "/debug/pprof/"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestServerCloseUnblocksStreams: Close must disconnect a live SSE
// subscriber and leave no goroutines behind — the leak contract of the
// acceptance criteria.
func TestServerCloseUnblocksStreams(t *testing.T) {
	before := runtime.NumGoroutine()

	bus := NewEventBus()
	srv := NewServer(nil, bus)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// Read the opening comment so the handler is known to be serving.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	resp.Body.Close()

	// The subscription must be released: the handler exited.
	deadline := time.Now().Add(2 * time.Second)
	for bus.Subscribers() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := bus.Subscribers(); n != 0 {
		t.Errorf("%d bus subscribers after Close, want 0", n)
	}
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked past Close: %d before, %d after", before, after)
	}
}

// TestServerSlowSSESubscriberDoesNotBlockPublish: a connected client
// that never reads must not stall publishers (the drop policy extends
// end to end through the HTTP layer).
func TestServerSlowSSESubscriberDoesNotBlockPublish(t *testing.T) {
	bus := NewEventBus()
	base := startTestServer(t, nil, bus)

	resp, err := http.Get(base + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}

	// Never read the body again; flood well past every buffer. Publish
	// must stay non-blocking (this would time out the test otherwise).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			bus.Publish(Heartbeat{Conflicts: int64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publishing blocked on a slow SSE subscriber")
	}
	if bus.Dropped() == 0 {
		t.Error("expected drops against the stalled subscriber")
	}
}

func TestValidatePrometheusTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"no_value_here\n",
		"bad-name 3\n",
		"# TYPE x flumph\nx 1\n",
		"name not_a_number\n",
	}
	for _, c := range cases {
		if _, err := ValidatePrometheusText(strings.NewReader(c)); err == nil {
			t.Errorf("ValidatePrometheusText(%q) accepted invalid input", c)
		}
	}
	ok := "# HELP a counter\n# TYPE a counter\na 1\nb{le=\"0.5\"} 2 1700000000\nc +Inf\n"
	n, err := ValidatePrometheusText(strings.NewReader(ok))
	if err != nil || n != 3 {
		t.Errorf("ValidatePrometheusText(valid) = %d, %v; want 3, nil", n, err)
	}
}

func TestPrometheusName(t *testing.T) {
	cases := map[string]string{
		"solve.sat_calls":    "solve_sat_calls",
		"winner.linear-su":   "winner_linear_su",
		"9lives":             "_9lives",
		"ok_name:with_colon": "ok_name:with_colon",
	}
	for in, want := range cases {
		if got := PrometheusName(in); got != want {
			t.Errorf("PrometheusName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 1} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("Sum = %v, want 556.5", h.Sum())
	}
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("Snapshot = %v %v, want cumulative [2 3 4]", bounds, cum)
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram reports observations")
	}
}
