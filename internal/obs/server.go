package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"
)

// Server is the embeddable telemetry endpoint behind the CLIs'
// --obs-listen flag and the future mpmcsd service:
//
//	/metrics       Prometheus text format 0.0.4 (counters, gauges,
//	               histograms, plus the bus's own health gauges)
//	/events        Server-Sent Events stream of live solver events —
//	               the bound trajectory as it converges
//	/healthz       liveness probe
//	/debug/pprof/* the standard profiling handlers
//
// A Server with a nil Metrics or nil EventBus still serves: /metrics
// is then empty and /events only sends keepalives. Create with
// NewServer, start with Start, stop with Close; Handler exposes the
// mux for mounting into an existing server instead.
type Server struct {
	metrics *Metrics
	bus     *EventBus

	// KeepAlive is the SSE comment-ping interval keeping idle
	// connections open through proxies; set before Start/Handler.
	KeepAlive time.Duration

	mu  sync.Mutex
	srv *http.Server // guarded by mu
	ln  net.Listener // guarded by mu
	wg  sync.WaitGroup
}

// NewServer returns an unstarted telemetry server over the given
// registry and bus (either may be nil).
func NewServer(m *Metrics, bus *EventBus) *Server {
	return &Server{metrics: m, bus: bus, KeepAlive: 15 * time.Second}
}

// Handler returns the telemetry mux, for embedding into an existing
// http.Server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return mux
}

// Start listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// telemetry endpoints until Close. It returns the bound address, so
// ":0" callers learn the chosen port.
func (s *Server) Start(addr string) (boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: telemetry listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.srv, s.ln = srv, ln
	s.mu.Unlock()
	s.wg.Add(1)
	//lint:ignore goroutinewait server goroutine lives until Close shuts the listener; Close joins it via wg
	go func() {
		defer s.wg.Done()
		srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener, disconnects every in-flight request
// (including blocked SSE streams) and waits for the serve goroutine to
// exit. Safe to call without Start and more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Close() // Close (not Shutdown): SSE streams never drain on their own
	s.wg.Wait()
	return err
}

// handleMetrics serves the Prometheus exposition, appending the bus's
// own health as gauges so scrapers can watch for event loss.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w) //nolint:errcheck // client gone mid-write
	if s.bus.Enabled() {
		fmt.Fprintf(w, "# TYPE obs_bus_events_published counter\nobs_bus_events_published %d\n", s.bus.Published())
		fmt.Fprintf(w, "# TYPE obs_bus_events_dropped counter\nobs_bus_events_dropped %d\n", s.bus.Dropped())
		fmt.Fprintf(w, "# TYPE obs_bus_subscribers gauge\nobs_bus_subscribers %d\n", s.bus.Subscribers())
		fmt.Fprintf(w, "# TYPE obs_bus_queue_depth gauge\nobs_bus_queue_depth %d\n", s.bus.QueueDepth())
	}
}

// handleEvents streams the bus as Server-Sent Events: one frame per
// Event ("event: <kind>", "data: <envelope JSON>", "id: <seq>"),
// starting with the replay ring so late subscribers see the current
// trajectory. Keepalive comment lines flow while the solver is quiet.
// The stream ends when the client disconnects or the server closes; a
// subscriber that stops reading loses events (bus drop policy) but
// never blocks the solver.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": mpmcs4fta event stream\n\n")
	flusher.Flush()

	sub := s.bus.Subscribe(256)
	if sub != nil {
		defer sub.Close()
	}

	keepAlive := s.KeepAlive
	if keepAlive <= 0 {
		keepAlive = 15 * time.Second
	}
	ticker := time.NewTicker(keepAlive)
	defer ticker.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE renders one event as an SSE frame.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, data)
	return err
}
