package decomp

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sched"
)

// ModuleSolution is what the caller's Solver returns for one plan
// node: the node's quotient-level MPMCS and how certain it is.
type ModuleSolution struct {
	// CutSet is the quotient-level minimal cut set — ids from the
	// node's Tree, so it may contain pseudo-events (child node ids).
	CutSet []string
	// Probability is the quotient MPMCS probability with child optima
	// substituted — the value the parent sees as this pseudo-event's
	// probability. 0 when Impossible.
	Probability float64
	// Optimal is true when the solve proved CutSet maximal-probability
	// for the quotient; false for an anytime (FEASIBLE) answer.
	Optimal bool
	// GapLog bounds, in −log-probability space, how far an anytime
	// answer may sit above the quotient optimum (0 when Optimal).
	GapLog float64
	// Impossible marks a module whose top can never occur: no cut set
	// exists. The module becomes a p=0 pseudo-event in its parent.
	Impossible bool
	// Winner names the engine that produced the answer.
	Winner string
	// Stats carries the winning engine's solver counters for this node.
	Stats obs.SolverStats
	// Vars, HardClauses and SoftClauses size the node's WCNF instance.
	Vars, HardClauses, SoftClauses int
	// ElapsedMS is the node's wall-clock solve time (filled by Execute).
	ElapsedMS float64
}

// Solver solves one plan node. By the time it runs, every pseudo-event
// in node.Tree carries its child module's solved probability. A solver
// signals "no cut set" by returning Impossible rather than an error;
// errors abort the whole plan.
type Solver func(ctx context.Context, node *PlanNode) (ModuleSolution, error)

// ExecOptions configures plan execution.
type ExecOptions struct {
	// Pool runs the node solves; nil creates a GOMAXPROCS-sized pool
	// for the duration of the call.
	Pool *sched.Pool
	// Bus receives ModuleStarted/ModuleFinished events (nil = off).
	Bus *obs.EventBus
	// Floor is the minimum deadline slice carved for one node when the
	// parent context has a deadline; 0 selects a small default.
	Floor time.Duration
}

// Outcome is the recombined result of a plan execution.
type Outcome struct {
	// CutSet is the final MPMCS over real basic events: the root
	// quotient's cut set with every pseudo-event expanded. Nil when
	// Impossible.
	CutSet []string
	// Optimal is true when every node proved its quotient optimum — the
	// composed answer is then the global optimum.
	Optimal bool
	// GapLog is the composed global gap in −log-probability space: the
	// sum of the node gaps. A pseudo-event's soft clause is falsified
	// at most once per model, so a child's gap inflates the costs its
	// parent reasons over by at most that gap; summing node gaps is
	// therefore a sound (if conservative — modules outside the chosen
	// cut set still count) bound on how far the composed answer can
	// sit above the true global optimum.
	GapLog float64
	// Impossible is true when the root module has no cut set at all.
	Impossible bool
	// Solutions holds each node's ModuleSolution by node id.
	Solutions map[string]ModuleSolution
}

// bounds composes the per-module verdicts into one global view while
// the plan runs: all-optimal status and the summed log-space gap — the
// decomposition-level analogue of portfolio.Bounds. Engines race
// inside one module; bounds compose across modules, so an anytime
// interrupt still yields a verified FEASIBLE answer with a global gap.
type bounds struct {
	mu      sync.Mutex
	gapLog  float64 // guarded by mu
	optimal bool    // guarded by mu
	done    int     // guarded by mu
}

func newBounds() *bounds { return &bounds{optimal: true} }

// record folds one finished module into the composed view.
func (b *bounds) record(sol ModuleSolution) {
	b.mu.Lock()
	b.done++
	b.gapLog += sol.GapLog
	if !sol.Optimal && !sol.Impossible {
		b.optimal = false
	}
	b.mu.Unlock()
}

// snapshot returns the composed (allOptimal, ΣgapLog, modulesDone).
func (b *bounds) snapshot() (bool, float64, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.optimal, b.gapLog, b.done
}

// nodeDone is one node's completion message back to the coordinator.
type nodeDone struct {
	id  string
	sol ModuleSolution
	err error
}

// Execute runs the plan: leaves go to the pool first, each completed
// module substitutes its probability into the parent quotient, and a
// node is submitted once all of its children are solved. Deadline
// budget is carved per node from the parent context in proportion to
// the node's share of the not-yet-solved events, so an overall
// --timeout is split across sub-solves instead of letting the first
// one starve the rest. The first node error cancels the remaining
// plan; already-queued nodes still drain (observing the dead context)
// so Execute never strands pool workers.
//
// All plan state (pending counts, quotient substitution, submissions)
// lives on the coordinating goroutine; workers only send completion
// messages over a fully-buffered channel, so a full pool queue can
// never deadlock against task-spawns-task submission.
func Execute(ctx context.Context, plan *Plan, solve Solver, opts ExecOptions) (*Outcome, error) {
	if plan == nil || len(plan.Nodes) == 0 {
		return nil, fmt.Errorf("decomp: empty plan")
	}
	pool := opts.Pool
	if pool == nil {
		pool = sched.New(0)
		defer pool.Close()
	}
	floor := opts.Floor
	if floor <= 0 {
		floor = 50 * time.Millisecond
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	comp := newBounds()
	// Buffered for every node: a worker's completion send never blocks,
	// so workers always finish even while the coordinator is itself
	// blocked in pool.Submit.
	results := make(chan nodeDone, len(plan.Nodes))

	runNode := func(nodeID string, share float64) func(context.Context) {
		return func(poolCtx context.Context) {
			if err := poolCtx.Err(); err != nil {
				results <- nodeDone{id: nodeID, err: err}
				return
			}
			node := plan.Nodes[nodeID]
			nodeCtx, nodeCancel := sched.Carve(poolCtx, share, floor)
			defer nodeCancel()

			bus := opts.Bus
			if bus.Enabled() {
				bus.Publish(obs.ModuleStarted{Module: nodeID, Events: node.Events, Children: node.Children})
			}
			start := time.Now()
			sol, err := solve(nodeCtx, node)
			sol.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
			if bus.Enabled() {
				fin := obs.ModuleFinished{
					Module:      nodeID,
					Probability: sol.Probability,
					Winner:      sol.Winner,
					ElapsedMS:   sol.ElapsedMS,
				}
				switch {
				case err != nil:
					fin.Status = "ERROR"
					fin.Err = err.Error()
				case sol.Impossible:
					fin.Status = "INFEASIBLE"
				case sol.Optimal:
					fin.Status = "OPTIMAL"
				default:
					fin.Status = "FEASIBLE"
				}
				bus.Publish(fin)
			}
			if err == nil {
				comp.record(sol)
			}
			results <- nodeDone{id: nodeID, sol: sol, err: err}
		}
	}

	// Coordinator state — single-goroutine, no locking needed.
	var (
		solutions = make(map[string]ModuleSolution, len(plan.Nodes))
		pending   = make(map[string]int, len(plan.Nodes))
		remaining = plan.TotalEvents
		firstErr  error
		submitted int
	)
	submit := func(nodeID string) {
		share := 1.0
		if remaining > 0 {
			share = float64(plan.Nodes[nodeID].Events) / float64(remaining)
		}
		if err := pool.Submit(ctx, runNode(nodeID, share)); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("decomp: submit module %q: %w", nodeID, err)
			}
			cancel()
			return
		}
		submitted++
	}

	for id, node := range plan.Nodes {
		pending[id] = len(node.Children)
	}
	// Plan order is bottom-up, so its prefix holds the leaves; submit
	// in that order for a deterministic start.
	for _, id := range plan.Order {
		if pending[id] == 0 {
			submit(id)
		}
	}

	for done := 0; done < submitted; done++ {
		r := <-results
		if r.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("decomp: module %q: %w", r.id, r.err)
			}
			cancel() // stop running solves; queued ones drain fast
			continue
		}
		solutions[r.id] = r.sol
		node := plan.Nodes[r.id]
		remaining -= node.Events
		if node.Parent == "" || firstErr != nil {
			continue
		}
		parent := plan.Nodes[node.Parent]
		// The solved module re-enters its parent as a pseudo-event: its
		// MPMCS probability (0 for an impossible module, which the
		// weight transform turns into a hard "cannot fail" constraint).
		if err := parent.Tree.SetProb(r.id, r.sol.Probability); err != nil {
			firstErr = fmt.Errorf("decomp: substitute module %q into %q: %w", r.id, node.Parent, err)
			cancel()
			continue
		}
		pending[node.Parent]--
		if pending[node.Parent] == 0 {
			submit(node.Parent)
		}
	}

	if firstErr != nil {
		return nil, firstErr
	}
	root, ok := solutions[plan.Root]
	if !ok {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("decomp: root module %q was never solved", plan.Root)
	}

	allOptimal, gapLog, _ := comp.snapshot()
	out := &Outcome{
		Optimal:    allOptimal,
		GapLog:     gapLog,
		Impossible: root.Impossible,
		Solutions:  solutions,
	}
	if !root.Impossible {
		cutSets := make(map[string][]string, len(solutions))
		for id, sol := range solutions {
			cutSets[id] = sol.CutSet
		}
		out.CutSet = plan.Expand(cutSets)
	}
	return out, nil
}
