// Package decomp turns one fault tree into a modular decomposition
// plan and executes it: independent Dutuit–Rauzy modules (ft.Modules)
// are solved as separate MaxSAT instances, bottom-up, each solved
// module re-entering its parent as a pseudo-basic-event whose
// probability is the module's own MPMCS optimum. Because modules are
// variable-disjoint and −log weights are additive, substituting module
// optima preserves the global optimum: the MPMCS of the whole tree is
// the root quotient's MPMCS with every pseudo-event expanded by its
// module's cut set.
//
// The package is deliberately solver-agnostic: BuildPlan produces
// quotient trees, Execute schedules them over a sched.Pool and calls
// back into a Solver the caller provides (internal/core supplies the
// WCNF + portfolio pipeline), so decomp depends only on ft, sched and
// obs and cannot cycle back into core.
package decomp

import (
	"fmt"
	"sort"

	"mpmcs4fta/internal/ft"
)

// DefaultMinEvents is the smallest module subtree worth a separate
// solve. In a tree-shaped tree every gate is a module, so without a
// floor the plan would degenerate into one instance per gate and the
// scheduling overhead would swamp the per-instance work.
const DefaultMinEvents = 8

// pseudoProbPlaceholder marks a pseudo-event whose real probability
// arrives only when its module's solve completes (Execute substitutes
// it via SetProb before the parent is submitted). Any valid interior
// probability works; solving a node with a placeholder still in place
// is a bug.
const pseudoProbPlaceholder = 0.5

// Options configures planning.
type Options struct {
	// MinEvents is the minimum number of basic events in a module's
	// subtree for it to become its own plan node; smaller modules stay
	// inlined in their parent. Values below 1 select DefaultMinEvents.
	MinEvents int
}

// PlanNode is one schedulable sub-solve: a quotient tree rooted at a
// module gate, in which every nested planned module appears as a
// pseudo-basic-event reusing the module gate's id.
type PlanNode struct {
	// ID is the module gate's id in the original tree; the quotient
	// tree's top. The root node's ID is the original top.
	ID string
	// Tree is the quotient: the module's own gates and events, with
	// nested planned modules replaced by pseudo-events (their ids are
	// listed in Children). Execute mutates the pseudo probabilities in
	// place as children complete, so the tree must not be shared.
	Tree *ft.Tree
	// Children are the nested plan nodes, i.e. the pseudo-event ids in
	// Tree, sorted.
	Children []string
	// Parent is the plan node whose quotient holds this module as a
	// pseudo-event ("" for the root).
	Parent string
	// Events is the number of real basic events in Tree (pseudo-events
	// excluded) — the size signal deadline shares are carved from.
	Events int
}

// Plan is a modular decomposition: a DAG of quotient solves. Leaves
// first, the root (original top) last.
type Plan struct {
	// Nodes maps module gate id to its plan node.
	Nodes map[string]*PlanNode
	// Order lists node ids bottom-up: every node appears after all of
	// its Children, the Root last.
	Order []string
	// Root is the top node's id.
	Root string
	// TotalEvents is the number of real events across all nodes.
	TotalEvents int
}

// Trivial reports whether the plan offers no decomposition (fewer than
// two nodes) and the caller should keep the monolithic path.
func (p *Plan) Trivial() bool { return p == nil || len(p.Nodes) < 2 }

// BuildPlan computes the decomposition plan of a valid tree. The
// returned plan is Trivial when the tree has no proper module meeting
// opts.MinEvents — the caller then falls back to one monolithic solve.
func BuildPlan(t *ft.Tree, opts Options) (*Plan, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	minEvents := opts.MinEvents
	if minEvents < 1 {
		minEvents = DefaultMinEvents
	}

	modules, err := t.Modules()
	if err != nil {
		return nil, err
	}

	// Count real events in each module's subtree (shared nodes inside a
	// module counted once).
	subtreeEvents := func(root string) int {
		seen := make(map[string]bool)
		count := 0
		var walk func(id string)
		walk = func(id string) {
			if seen[id] {
				return
			}
			seen[id] = true
			g := t.Gate(id)
			if g == nil {
				count++
				return
			}
			for _, in := range g.Inputs {
				walk(in)
			}
		}
		walk(root)
		return count
	}

	// Select the modules that become plan nodes: the top always, proper
	// modules only when their whole subtree is big enough to pay for a
	// separate solve.
	selected := map[string]bool{t.Top(): true}
	for _, id := range modules {
		if id == t.Top() {
			continue
		}
		if subtreeEvents(id) >= minEvents {
			selected[id] = true
		}
	}

	plan := &Plan{Nodes: make(map[string]*PlanNode), Root: t.Top()}
	// Build quotient nodes from the top down; buildNode recurses into
	// the selected modules it turns into pseudo-events.
	if err := buildNode(t, t.Top(), "", selected, plan); err != nil {
		return nil, err
	}
	// Bottom-up order by post-order over the child DAG.
	var post func(id string)
	post = func(id string) {
		for _, c := range plan.Nodes[id].Children {
			post(c)
		}
		plan.Order = append(plan.Order, id)
	}
	post(plan.Root)
	for _, n := range plan.Nodes {
		plan.TotalEvents += n.Events
	}
	return plan, nil
}

// buildNode constructs the quotient tree rooted at the module gate
// root, descending into nested selected modules as separate nodes.
func buildNode(t *ft.Tree, root, parent string, selected map[string]bool, plan *Plan) error {
	node := &PlanNode{ID: root, Parent: parent, Tree: ft.New(t.Name() + "/" + root)}
	plan.Nodes[root] = node

	seen := make(map[string]bool)
	var copyNode func(id string) error
	copyNode = func(id string) error {
		if seen[id] {
			return nil
		}
		seen[id] = true
		if id != root && selected[id] {
			// Nested module: pseudo-event in this quotient, own node in
			// the plan. The gate id is free to reuse as an event id
			// because the gate itself is not copied here.
			node.Children = append(node.Children, id)
			if err := node.Tree.AddEvent(id, pseudoProbPlaceholder); err != nil {
				return err
			}
			return buildNode(t, id, root, selected, plan)
		}
		if e := t.Event(id); e != nil {
			node.Events++
			return node.Tree.AddEventDesc(e.ID, e.Description, e.Prob)
		}
		g := t.Gate(id)
		for _, in := range g.Inputs {
			if err := copyNode(in); err != nil {
				return err
			}
		}
		return node.Tree.AddGate(g.ID, g.Description, g.Type, g.K, g.Inputs...)
	}
	if err := copyNode(root); err != nil {
		return fmt.Errorf("decomp: quotient for module %q: %w", root, err)
	}
	node.Tree.SetTop(root)
	if err := node.Tree.Validate(); err != nil {
		// Modules() guarantees the subtree is self-contained; a failure
		// here means the module contract broke.
		return fmt.Errorf("decomp: quotient for module %q is invalid: %w", root, err)
	}
	sort.Strings(node.Children)
	return nil
}

// Expand substitutes pseudo-events in the per-node cut sets into one
// flat cut set of real basic events, starting from the root node's
// set. cutSets maps node id to that node's quotient-level cut set.
func (p *Plan) Expand(cutSets map[string][]string) []string {
	var out []string
	var expand func(nodeID string)
	expand = func(nodeID string) {
		node := p.Nodes[nodeID]
		children := make(map[string]bool, len(node.Children))
		for _, c := range node.Children {
			children[c] = true
		}
		for _, id := range cutSets[nodeID] {
			if children[id] {
				expand(id)
				continue
			}
			out = append(out, id)
		}
	}
	expand(p.Root)
	sort.Strings(out)
	return out
}
