package decomp_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mpmcs4fta/internal/decomp"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sched"
)

// modularTree builds: top = OR(m1, m2, e0) with m1 = AND(e1..e4) and
// m2 = OR(e5..e8) — two proper 4-event modules plus one loose event.
func modularTree(t *testing.T) *ft.Tree {
	t.Helper()
	tree := ft.New("modular")
	// m1's full AND (0.3·0.4·0.5·0.6 = 0.036) beats m2's best single
	// event (0.03) and the loose e0 (0.01), so the global MPMCS crosses
	// a module boundary.
	probs := []float64{0.01, 0.3, 0.4, 0.5, 0.6, 0.01, 0.002, 0.03, 0.004}
	for i, p := range probs {
		if err := tree.AddEvent(eventID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(t, tree.AddAnd("m1", "e1", "e2", "e3", "e4"))
	mustAdd(t, tree.AddOr("m2", "e5", "e6", "e7", "e8"))
	mustAdd(t, tree.AddOr("top", "m1", "m2", "e0"))
	tree.SetTop("top")
	return tree
}

func eventID(i int) string { return "e" + string(rune('0'+i)) }

func mustAdd(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// bruteSolve is the oracle Solver: exhaustive max-probability cut set
// over the node's quotient events. With every probability strictly
// inside (0,1), the maximiser is automatically a minimal cut set.
func bruteSolve(_ context.Context, node *decomp.PlanNode) (decomp.ModuleSolution, error) {
	return bruteTree(node.Tree)
}

func bruteTree(tree *ft.Tree) (decomp.ModuleSolution, error) {
	events := tree.Events()
	best := 0.0
	var bestSet []string
	for mask := 1; mask < 1<<len(events); mask++ {
		failed := make(map[string]bool, len(events))
		p := 1.0
		var set []string
		for i, e := range events {
			if mask&(1<<i) != 0 {
				failed[e.ID] = true
				p *= e.Prob
				set = append(set, e.ID)
			}
		}
		if p <= best {
			continue
		}
		ok, err := tree.Eval(failed)
		if err != nil {
			return decomp.ModuleSolution{}, err
		}
		if ok {
			best = p
			bestSet = set
		}
	}
	if len(bestSet) == 0 {
		return decomp.ModuleSolution{Impossible: true}, nil
	}
	sort.Strings(bestSet)
	return decomp.ModuleSolution{CutSet: bestSet, Probability: best, Optimal: true}, nil
}

func TestBuildPlanModularTree(t *testing.T) {
	tree := modularTree(t)
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trivial() {
		t.Fatal("expected a non-trivial plan")
	}
	if len(plan.Nodes) != 3 {
		t.Fatalf("plan has %d nodes, want 3", len(plan.Nodes))
	}
	root := plan.Nodes["top"]
	if root == nil || plan.Root != "top" {
		t.Fatalf("root = %q, want top", plan.Root)
	}
	if got := strings.Join(root.Children, ","); got != "m1,m2" {
		t.Fatalf("root children = %q, want m1,m2", got)
	}
	// Root quotient: loose event e0 plus two pseudo-events.
	if root.Events != 1 {
		t.Fatalf("root real events = %d, want 1", root.Events)
	}
	for _, child := range []string{"m1", "m2"} {
		n := plan.Nodes[child]
		if n.Events != 4 || len(n.Children) != 0 || n.Parent != "top" {
			t.Fatalf("node %s = %+v, want 4 events, no children, parent top", child, n)
		}
		if n.Tree.Top() != child {
			t.Fatalf("node %s quotient top = %q", child, n.Tree.Top())
		}
	}
	// Bottom-up order: root last, after its children.
	if plan.Order[len(plan.Order)-1] != "top" {
		t.Fatalf("order %v does not end at the root", plan.Order)
	}
	if plan.TotalEvents != 9 {
		t.Fatalf("TotalEvents = %d, want 9", plan.TotalEvents)
	}
}

func TestBuildPlanTrivialWhenModulesTooSmall(t *testing.T) {
	tree := modularTree(t)
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Trivial() {
		t.Fatalf("plan with %d nodes should be trivial", len(plan.Nodes))
	}
	// The trivial plan still holds the whole tree at its root.
	if plan.Nodes["top"].Events != 9 {
		t.Fatalf("trivial root events = %d, want 9", plan.Nodes["top"].Events)
	}
}

func TestBuildPlanSharedEventsStayMonolithic(t *testing.T) {
	// e_shared feeds both gates, so neither is a module; only the top
	// qualifies and the plan is trivial.
	tree := ft.New("shared")
	for _, id := range []string{"a", "b", "c", "d", "shared"} {
		mustAdd(t, tree.AddEvent(id, 0.1))
	}
	mustAdd(t, tree.AddAnd("g1", "a", "b", "shared"))
	mustAdd(t, tree.AddAnd("g2", "c", "d", "shared"))
	mustAdd(t, tree.AddOr("top", "g1", "g2"))
	tree.SetTop("top")
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Trivial() {
		t.Fatalf("shared-event tree produced %d plan nodes, want trivial", len(plan.Nodes))
	}
}

func TestBuildPlanNestedModules(t *testing.T) {
	// inner = AND(i1..i4) nested inside mid = OR(inner, x1..x3), under
	// top = AND(mid, o1..o4): nested plan nodes three deep.
	tree := ft.New("nested")
	for _, id := range []string{"i1", "i2", "i3", "i4", "x1", "x2", "x3", "o1", "o2", "o3", "o4"} {
		mustAdd(t, tree.AddEvent(id, 0.2))
	}
	mustAdd(t, tree.AddAnd("inner", "i1", "i2", "i3", "i4"))
	mustAdd(t, tree.AddOr("mid", "inner", "x1", "x2", "x3"))
	mustAdd(t, tree.AddAnd("top", "mid", "o1", "o2", "o3", "o4"))
	tree.SetTop("top")

	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Nodes) != 3 {
		t.Fatalf("plan has %d nodes, want 3 (top, mid, inner)", len(plan.Nodes))
	}
	if got := plan.Nodes["mid"].Parent; got != "top" {
		t.Fatalf("mid parent = %q", got)
	}
	if got := plan.Nodes["inner"].Parent; got != "mid" {
		t.Fatalf("inner parent = %q", got)
	}
	// Order must put inner before mid before top.
	pos := make(map[string]int)
	for i, id := range plan.Order {
		pos[id] = i
	}
	if !(pos["inner"] < pos["mid"] && pos["mid"] < pos["top"]) {
		t.Fatalf("order %v is not bottom-up", plan.Order)
	}

	// Execute with the oracle and compare against brute force on the
	// whole tree.
	out, err := decomp.Execute(context.Background(), plan, bruteSolve, decomp.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bruteTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	checkOutcome(t, out, want)
}

func checkOutcome(t *testing.T, out *decomp.Outcome, want decomp.ModuleSolution) {
	t.Helper()
	if out.Impossible {
		t.Fatal("outcome impossible, want a cut set")
	}
	if !out.Optimal || out.GapLog != 0 {
		t.Fatalf("outcome not optimal: %+v", out)
	}
	got := strings.Join(out.CutSet, ",")
	if got != strings.Join(want.CutSet, ",") {
		t.Fatalf("cut set = %s, want %s", got, strings.Join(want.CutSet, ","))
	}
}

func TestExecuteMatchesMonolithicOracle(t *testing.T) {
	tree := modularTree(t)
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	bus := obs.NewEventBus()
	out, err := decomp.Execute(context.Background(), plan, bruteSolve, decomp.ExecOptions{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	want, err := bruteTree(tree)
	if err != nil {
		t.Fatal(err)
	}
	checkOutcome(t, out, want)

	// Cross-check the composed probability against the expanded set.
	p := 1.0
	for _, id := range out.CutSet {
		p *= tree.Event(id).Prob
	}
	if math.Abs(p-want.Probability) > 1e-12 {
		t.Fatalf("expanded probability %v, want %v", p, want.Probability)
	}

	// Module lifecycle events: one started+finished pair per node.
	started, finished := 0, 0
	for _, ev := range bus.Replay() {
		switch ev.Kind {
		case obs.KindModuleStarted:
			started++
		case obs.KindModuleFinished:
			finished++
		}
	}
	if started != len(plan.Nodes) || finished != len(plan.Nodes) {
		t.Fatalf("module events started=%d finished=%d, want %d each", started, finished, len(plan.Nodes))
	}
}

func TestExecuteImpossibleModule(t *testing.T) {
	// m1 can never occur (p=0 event under an AND); the optimum must
	// come from m2.
	tree := ft.New("impossible-module")
	mustAdd(t, tree.AddEvent("z", 0))
	for _, id := range []string{"a1", "a2", "a3", "b1", "b2", "b3", "b4"} {
		mustAdd(t, tree.AddEvent(id, 0.2))
	}
	mustAdd(t, tree.AddAnd("m1", "z", "a1", "a2", "a3"))
	mustAdd(t, tree.AddAnd("m2", "b1", "b2", "b3", "b4"))
	mustAdd(t, tree.AddOr("top", "m1", "m2"))
	tree.SetTop("top")

	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trivial() {
		t.Fatal("expected a non-trivial plan")
	}
	out, err := decomp.Execute(context.Background(), plan, bruteSolve, decomp.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(out.CutSet, ","); got != "b1,b2,b3,b4" {
		t.Fatalf("cut set = %s, want b1,b2,b3,b4", got)
	}
	if !out.Solutions["m1"].Impossible {
		t.Fatal("m1 should be impossible")
	}
}

func TestExecuteWholeTreeImpossible(t *testing.T) {
	tree := ft.New("impossible")
	mustAdd(t, tree.AddEvent("z", 0))
	for _, id := range []string{"a1", "a2", "a3", "b1", "b2", "b3", "b4"} {
		mustAdd(t, tree.AddEvent(id, 0.2))
	}
	mustAdd(t, tree.AddAnd("m1", "z", "a1", "a2", "a3"))
	mustAdd(t, tree.AddOr("m2", "b1", "b2", "b3", "b4"))
	mustAdd(t, tree.AddAnd("top", "m1", "m2"))
	tree.SetTop("top")

	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := decomp.Execute(context.Background(), plan, bruteSolve, decomp.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Impossible {
		t.Fatalf("outcome = %+v, want impossible", out)
	}
}

func TestExecuteSolverErrorAborts(t *testing.T) {
	tree := modularTree(t)
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("engine exploded")
	var calls atomic.Int32
	solver := func(ctx context.Context, node *decomp.PlanNode) (decomp.ModuleSolution, error) {
		calls.Add(1)
		if node.ID == "m1" {
			return decomp.ModuleSolution{}, boom
		}
		return bruteSolve(ctx, node)
	}
	_, err = decomp.Execute(context.Background(), plan, solver, decomp.ExecOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("Execute error = %v, want the solver error", err)
	}
	// The root must never have been submitted after the failure.
	if calls.Load() > 2 {
		t.Fatalf("solver ran %d times after abort, want ≤2", calls.Load())
	}
}

func TestExecuteCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	tree := modularTree(t)
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.New(2)
	solver := func(ctx context.Context, node *decomp.PlanNode) (decomp.ModuleSolution, error) {
		<-ctx.Done() // a solve that only ends when cancelled
		return decomp.ModuleSolution{}, ctx.Err()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := decomp.Execute(ctx, plan, solver, decomp.ExecOptions{Pool: pool}); err == nil {
		t.Fatal("Execute succeeded with a never-finishing solver")
	}
	pool.Close()

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExpandNested(t *testing.T) {
	tree := ft.New("nested")
	for _, id := range []string{"i1", "i2", "i3", "i4", "x1", "x2", "x3", "o1", "o2", "o3", "o4"} {
		mustAdd(t, tree.AddEvent(id, 0.2))
	}
	mustAdd(t, tree.AddAnd("inner", "i1", "i2", "i3", "i4"))
	mustAdd(t, tree.AddOr("mid", "inner", "x1", "x2", "x3"))
	mustAdd(t, tree.AddAnd("top", "mid", "o1", "o2", "o3", "o4"))
	tree.SetTop("top")
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: 4})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.Expand(map[string][]string{
		"top":   {"mid", "o1", "o2", "o3", "o4"},
		"mid":   {"inner"},
		"inner": {"i1", "i2", "i3", "i4"},
	})
	want := "i1,i2,i3,i4,o1,o2,o3,o4"
	if strings.Join(got, ",") != want {
		t.Fatalf("expanded = %v, want %s", got, want)
	}
}
