// Package cnf provides conjunctive-normal-form clause databases, the
// Tseitin transformation from Boolean expressions (Step 2 of the paper's
// pipeline), and the DIMACS CNF / WCNF interchange formats used by SAT
// and MaxSAT solvers.
package cnf

import (
	"fmt"
	"strconv"
)

// Lit is a DIMACS-style literal: +v denotes variable v, -v its negation.
// Variable indices start at 1; 0 is not a valid literal.
type Lit int32

// Var returns the literal's variable index (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return -l }

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// String implements fmt.Stringer.
func (l Lit) String() string { return strconv.Itoa(int(l)) }

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a CNF formula: a conjunction of clauses over variables
// 1..NumVars. The zero value is an empty formula over zero variables.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewVar allocates a fresh variable and returns its positive literal.
func (f *Formula) NewVar() Lit {
	f.NumVars++
	return Lit(f.NumVars)
}

// AddClause appends a clause. The literals are copied.
func (f *Formula) AddClause(lits ...Lit) {
	clause := make(Clause, len(lits))
	copy(clause, lits)
	f.Clauses = append(f.Clauses, clause)
	for _, l := range lits {
		if v := l.Var(); v > f.NumVars {
			f.NumVars = v
		}
	}
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Eval evaluates the formula under a total assignment. assign[v] is the
// value of variable v (index 0 is unused). It returns an error if a
// literal references a variable outside the assignment.
func (f *Formula) Eval(assign []bool) (bool, error) {
	for _, clause := range f.Clauses {
		satisfied := false
		for _, l := range clause {
			v := l.Var()
			if v >= len(assign) {
				return false, fmt.Errorf("cnf: literal %d outside assignment of length %d", l, len(assign))
			}
			if assign[v] == l.Pos() {
				satisfied = true
				break
			}
		}
		if !satisfied {
			return false, nil
		}
	}
	return true, nil
}

// Validate checks that every literal is non-zero and within 1..NumVars.
func (f *Formula) Validate() error {
	for i, clause := range f.Clauses {
		if len(clause) == 0 {
			continue // the empty clause is valid (and unsatisfiable)
		}
		for _, l := range clause {
			if l == 0 {
				return fmt.Errorf("cnf: clause %d contains literal 0", i)
			}
			if v := l.Var(); v > f.NumVars {
				return fmt.Errorf("cnf: clause %d references variable %d > NumVars %d", i, v, f.NumVars)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	out := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		out.Clauses[i] = append(Clause(nil), c...)
	}
	return out
}
