package cnf

import "math"

// AddWeights returns a+b and reports whether the sum fits in int64.
// Soft-clause weights and cost totals must flow through this helper
// (or MulWeights) rather than raw arithmetic: the 2022 WCNF dialect
// admits weights near 2^63, and a silently wrapped total corrupts
// every bound the MaxSAT engines derive from it. The weightsafe
// analyzer (internal/lint) enforces this at build time.
func AddWeights(a, b int64) (int64, bool) {
	sum := a + b
	if (b > 0 && sum < a) || (b < 0 && sum > a) {
		return 0, false
	}
	return sum, true
}

// MulWeights returns a*b and reports whether the product fits in
// int64. See AddWeights for why weight arithmetic must be checked.
func MulWeights(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	// MinInt64 * -1 wraps, and Go defines MinInt64 / -1 == MinInt64, so
	// the division round-trip below cannot catch that pair.
	if (a == math.MinInt64 && b == -1) || (a == -1 && b == math.MinInt64) {
		return 0, false
	}
	prod := a * b
	if prod/b != a {
		return 0, false
	}
	return prod, true
}
