package cnf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"mpmcs4fta/internal/boolexpr"
)

// TseitinOptions configures the CNF encoder.
type TseitinOptions struct {
	// PlaistedGreenbaum enables the polarity-aware variant that only
	// emits definition implications in the polarities actually used.
	// It preserves equisatisfiability (and, for our monotone pipeline,
	// the set of projected models onto the input variables that matter)
	// while producing fewer clauses.
	PlaistedGreenbaum bool
	// VarOrder forces the listed input variables to receive DIMACS
	// indices 1..len(VarOrder) in order. Input variables not listed are
	// assigned subsequent indices in first-use order. Auxiliary Tseitin
	// variables always come after all input variables.
	VarOrder []string
}

// Encoding is the result of the Tseitin transformation: a CNF formula
// equisatisfiable with the source expression, with the root asserted as
// a unit clause.
type Encoding struct {
	Formula *Formula
	// VarOf maps each input variable name to its DIMACS index.
	VarOf map[string]int
	// Names maps DIMACS indices back to input names ("" for auxiliary
	// variables); index 0 is unused.
	Names []string
	// Root is the literal representing the whole expression.
	Root Lit
	// NumInputVars is the count of non-auxiliary variables; input
	// variables occupy indices 1..NumInputVars.
	NumInputVars int
}

// Tseitin converts e to CNF in polynomial time (Step 2 of the paper's
// pipeline). Identical subexpressions are hash-consed so DAG-shaped
// fault trees encode in linear size. AtLeast (voting) nodes are encoded
// through a shared threshold network of O(n·k) auxiliary definitions.
func Tseitin(e boolexpr.Expr, opts TseitinOptions) (*Encoding, error) {
	simplified := boolexpr.Simplify(e)

	c := newCircuit()
	for _, name := range opts.VarOrder {
		c.varNode(name)
	}

	enc := &Encoding{Formula: &Formula{}, VarOf: make(map[string]int)}

	if k, ok := simplified.(boolexpr.Const); ok {
		// Degenerate expressions still produce a root variable so the
		// caller's contract (Root asserted) holds uniformly.
		c.reserveInputVars(enc)
		root := enc.Formula.NewVar()
		enc.Names = append(enc.Names, "")
		enc.Root = root
		enc.Formula.AddClause(root)
		if !k.B {
			enc.Formula.AddClause(root.Neg())
		}
		return enc, nil
	}

	rootID, err := c.build(simplified)
	if err != nil {
		return nil, err
	}
	c.reserveInputVars(enc)
	c.emit(enc, rootID, opts.PlaistedGreenbaum)
	return enc, nil
}

// Circuit node operators. Not is folded into literal signs, so only
// variables and monotone gates remain.
const (
	opVar uint8 = iota + 1
	opAnd
	opOr
)

type cnode struct {
	op   uint8
	name string // for opVar
	kids []int  // signed node references (negative = complemented)
}

// circuit is a hash-consed AND/OR DAG over named variables. Node ids
// start at 1; a negative id denotes the complement of the node.
type circuit struct {
	nodes  []cnode
	cache  map[string]int
	varIDs map[string]int
	varSeq []string // variable names in creation order
}

func newCircuit() *circuit {
	return &circuit{
		cache:  make(map[string]int),
		varIDs: make(map[string]int),
	}
}

func (c *circuit) varNode(name string) int {
	if id, ok := c.varIDs[name]; ok {
		return id
	}
	c.nodes = append(c.nodes, cnode{op: opVar, name: name})
	id := len(c.nodes)
	c.varIDs[name] = id
	c.varSeq = append(c.varSeq, name)
	return id
}

func (c *circuit) build(e boolexpr.Expr) (int, error) {
	switch x := e.(type) {
	case boolexpr.Var:
		return c.varNode(x.Name), nil
	case boolexpr.Not:
		id, err := c.build(x.X)
		if err != nil {
			return 0, err
		}
		return -id, nil
	case boolexpr.And:
		kids, err := c.buildAll(x.Xs)
		if err != nil {
			return 0, err
		}
		return c.gate(opAnd, kids), nil
	case boolexpr.Or:
		kids, err := c.buildAll(x.Xs)
		if err != nil {
			return 0, err
		}
		return c.gate(opOr, kids), nil
	case boolexpr.AtLeast:
		kids, err := c.buildAll(x.Xs)
		if err != nil {
			return 0, err
		}
		if x.K < 1 || x.K > len(kids) {
			return 0, fmt.Errorf("cnf: atleast threshold %d outside 1..%d", x.K, len(kids))
		}
		return c.threshold(x.K, kids), nil
	case boolexpr.Const:
		// Simplify folds constants everywhere (including AtLeast
		// operands), so none can reach the builder.
		return 0, fmt.Errorf("cnf: unexpected constant in simplified expression")
	}
	return 0, fmt.Errorf("cnf: unknown expression type %T", e)
}

func (c *circuit) buildAll(xs []boolexpr.Expr) ([]int, error) {
	kids := make([]int, len(xs))
	for i, x := range xs {
		id, err := c.build(x)
		if err != nil {
			return nil, err
		}
		kids[i] = id
	}
	return kids, nil
}

// gate hash-conses an AND/OR node over the given signed children with
// canonical ordering, duplicate elimination and single-child collapse.
func (c *circuit) gate(op uint8, kids []int) int {
	sorted := append([]int(nil), kids...)
	sort.Ints(sorted)
	dedup := sorted[:0]
	for i, k := range sorted {
		if i == 0 || k != sorted[i-1] {
			dedup = append(dedup, k)
		}
	}
	if len(dedup) == 1 {
		return dedup[0]
	}
	var key strings.Builder
	key.WriteByte(byte('0' + op))
	for _, k := range dedup {
		key.WriteByte(':')
		key.WriteString(strconv.Itoa(k))
	}
	if id, ok := c.cache[key.String()]; ok {
		return id
	}
	c.nodes = append(c.nodes, cnode{op: op, kids: append([]int(nil), dedup...)})
	id := len(c.nodes)
	c.cache[key.String()] = id
	return id
}

// threshold builds an at-least-k network over the signed children using
// the suffix recursion t(i,j) = (kids[i] ∧ t(i+1,j-1)) ∨ t(i+1,j), with
// And/Or hash-consing providing the O(n·k) sharing.
func (c *circuit) threshold(k int, kids []int) int {
	memo := make(map[[2]int]int, len(kids)*k)
	var t func(i, j int) int
	t = func(i, j int) int {
		rest := len(kids) - i
		switch {
		case j == rest:
			return c.gate(opAnd, kids[i:])
		case j == 1:
			return c.gate(opOr, kids[i:])
		}
		key := [2]int{i, j}
		if id, ok := memo[key]; ok {
			return id
		}
		with := c.gate(opAnd, []int{kids[i], t(i+1, j-1)})
		id := c.gate(opOr, []int{with, t(i+1, j)})
		memo[key] = id
		return id
	}
	return t(0, k)
}

// reserveInputVars assigns DIMACS indices to every circuit variable, in
// circuit creation order (which honours TseitinOptions.VarOrder).
func (c *circuit) reserveInputVars(enc *Encoding) {
	enc.Names = make([]string, 1, len(c.varSeq)+1)
	for _, name := range c.varSeq {
		v := enc.Formula.NewVar()
		enc.VarOf[name] = int(v)
		enc.Names = append(enc.Names, name)
	}
	enc.NumInputVars = len(c.varSeq)
}

// emit assigns auxiliary variables to reachable gate nodes, writes the
// definition clauses (full Tseitin or Plaisted-Greenbaum), and asserts
// the root.
func (c *circuit) emit(enc *Encoding, rootID int, pg bool) {
	nodeLit := make([]Lit, len(c.nodes)+1)
	for name, v := range enc.VarOf {
		nodeLit[c.varIDs[name]] = Lit(v)
	}

	needPos := make([]bool, len(c.nodes)+1)
	needNeg := make([]bool, len(c.nodes)+1)
	var mark func(ref int)
	mark = func(ref int) {
		id := ref
		pos := true
		if id < 0 {
			id, pos = -id, false
		}
		node := &c.nodes[id-1]
		if node.op == opVar {
			return
		}
		if pos {
			if needPos[id] {
				return
			}
			needPos[id] = true
		} else {
			if needNeg[id] {
				return
			}
			needNeg[id] = true
		}
		for _, kid := range node.kids {
			if pos {
				mark(kid)
			} else {
				mark(-kid)
			}
		}
	}
	mark(rootID)

	// Allocate auxiliary variables for every needed gate node, in node
	// order for determinism.
	for id := 1; id <= len(c.nodes); id++ {
		if needPos[id] || needNeg[id] {
			if c.nodes[id-1].op != opVar {
				nodeLit[id] = enc.Formula.NewVar()
				enc.Names = append(enc.Names, "")
			}
		}
	}

	litOf := func(ref int) Lit {
		if ref < 0 {
			return nodeLit[-ref].Neg()
		}
		return nodeLit[ref]
	}

	for id := 1; id <= len(c.nodes); id++ {
		node := &c.nodes[id-1]
		if node.op == opVar || (!needPos[id] && !needNeg[id]) {
			continue
		}
		g := nodeLit[id]
		emitPos := needPos[id] || !pg
		emitNeg := needNeg[id] || !pg
		switch node.op {
		case opAnd:
			if emitPos { // g → kid, for every kid
				for _, kid := range node.kids {
					enc.Formula.AddClause(g.Neg(), litOf(kid))
				}
			}
			if emitNeg { // ¬g → some kid false
				clause := make([]Lit, 0, len(node.kids)+1)
				clause = append(clause, g)
				for _, kid := range node.kids {
					clause = append(clause, litOf(kid).Neg())
				}
				enc.Formula.AddClause(clause...)
			}
		case opOr:
			if emitPos { // g → some kid true
				clause := make([]Lit, 0, len(node.kids)+1)
				clause = append(clause, g.Neg())
				for _, kid := range node.kids {
					clause = append(clause, litOf(kid))
				}
				enc.Formula.AddClause(clause...)
			}
			if emitNeg { // ¬g → kid false, for every kid
				for _, kid := range node.kids {
					enc.Formula.AddClause(g, litOf(kid).Neg())
				}
			}
		}
	}

	enc.Root = litOf(rootID)
	enc.Formula.AddClause(enc.Root)
}
