package cnf

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genFormula is a quick.Generator for small random CNF formulas.
type genFormula struct {
	F *Formula
}

// Generate implements quick.Generator.
func (genFormula) Generate(r *rand.Rand, _ int) reflect.Value {
	numVars := 1 + r.Intn(12)
	numClauses := r.Intn(30)
	f := &Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		k := 1 + r.Intn(4)
		clause := make([]Lit, k)
		for j := range clause {
			l := Lit(r.Intn(numVars) + 1)
			if r.Intn(2) == 0 {
				l = -l
			}
			clause[j] = l
		}
		f.AddClause(clause...)
	}
	return reflect.ValueOf(genFormula{F: f})
}

// genWCNF is a quick.Generator for small random WPMS instances.
type genWCNF struct {
	W *WCNF
}

// Generate implements quick.Generator.
func (genWCNF) Generate(r *rand.Rand, _ int) reflect.Value {
	numVars := 1 + r.Intn(10)
	w := &WCNF{NumVars: numVars}
	for i := r.Intn(12); i > 0; i-- {
		w.AddHard(randomLits(r, numVars)...)
	}
	for i := 1 + r.Intn(12); i > 0; i-- {
		w.AddSoft(int64(1+r.Intn(1_000_000)), randomLits(r, numVars)...)
	}
	return reflect.ValueOf(genWCNF{W: w})
}

func randomLits(r *rand.Rand, numVars int) []Lit {
	k := 1 + r.Intn(3)
	out := make([]Lit, k)
	for i := range out {
		l := Lit(r.Intn(numVars) + 1)
		if r.Intn(2) == 0 {
			l = -l
		}
		out[i] = l
	}
	return out
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(103))}
}

// TestQuickDIMACSRoundTrip: write→read preserves the formula exactly.
func TestQuickDIMACSRoundTrip(t *testing.T) {
	property := func(g genFormula) bool {
		var buf bytes.Buffer
		if err := g.F.WriteDIMACS(&buf); err != nil {
			return false
		}
		back, err := ReadDIMACS(&buf)
		if err != nil {
			return false
		}
		if back.NumVars != g.F.NumVars || len(back.Clauses) != len(g.F.Clauses) {
			return false
		}
		for i := range g.F.Clauses {
			if !reflect.DeepEqual(g.F.Clauses[i], back.Clauses[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickWCNFRoundTrip: WCNF write→read preserves clauses, weights
// and the hard/soft split.
func TestQuickWCNFRoundTrip(t *testing.T) {
	property := func(g genWCNF) bool {
		var buf bytes.Buffer
		if err := g.W.WriteWCNF(&buf); err != nil {
			return false
		}
		back, err := ReadWCNF(&buf)
		if err != nil {
			return false
		}
		if back.NumVars != g.W.NumVars ||
			len(back.Hard) != len(g.W.Hard) ||
			len(back.Soft) != len(g.W.Soft) {
			return false
		}
		for i := range g.W.Soft {
			if back.Soft[i].Weight != g.W.Soft[i].Weight {
				return false
			}
			if !reflect.DeepEqual(back.Soft[i].Clause, g.W.Soft[i].Clause) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIndependence: mutating a clone never affects the
// original.
func TestQuickCloneIndependence(t *testing.T) {
	property := func(g genFormula) bool {
		if len(g.F.Clauses) == 0 {
			return true
		}
		clone := g.F.Clone()
		orig := g.F.Clauses[0][0]
		clone.Clauses[0][0] = orig + 1000
		return g.F.Clauses[0][0] == orig
	}
	if err := quick.Check(property, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickCostNeverExceedsTotal: any hard-satisfying assignment costs
// at most the total soft weight.
func TestQuickCostNeverExceedsTotal(t *testing.T) {
	property := func(g genWCNF, pattern uint64) bool {
		assign := make([]bool, g.W.NumVars+1)
		for v := 1; v <= g.W.NumVars; v++ {
			assign[v] = pattern&(1<<uint(v-1)) != 0
		}
		cost, err := g.W.Cost(assign)
		if err != nil {
			return true // hard clauses violated: nothing to check
		}
		return cost >= 0 && cost <= g.W.TotalSoftWeight()
	}
	if err := quick.Check(property, qcfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickLitInvolution: literal negation is an involution that
// preserves the variable.
func TestQuickLitInvolution(t *testing.T) {
	property := func(raw int32) bool {
		if raw == 0 {
			return true
		}
		l := Lit(raw)
		return l.Neg().Neg() == l && l.Neg().Var() == l.Var() && l.Neg().Pos() != l.Pos()
	}
	if err := quick.Check(property, qcfg()); err != nil {
		t.Error(err)
	}
}
