package cnf

import (
	"testing"
)

func TestLit(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Pos() || l.Neg() != Lit(-5) {
		t.Errorf("positive literal misbehaves: %v", l)
	}
	n := Lit(-7)
	if n.Var() != 7 || n.Pos() || n.Neg() != Lit(7) {
		t.Errorf("negative literal misbehaves: %v", n)
	}
	if l.String() != "5" || n.String() != "-7" {
		t.Error("Lit.String mismatch")
	}
}

func TestFormulaBasics(t *testing.T) {
	var f Formula
	v1 := f.NewVar()
	v2 := f.NewVar()
	f.AddClause(v1, v2.Neg())
	f.AddClause(v2)
	if f.NumVars != 2 || f.NumClauses() != 2 {
		t.Fatalf("NumVars=%d NumClauses=%d", f.NumVars, f.NumClauses())
	}
	// AddClause grows NumVars when literals outrun allocations.
	f.AddClause(Lit(9))
	if f.NumVars != 9 {
		t.Errorf("NumVars = %d after out-of-range literal, want 9", f.NumVars)
	}
}

func TestFormulaAddClauseCopies(t *testing.T) {
	var f Formula
	lits := []Lit{1, 2}
	f.AddClause(lits...)
	lits[0] = 99
	if f.Clauses[0][0] != 1 {
		t.Error("AddClause must copy its argument")
	}
}

func TestFormulaEval(t *testing.T) {
	var f Formula
	f.AddClause(1, -2)
	f.AddClause(2, 3)
	tests := []struct {
		name   string
		assign []bool
		want   bool
	}{
		{"satisfying", []bool{false, true, true, false}, true},
		{"violates first", []bool{false, false, true, true}, false},
		{"violates second", []bool{false, true, false, false}, false},
		{"all true", []bool{false, true, true, true}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := f.Eval(tt.assign)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := f.Eval([]bool{false, true}); err == nil {
		t.Error("Eval with short assignment should error")
	}
}

func TestFormulaValidate(t *testing.T) {
	var f Formula
	f.AddClause(1, -2)
	if err := f.Validate(); err != nil {
		t.Errorf("valid formula rejected: %v", err)
	}
	f.Clauses = append(f.Clauses, Clause{0})
	if err := f.Validate(); err == nil {
		t.Error("zero literal accepted")
	}
	f.Clauses = []Clause{{Lit(10)}}
	f.NumVars = 2
	if err := f.Validate(); err == nil {
		t.Error("out-of-range literal accepted")
	}
	f.Clauses = []Clause{{}}
	if err := f.Validate(); err != nil {
		t.Errorf("empty clause should be structurally valid: %v", err)
	}
}

func TestFormulaClone(t *testing.T) {
	var f Formula
	f.AddClause(1, 2)
	clone := f.Clone()
	clone.Clauses[0][0] = -9
	if f.Clauses[0][0] != 1 {
		t.Error("Clone shares clause storage")
	}
}

func TestWCNFBasics(t *testing.T) {
	var w WCNF
	w.AddHard(1, 2)
	w.AddSoft(5, -1)
	w.AddSoft(7, -2)
	if w.NumVars != 2 {
		t.Errorf("NumVars = %d", w.NumVars)
	}
	if w.TotalSoftWeight() != 12 {
		t.Errorf("TotalSoftWeight = %d", w.TotalSoftWeight())
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}

	cost, err := w.Cost([]bool{false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 { // x1 true falsifies soft(-1) of weight 5
		t.Errorf("Cost = %d, want 5", cost)
	}
	if _, err := w.Cost([]bool{false, false, false}); err == nil {
		t.Error("Cost on hard-violating assignment should error")
	}
}

func TestWCNFValidateErrors(t *testing.T) {
	w := &WCNF{NumVars: 1, Soft: []SoftClause{{Clause: Clause{1}, Weight: 0}}}
	if err := w.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	w = &WCNF{NumVars: 1, Hard: []Clause{{0}}}
	if err := w.Validate(); err == nil {
		t.Error("zero literal accepted")
	}
	w = &WCNF{NumVars: 1, Soft: []SoftClause{{Clause: Clause{5}, Weight: 1}}}
	if err := w.Validate(); err == nil {
		t.Error("out-of-range soft literal accepted")
	}
}

func TestWCNFClone(t *testing.T) {
	var w WCNF
	w.AddHard(1, 2)
	w.AddSoft(3, -1)
	clone := w.Clone()
	clone.Hard[0][0] = 9
	clone.Soft[0].Clause[0] = 9
	if w.Hard[0][0] != 1 || w.Soft[0].Clause[0] != -1 {
		t.Error("Clone shares storage")
	}
}
