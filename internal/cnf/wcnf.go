package cnf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxTotalSoftWeight bounds the sum of all soft weights: one slot below
// MaxInt64 so the classic WCNF "top" weight (total+1) still fits. The
// 2022 MaxSAT-evaluation dialect permits individual weights near 2^63,
// so adversarial instances can overflow int64 accumulators in the
// engines and the budget propagator; Validate and the readers reject
// them up front with a clear error instead.
const maxTotalSoftWeight = math.MaxInt64 - 1

// SoftClause is a clause that may be falsified at a cost.
type SoftClause struct {
	Clause Clause
	Weight int64
}

// WCNF is a Weighted Partial MaxSAT instance: hard clauses that must be
// satisfied plus weighted soft clauses whose total falsified weight is to
// be minimised. This is the object produced by Step 4 of the paper's
// pipeline and consumed by internal/maxsat.
type WCNF struct {
	NumVars int
	Hard    []Clause
	Soft    []SoftClause
}

// AddHard appends a hard clause (copied).
func (w *WCNF) AddHard(lits ...Lit) {
	clause := make(Clause, len(lits))
	copy(clause, lits)
	w.Hard = append(w.Hard, clause)
	w.growVars(clause)
}

// AddSoft appends a soft clause (copied) with the given weight.
func (w *WCNF) AddSoft(weight int64, lits ...Lit) {
	clause := make(Clause, len(lits))
	copy(clause, lits)
	w.Soft = append(w.Soft, SoftClause{Clause: clause, Weight: weight})
	w.growVars(clause)
}

func (w *WCNF) growVars(clause Clause) {
	for _, l := range clause {
		if v := l.Var(); v > w.NumVars {
			w.NumVars = v
		}
	}
}

// TotalSoftWeight returns the sum of all soft weights, saturating at
// maxTotalSoftWeight. Validated instances are always below the cap, so
// saturation only triggers for programmatically built instances that
// would previously wrap int64 silently; the cap keeps the classic WCNF
// "top" weight (total+1) representable either way.
func (w *WCNF) TotalSoftWeight() int64 {
	var total int64
	for _, s := range w.Soft {
		sum, ok := AddWeights(total, s.Weight)
		if !ok || sum > maxTotalSoftWeight {
			return maxTotalSoftWeight
		}
		total = sum
	}
	return total
}

// Cost returns the total weight of soft clauses falsified by the
// assignment, or an error if the assignment violates a hard clause or is
// too short.
func (w *WCNF) Cost(assign []bool) (int64, error) {
	hard := Formula{NumVars: w.NumVars, Clauses: w.Hard}
	ok, err := hard.Eval(assign)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("cnf: assignment violates a hard clause")
	}
	var cost int64
	for _, s := range w.Soft {
		satisfied := false
		for _, l := range s.Clause {
			if v := l.Var(); v < len(assign) && assign[v] == l.Pos() {
				satisfied = true
				break
			}
		}
		if !satisfied {
			sum, okAdd := AddWeights(cost, s.Weight)
			if !okAdd {
				return 0, fmt.Errorf("cnf: falsified soft weight overflows int64 (run Validate to reject such instances up front)")
			}
			cost = sum
		}
	}
	return cost, nil
}

// Clone returns a deep copy of the instance.
func (w *WCNF) Clone() *WCNF {
	out := &WCNF{NumVars: w.NumVars}
	out.Hard = make([]Clause, len(w.Hard))
	for i, c := range w.Hard {
		out.Hard[i] = append(Clause(nil), c...)
	}
	out.Soft = make([]SoftClause, len(w.Soft))
	for i, s := range w.Soft {
		out.Soft[i] = SoftClause{Clause: append(Clause(nil), s.Clause...), Weight: s.Weight}
	}
	return out
}

// Validate checks literal ranges and that soft weights are positive.
func (w *WCNF) Validate() error {
	check := func(clause Clause, kind string, i int) error {
		for _, l := range clause {
			if l == 0 {
				return fmt.Errorf("cnf: %s clause %d contains literal 0", kind, i)
			}
			if v := l.Var(); v > w.NumVars {
				return fmt.Errorf("cnf: %s clause %d references variable %d > NumVars %d", kind, i, v, w.NumVars)
			}
		}
		return nil
	}
	for i, c := range w.Hard {
		if err := check(c, "hard", i); err != nil {
			return err
		}
	}
	var total int64
	for i, s := range w.Soft {
		if err := check(s.Clause, "soft", i); err != nil {
			return err
		}
		if s.Weight <= 0 {
			return fmt.Errorf("cnf: soft clause %d has non-positive weight %d", i, s.Weight)
		}
		sum, ok := AddWeights(total, s.Weight)
		if !ok || sum > maxTotalSoftWeight {
			return fmt.Errorf("cnf: total soft weight overflows int64 at clause %d (weight %d)", i, s.Weight)
		}
		total = sum
	}
	return nil
}

// WriteWCNF writes the instance in the classic DIMACS WCNF format
// ("p wcnf nvars nclauses top"), where hard clauses carry the top weight.
func (w *WCNF) WriteWCNF(out io.Writer) error {
	//lint:ignore weightsafe TotalSoftWeight saturates at MaxInt64-1, so the +1 top weight cannot overflow
	top := w.TotalSoftWeight() + 1
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "p wcnf %d %d %d\n", w.NumVars, len(w.Hard)+len(w.Soft), top)
	writeClause := func(weight int64, clause Clause) {
		bw.WriteString(strconv.FormatInt(weight, 10))
		for _, l := range clause {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(int(l)))
		}
		bw.WriteString(" 0\n")
	}
	for _, c := range w.Hard {
		writeClause(top, c)
	}
	for _, s := range w.Soft {
		writeClause(s.Weight, s.Clause)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cnf: write wcnf: %w", err)
	}
	return nil
}

// WriteWCNF2022 writes the instance in the 2022 MaxSAT-evaluation WCNF
// format: no problem line, hard clauses prefixed with "h", soft clauses
// with their weight.
func (w *WCNF) WriteWCNF2022(out io.Writer) error {
	bw := bufio.NewWriter(out)
	fmt.Fprintf(bw, "c %d vars, %d hard, %d soft\n", w.NumVars, len(w.Hard), len(w.Soft))
	for _, c := range w.Hard {
		bw.WriteByte('h')
		for _, l := range c {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(int(l)))
		}
		bw.WriteString(" 0\n")
	}
	for _, s := range w.Soft {
		bw.WriteString(strconv.FormatInt(s.Weight, 10))
		for _, l := range s.Clause {
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(int(l)))
		}
		bw.WriteString(" 0\n")
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cnf: write wcnf: %w", err)
	}
	return nil
}

// ReadWCNF2022 parses the 2022 MaxSAT-evaluation WCNF format ("h"
// prefix for hard clauses, leading weight for soft clauses, no problem
// line).
func ReadWCNF2022(r io.Reader) (*WCNF, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var (
		w     WCNF
		total int64
	)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			return nil, fmt.Errorf("cnf: line %d: problem line not allowed in 2022 WCNF format", lineNo)
		}
		if strings.HasPrefix(line, "h") {
			clause, err := parseClauseLine(strings.TrimSpace(line[1:]))
			if err != nil {
				return nil, fmt.Errorf("cnf: line %d: %w", lineNo, err)
			}
			w.Hard = append(w.Hard, clause)
			w.growVars(clause)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[len(fields)-1] != "0" {
			return nil, fmt.Errorf("cnf: line %d: malformed clause %q", lineNo, line)
		}
		weight, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("cnf: line %d: bad weight %q", lineNo, fields[0])
		}
		sum, ok := AddWeights(total, weight)
		if !ok || sum > maxTotalSoftWeight {
			return nil, fmt.Errorf("cnf: line %d: total soft weight overflows int64", lineNo)
		}
		total = sum
		clause, err := parseClauseLine(strings.Join(fields[1:], " "))
		if err != nil {
			return nil, fmt.Errorf("cnf: line %d: %w", lineNo, err)
		}
		w.Soft = append(w.Soft, SoftClause{Clause: clause, Weight: weight})
		w.growVars(clause)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read wcnf: %w", err)
	}
	return &w, nil
}

// ReadWCNFAuto detects the WCNF dialect: the classic format when a
// "p wcnf" problem line appears first, the 2022 format otherwise.
func ReadWCNFAuto(r io.Reader) (*WCNF, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("cnf: read wcnf: %w", err)
	}
	for _, rawLine := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			return ReadWCNF(strings.NewReader(string(data)))
		}
		return ReadWCNF2022(strings.NewReader(string(data)))
	}
	return nil, fmt.Errorf("cnf: empty WCNF input")
}

// ReadWCNF parses the classic DIMACS WCNF format. Clauses whose weight
// equals (or exceeds) the declared top weight are hard.
func ReadWCNF(r io.Reader) (*WCNF, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var (
		w          WCNF
		declVars   int
		declNum    int
		top        int64
		total      int64
		sawProblem bool
	)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawProblem {
				return nil, fmt.Errorf("cnf: line %d: duplicate problem line", lineNo)
			}
			n, err := fmt.Sscanf(line, "p wcnf %d %d %d", &declVars, &declNum, &top)
			if err != nil || n != 3 {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", lineNo, line)
			}
			sawProblem = true
			continue
		}
		if !sawProblem {
			return nil, fmt.Errorf("cnf: line %d: clause before problem line", lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || fields[len(fields)-1] != "0" {
			return nil, fmt.Errorf("cnf: line %d: malformed clause %q", lineNo, line)
		}
		weight, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("cnf: line %d: bad weight %q", lineNo, fields[0])
		}
		clause, err := parseClauseLine(strings.Join(fields[1:], " "))
		if err != nil {
			return nil, fmt.Errorf("cnf: line %d: %w", lineNo, err)
		}
		if weight >= top {
			w.Hard = append(w.Hard, clause)
		} else {
			sum, ok := AddWeights(total, weight)
			if !ok || sum > maxTotalSoftWeight {
				return nil, fmt.Errorf("cnf: line %d: total soft weight overflows int64", lineNo)
			}
			total = sum
			w.Soft = append(w.Soft, SoftClause{Clause: clause, Weight: weight})
		}
		w.growVars(clause)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read wcnf: %w", err)
	}
	if !sawProblem {
		return nil, fmt.Errorf("cnf: missing problem line")
	}
	if len(w.Hard)+len(w.Soft) != declNum {
		return nil, fmt.Errorf("cnf: problem line declares %d clauses, found %d", declNum, len(w.Hard)+len(w.Soft))
	}
	if w.NumVars > declVars {
		return nil, fmt.Errorf("cnf: literal references variable %d beyond declared %d", w.NumVars, declVars)
	}
	w.NumVars = declVars
	return &w, nil
}
