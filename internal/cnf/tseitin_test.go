package cnf

import (
	"math/rand"
	"testing"

	"mpmcs4fta/internal/boolexpr"
)

// projectedModels enumerates all models of the encoding projected onto
// the input variables, as a set of bitmask keys over VarOrder-style
// ordering (Names[1..NumInputVars]).
func projectedModels(t *testing.T, enc *Encoding) map[uint64]bool {
	t.Helper()
	models := make(map[uint64]bool)
	n := enc.Formula.NumVars
	if n > 22 {
		t.Fatalf("formula too large for exhaustive check: %d vars", n)
	}
	assign := make([]bool, n+1)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		ok, err := enc.Formula.Eval(assign)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			var key uint64
			for v := 1; v <= enc.NumInputVars; v++ {
				if assign[v] {
					key |= 1 << uint(v-1)
				}
			}
			models[key] = true
		}
	}
	return models
}

// exprModels enumerates the models of e over the encoding's input
// variable ordering.
func exprModels(enc *Encoding, e boolexpr.Expr) map[uint64]bool {
	models := make(map[uint64]bool)
	n := enc.NumInputVars
	assign := make(map[string]bool, n)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[enc.Names[v]] = mask&(1<<uint(v-1)) != 0
		}
		if e.Eval(assign) {
			models[mask] = true
		}
	}
	return models
}

// assertFaithful checks that the projection of the CNF's models onto the
// input variables equals the models of the source expression — a
// property strictly stronger than equisatisfiability and exactly what
// the MPMCS pipeline needs.
func assertFaithful(t *testing.T, e boolexpr.Expr, opts TseitinOptions) {
	t.Helper()
	enc, err := Tseitin(e, opts)
	if err != nil {
		t.Fatalf("Tseitin(%v): %v", e, err)
	}
	if err := enc.Formula.Validate(); err != nil {
		t.Fatalf("encoding invalid: %v", err)
	}
	got := projectedModels(t, enc)
	want := exprModels(enc, e)
	if len(got) != len(want) {
		t.Fatalf("Tseitin(%v) pg=%v: %d projected models, want %d", e, opts.PlaistedGreenbaum, len(got), len(want))
	}
	for m := range want {
		if !got[m] {
			t.Fatalf("Tseitin(%v) pg=%v: model %b missing", e, opts.PlaistedGreenbaum, m)
		}
	}
}

func TestTseitinFPS(t *testing.T) {
	f := boolexpr.NewOr(
		boolexpr.NewAnd(boolexpr.V("x1"), boolexpr.V("x2")),
		boolexpr.NewOr(
			boolexpr.V("x3"),
			boolexpr.V("x4"),
			boolexpr.NewAnd(boolexpr.V("x5"), boolexpr.NewOr(boolexpr.V("x6"), boolexpr.V("x7"))),
		),
	)
	for _, pg := range []bool{false, true} {
		assertFaithful(t, f, TseitinOptions{PlaistedGreenbaum: pg})
	}
}

func TestTseitinRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := boolexpr.DefaultRandomConfig()
	cfg.NumVars = 4
	cfg.MaxDepth = 4
	cfg.MaxFanIn = 3
	cfg.AllowConst = true
	for trial := 0; trial < 120; trial++ {
		e := boolexpr.Random(rng, cfg)
		if Size := boolexpr.Size(e); Size > 40 {
			continue // keep the exhaustive check fast
		}
		assertFaithful(t, e, TseitinOptions{})
		assertFaithful(t, e, TseitinOptions{PlaistedGreenbaum: true})
	}
}

func TestTseitinThreshold(t *testing.T) {
	for n := 2; n <= 5; n++ {
		for k := 1; k <= n; k++ {
			xs := make([]boolexpr.Expr, n)
			names := make([]string, n)
			for i := range xs {
				names[i] = "e" + string(rune('a'+i))
				xs[i] = boolexpr.V(names[i])
			}
			e := boolexpr.AtLeast{K: k, Xs: xs}
			assertFaithful(t, e, TseitinOptions{VarOrder: names})
			assertFaithful(t, e, TseitinOptions{PlaistedGreenbaum: true, VarOrder: names})
		}
	}
}

func TestTseitinConstants(t *testing.T) {
	encTrue, err := Tseitin(boolexpr.True, TseitinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sat := false
	n := encTrue.Formula.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if ok, _ := encTrue.Formula.Eval(assign); ok {
			sat = true
		}
	}
	if !sat {
		t.Error("encoding of true is unsatisfiable")
	}

	encFalse, err := Tseitin(boolexpr.False, TseitinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n = encFalse.Formula.NumVars
	assign = make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if ok, _ := encFalse.Formula.Eval(assign); ok {
			t.Fatal("encoding of false is satisfiable")
		}
	}
}

func TestTseitinVarOrder(t *testing.T) {
	e := boolexpr.NewAnd(boolexpr.V("b"), boolexpr.V("a"), boolexpr.V("c"))
	enc, err := Tseitin(e, TseitinOptions{VarOrder: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	if enc.VarOf["a"] != 1 || enc.VarOf["b"] != 2 || enc.VarOf["c"] != 3 {
		t.Errorf("VarOf = %v, want a=1 b=2 c=3", enc.VarOf)
	}
	if enc.NumInputVars != 3 {
		t.Errorf("NumInputVars = %d", enc.NumInputVars)
	}
	if enc.Names[1] != "a" || enc.Names[2] != "b" || enc.Names[3] != "c" {
		t.Errorf("Names = %v", enc.Names)
	}
}

func TestTseitinVarOrderWithExtraVars(t *testing.T) {
	// Variables not named in VarOrder get subsequent indices.
	e := boolexpr.NewOr(boolexpr.V("z"), boolexpr.V("a"))
	enc, err := Tseitin(e, TseitinOptions{VarOrder: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if enc.VarOf["a"] != 1 || enc.VarOf["z"] != 2 {
		t.Errorf("VarOf = %v", enc.VarOf)
	}
}

func TestTseitinSharesIdenticalSubtrees(t *testing.T) {
	// (a&b) | ((a&b) & c): the conjunction a&b must be encoded once.
	shared := boolexpr.NewAnd(boolexpr.V("a"), boolexpr.V("b"))
	e := boolexpr.NewOr(shared, boolexpr.NewAnd(shared, boolexpr.V("c")))
	enc, err := Tseitin(e, TseitinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Input vars a,b,c plus aux for (a&b), ((a&b)&c), and the root or:
	// 6 variables total. Without sharing there would be 7+.
	if enc.Formula.NumVars > 6 {
		t.Errorf("encoding uses %d vars; sharing failed", enc.Formula.NumVars)
	}
	assertFaithful(t, e, TseitinOptions{})
}

func TestTseitinPGSmaller(t *testing.T) {
	// On a monotone formula PG must emit no more clauses than full
	// Tseitin, and strictly fewer for non-trivial gates.
	f := boolexpr.NewOr(
		boolexpr.NewAnd(boolexpr.V("x1"), boolexpr.V("x2")),
		boolexpr.NewAnd(boolexpr.V("x3"), boolexpr.NewOr(boolexpr.V("x4"), boolexpr.V("x5"))),
	)
	full, err := Tseitin(f, TseitinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := Tseitin(f, TseitinOptions{PlaistedGreenbaum: true})
	if err != nil {
		t.Fatal(err)
	}
	if pg.Formula.NumClauses() >= full.Formula.NumClauses() {
		t.Errorf("PG clauses = %d, full = %d; expected strictly fewer",
			pg.Formula.NumClauses(), full.Formula.NumClauses())
	}
}

func TestTseitinBadThreshold(t *testing.T) {
	// boolexpr.Simplify normalises out-of-range thresholds, but a raw
	// AtLeast below two operands with k in range must still encode.
	e := boolexpr.AtLeast{K: 2, Xs: []boolexpr.Expr{boolexpr.V("a"), boolexpr.V("b"), boolexpr.V("c")}}
	if _, err := Tseitin(e, TseitinOptions{}); err != nil {
		t.Fatalf("valid threshold rejected: %v", err)
	}
}

func TestTseitinRootIsUnit(t *testing.T) {
	e := boolexpr.NewAnd(boolexpr.V("a"), boolexpr.V("b"))
	enc, err := Tseitin(e, TseitinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	last := enc.Formula.Clauses[len(enc.Formula.Clauses)-1]
	if len(last) != 1 || last[0] != enc.Root {
		t.Errorf("root not asserted as final unit clause: %v (root %v)", last, enc.Root)
	}
}
