package cnf

import (
	"bytes"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	var f Formula
	f.AddClause(1, -2, 3)
	f.AddClause(-1)
	f.AddClause(2, 4)
	var buf bytes.Buffer
	if err := f.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != f.NumVars || len(back.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip changed shape: %d/%d vars, %d/%d clauses",
			f.NumVars, back.NumVars, len(f.Clauses), len(back.Clauses))
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(back.Clauses[i]) {
			t.Fatalf("clause %d length differs", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != back.Clauses[i][j] {
				t.Fatalf("clause %d literal %d differs", i, j)
			}
		}
	}
}

func TestReadDIMACSComments(t *testing.T) {
	src := "c a comment\np cnf 3 2\n1 -2 0\nc another\n3 0\n"
	f, err := ReadDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Errorf("got %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"no problem line", "1 2 0\n"},
		{"malformed problem", "p cnf x y\n"},
		{"duplicate problem", "p cnf 1 0\np cnf 1 0\n"},
		{"unterminated clause", "p cnf 2 1\n1 2\n"},
		{"bad literal", "p cnf 2 1\n1 q 0\n"},
		{"clause count mismatch", "p cnf 2 2\n1 0\n"},
		{"vars exceeded", "p cnf 1 1\n2 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadDIMACS(strings.NewReader(tt.give)); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestWCNFRoundTrip(t *testing.T) {
	var w WCNF
	w.AddHard(1, 2, -3)
	w.AddHard(-1, 3)
	w.AddSoft(10, -1)
	w.AddSoft(7, -2, 3)
	var buf bytes.Buffer
	if err := w.WriteWCNF(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWCNF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != w.NumVars {
		t.Errorf("NumVars %d vs %d", back.NumVars, w.NumVars)
	}
	if len(back.Hard) != 2 || len(back.Soft) != 2 {
		t.Fatalf("got %d hard %d soft", len(back.Hard), len(back.Soft))
	}
	if back.Soft[0].Weight != 10 || back.Soft[1].Weight != 7 {
		t.Errorf("weights %d, %d", back.Soft[0].Weight, back.Soft[1].Weight)
	}
	if back.TotalSoftWeight() != w.TotalSoftWeight() {
		t.Error("soft weight changed in round trip")
	}
}

func TestReadWCNFErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"no problem line", "5 1 0\n"},
		{"clause before problem", "1 1 0\np wcnf 1 1 10\n"},
		{"malformed problem", "p wcnf a b c\n"},
		{"bad weight", "p wcnf 1 1 10\n-3 1 0\n"},
		{"unterminated", "p wcnf 1 1 10\n5 1\n"},
		{"count mismatch", "p wcnf 1 2 10\n5 1 0\n"},
		{"vars exceeded", "p wcnf 1 1 10\n5 2 0\n"},
		{"duplicate problem", "p wcnf 1 0 10\np wcnf 1 0 10\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadWCNF(strings.NewReader(tt.give)); err == nil {
				t.Error("expected error, got nil")
			}
		})
	}
}

func TestWCNFWeightOverflowRejected(t *testing.T) {
	// Two softs of 2^62 each: the sum wraps int64, so every reader and
	// Validate must reject the instance instead of accounting with a
	// negative total (the 2022 dialect permits weights near 2^63).
	const w62 = "4611686018427387904"
	classic := "p wcnf 2 2 9223372036854775807\n" + w62 + " 1 0\n" + w62 + " 2 0\n"
	if _, err := ReadWCNF(strings.NewReader(classic)); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("classic reader: want overflow error, got %v", err)
	}
	modern := w62 + " 1 0\n" + w62 + " 2 0\n"
	if _, err := ReadWCNF2022(strings.NewReader(modern)); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("2022 reader: want overflow error, got %v", err)
	}
	var inst WCNF
	inst.AddSoft(1<<62, 1)
	inst.AddSoft(1<<62, 2)
	if err := inst.Validate(); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("Validate: want overflow error, got %v", err)
	}
	// The maximum total (MaxInt64−1, leaving room for the classic "top"
	// weight) stays valid.
	var ok WCNF
	ok.AddSoft(1<<62, 1)
	ok.AddSoft(1<<62-2, 2)
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate rejected a non-overflowing instance: %v", err)
	}
}

func TestWCNF2022RoundTrip(t *testing.T) {
	var w WCNF
	w.AddHard(1, 2, -3)
	w.AddHard(-1, 3)
	w.AddSoft(10, -1)
	w.AddSoft(7, -2, 3)
	var buf bytes.Buffer
	if err := w.WriteWCNF2022(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "h 1 2 -3 0\n") || !strings.Contains(text, "10 -1 0\n") {
		t.Fatalf("unexpected 2022 output:\n%s", text)
	}
	back, err := ReadWCNF2022(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVars != w.NumVars || len(back.Hard) != 2 || len(back.Soft) != 2 {
		t.Errorf("round trip shape: %d vars, %d hard, %d soft", back.NumVars, len(back.Hard), len(back.Soft))
	}
	if back.Soft[0].Weight != 10 || back.Soft[1].Weight != 7 {
		t.Errorf("weights lost: %d, %d", back.Soft[0].Weight, back.Soft[1].Weight)
	}
}

func TestReadWCNF2022Errors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"problem line", "p wcnf 1 1 10\nh 1 0\n"},
		{"bad weight", "x 1 0\n"},
		{"unterminated hard", "h 1 2\n"},
		{"unterminated soft", "5 1 2\n"},
		{"zero weight", "0 1 0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadWCNF2022(strings.NewReader(tt.give)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadWCNFAuto(t *testing.T) {
	classic := "p wcnf 2 2 10\n10 1 0\n3 -2 0\n"
	modern := "c comment\nh 1 0\n3 -2 0\n"
	for _, tt := range []struct {
		name, give string
	}{{"classic", classic}, {"2022", modern}} {
		t.Run(tt.name, func(t *testing.T) {
			w, err := ReadWCNFAuto(strings.NewReader(tt.give))
			if err != nil {
				t.Fatal(err)
			}
			if len(w.Hard) != 1 || len(w.Soft) != 1 || w.Soft[0].Weight != 3 {
				t.Errorf("parsed shape wrong: %+v", w)
			}
		})
	}
	if _, err := ReadWCNFAuto(strings.NewReader("c only comments\n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestWCNFHardWeightIsTop(t *testing.T) {
	var w WCNF
	w.AddHard(1)
	w.AddSoft(3, -1)
	var buf bytes.Buffer
	if err := w.WriteWCNF(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "p wcnf 1 2 4\n") {
		t.Errorf("problem line: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "4 1 0\n") {
		t.Errorf("hard clause should carry top weight 4:\n%s", out)
	}
}
