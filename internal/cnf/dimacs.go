package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteDIMACS writes the formula in DIMACS CNF format, the standard SAT
// solver interchange format.
func (f *Formula) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses))
	for _, clause := range f.Clauses {
		for _, l := range clause {
			bw.WriteString(strconv.Itoa(int(l)))
			bw.WriteByte(' ')
		}
		bw.WriteString("0\n")
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("cnf: write dimacs: %w", err)
	}
	return nil
}

// ReadDIMACS parses a DIMACS CNF file. Comment lines ('c ...') are
// skipped; the problem line is validated against the clause count.
func ReadDIMACS(r io.Reader) (*Formula, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var (
		formula     Formula
		declVars    int
		declClauses int
		sawProblem  bool
	)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			if sawProblem {
				return nil, fmt.Errorf("cnf: line %d: duplicate problem line", lineNo)
			}
			n, err := fmt.Sscanf(line, "p cnf %d %d", &declVars, &declClauses)
			if err != nil || n != 2 {
				return nil, fmt.Errorf("cnf: line %d: malformed problem line %q", lineNo, line)
			}
			sawProblem = true
			continue
		}
		clause, err := parseClauseLine(line)
		if err != nil {
			return nil, fmt.Errorf("cnf: line %d: %w", lineNo, err)
		}
		formula.Clauses = append(formula.Clauses, clause)
		for _, l := range clause {
			if v := l.Var(); v > formula.NumVars {
				formula.NumVars = v
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("cnf: read dimacs: %w", err)
	}
	if !sawProblem {
		return nil, fmt.Errorf("cnf: missing problem line")
	}
	if declClauses != len(formula.Clauses) {
		return nil, fmt.Errorf("cnf: problem line declares %d clauses, found %d", declClauses, len(formula.Clauses))
	}
	if formula.NumVars > declVars {
		return nil, fmt.Errorf("cnf: literal references variable %d beyond declared %d", formula.NumVars, declVars)
	}
	formula.NumVars = declVars
	return &formula, nil
}

func parseClauseLine(line string) (Clause, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 || fields[len(fields)-1] != "0" {
		return nil, fmt.Errorf("clause not terminated by 0: %q", line)
	}
	clause := make(Clause, 0, len(fields)-1)
	for _, f := range fields[:len(fields)-1] {
		v, err := strconv.Atoi(f)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("bad literal %q", f)
		}
		clause = append(clause, Lit(v))
	}
	return clause, nil
}
