package cnf

import (
	"math"
	"testing"
)

func TestAddWeights(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{1, 2, 3, true},
		{0, 0, 0, true},
		{math.MaxInt64, 0, math.MaxInt64, true},
		{math.MaxInt64, 1, 0, false},
		{math.MaxInt64 - 1, 1, math.MaxInt64, true},
		{1, math.MaxInt64, 0, false},
		{math.MinInt64, -1, 0, false},
		{-1, -2, -3, true},
		{math.MinInt64, math.MaxInt64, -1, true},
	}
	for _, c := range cases {
		got, ok := AddWeights(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("AddWeights(%d, %d) = %d, %v; want %d, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestMulWeights(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{3, 4, 12, true},
		{0, math.MaxInt64, 0, true},
		{math.MaxInt64, 1, math.MaxInt64, true},
		{math.MaxInt64, 2, 0, false},
		{1 << 32, 1 << 32, 0, false},
		{-1, math.MinInt64, 0, false},
		{math.MinInt64, -1, 0, false},
		{-3, 4, -12, true},
		{math.MinInt64, 1, math.MinInt64, true},
	}
	for _, c := range cases {
		got, ok := MulWeights(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("MulWeights(%d, %d) = %d, %v; want %d, %v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

// TestTotalSoftWeightSaturates pins the fix for the silent int64 wrap:
// a programmatically built instance (never validated, so readers'
// bounds don't apply) with weights summing past MaxInt64 must report
// the saturation cap, not a negative garbage total.
func TestTotalSoftWeightSaturates(t *testing.T) {
	var w WCNF
	w.AddSoft(math.MaxInt64-1, 1)
	w.AddSoft(math.MaxInt64-1, 2)
	if got := w.TotalSoftWeight(); got != maxTotalSoftWeight {
		t.Errorf("TotalSoftWeight() = %d, want saturation at %d", got, int64(maxTotalSoftWeight))
	}
	// A valid instance is unaffected.
	var v WCNF
	v.AddSoft(3, 1)
	v.AddSoft(4, 2)
	if got := v.TotalSoftWeight(); got != 7 {
		t.Errorf("TotalSoftWeight() = %d, want 7", got)
	}
}

// TestCostOverflow pins the companion fix in Cost: falsifying
// overflowing weights must surface an error, not a wrapped total.
func TestCostOverflow(t *testing.T) {
	var w WCNF
	w.AddSoft(math.MaxInt64-1, 1)
	w.AddSoft(math.MaxInt64-1, 2)
	if _, err := w.Cost([]bool{false, false, false}); err == nil {
		t.Fatal("Cost() on overflowing falsified weights: want error, got nil")
	}
}
