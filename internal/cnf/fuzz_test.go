package cnf

// Native Go fuzz targets for the DIMACS CNF and WCNF parsers — the
// untrusted-input boundary of the whole system (cmd/cdcl, cmd/wpms and
// cmd/ftdiff all feed user files straight into these readers). The
// invariant under fuzz is "parse → write → parse is the identity":
// any input the reader accepts must survive a round trip through the
// writer unchanged.
//
// Seed corpora live under testdata/fuzz/<target>/ (valid instances,
// comment/blank-line edge cases, and malformed inputs that must be
// rejected without panicking). Run with:
//
//	go test -fuzz=FuzzDIMACS -fuzztime=30s ./internal/cnf

import (
	"bytes"
	"reflect"
	"testing"
)

func FuzzDIMACS(f *testing.F) {
	f.Add([]byte("p cnf 3 2\n1 -2 0\n-1 3 0\n"))
	f.Add([]byte("c comment\np cnf 1 1\n1 0\n"))
	f.Add([]byte("p cnf 0 0\n"))
	f.Add([]byte("1 2 0\n"))            // clause before problem line
	f.Add([]byte("p cnf 2 2\n1 0\n"))   // clause count mismatch
	f.Add([]byte("p cnf 1 1\n1 2 0\n")) // literal beyond declared vars
	f.Add([]byte("p cnf 1 1\n1\n"))     // unterminated clause
	f.Fuzz(func(t *testing.T, data []byte) {
		formula, err := ReadDIMACS(bytes.NewReader(data))
		if err != nil {
			return // rejected without panicking — fine
		}
		var buf bytes.Buffer
		if err := formula.WriteDIMACS(&buf); err != nil {
			t.Fatalf("write accepted formula: %v", err)
		}
		again, err := ReadDIMACS(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v\n%s", err, buf.Bytes())
		}
		if again.NumVars != formula.NumVars || !reflect.DeepEqual(again.Clauses, formula.Clauses) {
			t.Fatalf("round trip changed the formula:\nbefore %+v\nafter  %+v", formula, again)
		}
	})
}

func FuzzWCNF(f *testing.F) {
	// Classic dialect.
	f.Add([]byte("p wcnf 3 3 10\n10 1 2 0\n4 -1 0\n3 3 0\n"))
	f.Add([]byte("c top weight marks hards\np wcnf 2 2 6\n6 1 0\n2 -2 0\n"))
	// 2022 dialect.
	f.Add([]byte("h 1 2 0\n4 -1 0\n"))
	f.Add([]byte("c only comments and softs\n1 1 0\n"))
	// Malformed.
	f.Add([]byte("p wcnf 2 1 5\n0 1 0\n")) // zero weight
	f.Add([]byte("p wcnf 2 9 5\n5 1 0\n")) // clause count mismatch
	f.Add([]byte("h 1\n"))                 // unterminated hard clause
	f.Add([]byte("p wcnf 1 1 5\np wcnf 1 1 5\n5 1 0\n"))
	// Total soft weight overflowing int64 (each weight is 2^62).
	f.Add([]byte("4611686018427387904 1 0\n4611686018427387904 2 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadWCNFAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("reader accepted an invalid instance: %v", err)
		}
		// Classic-dialect round trip preserves everything.
		var buf bytes.Buffer
		if err := inst.WriteWCNF(&buf); err != nil {
			t.Fatalf("write classic: %v", err)
		}
		again, err := ReadWCNF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read classic output: %v\n%s", err, buf.Bytes())
		}
		if again.NumVars != inst.NumVars ||
			!reflect.DeepEqual(again.Hard, inst.Hard) ||
			!reflect.DeepEqual(again.Soft, inst.Soft) {
			t.Fatalf("classic round trip changed the instance:\nbefore %+v\nafter  %+v", inst, again)
		}
		// 2022-dialect round trip preserves the clauses (NumVars is
		// implicit in that format, so it may shrink to the max literal).
		buf.Reset()
		if err := inst.WriteWCNF2022(&buf); err != nil {
			t.Fatalf("write 2022: %v", err)
		}
		again, err = ReadWCNF2022(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read 2022 output: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(again.Hard, inst.Hard) || !reflect.DeepEqual(again.Soft, inst.Soft) {
			t.Fatalf("2022 round trip changed the clauses:\nbefore %+v\nafter  %+v", inst, again)
		}
	})
}
