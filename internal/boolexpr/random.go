package boolexpr

import (
	"math/rand"
	"strconv"
)

// RandomConfig controls the shape of randomly generated expressions.
// The zero value is not useful; use DefaultRandomConfig as a base.
type RandomConfig struct {
	// NumVars is the size of the variable pool (v0 .. v{NumVars-1}).
	NumVars int
	// MaxDepth bounds the nesting depth of generated expressions.
	MaxDepth int
	// MaxFanIn bounds the operand count of generated gates (minimum 2).
	MaxFanIn int
	// AllowNot permits Not nodes (fault trees are monotone; tests for
	// general formulas enable it).
	AllowNot bool
	// AllowAtLeast permits AtLeast (voting) nodes.
	AllowAtLeast bool
	// AllowConst permits Boolean constants at leaves.
	AllowConst bool
}

// DefaultRandomConfig returns a configuration producing small, general
// (non-monotone) expressions suitable for property-based tests.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		NumVars:      8,
		MaxDepth:     5,
		MaxFanIn:     4,
		AllowNot:     true,
		AllowAtLeast: true,
		AllowConst:   false,
	}
}

// Random generates a random expression using rng. It is deterministic
// for a given rng state, making failures reproducible from the seed.
func Random(rng *rand.Rand, cfg RandomConfig) Expr {
	if cfg.NumVars < 1 {
		cfg.NumVars = 1
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.MaxFanIn < 2 {
		cfg.MaxFanIn = 2
	}
	return randomExpr(rng, cfg, cfg.MaxDepth)
}

func randomExpr(rng *rand.Rand, cfg RandomConfig, depth int) Expr {
	if depth <= 1 {
		return randomLeaf(rng, cfg)
	}
	// Weighted choice across node kinds; leaves stay possible at every
	// level so expected size remains bounded.
	choices := []func() Expr{
		func() Expr { return randomLeaf(rng, cfg) },
		func() Expr { return And{Xs: randomOperands(rng, cfg, depth)} },
		func() Expr { return Or{Xs: randomOperands(rng, cfg, depth)} },
	}
	if cfg.AllowNot {
		choices = append(choices, func() Expr {
			return Not{X: randomExpr(rng, cfg, depth-1)}
		})
	}
	if cfg.AllowAtLeast {
		choices = append(choices, func() Expr {
			xs := randomOperands(rng, cfg, depth)
			k := 1 + rng.Intn(len(xs))
			return AtLeast{K: k, Xs: xs}
		})
	}
	return choices[rng.Intn(len(choices))]()
}

func randomOperands(rng *rand.Rand, cfg RandomConfig, depth int) []Expr {
	n := 2 + rng.Intn(cfg.MaxFanIn-1)
	xs := make([]Expr, n)
	for i := range xs {
		xs[i] = randomExpr(rng, cfg, depth-1)
	}
	return xs
}

func randomLeaf(rng *rand.Rand, cfg RandomConfig) Expr {
	if cfg.AllowConst && rng.Intn(8) == 0 {
		return Const{B: rng.Intn(2) == 0}
	}
	return Var{Name: "v" + strconv.Itoa(rng.Intn(cfg.NumVars))}
}

// AllAssignments enumerates every assignment over the given variables and
// calls fn with each; it stops early if fn returns false. It is the
// truth-table oracle used by tests (practical for ~20 variables).
func AllAssignments(vars []string, fn func(assign map[string]bool) bool) {
	assign := make(map[string]bool, len(vars))
	total := uint64(1) << uint(len(vars))
	for mask := uint64(0); mask < total; mask++ {
		for i, v := range vars {
			assign[v] = mask&(1<<uint(i)) != 0
		}
		if !fn(assign) {
			return
		}
	}
}
