package boolexpr

import (
	"math/rand"
	"testing"
)

// complementAssign returns the pointwise complement of assign over vars.
func complementAssign(vars []string, assign map[string]bool) map[string]bool {
	out := make(map[string]bool, len(vars))
	for _, v := range vars {
		out[v] = !assign[v]
	}
	return out
}

// TestDualFPS checks the paper's worked Step-1 example: Y(t) for the FPS
// tree is (y1|y2) & (y3 & y4 & (y5 | (y6 & y7))).
func TestDualFPS(t *testing.T) {
	f := fpsFormula()
	want := NewAnd(
		NewOr(V("x1"), V("x2")),
		NewAnd(
			V("x3"),
			V("x4"),
			NewOr(V("x5"), NewAnd(V("x6"), V("x7"))),
		),
	)
	got := Dual(f)
	if !Equal(got, Expr(want)) {
		t.Errorf("Dual(f) = %v, want %v", got, want)
	}
}

// TestDualDuality verifies Dual(f)(y) = ¬f(¬y) exhaustively on random
// expressions — the core identity behind the success-tree transformation.
func TestDualDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultRandomConfig()
	cfg.NumVars = 6
	cfg.AllowConst = true
	for trial := 0; trial < 200; trial++ {
		f := Random(rng, cfg)
		d := Dual(f)
		vars := Vars(f)
		AllAssignments(vars, func(assign map[string]bool) bool {
			comp := complementAssign(vars, assign)
			if d.Eval(assign) != !f.Eval(comp) {
				t.Fatalf("duality violated for %v under %v", f, assign)
			}
			return true
		})
	}
}

func TestDualInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultRandomConfig()
	for trial := 0; trial < 100; trial++ {
		f := Random(rng, cfg)
		if !Equal(Dual(Dual(f)), f) {
			t.Fatalf("Dual(Dual(f)) != f for %v", f)
		}
	}
}

func TestNNFEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := DefaultRandomConfig()
	cfg.NumVars = 6
	cfg.AllowConst = true
	for trial := 0; trial < 200; trial++ {
		f := Random(rng, cfg)
		g := NNF(f)
		if !noInnerNegation(g) {
			t.Fatalf("NNF(%v) = %v still has non-literal negations", f, g)
		}
		assertEquivalent(t, f, g)
	}
}

func noInnerNegation(e Expr) bool {
	switch x := e.(type) {
	case Var, Const:
		return true
	case Not:
		_, isVar := x.X.(Var)
		return isVar
	case And:
		return allNoInnerNegation(x.Xs)
	case Or:
		return allNoInnerNegation(x.Xs)
	case AtLeast:
		return allNoInnerNegation(x.Xs)
	}
	return false
}

func allNoInnerNegation(xs []Expr) bool {
	for _, x := range xs {
		if !noInnerNegation(x) {
			return false
		}
	}
	return true
}

func TestSimplifyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := DefaultRandomConfig()
	cfg.NumVars = 6
	cfg.AllowConst = true
	for trial := 0; trial < 200; trial++ {
		f := Random(rng, cfg)
		assertEquivalent(t, f, Simplify(f))
	}
}

func TestSimplifyCases(t *testing.T) {
	tests := []struct {
		name string
		give Expr
		want Expr
	}{
		{"double negation", Not{X: Not{X: V("a")}}, V("a")},
		{"and with false", NewAnd(V("a"), False), False},
		{"or with true", NewOr(V("a"), True), True},
		{"and drop true", NewAnd(V("a"), True, V("b")), NewAnd(V("a"), V("b"))},
		{"or drop false", NewOr(V("a"), False), V("a")},
		{"flatten and", NewAnd(V("a"), NewAnd(V("b"), V("c"))), NewAnd(V("a"), V("b"), V("c"))},
		{"flatten or", NewOr(NewOr(V("a"), V("b")), V("c")), NewOr(V("a"), V("b"), V("c"))},
		{"empty and", And{}, True},
		{"empty or", Or{}, False},
		{"atleast 1 is or", NewAtLeast(1, V("a"), V("b")), NewOr(V("a"), V("b"))},
		{"atleast n is and", NewAtLeast(2, V("a"), V("b")), NewAnd(V("a"), V("b"))},
		{"atleast 0 is true", NewAtLeast(0, V("a"), V("b")), True},
		{"atleast too big", NewAtLeast(3, V("a"), V("b")), False},
		{"not const", Not{X: True}, False},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Simplify(tt.give); !Equal(got, tt.want) {
				t.Errorf("Simplify(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestExpandAtLeastEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	cfg := DefaultRandomConfig()
	cfg.NumVars = 5
	for trial := 0; trial < 200; trial++ {
		f := Random(rng, cfg)
		g := ExpandAtLeast(f)
		if hasAtLeast(g) {
			t.Fatalf("ExpandAtLeast(%v) still contains AtLeast nodes", f)
		}
		assertEquivalent(t, f, g)
	}
}

func hasAtLeast(e Expr) bool {
	switch x := e.(type) {
	case Var, Const:
		return false
	case Not:
		return hasAtLeast(x.X)
	case And:
		return anyAtLeast(x.Xs)
	case Or:
		return anyAtLeast(x.Xs)
	case AtLeast:
		return true
	}
	return false
}

func anyAtLeast(xs []Expr) bool {
	for _, x := range xs {
		if hasAtLeast(x) {
			return true
		}
	}
	return false
}

func TestExpandAtLeastNaiveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultRandomConfig()
	cfg.NumVars = 5
	cfg.MaxFanIn = 3
	for trial := 0; trial < 100; trial++ {
		f := Random(rng, cfg)
		g := ExpandAtLeastNaive(f)
		if hasAtLeast(g) {
			t.Fatalf("ExpandAtLeastNaive(%v) still contains AtLeast nodes", f)
		}
		assertEquivalent(t, f, g)
	}
}

func TestExpandAtLeastNaiveCombinationCount(t *testing.T) {
	xs := []Expr{V("a"), V("b"), V("c"), V("d")}
	g := ExpandAtLeastNaive(AtLeast{K: 2, Xs: xs})
	or, ok := g.(Or)
	if !ok || len(or.Xs) != 6 { // C(4,2)
		t.Fatalf("expected OR of 6 conjunctions, got %v", g)
	}
	if !Equal(ExpandAtLeastNaive(AtLeast{K: 0, Xs: xs}), True) {
		t.Error("k=0 should be true")
	}
	if !Equal(ExpandAtLeastNaive(AtLeast{K: 5, Xs: xs}), False) {
		t.Error("k>n should be false")
	}
}

func TestExpandAtLeastDegenerate(t *testing.T) {
	if got := ExpandAtLeast(NewAtLeast(0, V("a"))); !Equal(got, True) {
		t.Errorf("expand atleast(0) = %v, want true", got)
	}
	if got := ExpandAtLeast(NewAtLeast(2, V("a"))); !Equal(got, False) {
		t.Errorf("expand atleast(2 of 1) = %v, want false", got)
	}
}

func TestIsMonotone(t *testing.T) {
	tests := []struct {
		name string
		give Expr
		want bool
	}{
		{"fps", fpsFormula(), true},
		{"negation", Not{X: V("a")}, false},
		{"nested negation", NewAnd(V("a"), Not{X: V("b")}), false},
		{"voting", NewAtLeast(2, V("a"), V("b"), V("c")), true},
		{"const", True, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsMonotone(tt.give); got != tt.want {
				t.Errorf("IsMonotone = %v, want %v", got, tt.want)
			}
		})
	}
}

// assertEquivalent checks logical equivalence of a and b by exhaustive
// enumeration over their combined variables.
func assertEquivalent(t *testing.T, a, b Expr) {
	t.Helper()
	seen := make(map[string]struct{})
	for _, v := range append(Vars(a), Vars(b)...) {
		seen[v] = struct{}{}
	}
	vars := make([]string, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	AllAssignments(vars, func(assign map[string]bool) bool {
		if a.Eval(assign) != b.Eval(assign) {
			t.Fatalf("expressions differ under %v:\n  a = %v\n  b = %v", assign, a, b)
		}
		return true
	})
}
