// Package boolexpr provides a Boolean formula AST used throughout the
// MPMCS pipeline. Fault trees compile to expressions here (internal/ft),
// the Step-1 success-tree transformation is expressed as structural
// dualisation, and the Tseitin encoder (internal/cnf) consumes the AST.
//
// Expressions are immutable after construction: transformations return
// new expressions and never mutate their inputs, so values can be shared
// freely between goroutines.
package boolexpr

import (
	"sort"
	"strconv"
	"strings"
)

// Expr is a Boolean expression over named variables.
//
// The concrete types are Var, Not, And, Or, AtLeast and Const. AtLeast
// models K-of-N voting gates natively; ExpandAtLeast rewrites it into
// And/Or form when a two-level representation is required.
type Expr interface {
	// Eval evaluates the expression under the given assignment.
	// Variables missing from the assignment evaluate to false.
	Eval(assign map[string]bool) bool

	// String renders the expression in a compact infix syntax.
	String() string

	isExpr()
}

// Var is a reference to a named Boolean variable.
type Var struct {
	Name string
}

// Not is logical negation.
type Not struct {
	X Expr
}

// And is an n-ary conjunction. An empty conjunction is true.
type And struct {
	Xs []Expr
}

// Or is an n-ary disjunction. An empty disjunction is false.
type Or struct {
	Xs []Expr
}

// AtLeast is true when at least K of its operands are true. It models
// the K-of-N voting gates named as future work in the paper.
type AtLeast struct {
	K  int
	Xs []Expr
}

// Const is a Boolean constant.
type Const struct {
	B bool
}

// True and False are the Boolean constants.
var (
	True  = Const{B: true}
	False = Const{B: false}
)

func (Var) isExpr()     {}
func (Not) isExpr()     {}
func (And) isExpr()     {}
func (Or) isExpr()      {}
func (AtLeast) isExpr() {}
func (Const) isExpr()   {}

// V returns a variable reference.
func V(name string) Var { return Var{Name: name} }

// NewAnd builds a conjunction of the given operands.
func NewAnd(xs ...Expr) And { return And{Xs: xs} }

// NewOr builds a disjunction of the given operands.
func NewOr(xs ...Expr) Or { return Or{Xs: xs} }

// NewAtLeast builds a K-of-N threshold expression.
func NewAtLeast(k int, xs ...Expr) AtLeast { return AtLeast{K: k, Xs: xs} }

// Eval implements Expr.
func (v Var) Eval(assign map[string]bool) bool { return assign[v.Name] }

// Eval implements Expr.
func (n Not) Eval(assign map[string]bool) bool { return !n.X.Eval(assign) }

// Eval implements Expr.
func (a And) Eval(assign map[string]bool) bool {
	for _, x := range a.Xs {
		if !x.Eval(assign) {
			return false
		}
	}
	return true
}

// Eval implements Expr.
func (o Or) Eval(assign map[string]bool) bool {
	for _, x := range o.Xs {
		if x.Eval(assign) {
			return true
		}
	}
	return false
}

// Eval implements Expr.
func (a AtLeast) Eval(assign map[string]bool) bool {
	count := 0
	for _, x := range a.Xs {
		if x.Eval(assign) {
			count++
			if count >= a.K {
				return true
			}
		}
	}
	return count >= a.K // handles K <= 0
}

// Eval implements Expr.
func (c Const) Eval(map[string]bool) bool { return c.B }

// String implements Expr.
func (v Var) String() string { return v.Name }

// String implements Expr.
func (n Not) String() string { return "!" + parenthesize(n.X) }

// String implements Expr.
func (a And) String() string { return joinExprs(a.Xs, " & ", "true") }

// String implements Expr.
func (o Or) String() string { return joinExprs(o.Xs, " | ", "false") }

// String implements Expr.
func (a AtLeast) String() string {
	var b strings.Builder
	b.WriteString("atleast(")
	b.WriteString(strconv.Itoa(a.K))
	for _, x := range a.Xs {
		b.WriteString(", ")
		b.WriteString(x.String())
	}
	b.WriteString(")")
	return b.String()
}

// String implements Expr.
func (c Const) String() string {
	if c.B {
		return "true"
	}
	return "false"
}

func joinExprs(xs []Expr, sep, empty string) string {
	if len(xs) == 0 {
		return empty
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = parenthesize(x)
	}
	return strings.Join(parts, sep)
}

func parenthesize(x Expr) string {
	switch x.(type) {
	case And, Or:
		return "(" + x.String() + ")"
	default:
		return x.String()
	}
}

// Vars returns the sorted set of variable names appearing in e.
func Vars(e Expr) []string {
	seen := make(map[string]struct{})
	collectVars(e, seen)
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func collectVars(e Expr, seen map[string]struct{}) {
	switch x := e.(type) {
	case Var:
		seen[x.Name] = struct{}{}
	case Not:
		collectVars(x.X, seen)
	case And:
		for _, c := range x.Xs {
			collectVars(c, seen)
		}
	case Or:
		for _, c := range x.Xs {
			collectVars(c, seen)
		}
	case AtLeast:
		for _, c := range x.Xs {
			collectVars(c, seen)
		}
	case Const:
	}
}

// Size returns the number of AST nodes in e.
func Size(e Expr) int {
	switch x := e.(type) {
	case Var, Const:
		return 1
	case Not:
		return 1 + Size(x.X)
	case And:
		return 1 + sizeAll(x.Xs)
	case Or:
		return 1 + sizeAll(x.Xs)
	case AtLeast:
		return 1 + sizeAll(x.Xs)
	}
	return 0
}

func sizeAll(xs []Expr) int {
	total := 0
	for _, x := range xs {
		total += Size(x)
	}
	return total
}

// Depth returns the height of the AST: a leaf has depth 1.
func Depth(e Expr) int {
	switch x := e.(type) {
	case Var, Const:
		return 1
	case Not:
		return 1 + Depth(x.X)
	case And:
		return 1 + depthAll(x.Xs)
	case Or:
		return 1 + depthAll(x.Xs)
	case AtLeast:
		return 1 + depthAll(x.Xs)
	}
	return 0
}

func depthAll(xs []Expr) int {
	deepest := 0
	for _, x := range xs {
		if d := Depth(x); d > deepest {
			deepest = d
		}
	}
	return deepest
}

// Equal reports structural equality of two expressions. Operand order is
// significant: And(a,b) and And(b,a) are not Equal.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Var:
		y, ok := b.(Var)
		return ok && x.Name == y.Name
	case Not:
		y, ok := b.(Not)
		return ok && Equal(x.X, y.X)
	case And:
		y, ok := b.(And)
		return ok && equalAll(x.Xs, y.Xs)
	case Or:
		y, ok := b.(Or)
		return ok && equalAll(x.Xs, y.Xs)
	case AtLeast:
		y, ok := b.(AtLeast)
		return ok && x.K == y.K && equalAll(x.Xs, y.Xs)
	case Const:
		y, ok := b.(Const)
		return ok && x.B == y.B
	}
	return false
}

func equalAll(xs, ys []Expr) bool {
	if len(xs) != len(ys) {
		return false
	}
	for i := range xs {
		if !Equal(xs[i], ys[i]) {
			return false
		}
	}
	return true
}
