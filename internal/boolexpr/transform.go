package boolexpr

import "fmt"

// Dual implements the paper's Step-1 structural transformation: AND gates
// become OR gates and vice versa while variables stay in positive form.
//
// If f is the fault-tree function over variables x, then Dual(f) is the
// formula the paper calls Y(t) over renamed variables y (with y_i = ¬x_i):
// evaluating Dual(f) under assignment y equals evaluating f under the
// complemented assignment x = ¬y. AtLeast(k, n) dualises to
// AtLeast(n-k+1, n), and negations stay in place (their operand is
// dualised). Constants are complemented so that the duality
// Dual(f)(y) = ¬f(¬y) holds for every expression.
func Dual(e Expr) Expr {
	switch x := e.(type) {
	case Var:
		return x
	case Not:
		return Not{X: Dual(x.X)}
	case And:
		return Or{Xs: dualAll(x.Xs)}
	case Or:
		return And{Xs: dualAll(x.Xs)}
	case AtLeast:
		return AtLeast{K: len(x.Xs) - x.K + 1, Xs: dualAll(x.Xs)}
	case Const:
		return Const{B: !x.B}
	}
	panic(fmt.Sprintf("boolexpr: unknown expression type %T", e))
}

func dualAll(xs []Expr) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = Dual(x)
	}
	return out
}

// NNF rewrites e into negation normal form: negations appear only
// directly above variables, using De Morgan's laws. AtLeast nodes are
// preserved when positive; a negated AtLeast(k, xs) becomes
// AtLeast(n-k+1, ¬xs) over negated operands (at most k-1 true ⇔ at
// least n-k+1 false).
func NNF(e Expr) Expr {
	return nnf(e, false)
}

func nnf(e Expr, negate bool) Expr {
	switch x := e.(type) {
	case Var:
		if negate {
			return Not{X: x}
		}
		return x
	case Not:
		return nnf(x.X, !negate)
	case And:
		if negate {
			return Or{Xs: nnfAll(x.Xs, true)}
		}
		return And{Xs: nnfAll(x.Xs, false)}
	case Or:
		if negate {
			return And{Xs: nnfAll(x.Xs, true)}
		}
		return Or{Xs: nnfAll(x.Xs, false)}
	case AtLeast:
		if negate {
			return AtLeast{K: len(x.Xs) - x.K + 1, Xs: nnfAll(x.Xs, true)}
		}
		return AtLeast{K: x.K, Xs: nnfAll(x.Xs, false)}
	case Const:
		return Const{B: x.B != negate}
	}
	panic(fmt.Sprintf("boolexpr: unknown expression type %T", e))
}

func nnfAll(xs []Expr, negate bool) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = nnf(x, negate)
	}
	return out
}

// Simplify performs cheap structural simplifications: constant folding,
// double-negation elimination, flattening of nested conjunctions and
// disjunctions, and collapsing of single-operand gates. It preserves
// logical equivalence.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case Var:
		return x
	case Not:
		inner := Simplify(x.X)
		switch y := inner.(type) {
		case Const:
			return Const{B: !y.B}
		case Not:
			return y.X
		}
		return Not{X: inner}
	case And:
		var flat []Expr
		for _, c := range x.Xs {
			s := Simplify(c)
			switch y := s.(type) {
			case Const:
				if !y.B {
					return False
				}
				// true operand: drop.
			case And:
				flat = append(flat, y.Xs...)
			default:
				flat = append(flat, s)
			}
		}
		return collapse(flat, true)
	case Or:
		var flat []Expr
		for _, c := range x.Xs {
			s := Simplify(c)
			switch y := s.(type) {
			case Const:
				if y.B {
					return True
				}
			case Or:
				flat = append(flat, y.Xs...)
			default:
				flat = append(flat, s)
			}
		}
		return collapse(flat, false)
	case AtLeast:
		k := x.K
		xs := make([]Expr, 0, len(x.Xs))
		for _, c := range x.Xs {
			s := Simplify(c)
			if y, ok := s.(Const); ok {
				if y.B {
					k-- // a true operand lowers the threshold
				}
				continue // false operands never contribute
			}
			xs = append(xs, s)
		}
		switch {
		case k <= 0:
			return True
		case k > len(xs):
			return False
		case k == 1:
			return Simplify(Or{Xs: xs})
		case k == len(xs):
			return Simplify(And{Xs: xs})
		}
		return AtLeast{K: k, Xs: xs}
	case Const:
		return x
	}
	panic(fmt.Sprintf("boolexpr: unknown expression type %T", e))
}

func collapse(xs []Expr, isAnd bool) Expr {
	switch len(xs) {
	case 0:
		if isAnd {
			return True
		}
		return False
	case 1:
		return xs[0]
	}
	if isAnd {
		return And{Xs: xs}
	}
	return Or{Xs: xs}
}

// ExpandAtLeast rewrites every AtLeast node into pure And/Or form using
// the recursive Shannon-style decomposition
//
//	atleast(k, x1..xn) = (x1 & atleast(k-1, x2..xn)) | atleast(k, x2..xn)
//
// which keeps sharing-free expression growth polynomial for fixed k.
// Expressions without AtLeast nodes are returned unchanged (possibly
// rebuilt).
func ExpandAtLeast(e Expr) Expr {
	switch x := e.(type) {
	case Var, Const:
		return e
	case Not:
		return Not{X: ExpandAtLeast(x.X)}
	case And:
		return And{Xs: expandAll(x.Xs)}
	case Or:
		return Or{Xs: expandAll(x.Xs)}
	case AtLeast:
		xs := expandAll(x.Xs)
		return expandThreshold(x.K, xs)
	}
	panic(fmt.Sprintf("boolexpr: unknown expression type %T", e))
}

func expandAll(xs []Expr) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = ExpandAtLeast(x)
	}
	return out
}

func expandThreshold(k int, xs []Expr) Expr {
	switch {
	case k <= 0:
		return True
	case k > len(xs):
		return False
	case k == len(xs):
		return And{Xs: xs}
	case k == 1:
		return Or{Xs: xs}
	}
	head, tail := xs[0], xs[1:]
	with := And{Xs: []Expr{head, expandThreshold(k-1, tail)}}
	without := expandThreshold(k, tail)
	return Or{Xs: []Expr{with, without}}
}

// ExpandAtLeastNaive rewrites AtLeast(k, xs) into the textbook
// OR-over-all-C(n,k)-combinations form. Output size is combinatorial in
// the fan-in — it exists as the baseline against which the shared
// Shannon expansion (ExpandAtLeast) and the native threshold encoding
// are measured (Experiment E7).
func ExpandAtLeastNaive(e Expr) Expr {
	switch x := e.(type) {
	case Var, Const:
		return e
	case Not:
		return Not{X: ExpandAtLeastNaive(x.X)}
	case And:
		return And{Xs: expandNaiveAll(x.Xs)}
	case Or:
		return Or{Xs: expandNaiveAll(x.Xs)}
	case AtLeast:
		xs := expandNaiveAll(x.Xs)
		switch {
		case x.K <= 0:
			return True
		case x.K > len(xs):
			return False
		}
		var terms []Expr
		combo := make([]Expr, 0, x.K)
		var choose func(start, need int)
		choose = func(start, need int) {
			if need == 0 {
				terms = append(terms, And{Xs: append([]Expr(nil), combo...)})
				return
			}
			for i := start; i <= len(xs)-need; i++ {
				combo = append(combo, xs[i])
				choose(i+1, need-1)
				combo = combo[:len(combo)-1]
			}
		}
		choose(0, x.K)
		return Or{Xs: terms}
	}
	panic(fmt.Sprintf("boolexpr: unknown expression type %T", e))
}

func expandNaiveAll(xs []Expr) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = ExpandAtLeastNaive(x)
	}
	return out
}

// IsMonotone reports whether e is free of negations and constants after
// simplification, i.e. a coherent structure function. Fault trees produce
// monotone expressions; several algorithms (MOCUS, the Rauzy BDD cut-set
// construction) require this property.
func IsMonotone(e Expr) bool {
	switch x := e.(type) {
	case Var:
		return true
	case Not:
		return false
	case And:
		return allMonotone(x.Xs)
	case Or:
		return allMonotone(x.Xs)
	case AtLeast:
		return allMonotone(x.Xs)
	case Const:
		return true
	}
	return false
}

func allMonotone(xs []Expr) bool {
	for _, x := range xs {
		if !IsMonotone(x) {
			return false
		}
	}
	return true
}
