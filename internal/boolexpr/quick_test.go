package boolexpr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genExpr wraps a random expression plus an assignment over its
// variables so properties can be checked pointwise. It implements
// quick.Generator.
type genExpr struct {
	Expr   Expr
	Assign map[string]bool
}

// Generate implements quick.Generator.
func (genExpr) Generate(r *rand.Rand, _ int) reflect.Value {
	cfg := DefaultRandomConfig()
	cfg.NumVars = 6
	cfg.MaxDepth = 5
	cfg.AllowConst = true
	e := Random(r, cfg)
	assign := make(map[string]bool)
	for _, v := range Vars(e) {
		assign[v] = r.Intn(2) == 0
	}
	return reflect.ValueOf(genExpr{Expr: e, Assign: assign})
}

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(101))}
}

// TestQuickDualInvolution: Dual is an involution.
func TestQuickDualInvolution(t *testing.T) {
	property := func(g genExpr) bool {
		return Equal(Dual(Dual(g.Expr)), g.Expr)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickDualPointwise: Dual(f)(y) = ¬f(¬y) at a random point.
func TestQuickDualPointwise(t *testing.T) {
	property := func(g genExpr) bool {
		comp := make(map[string]bool, len(g.Assign))
		for v, b := range g.Assign {
			comp[v] = !b
		}
		return Dual(g.Expr).Eval(g.Assign) == !g.Expr.Eval(comp)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickNNFPointwise: NNF preserves the function at a random point.
func TestQuickNNFPointwise(t *testing.T) {
	property := func(g genExpr) bool {
		return NNF(g.Expr).Eval(g.Assign) == g.Expr.Eval(g.Assign)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyPointwise: Simplify preserves the function.
func TestQuickSimplifyPointwise(t *testing.T) {
	property := func(g genExpr) bool {
		return Simplify(g.Expr).Eval(g.Assign) == g.Expr.Eval(g.Assign)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickExpandAtLeastPointwise: threshold expansion preserves the
// function and eliminates AtLeast nodes.
func TestQuickExpandAtLeastPointwise(t *testing.T) {
	property := func(g genExpr) bool {
		expanded := ExpandAtLeast(g.Expr)
		if hasAtLeast(expanded) {
			return false
		}
		return expanded.Eval(g.Assign) == g.Expr.Eval(g.Assign)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyIdempotent: Simplify(Simplify(e)) = Simplify(e)
// structurally.
func TestQuickSimplifyIdempotent(t *testing.T) {
	property := func(g genExpr) bool {
		once := Simplify(g.Expr)
		return Equal(Simplify(once), once)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickSizeDepthPositive: structural metrics are sane.
func TestQuickSizeDepthPositive(t *testing.T) {
	property := func(g genExpr) bool {
		return Size(g.Expr) >= 1 && Depth(g.Expr) >= 1 && Depth(g.Expr) <= Size(g.Expr)
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickMonotoneUpwardClosed: for monotone expressions, turning any
// variable on never flips the function from true to false.
func TestQuickMonotoneUpwardClosed(t *testing.T) {
	property := func(g genExpr) bool {
		mono := stripNegations(g.Expr)
		if !mono.Eval(g.Assign) {
			return true // only test the upward direction from true points
		}
		for v := range g.Assign {
			if g.Assign[v] {
				continue
			}
			g.Assign[v] = true
			up := mono.Eval(g.Assign)
			g.Assign[v] = false
			if !up {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, quickConfig()); err != nil {
		t.Error(err)
	}
}

// stripNegations rewrites Not(x) to x, producing a monotone expression.
func stripNegations(e Expr) Expr {
	switch x := e.(type) {
	case Var, Const:
		return e
	case Not:
		return stripNegations(x.X)
	case And:
		return And{Xs: stripAll(x.Xs)}
	case Or:
		return Or{Xs: stripAll(x.Xs)}
	case AtLeast:
		return AtLeast{K: x.K, Xs: stripAll(x.Xs)}
	}
	return e
}

func stripAll(xs []Expr) []Expr {
	out := make([]Expr, len(xs))
	for i, x := range xs {
		out[i] = stripNegations(x)
	}
	return out
}
