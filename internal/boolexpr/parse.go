package boolexpr

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads an expression in the infix syntax produced by
// Expr.String:
//
//	expr     := or
//	or       := and { "|" and }
//	and      := unary { "&" unary }
//	unary    := "!" unary | atom
//	atom     := ident | "true" | "false" | "(" expr ")"
//	          | "atleast" "(" int { "," expr } ")"
//
// Identifiers consist of letters, digits, '_', '-' and '.' and must not
// start with a digit. Parse and String are inverse up to operand
// grouping: Parse(e.String()) is logically equivalent to e.
func Parse(input string) (Expr, error) {
	p := &parser{input: input}
	p.next()
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("unexpected %q", p.tok.text)
	}
	return e, nil
}

// MustParse is Parse for tests and static expressions; it panics on
// malformed input.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokAnd
	tokOr
	tokNot
	tokLParen
	tokRParen
	tokComma
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type parser struct {
	input string
	pos   int
	tok   token
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("boolexpr: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// next advances to the following token.
func (p *parser) next() {
	for p.pos < len(p.input) && unicode.IsSpace(rune(p.input[p.pos])) {
		p.pos++
	}
	start := p.pos
	if p.pos >= len(p.input) {
		p.tok = token{kind: tokEOF, pos: start}
		return
	}
	c := p.input[p.pos]
	switch {
	case c == '&':
		p.pos++
		p.tok = token{kind: tokAnd, text: "&", pos: start}
	case c == '|':
		p.pos++
		p.tok = token{kind: tokOr, text: "|", pos: start}
	case c == '!':
		p.pos++
		p.tok = token{kind: tokNot, text: "!", pos: start}
	case c == '(':
		p.pos++
		p.tok = token{kind: tokLParen, text: "(", pos: start}
	case c == ')':
		p.pos++
		p.tok = token{kind: tokRParen, text: ")", pos: start}
	case c == ',':
		p.pos++
		p.tok = token{kind: tokComma, text: ",", pos: start}
	case c >= '0' && c <= '9':
		for p.pos < len(p.input) && p.input[p.pos] >= '0' && p.input[p.pos] <= '9' {
			p.pos++
		}
		p.tok = token{kind: tokNumber, text: p.input[start:p.pos], pos: start}
	case isIdentStart(rune(c)):
		for p.pos < len(p.input) && isIdentPart(rune(p.input[p.pos])) {
			p.pos++
		}
		p.tok = token{kind: tokIdent, text: p.input[start:p.pos], pos: start}
	default:
		p.tok = token{kind: tokEOF, text: string(c), pos: start}
		p.pos = len(p.input)
		// Surfaced as an error by the caller expecting something else.
		p.tok.kind = tokenKind(-1)
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func (p *parser) parseOr() (Expr, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	operands := []Expr{first}
	for p.tok.kind == tokOr {
		p.next()
		operand, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		operands = append(operands, operand)
	}
	if len(operands) == 1 {
		return operands[0], nil
	}
	return Or{Xs: operands}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	operands := []Expr{first}
	for p.tok.kind == tokAnd {
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		operands = append(operands, operand)
	}
	if len(operands) == 1 {
		return operands[0], nil
	}
	return And{Xs: operands}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokNot {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{X: inner}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	switch p.tok.kind {
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.errorf("expected ')', got %q", p.tok.text)
		}
		p.next()
		return e, nil
	case tokIdent:
		name := p.tok.text
		switch strings.ToLower(name) {
		case "true":
			p.next()
			return True, nil
		case "false":
			p.next()
			return False, nil
		case "atleast":
			return p.parseAtLeast()
		}
		p.next()
		return Var{Name: name}, nil
	default:
		return nil, p.errorf("expected an expression, got %q", p.tok.text)
	}
}

func (p *parser) parseAtLeast() (Expr, error) {
	p.next() // consume "atleast"
	if p.tok.kind != tokLParen {
		return nil, p.errorf("expected '(' after atleast")
	}
	p.next()
	if p.tok.kind != tokNumber {
		return nil, p.errorf("expected threshold integer, got %q", p.tok.text)
	}
	k, err := strconv.Atoi(p.tok.text)
	if err != nil {
		return nil, p.errorf("bad threshold %q", p.tok.text)
	}
	p.next()
	var operands []Expr
	for p.tok.kind == tokComma {
		p.next()
		operand, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		operands = append(operands, operand)
	}
	if p.tok.kind != tokRParen {
		return nil, p.errorf("expected ')' to close atleast, got %q", p.tok.text)
	}
	p.next()
	if len(operands) == 0 {
		return nil, p.errorf("atleast needs at least one operand")
	}
	return AtLeast{K: k, Xs: operands}, nil
}
