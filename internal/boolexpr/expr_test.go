package boolexpr

import (
	"math/rand"
	"testing"
)

// fpsFormula returns the fault-tree function of the paper's Fig. 1:
// f(t) = (x1 & x2) | (x3 | x4 | (x5 & (x6 | x7))).
func fpsFormula() Expr {
	return NewOr(
		NewAnd(V("x1"), V("x2")),
		NewOr(
			V("x3"),
			V("x4"),
			NewAnd(V("x5"), NewOr(V("x6"), V("x7"))),
		),
	)
}

func TestEvalFPSExample(t *testing.T) {
	f := fpsFormula()
	tests := []struct {
		name   string
		assign map[string]bool
		want   bool
	}{
		{name: "all false", assign: map[string]bool{}, want: false},
		{name: "both sensors", assign: map[string]bool{"x1": true, "x2": true}, want: true},
		{name: "one sensor", assign: map[string]bool{"x1": true}, want: false},
		{name: "no water", assign: map[string]bool{"x3": true}, want: true},
		{name: "nozzles blocked", assign: map[string]bool{"x4": true}, want: true},
		{name: "auto only", assign: map[string]bool{"x5": true}, want: false},
		{name: "auto and comms", assign: map[string]bool{"x5": true, "x6": true}, want: true},
		{name: "auto and ddos", assign: map[string]bool{"x5": true, "x7": true}, want: true},
		{name: "comms only", assign: map[string]bool{"x6": true, "x7": true}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := f.Eval(tt.assign); got != tt.want {
				t.Errorf("Eval(%v) = %v, want %v", tt.assign, got, tt.want)
			}
		})
	}
}

func TestVars(t *testing.T) {
	got := Vars(fpsFormula())
	want := []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestVarsDeduplicates(t *testing.T) {
	e := NewOr(V("a"), NewAnd(V("a"), Not{X: V("b")}), NewAtLeast(1, V("b"), V("a")))
	got := Vars(e)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Vars = %v, want [a b]", got)
	}
}

func TestAtLeastEval(t *testing.T) {
	vote := NewAtLeast(2, V("a"), V("b"), V("c"))
	tests := []struct {
		name   string
		assign map[string]bool
		want   bool
	}{
		{"none", map[string]bool{}, false},
		{"one", map[string]bool{"a": true}, false},
		{"two", map[string]bool{"a": true, "c": true}, true},
		{"all", map[string]bool{"a": true, "b": true, "c": true}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := vote.Eval(tt.assign); got != tt.want {
				t.Errorf("Eval(%v) = %v, want %v", tt.assign, got, tt.want)
			}
		})
	}
}

func TestAtLeastDegenerateK(t *testing.T) {
	if !NewAtLeast(0, V("a")).Eval(map[string]bool{}) {
		t.Error("atleast(0, ...) should be true under any assignment")
	}
	if NewAtLeast(2, V("a")).Eval(map[string]bool{"a": true}) {
		t.Error("atleast(2, a) should be false when only one operand exists")
	}
}

func TestEmptyGates(t *testing.T) {
	if !(And{}).Eval(nil) {
		t.Error("empty And should evaluate to true")
	}
	if (Or{}).Eval(nil) {
		t.Error("empty Or should evaluate to false")
	}
}

func TestConstEval(t *testing.T) {
	if !True.Eval(nil) || False.Eval(nil) {
		t.Error("constants evaluate incorrectly")
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		give Expr
		want string
	}{
		{V("x1"), "x1"},
		{Not{X: V("a")}, "!a"},
		{NewAnd(V("a"), V("b")), "a & b"},
		{NewOr(V("a"), NewAnd(V("b"), V("c"))), "a | (b & c)"},
		{NewAtLeast(2, V("a"), V("b"), V("c")), "atleast(2, a, b, c)"},
		{True, "true"},
		{False, "false"},
		{And{}, "true"},
		{Or{}, "false"},
		{Not{X: NewOr(V("a"), V("b"))}, "!(a | b)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestSizeAndDepth(t *testing.T) {
	f := fpsFormula()
	// Or(And(x1,x2), Or(x3, x4, And(x5, Or(x6,x7)))):
	// nodes: Or + And + x1 + x2 + Or + x3 + x4 + And + x5 + Or + x6 + x7 = 12
	if got := Size(f); got != 12 {
		t.Errorf("Size = %d, want 12", got)
	}
	// depth: Or -> Or -> And -> Or -> x6 = 5
	if got := Depth(f); got != 5 {
		t.Errorf("Depth = %d, want 5", got)
	}
	if Size(V("a")) != 1 || Depth(V("a")) != 1 {
		t.Error("leaf size/depth should be 1")
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b Expr
		want bool
	}{
		{"same var", V("a"), V("a"), true},
		{"different var", V("a"), V("b"), false},
		{"same formula", fpsFormula(), fpsFormula(), true},
		{"order matters", NewAnd(V("a"), V("b")), NewAnd(V("b"), V("a")), false},
		{"and vs or", NewAnd(V("a"), V("b")), NewOr(V("a"), V("b")), false},
		{"atleast k differs", NewAtLeast(1, V("a"), V("b")), NewAtLeast(2, V("a"), V("b")), false},
		{"const", True, True, true},
		{"const differs", True, False, false},
		{"not", Not{X: V("a")}, Not{X: V("a")}, true},
		{"var vs const", V("a"), True, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Equal(tt.a, tt.b); got != tt.want {
				t.Errorf("Equal = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRandomDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig()
	a := Random(rand.New(rand.NewSource(42)), cfg)
	b := Random(rand.New(rand.NewSource(42)), cfg)
	if !Equal(a, b) {
		t.Error("Random with identical seeds should produce identical expressions")
	}
}

func TestAllAssignmentsCount(t *testing.T) {
	count := 0
	AllAssignments([]string{"a", "b", "c"}, func(map[string]bool) bool {
		count++
		return true
	})
	if count != 8 {
		t.Errorf("enumerated %d assignments, want 8", count)
	}
}

func TestAllAssignmentsEarlyStop(t *testing.T) {
	count := 0
	AllAssignments([]string{"a", "b"}, func(map[string]bool) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("enumerated %d assignments after early stop, want 2", count)
	}
}
