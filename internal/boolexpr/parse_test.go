package boolexpr

import (
	"math/rand"
	"testing"
)

func TestParseBasics(t *testing.T) {
	tests := []struct {
		give string
		want Expr
	}{
		{"a", V("a")},
		{"!a", Not{X: V("a")}},
		{"a & b", NewAnd(V("a"), V("b"))},
		{"a | b | c", NewOr(V("a"), V("b"), V("c"))},
		{"a & b & c", NewAnd(V("a"), V("b"), V("c"))},
		{"a | b & c", NewOr(V("a"), NewAnd(V("b"), V("c")))},
		{"(a | b) & c", NewAnd(NewOr(V("a"), V("b")), V("c"))},
		{"!(a | b)", Not{X: NewOr(V("a"), V("b"))}},
		{"!!a", Not{X: Not{X: V("a")}}},
		{"true", True},
		{"FALSE", False},
		{"atleast(2, a, b, c)", NewAtLeast(2, V("a"), V("b"), V("c"))},
		{"atleast(1, a & b, c)", NewAtLeast(1, NewAnd(V("a"), V("b")), V("c"))},
		{"x_1 & x-2 & x.3", NewAnd(V("x_1"), V("x-2"), V("x.3"))},
		{"  a  &b ", NewAnd(V("a"), V("b"))},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			got, err := Parse(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if !Equal(got, tt.want) {
				t.Errorf("Parse(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"a &",
		"& a",
		"(a",
		"a)",
		"a b",
		"!(a",
		"atleast",
		"atleast(",
		"atleast(x, a)",
		"atleast(2 a)",
		"atleast(2)",
		"atleast(2, a",
		"a @ b",
		"1a",
	}
	for _, give := range tests {
		t.Run(give, func(t *testing.T) {
			if _, err := Parse(give); err == nil {
				t.Errorf("Parse(%q) accepted", give)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("a &")
}

// TestParseStringRoundTrip: Parse(e.String()) is logically equivalent
// to e, for random expressions.
func TestParseStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	cfg := DefaultRandomConfig()
	cfg.NumVars = 5
	cfg.AllowConst = true
	for trial := 0; trial < 200; trial++ {
		e := Random(rng, cfg)
		back, err := Parse(e.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.String(), err)
		}
		assertEquivalent(t, e, back)
	}
}

func TestParseFPSFormula(t *testing.T) {
	f := MustParse("(x1 & x2) | (x3 | x4 | (x5 & (x6 | x7)))")
	got := f.Eval(map[string]bool{"x1": true, "x2": true})
	if !got {
		t.Error("parsed FPS formula misbehaves")
	}
	if f.Eval(map[string]bool{"x1": true}) {
		t.Error("single sensor should not satisfy the parsed formula")
	}
}
