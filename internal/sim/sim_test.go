package sim

import (
	"math"
	"testing"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/quant"
)

func TestCompileEvalMatchesTreeEval(t *testing.T) {
	trees := []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()}
	for _, tree := range trees {
		c, err := Compile(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		events := tree.Events()
		failed := make([]bool, len(events))
		scratch := make([]bool, c.NumSlots())
		// Exhaustive agreement with the reference evaluator.
		for mask := 0; mask < 1<<len(events); mask++ {
			failedMap := make(map[string]bool, len(events))
			for i, e := range events {
				failed[c.EventIndex(e.ID)] = mask&(1<<i) != 0
				failedMap[e.ID] = mask&(1<<i) != 0
			}
			want, err := tree.Eval(failedMap)
			if err != nil {
				t.Fatal(err)
			}
			if got := c.Eval(failed, scratch); got != want {
				t.Fatalf("%s: compiled eval differs at mask %b", tree.Name(), mask)
			}
		}
	}
}

func TestCompileInvalid(t *testing.T) {
	if _, err := Compile(ft.New("bad")); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestEventIndex(t *testing.T) {
	c, err := Compile(gen.FPS())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEvents() != 7 {
		t.Errorf("NumEvents = %d", c.NumEvents())
	}
	if c.EventIndex("x1") < 0 || c.EventIndex("ghost") != -1 {
		t.Error("EventIndex misbehaves")
	}
}

func TestTopEventAgainstExact(t *testing.T) {
	const trials = 200000
	for _, tree := range []*ft.Tree{gen.FPS(), gen.RedundantSCADA()} {
		exact, err := quant.TopEventProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		est, err := TopEvent(tree, trials, 42)
		if err != nil {
			t.Fatal(err)
		}
		if est.Trials != trials {
			t.Errorf("trials = %d", est.Trials)
		}
		if !est.Agrees(exact, 4) {
			t.Errorf("%s: estimate %v ± %v vs exact %v", tree.Name(), est.Probability, est.StdErr, exact)
		}
	}
}

func TestTopEventAgainstExactRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tree, err := gen.Random(gen.Config{
			Events: 12, Seed: seed, VotingFrac: 0.3,
			MinProb: 0.05, MaxProb: 0.5, // keep P(top) estimable
		})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := quant.TopEventProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		est, err := TopEvent(tree, 100000, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !est.Agrees(exact, 4) {
			t.Errorf("seed %d: estimate %v ± %v vs exact %v", seed, est.Probability, est.StdErr, exact)
		}
	}
}

func TestTopEventDeterministic(t *testing.T) {
	a, err := TopEvent(gen.FPS(), 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TopEvent(gen.FPS(), 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Probability != b.Probability {
		t.Error("same seed produced different estimates")
	}
}

func TestTopEventErrors(t *testing.T) {
	if _, err := TopEvent(gen.FPS(), 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := TopEvent(ft.New("bad"), 10, 1); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestDominanceFPS(t *testing.T) {
	// The MPMCS {x1,x2} has probability 0.02 of ~0.0427 total: its
	// dominance (given failure, both sensors failed) is substantial.
	top, dom, err := Dominance(gen.FPS(), []string{"x1", "x2"}, 300000, 11)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := quant.TopEventProbability(gen.FPS())
	if err != nil {
		t.Fatal(err)
	}
	if !top.Agrees(exact, 4) {
		t.Errorf("top estimate %v ± %v vs exact %v", top.Probability, top.StdErr, exact)
	}
	// Exact dominance = P(x1∧x2 ∧ top)/P(top) = P(x1∧x2)/P(top) since
	// {x1,x2} is a cut set.
	wantDominance := 0.02 / exact
	if !dom.Agrees(wantDominance, 4) {
		t.Errorf("dominance %v ± %v vs exact %v", dom.Probability, dom.StdErr, wantDominance)
	}
	if dom.Probability < 0.3 {
		t.Errorf("MPMCS dominance %v unexpectedly low", dom.Probability)
	}
}

func TestDominanceErrors(t *testing.T) {
	if _, _, err := Dominance(gen.FPS(), []string{"ghost"}, 10, 1); err == nil {
		t.Error("unknown event accepted")
	}
	if _, _, err := Dominance(gen.FPS(), []string{"x1"}, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestDominanceNoTopHits(t *testing.T) {
	// A tree that essentially never fails: dominance has no samples.
	tree := ft.New("never")
	if err := tree.AddEvent("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("b", 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "a", "b"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	top, dom, err := Dominance(tree, []string{"a"}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if top.Probability != 0 || dom.Trials != 0 {
		t.Errorf("top %v dominance %+v", top.Probability, dom)
	}
}

func TestEstimateAgrees(t *testing.T) {
	e := Estimate{Probability: 0.5, StdErr: 0.01, Trials: 100}
	if !e.Agrees(0.52, 3) {
		t.Error("0.52 is within 3 stderr of 0.5±0.01")
	}
	if e.Agrees(0.6, 3) {
		t.Error("0.6 is not within 3 stderr")
	}
	if math.IsNaN(e.StdErr) {
		t.Error("stderr NaN")
	}
}
