// Package sim provides Monte-Carlo estimation for fault trees: an
// independent, sampling-based check of the analytical machinery (BDD
// probabilities, bottom-up evaluation, MPMCS dominance). Estimates
// converge as O(1/√trials); the package reports standard errors so
// tests and experiments can assert statistical agreement.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"mpmcs4fta/internal/ft"
)

// Compiled is a fault tree flattened for fast repeated evaluation: the
// gates are topologically ordered and evaluated over dense slices, with
// no maps or revalidation per trial.
type Compiled struct {
	eventIDs   []string
	eventProbs []float64
	eventIndex map[string]int

	// gates in dependency order; inputs reference either events
	// (index < len(eventIDs)) or earlier gates (len(eventIDs)+j).
	gates    []compiledGate
	topSlot  int
	numSlots int
}

type compiledGate struct {
	typ    ft.GateType
	k      int
	inputs []int
	slot   int
}

// Compile flattens a valid tree.
func Compile(t *ft.Tree) (*Compiled, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	events := t.Events()
	c := &Compiled{
		eventIDs:   make([]string, len(events)),
		eventProbs: make([]float64, len(events)),
		eventIndex: make(map[string]int, len(events)),
	}
	for i, e := range events {
		c.eventIDs[i] = e.ID
		c.eventProbs[i] = e.Prob
		c.eventIndex[e.ID] = i
	}

	slotOf := make(map[string]int, len(events)+t.NumGates())
	for id, i := range c.eventIndex {
		slotOf[id] = i
	}
	next := len(events)
	var build func(id string) (int, error)
	build = func(id string) (int, error) {
		if slot, ok := slotOf[id]; ok {
			return slot, nil
		}
		g := t.Gate(id)
		if g == nil {
			return 0, fmt.Errorf("sim: unknown node %q", id)
		}
		inputs := make([]int, len(g.Inputs))
		for i, in := range g.Inputs {
			slot, err := build(in)
			if err != nil {
				return 0, err
			}
			inputs[i] = slot
		}
		slot := next
		next++
		slotOf[id] = slot
		c.gates = append(c.gates, compiledGate{typ: g.Type, k: g.K, inputs: inputs, slot: slot})
		return slot, nil
	}
	top, err := build(t.Top())
	if err != nil {
		return nil, err
	}
	c.topSlot = top
	c.numSlots = next
	return c, nil
}

// NumEvents returns the number of basic events.
func (c *Compiled) NumEvents() int { return len(c.eventIDs) }

// EventIndex returns the dense index of an event id, or -1.
func (c *Compiled) EventIndex(id string) int {
	if i, ok := c.eventIndex[id]; ok {
		return i
	}
	return -1
}

// Eval computes the top event value; failed[i] corresponds to
// eventIDs[i]. scratch must have length ≥ NumSlots (reused across
// calls); pass nil to allocate.
func (c *Compiled) Eval(failed []bool, scratch []bool) bool {
	if scratch == nil {
		scratch = make([]bool, c.numSlots)
	}
	copy(scratch, failed)
	for _, g := range c.gates {
		var v bool
		switch g.typ {
		case ft.GateAnd:
			v = true
			for _, in := range g.inputs {
				if !scratch[in] {
					v = false
					break
				}
			}
		case ft.GateOr:
			for _, in := range g.inputs {
				if scratch[in] {
					v = true
					break
				}
			}
		case ft.GateVoting:
			count := 0
			for _, in := range g.inputs {
				if scratch[in] {
					count++
					if count >= g.k {
						break
					}
				}
			}
			v = count >= g.k
		}
		scratch[g.slot] = v
	}
	return scratch[c.topSlot]
}

// NumSlots returns the scratch size required by Eval.
func (c *Compiled) NumSlots() int { return c.numSlots }

// Estimate is a Monte-Carlo estimate with its sampling error.
type Estimate struct {
	// Probability is the sample mean.
	Probability float64
	// StdErr is the standard error of the mean; a 95% confidence
	// interval is roughly Probability ± 1.96·StdErr.
	StdErr float64
	// Trials is the sample count.
	Trials int
}

// Agrees reports whether an exact value lies within z standard errors
// of the estimate (z = 3 gives a ≈99.7% test).
func (e Estimate) Agrees(exact, z float64) bool {
	return math.Abs(e.Probability-exact) <= z*e.StdErr+1e-12
}

// TopEvent estimates P(top) by direct sampling: each trial fails every
// event independently with its probability and evaluates the tree.
func TopEvent(t *ft.Tree, trials int, seed int64) (Estimate, error) {
	c, err := Compile(t)
	if err != nil {
		return Estimate{}, err
	}
	if trials < 1 {
		return Estimate{}, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	failed := make([]bool, c.NumEvents())
	scratch := make([]bool, c.NumSlots())
	hits := 0
	for trial := 0; trial < trials; trial++ {
		for i, p := range c.eventProbs {
			failed[i] = rng.Float64() < p
		}
		if c.Eval(failed, scratch) {
			hits++
		}
	}
	return bernoulliEstimate(hits, trials), nil
}

// Dominance estimates, in one sampling pass, P(top) and the dominance
// of a cut set: the fraction of top-event occurrences in which every
// member of the set had failed. For the MPMCS this measures how much of
// the system's total risk the single most likely cut set explains.
func Dominance(t *ft.Tree, set []string, trials int, seed int64) (top, dominance Estimate, err error) {
	c, cerr := Compile(t)
	if cerr != nil {
		return Estimate{}, Estimate{}, cerr
	}
	if trials < 1 {
		return Estimate{}, Estimate{}, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	indices := make([]int, len(set))
	for i, id := range set {
		idx := c.EventIndex(id)
		if idx < 0 {
			return Estimate{}, Estimate{}, fmt.Errorf("sim: %q is not a basic event", id)
		}
		indices[i] = idx
	}
	rng := rand.New(rand.NewSource(seed))
	failed := make([]bool, c.NumEvents())
	scratch := make([]bool, c.NumSlots())
	topHits, setHits := 0, 0
	for trial := 0; trial < trials; trial++ {
		for i, p := range c.eventProbs {
			failed[i] = rng.Float64() < p
		}
		if !c.Eval(failed, scratch) {
			continue
		}
		topHits++
		all := true
		for _, idx := range indices {
			if !failed[idx] {
				all = false
				break
			}
		}
		if all {
			setHits++
		}
	}
	top = bernoulliEstimate(topHits, trials)
	if topHits == 0 {
		return top, Estimate{Trials: 0}, nil
	}
	dominance = bernoulliEstimate(setHits, topHits)
	return top, dominance, nil
}

func bernoulliEstimate(hits, trials int) Estimate {
	p := float64(hits) / float64(trials)
	return Estimate{
		Probability: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(trials)),
		Trials:      trials,
	}
}
