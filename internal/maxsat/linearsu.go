package maxsat

import (
	"context"
	"fmt"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// LinearSU is the model-improving ("linear SAT-UNSAT") engine: solve,
// measure the model's cost, constrain the search to cost-1, repeat until
// UNSAT; the last model is optimal. The cost constraint is the CDCL
// solver's native pseudo-Boolean budget, so no cardinality network is
// encoded regardless of weight magnitudes.
type LinearSU struct {
	// SatOptions configures the underlying CDCL solver (useful for
	// portfolio diversity).
	SatOptions sat.Options
}

var _ Solver = (*LinearSU)(nil)

// Name implements Solver.
func (l *LinearSU) Name() string { return "linear-su" }

// Solve implements Solver.
func (l *LinearSU) Solve(ctx context.Context, inst *cnf.WCNF) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, fmt.Errorf("maxsat: %w", err)
	}
	var stats obs.SolverStats
	s := sat.New(inst.NumVars, l.SatOptions)
	for _, c := range inst.Hard {
		if !s.AddClause(c...) {
			return Result{Status: Infeasible}, nil
		}
	}

	// Attach one budget literal per soft clause: the negation of a unit
	// soft's literal directly, or a fresh relaxation variable appended
	// to longer clauses. A true budget literal *permits* falsifying the
	// soft clause; the model's true cost is measured against the
	// original instance each iteration.
	weightOf := make(map[cnf.Lit]int64, len(inst.Soft))
	var (
		order []cnf.Lit // budget literals in first-use order
		total int64
	)
	for _, soft := range inst.Soft {
		total += soft.Weight
		var budgetLit cnf.Lit
		if len(soft.Clause) == 1 {
			// Duplicate unit softs merge into one budget literal with
			// summed weight.
			budgetLit = soft.Clause[0].Neg()
		} else {
			r := cnf.Lit(s.AddVars(1))
			relaxed := append(append(cnf.Clause{}, soft.Clause...), r)
			if !s.AddClause(relaxed...) {
				return Result{Status: Infeasible}, nil
			}
			budgetLit = r
		}
		if _, seen := weightOf[budgetLit]; !seen {
			order = append(order, budgetLit)
		}
		weightOf[budgetLit] += soft.Weight
	}
	budgetLits := make([]cnf.Lit, len(order))
	weights := make([]int64, len(order))
	for i, l := range order {
		budgetLits[i] = l
		weights[i] = weightOf[l]
	}
	if err := s.SetBudget(budgetLits, weights, total); err != nil {
		return Result{}, fmt.Errorf("maxsat: install budget: %w", err)
	}

	var (
		best     []bool
		bestCost int64 = -1
	)
	for {
		if err := ctx.Err(); err != nil {
			return Result{Stats: stats}, fmt.Errorf("%w: %v", sat.ErrInterrupted, err)
		}
		status, err := s.Solve(ctx)
		addSATCall(&stats, s.ResetStats())
		if err != nil {
			return Result{Stats: stats}, err
		}
		if status != sat.Sat {
			break
		}
		model := truncateModel(s.Model(), inst.NumVars)
		cost, err := inst.Cost(model)
		if err != nil {
			return Result{Stats: stats}, fmt.Errorf("maxsat: inconsistent model: %w", err)
		}
		best, bestCost = model, cost
		// Model-improving search: each SAT answer tightens the upper
		// bound; the lower bound stays 0 until UNSAT proves optimality.
		stats.RecordBound(stats.SATCalls, 0, cost)
		if cost == 0 {
			break
		}
		if err := s.SetBudgetBound(cost - 1); err != nil {
			return Result{Stats: stats}, fmt.Errorf("maxsat: tighten bound: %w", err)
		}
	}
	if bestCost < 0 {
		return Result{Status: Infeasible, Stats: stats}, nil
	}
	stats.RecordBound(stats.SATCalls, bestCost, bestCost)
	return verifyResult(inst, Result{Status: Optimal, Model: best, Cost: bestCost, Stats: stats})
}
