package maxsat

import (
	"context"
	"fmt"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// LinearSU is the model-improving ("linear SAT-UNSAT") engine: solve,
// measure the model's cost, constrain the search to cost-1, repeat until
// UNSAT; the last model is optimal. The cost constraint is the CDCL
// solver's native pseudo-Boolean budget, so no cardinality network is
// encoded regardless of weight magnitudes.
//
// Run cooperatively (SolveWithProgress), the engine publishes every
// improving model and tightens its budget from the global incumbent —
// a sibling's better model shrinks this engine's search space between
// restarts via sat.SetBudgetRefresh.
type LinearSU struct {
	// SatOptions configures the underlying CDCL solver (useful for
	// portfolio diversity).
	SatOptions sat.Options
}

var _ ProgressSolver = (*LinearSU)(nil)

// Name implements Solver.
func (l *LinearSU) Name() string { return "linear-su" }

// Solve implements Solver.
func (l *LinearSU) Solve(ctx context.Context, inst *cnf.WCNF) (Result, error) {
	return l.SolveWithProgress(ctx, inst, nil)
}

// SolveWithProgress implements ProgressSolver.
func (l *LinearSU) SolveWithProgress(ctx context.Context, inst *cnf.WCNF, prog Progress) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, fmt.Errorf("maxsat: %w", err)
	}
	var stats obs.SolverStats
	s := sat.New(inst.NumVars, l.SatOptions)
	satSecs := liveTelemetry(ctx, &stats, l.Name(), s)
	for _, c := range inst.Hard {
		if !s.AddClause(c...) {
			return Result{Status: Infeasible}, nil
		}
	}

	// Attach one budget literal per soft clause: the negation of a unit
	// soft's literal directly, or a fresh relaxation variable appended
	// to longer clauses. A true budget literal *permits* falsifying the
	// soft clause; the model's true cost is measured against the
	// original instance each iteration.
	weightOf := make(map[cnf.Lit]int64, len(inst.Soft))
	var (
		order []cnf.Lit // budget literals in first-use order
		total int64
	)
	for _, soft := range inst.Soft {
		sum, okAdd := cnf.AddWeights(total, soft.Weight)
		if !okAdd {
			return Result{}, fmt.Errorf("maxsat: total soft weight overflows int64")
		}
		total = sum
		var budgetLit cnf.Lit
		if len(soft.Clause) == 1 {
			// Duplicate unit softs merge into one budget literal with
			// summed weight.
			budgetLit = soft.Clause[0].Neg()
		} else {
			r := cnf.Lit(s.AddVars(1))
			relaxed := append(append(cnf.Clause{}, soft.Clause...), r)
			if !s.AddClause(relaxed...) {
				return Result{Status: Infeasible}, nil
			}
			budgetLit = r
		}
		if _, seen := weightOf[budgetLit]; !seen {
			order = append(order, budgetLit)
		}
		//lint:ignore weightsafe merged unit-soft weights sum to the Validate-bounded total computed above
		weightOf[budgetLit] += soft.Weight
	}
	budgetLits := make([]cnf.Lit, len(order))
	weights := make([]int64, len(order))
	for i, l := range order {
		budgetLits[i] = l
		weights[i] = weightOf[l]
	}
	if err := s.SetBudget(budgetLits, weights, total); err != nil {
		return Result{}, fmt.Errorf("maxsat: install budget: %w", err)
	}

	// curBound mirrors the solver's budget bound exactly: both the
	// engine's own SetBudgetBound calls and the cooperative refresh
	// callback below update it in lockstep (the callback runs on this
	// goroutine, inside s.Solve, between restarts). Tracking it matters
	// for soundness: an UNSAT answer proves optimum ≥ curBound+1, and
	// when cooperation tightened curBound below the engine's own best,
	// that UNSAT no longer proves the engine's own model optimal.
	curBound := total
	if prog != nil {
		s.SetBudgetRefresh(func() (int64, bool) {
			global, ok := prog.BestKnown()
			if !ok {
				return 0, false
			}
			if nb := global - 1; nb < curBound {
				curBound = nb
				return nb, true
			}
			return 0, false
		})
	}

	var (
		best        []bool
		bestCost    int64 = -1
		interrupted       = func(err error) (Result, error) {
			if best == nil {
				return Result{Stats: stats}, err
			}
			// Anytime answer: the incumbent is feasible; the engine has
			// proven no lower bound of its own (that requires an UNSAT).
			return verifyResult(inst, Result{Status: Feasible, Model: best, Cost: bestCost, Stats: stats})
		}
	)
	for {
		if err := ctx.Err(); err != nil {
			return interrupted(fmt.Errorf("%w: %w", sat.ErrInterrupted, err))
		}
		var callStart time.Time
		if satSecs != nil {
			callStart = time.Now()
		}
		status, err := s.Solve(ctx)
		if satSecs != nil {
			satSecs.Observe(time.Since(callStart).Seconds())
		}
		addSATCall(&stats, s.ResetStats())
		if err != nil {
			return interrupted(err)
		}
		if status != sat.Sat {
			break
		}
		model := truncateModel(s.Model(), inst.NumVars)
		cost, err := inst.Cost(model)
		if err != nil {
			return Result{Stats: stats}, fmt.Errorf("maxsat: inconsistent model: %w", err)
		}
		if bestCost < 0 || cost < bestCost {
			best, bestCost = model, cost
			if prog != nil {
				prog.PublishModel(cost, model)
			}
		}
		// Model-improving search: each SAT answer tightens the upper
		// bound; the lower bound stays 0 until UNSAT proves optimality.
		stats.RecordBound(stats.SATCalls, 0, cost)
		if cost == 0 {
			break
		}
		// cost ≤ budget sum ≤ curBound, so this always strictly lowers
		// the bound even after a cooperative refresh.
		if err := s.SetBudgetBound(cost - 1); err != nil {
			return Result{Stats: stats}, fmt.Errorf("maxsat: tighten bound: %w", err)
		}
		curBound = cost - 1
	}
	if bestCost == 0 {
		stats.RecordBound(stats.SATCalls, 0, 0)
		return verifyResult(inst, Result{Status: Optimal, Model: best, Cost: 0, Stats: stats})
	}
	// UNSAT at bound curBound proves optimum ≥ curBound+1.
	if bestCost < 0 {
		if curBound == total {
			// The hard clauses alone are unsatisfiable: with the budget
			// at the full soft weight, every hard-feasible assignment
			// fits.
			return Result{Status: Infeasible, Stats: stats}, nil
		}
		// Cooperation tightened the bound before this engine found any
		// model: the instance may still be feasible (a sibling's model
		// caused the tightening), so only the lower bound is proven.
		lb := curBound + 1
		if prog != nil {
			prog.PublishLower(lb)
		}
		stats.RecordBound(stats.SATCalls, lb, -1)
		return Result{Status: Unknown, LowerBound: lb, Stats: stats}, nil
	}
	lb := curBound + 1
	if prog != nil {
		prog.PublishLower(lb)
	}
	if bestCost <= lb {
		stats.RecordBound(stats.SATCalls, bestCost, bestCost)
		return verifyResult(inst, Result{Status: Optimal, Model: best, Cost: bestCost, Stats: stats})
	}
	// A sibling's better incumbent drove the bound below this engine's
	// own best, so the UNSAT only proves optimum ∈ [lb, global best]:
	// the engine's model is feasible but not proven optimal.
	stats.RecordBound(stats.SATCalls, lb, bestCost)
	return verifyResult(inst, Result{Status: Feasible, Model: best, Cost: bestCost, LowerBound: lb, Stats: stats})
}
