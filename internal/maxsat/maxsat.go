// Package maxsat provides Weighted Partial MaxSAT solvers over
// cnf.WCNF instances — the oracle required by Step 4 of the paper's
// pipeline. Three engines with genuinely different algorithms are
// implemented, which is what makes the Step-5 parallel portfolio
// worthwhile:
//
//   - LinearSU: model-improving linear search SAT→UNSAT, using the CDCL
//     solver's native pseudo-Boolean budget propagator for the bound.
//   - WMSU1: core-guided Fu&Malik with weight splitting (WPM1).
//   - BranchBound: dedicated branch-and-bound over the instance
//     variables with unit propagation and falsified-weight bounding.
//
// All engines are deterministic for a fixed instance and configuration.
package maxsat

import (
	"context"
	"fmt"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// Status is the outcome of a MaxSAT solve.
type Status int

// Solve outcomes.
const (
	// Unknown means the search was interrupted before completion.
	Unknown Status = iota
	// Optimal means Model is a minimum-cost assignment.
	Optimal
	// Infeasible means the hard clauses are unsatisfiable.
	Infeasible
	// Feasible means Model satisfies the hard clauses but the search
	// ended (deadline, cancellation) before optimality was proven: Cost
	// is an upper bound on the optimum and LowerBound a proven lower
	// bound — the anytime answer.
	Feasible
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Infeasible:
		return "INFEASIBLE"
	case Feasible:
		return "FEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// Definitive reports whether the status settles the instance: either an
// optimal model or a proof that none exists. Feasible and Unknown are
// partial answers an anytime caller may still use.
func (s Status) Definitive() bool { return s == Optimal || s == Infeasible }

// Result is the outcome of a MaxSAT solve call.
type Result struct {
	Status Status
	// Model is an assignment indexed by DIMACS variable (index 0
	// unused): minimum-cost when Status is Optimal, the best incumbent
	// found when Status is Feasible.
	Model []bool
	// Cost is the total weight of falsified soft clauses under Model.
	Cost int64
	// LowerBound is the best proven lower bound on the optimum: equal
	// to Cost when Status is Optimal, possibly smaller when Feasible
	// (the optimality gap), and meaningful even without a model when
	// Status is Unknown (e.g. core-guided progress before the first
	// model).
	LowerBound int64
	// Stats reports the engine's work counters and cost-bound
	// trajectory. It is populated on every return path — including
	// errors and interruption — so the portfolio can report what each
	// member did even when it lost the race.
	Stats obs.SolverStats
}

// Gap returns the optimality gap Cost − LowerBound for results carrying
// a model (Optimal: always 0; Feasible: how far the incumbent may be
// from the optimum), and −1 otherwise.
func (r Result) Gap() int64 {
	switch r.Status {
	case Optimal, Feasible:
		return r.Cost - r.LowerBound
	default:
		return -1
	}
}

// Solver is a Weighted Partial MaxSAT engine. Implementations must not
// mutate the instance and must be safe to run concurrently with other
// Solver instances (each Solve call builds its own state).
type Solver interface {
	// Name identifies the engine (for portfolio reports).
	Name() string
	// Solve computes a minimum-cost model of the instance. When the
	// context expires mid-search, engines holding a feasible incumbent
	// return it with Status Feasible (and a nil error); engines with
	// nothing to report return an error wrapping sat.ErrInterrupted
	// (any proven lower bound still rides along in Result.LowerBound).
	Solve(ctx context.Context, inst *cnf.WCNF) (Result, error)
}

// Progress is the cooperative bound channel between an engine and a
// portfolio bound manager. Engines call PublishModel/PublishLower as
// they improve their incumbent or proven lower bound, and read
// BestKnown to tighten their own search against the global incumbent.
// Implementations must be safe for concurrent use by multiple engines.
type Progress interface {
	// PublishModel reports a feasible model and its (verified) cost.
	// The manager keeps it only if it improves the global incumbent.
	// The model must not be mutated after publication.
	PublishModel(cost int64, model []bool)
	// PublishLower reports a proven lower bound on the optimum.
	PublishLower(lb int64)
	// BestKnown returns the global incumbent cost; ok is false while no
	// model has been published.
	BestKnown() (cost int64, ok bool)
	// ProvenLower returns the best global proven lower bound (0 when
	// none has been published).
	ProvenLower() int64
}

// ProgressSolver is the optional extension interface for engines that
// cooperate through a shared bound manager. Solve is equivalent to
// SolveWithProgress with a nil Progress.
type ProgressSolver interface {
	Solver
	// SolveWithProgress runs the engine with a cooperative bound
	// channel; prog may be nil, in which case the engine runs
	// standalone exactly like Solve.
	SolveWithProgress(ctx context.Context, inst *cnf.WCNF, prog Progress) (Result, error)
}

// verifyResult recomputes the model cost against the original instance;
// engines call it before returning so that a disagreement between the
// engine's bookkeeping and the actual instance surfaces as an error
// instead of a wrong answer. It also normalises LowerBound: Optimal
// results get LowerBound = Cost, Feasible results are clamped to
// LowerBound ≤ Cost.
func verifyResult(inst *cnf.WCNF, res Result) (Result, error) {
	if res.Status != Optimal && res.Status != Feasible {
		return res, nil
	}
	cost, err := inst.Cost(res.Model)
	if err != nil {
		return Result{}, fmt.Errorf("maxsat: model verification failed: %w", err)
	}
	if cost != res.Cost {
		return Result{}, fmt.Errorf("maxsat: engine reported cost %d but model costs %d", res.Cost, cost)
	}
	if res.Status == Optimal {
		res.LowerBound = res.Cost
	} else if res.LowerBound > res.Cost {
		res.LowerBound = res.Cost
	}
	return res, nil
}

// Registry names of the live solver distributions engines record when
// an obs.Metrics travels in the context (obs.ContextWithMetrics).
const (
	// MetricSATCallSeconds is the per-SAT-call latency histogram.
	MetricSATCallSeconds = "solver.sat_call_seconds"
	// MetricLearntLength is the learnt conflict-clause length histogram.
	MetricLearntLength = "solver.learnt_clause_length"
	// MetricTrailDepth is the assignment-trail depth histogram, sampled
	// at solver heartbeats.
	MetricTrailDepth = "solver.trail_depth"
)

// liveTelemetry resolves the context's live-instrumentation plumbing
// once per engine run: it names the stats trajectory, installs solver
// telemetry (bus heartbeats and restart events plus hot-path
// histograms) on the SAT solver when one is given, and returns the
// per-SAT-call latency histogram — nil when metrics are disabled,
// which Histogram.Observe tolerates, but callers should skip the
// time.Now pair on nil to keep the disabled path free.
func liveTelemetry(ctx context.Context, stats *obs.SolverStats, engine string, s *sat.Solver) (satSecs *obs.Histogram) {
	if n := obs.EngineNameFromContext(ctx); n != "" {
		engine = n
	}
	stats.Start(engine)
	bus := obs.BusFromContext(ctx)
	m := obs.MetricsFromContext(ctx)
	if s != nil && (bus.Enabled() || m != nil) {
		s.SetTelemetry(&sat.Telemetry{
			Bus:        bus,
			Engine:     engine,
			LearntLen:  m.Histogram(MetricLearntLength, obs.LengthBuckets),
			TrailDepth: m.Histogram(MetricTrailDepth, obs.DepthBuckets),
		})
	}
	return m.Histogram(MetricSATCallSeconds, obs.DurationBuckets)
}

// addSATCall folds one SAT call's counter snapshot into the engine's
// running statistics.
func addSATCall(dst *obs.SolverStats, d sat.Stats) {
	dst.SATCalls++
	dst.Conflicts += d.Conflicts
	dst.Decisions += d.Decisions
	dst.Propagations += d.Propagations
	dst.Restarts += d.Restarts
	dst.LearntClauses += d.Learnt
	dst.DeletedClauses += d.Deleted
}

// truncateModel trims helper variables so the model covers exactly the
// instance's variables.
func truncateModel(model []bool, numVars int) []bool {
	if len(model) > numVars+1 {
		return model[:numVars+1]
	}
	out := make([]bool, numVars+1)
	copy(out, model)
	return out
}
