// Package maxsat provides Weighted Partial MaxSAT solvers over
// cnf.WCNF instances — the oracle required by Step 4 of the paper's
// pipeline. Three engines with genuinely different algorithms are
// implemented, which is what makes the Step-5 parallel portfolio
// worthwhile:
//
//   - LinearSU: model-improving linear search SAT→UNSAT, using the CDCL
//     solver's native pseudo-Boolean budget propagator for the bound.
//   - WMSU1: core-guided Fu&Malik with weight splitting (WPM1).
//   - BranchBound: dedicated branch-and-bound over the instance
//     variables with unit propagation and falsified-weight bounding.
//
// All engines are deterministic for a fixed instance and configuration.
package maxsat

import (
	"context"
	"fmt"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// Status is the outcome of a MaxSAT solve.
type Status int

// Solve outcomes.
const (
	// Unknown means the search was interrupted before completion.
	Unknown Status = iota
	// Optimal means Model is a minimum-cost assignment.
	Optimal
	// Infeasible means the hard clauses are unsatisfiable.
	Infeasible
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Infeasible:
		return "INFEASIBLE"
	default:
		return "UNKNOWN"
	}
}

// Result is the outcome of a MaxSAT solve call.
type Result struct {
	Status Status
	// Model is a minimum-cost assignment indexed by DIMACS variable
	// (index 0 unused); valid only when Status is Optimal.
	Model []bool
	// Cost is the total weight of falsified soft clauses under Model.
	Cost int64
	// Stats reports the engine's work counters and cost-bound
	// trajectory. It is populated on every return path — including
	// errors and interruption — so the portfolio can report what each
	// member did even when it lost the race.
	Stats obs.SolverStats
}

// Solver is a Weighted Partial MaxSAT engine. Implementations must not
// mutate the instance and must be safe to run concurrently with other
// Solver instances (each Solve call builds its own state).
type Solver interface {
	// Name identifies the engine (for portfolio reports).
	Name() string
	// Solve computes a minimum-cost model of the instance. The context
	// cancels long runs, in which case an error wrapping
	// sat.ErrInterrupted is returned.
	Solve(ctx context.Context, inst *cnf.WCNF) (Result, error)
}

// verifyResult recomputes the model cost against the original instance;
// engines call it before returning so that a disagreement between the
// engine's bookkeeping and the actual instance surfaces as an error
// instead of a wrong answer.
func verifyResult(inst *cnf.WCNF, res Result) (Result, error) {
	if res.Status != Optimal {
		return res, nil
	}
	cost, err := inst.Cost(res.Model)
	if err != nil {
		return Result{}, fmt.Errorf("maxsat: model verification failed: %w", err)
	}
	if cost != res.Cost {
		return Result{}, fmt.Errorf("maxsat: engine reported cost %d but model costs %d", res.Cost, cost)
	}
	return res, nil
}

// addSATCall folds one SAT call's counter snapshot into the engine's
// running statistics.
func addSATCall(dst *obs.SolverStats, d sat.Stats) {
	dst.SATCalls++
	dst.Conflicts += d.Conflicts
	dst.Decisions += d.Decisions
	dst.Propagations += d.Propagations
	dst.Restarts += d.Restarts
	dst.LearntClauses += d.Learnt
	dst.DeletedClauses += d.Deleted
}

// truncateModel trims helper variables so the model covers exactly the
// instance's variables.
func truncateModel(model []bool, numVars int) []bool {
	if len(model) > numVars+1 {
		return model[:numVars+1]
	}
	out := make([]bool, numVars+1)
	copy(out, model)
	return out
}
