package maxsat

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/sat"
)

// cancelProgress is a Progress that cancels a context on the first
// publication of the selected kind — a deterministic way to expire a
// deadline "mid-search", right after the engine finds its first
// incumbent (or proves its first lower bound).
type cancelProgress struct {
	cancel   context.CancelFunc
	onModel  bool
	onLower  bool
	models   int
	lowers   int
	lastCost int64
	lastLB   int64
}

func (p *cancelProgress) PublishModel(cost int64, model []bool) {
	p.models++
	p.lastCost = cost
	if p.onModel {
		p.cancel()
	}
}

func (p *cancelProgress) PublishLower(lb int64) {
	p.lowers++
	p.lastLB = lb
	if p.onLower {
		p.cancel()
	}
}

func (p *cancelProgress) BestKnown() (int64, bool) { return 0, false }
func (p *cancelProgress) ProvenLower() int64       { return 0 }

// vertexCoverWCNF encodes minimum vertex cover of a cycle C_n as WPMS:
// hard (u ∨ v) per edge, soft (¬v) of weight 1 per vertex. For odd n
// the optimum is (n+1)/2.
func vertexCoverWCNF(n int) *cnf.WCNF {
	var w cnf.WCNF
	w.NumVars = n
	for v := 1; v <= n; v++ {
		u := v%n + 1
		w.AddHard(cnf.Lit(v), cnf.Lit(u))
	}
	for v := 1; v <= n; v++ {
		w.AddSoft(1, -cnf.Lit(v))
	}
	return &w
}

// independentEdgesWCNF is n disjoint edges: hard (x_{2i−1} ∨ x_{2i}),
// soft (¬v) of weight 1 per vertex. Optimum n, but the branch-and-bound
// search tree below the first complete assignment is huge — ideal for
// interrupting mid-search.
func independentEdgesWCNF(n int) *cnf.WCNF {
	var w cnf.WCNF
	w.NumVars = 2 * n
	for i := 1; i <= n; i++ {
		w.AddHard(cnf.Lit(2*i-1), cnf.Lit(2*i))
	}
	for v := 1; v <= 2*n; v++ {
		w.AddSoft(1, -cnf.Lit(v))
	}
	return &w
}

// requireSoundFeasible asserts the anytime contract on a Feasible
// result: verified model, consistent cost, bounded gap.
func requireSoundFeasible(t *testing.T, inst *cnf.WCNF, res Result, optimum int64) {
	t.Helper()
	if res.Status != Feasible {
		t.Fatalf("status %v, want FEASIBLE", res.Status)
	}
	cost, err := inst.Cost(res.Model)
	if err != nil {
		t.Fatalf("incumbent model infeasible: %v", err)
	}
	if cost != res.Cost {
		t.Fatalf("reported cost %d, model costs %d", res.Cost, cost)
	}
	if res.Cost < optimum {
		t.Fatalf("anytime cost %d beats the optimum %d", res.Cost, optimum)
	}
	if res.LowerBound > optimum {
		t.Fatalf("lower bound %d exceeds the optimum %d", res.LowerBound, optimum)
	}
	if gap := res.Gap(); gap < 0 || gap != res.Cost-res.LowerBound {
		t.Fatalf("gap %d inconsistent with cost %d − lb %d", gap, res.Cost, res.LowerBound)
	}
}

// TestLinearSUKeepsIncumbentOnInterrupt is the regression test for the
// anytime bug: interrupting LinearSU after it found a model must return
// that model as FEASIBLE, not discard it behind an error.
func TestLinearSUKeepsIncumbentOnInterrupt(t *testing.T) {
	inst := vertexCoverWCNF(5) // optimum 3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelProgress{cancel: cancel, onModel: true}
	res, err := (&LinearSU{}).SolveWithProgress(ctx, inst, prog)
	if err != nil {
		t.Fatalf("interrupted solve with incumbent returned error: %v", err)
	}
	if prog.models == 0 {
		t.Fatal("engine never published a model")
	}
	requireSoundFeasible(t, inst, res, 3)
}

// TestBranchBoundKeepsIncumbentOnInterrupt: same regression for the
// branch-and-bound engine, whose first complete assignment arrives long
// before the search tree is exhausted.
func TestBranchBoundKeepsIncumbentOnInterrupt(t *testing.T) {
	inst := independentEdgesWCNF(10) // optimum 10
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelProgress{cancel: cancel, onModel: true}
	res, err := (&BranchBound{}).SolveWithProgress(ctx, inst, prog)
	if err != nil {
		t.Fatalf("interrupted solve with incumbent returned error: %v", err)
	}
	if prog.models == 0 {
		t.Fatal("engine never published a model")
	}
	requireSoundFeasible(t, inst, res, 10)
}

// TestWMSU1ReportsLowerBoundOnInterrupt: interrupting WMSU1 before it
// holds any model must still surface the accumulated core payments as
// the proven lower bound, riding along with the interruption error.
func TestWMSU1ReportsLowerBoundOnInterrupt(t *testing.T) {
	inst := vertexCoverWCNF(5) // optimum 3: at least three cores
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelProgress{cancel: cancel, onLower: true}
	res, err := (&WMSU1{}).SolveWithProgress(ctx, inst, prog)
	if err == nil {
		t.Fatalf("want interruption error without a model, got status %v", res.Status)
	}
	if !errors.Is(err, sat.ErrInterrupted) {
		t.Fatalf("error does not wrap sat.ErrInterrupted: %v", err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want UNKNOWN", res.Status)
	}
	if res.LowerBound < 1 || res.LowerBound > 3 {
		t.Fatalf("lower bound %d outside (0, optimum]", res.LowerBound)
	}
	if res.LowerBound != prog.lastLB {
		t.Fatalf("returned lower bound %d differs from published %d", res.LowerBound, prog.lastLB)
	}
}

// TestWMSU1StratifiedKeepsIncumbentOnInterrupt: a stratified run's
// intermediate stratum model is a feasible incumbent and must survive
// interruption as a FEASIBLE answer.
func TestWMSU1StratifiedKeepsIncumbentOnInterrupt(t *testing.T) {
	// Hard (1 ∨ 2) with softs ¬1 (weight 100) and ¬2 (weight 1): the
	// first stratum enforces only ¬1, whose model costs 1 — the anytime
	// incumbent (and, here, the optimum, though unproven at interrupt).
	var inst cnf.WCNF
	inst.NumVars = 2
	inst.AddHard(1, 2)
	inst.AddSoft(100, -1)
	inst.AddSoft(1, -2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prog := &cancelProgress{cancel: cancel, onModel: true}
	res, err := (&WMSU1{Stratified: true}).SolveWithProgress(ctx, &inst, prog)
	if err != nil {
		t.Fatalf("interrupted solve with incumbent returned error: %v", err)
	}
	if prog.models == 0 {
		t.Fatal("engine never published an intermediate model")
	}
	requireSoundFeasible(t, &inst, res, 1)
}

// TestEnginesDeadlineMidSearch runs every engine against a real (not
// synthetic) deadline on an instance too hard to finish, and accepts
// only the two sound outcomes: a verified FEASIBLE incumbent or an
// interruption error carrying at most the optimum as lower bound.
func TestEnginesDeadlineMidSearch(t *testing.T) {
	inst := vertexCoverWCNF(301) // optimum 151
	for _, engine := range engines() {
		t.Run(engine.Name(), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			res, err := engine.Solve(ctx, inst)
			switch {
			case err == nil && res.Status == Feasible:
				requireSoundFeasible(t, inst, res, 151)
			case err == nil && res.Status == Optimal:
				// The engine beat the deadline; nothing to assert beyond
				// the optimum itself.
				if res.Cost != 151 {
					t.Fatalf("optimal cost %d, want 151", res.Cost)
				}
			case err != nil:
				if !errors.Is(err, sat.ErrInterrupted) {
					t.Fatalf("unexpected error: %v", err)
				}
				if res.LowerBound > 151 {
					t.Fatalf("lower bound %d exceeds the optimum 151", res.LowerBound)
				}
			default:
				t.Fatalf("unexpected outcome: status %v, err %v", res.Status, err)
			}
		})
	}
}
