package maxsat

import (
	"context"
	"testing"

	"mpmcs4fta/internal/cnf"
)

// statsInstance is small but nontrivial: optimum cost 5 (falsify x1
// and x2, keep x3).
func statsInstance() *cnf.WCNF {
	var inst cnf.WCNF
	inst.AddHard(1, 3)
	inst.AddHard(2, 3)
	inst.AddSoft(2, -1)
	inst.AddSoft(3, -2)
	inst.AddSoft(10, -3)
	return &inst
}

func TestEngineStatsPopulated(t *testing.T) {
	engines := []Solver{&LinearSU{}, &WMSU1{}, &WMSU1{Stratified: true}, &BranchBound{}}
	for _, e := range engines {
		t.Run(e.Name(), func(t *testing.T) {
			res, err := e.Solve(context.Background(), statsInstance())
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != Optimal || res.Cost != 5 {
				t.Fatalf("got %v cost %d", res.Status, res.Cost)
			}
			st := res.Stats
			if _, isBB := e.(*BranchBound); isBB {
				if st.Decisions == 0 {
					t.Error("branch-and-bound recorded no decisions")
				}
			} else {
				if st.SATCalls == 0 {
					t.Error("SAT-backed engine recorded no SAT calls")
				}
				if st.Propagations == 0 {
					t.Error("no propagations recorded")
				}
			}
			if len(st.Bounds) == 0 {
				t.Fatal("no bound trajectory recorded")
			}
			last := st.Bounds[len(st.Bounds)-1]
			if last.Lower != res.Cost || last.Upper != res.Cost {
				t.Errorf("final bound step %+v, want lower=upper=%d", last, res.Cost)
			}
			// Lower bounds never decrease; upper bounds never increase
			// (ignoring the -1 "no model yet" marker).
			var lower int64
			upper := int64(-1)
			for _, b := range st.Bounds {
				if b.Lower < lower {
					t.Errorf("lower bound regressed: %+v", st.Bounds)
				}
				lower = b.Lower
				if b.Upper >= 0 {
					if upper >= 0 && b.Upper > upper {
						t.Errorf("upper bound regressed: %+v", st.Bounds)
					}
					upper = b.Upper
				}
			}
		})
	}
}

func TestEngineStatsOnInterruption(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range []Solver{&LinearSU{}, &WMSU1{}} {
		res, err := e.Solve(ctx, statsInstance())
		if err == nil {
			t.Fatalf("%s: expected interruption error", e.Name())
		}
		// Counters up to the interruption must still be reported (the
		// portfolio shows losers' work); with an already-cancelled
		// context the counts are simply zero, which is fine — the
		// field must just be safe to read.
		_ = res.Stats
	}
}

func TestEngineStatsInfeasible(t *testing.T) {
	var inst cnf.WCNF
	inst.AddHard(1)
	inst.AddHard(-1)
	inst.AddSoft(1, 2)
	for _, e := range []Solver{&LinearSU{}, &WMSU1{}, &BranchBound{}} {
		res, err := e.Solve(context.Background(), &inst)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Infeasible {
			t.Errorf("%s: %v", e.Name(), res.Status)
		}
		if len(res.Stats.Bounds) != 0 {
			t.Errorf("%s: infeasible run has bound trajectory %+v", e.Name(), res.Stats.Bounds)
		}
	}
}
