package maxsat

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/cnf"
)

// genInstance is a quick.Generator for small random WPMS instances.
type genInstance struct {
	W *cnf.WCNF
}

// Generate implements quick.Generator.
func (genInstance) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genInstance{W: randomWCNF(r, 3+r.Intn(6))})
}

func maxsatQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(149))}
}

// TestQuickEnginesAgree: all engines report the same optimal cost (or
// all report infeasible) on every instance.
func TestQuickEnginesAgree(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance) bool {
		var (
			first    Result
			firstSet bool
		)
		for _, engine := range engines() {
			res, err := engine.Solve(ctx, g.W)
			if err != nil {
				return false
			}
			if !firstSet {
				first, firstSet = res, true
				continue
			}
			if res.Status != first.Status {
				return false
			}
			if res.Status == Optimal && res.Cost != first.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, maxsatQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickOptimumIsFeasibleAndUnbeatable: the reported model satisfies
// the hard clauses with the reported cost, and brute force confirms no
// cheaper model exists.
func TestQuickOptimumIsFeasibleAndUnbeatable(t *testing.T) {
	ctx := context.Background()
	engine := &WMSU1{}
	property := func(g genInstance) bool {
		res, err := engine.Solve(ctx, g.W)
		if err != nil {
			return false
		}
		want := bruteForceOptimum(g.W)
		if want < 0 {
			return res.Status == Infeasible
		}
		if res.Status != Optimal || res.Cost != want {
			return false
		}
		cost, err := g.W.Cost(res.Model)
		return err == nil && cost == res.Cost
	}
	if err := quick.Check(property, maxsatQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickAddingSoftNeverLowersCost: adding a soft clause can only
// keep or raise the optimum (monotonicity of the objective).
func TestQuickAddingSoftNeverLowersCost(t *testing.T) {
	ctx := context.Background()
	engine := &BranchBound{}
	property := func(g genInstance, litRaw int8, weight uint8) bool {
		base, err := engine.Solve(ctx, g.W)
		if err != nil {
			return false
		}
		if base.Status != Optimal {
			return true
		}
		v := int(litRaw)
		if v < 0 {
			v = -v
		}
		v = v%g.W.NumVars + 1
		l := cnf.Lit(v)
		if litRaw < 0 {
			l = -l
		}
		extended := g.W.Clone()
		extended.AddSoft(int64(weight)+1, l)
		after, err := engine.Solve(ctx, extended)
		if err != nil {
			return false
		}
		return after.Status == Optimal && after.Cost >= base.Cost
	}
	if err := quick.Check(property, maxsatQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickScalingWeightsScalesCost: multiplying every weight by a
// constant multiplies the optimum by the same constant.
func TestQuickScalingWeightsScalesCost(t *testing.T) {
	ctx := context.Background()
	engine := &LinearSU{}
	property := func(g genInstance, factorRaw uint8) bool {
		factor := int64(factorRaw%7) + 2
		base, err := engine.Solve(ctx, g.W)
		if err != nil {
			return false
		}
		if base.Status != Optimal {
			return true
		}
		scaled := g.W.Clone()
		for i := range scaled.Soft {
			scaled.Soft[i].Weight *= factor
		}
		after, err := engine.Solve(ctx, scaled)
		if err != nil {
			return false
		}
		return after.Status == Optimal && after.Cost == base.Cost*factor
	}
	if err := quick.Check(property, maxsatQuickConfig()); err != nil {
		t.Error(err)
	}
}
