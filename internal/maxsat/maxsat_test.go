package maxsat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/sat"
)

func engines() []Solver {
	return []Solver{
		&LinearSU{},
		&WMSU1{},
		&WMSU1{Stratified: true},
		&BranchBound{},
	}
}

// bruteForceOptimum computes the optimal cost by enumeration; -1 when
// the hard clauses are unsatisfiable.
func bruteForceOptimum(inst *cnf.WCNF) int64 {
	hard := cnf.Formula{NumVars: inst.NumVars, Clauses: inst.Hard}
	best := int64(-1)
	assign := make([]bool, inst.NumVars+1)
	for mask := 0; mask < 1<<uint(inst.NumVars); mask++ {
		for v := 1; v <= inst.NumVars; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		ok, _ := hard.Eval(assign)
		if !ok {
			continue
		}
		cost, _ := inst.Cost(assign)
		if best < 0 || cost < best {
			best = cost
		}
	}
	return best
}

func randomWCNF(rng *rand.Rand, numVars int) *cnf.WCNF {
	var w cnf.WCNF
	w.NumVars = numVars
	numHard := rng.Intn(2 * numVars)
	for i := 0; i < numHard; i++ {
		k := 2 + rng.Intn(2)
		clause := make([]cnf.Lit, k)
		for j := range clause {
			l := cnf.Lit(rng.Intn(numVars) + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			clause[j] = l
		}
		w.AddHard(clause...)
	}
	numSoft := 1 + rng.Intn(2*numVars)
	for i := 0; i < numSoft; i++ {
		k := 1 + rng.Intn(2)
		clause := make([]cnf.Lit, k)
		for j := range clause {
			l := cnf.Lit(rng.Intn(numVars) + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			clause[j] = l
		}
		w.AddSoft(int64(1+rng.Intn(100)), clause...)
	}
	return &w
}

func TestEnginesAgainstBruteForce(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		inst := randomWCNF(rng, 4+rng.Intn(5))
		want := bruteForceOptimum(inst)
		for _, engine := range engines() {
			res, err := engine.Solve(ctx, inst)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, engine.Name(), err)
			}
			if want < 0 {
				if res.Status != Infeasible {
					t.Fatalf("trial %d %s: got %v, want INFEASIBLE", trial, engine.Name(), res.Status)
				}
				continue
			}
			if res.Status != Optimal {
				t.Fatalf("trial %d %s: got %v, want OPTIMAL", trial, engine.Name(), res.Status)
			}
			if res.Cost != want {
				t.Fatalf("trial %d %s: cost %d, want %d", trial, engine.Name(), res.Cost, want)
			}
			cost, err := inst.Cost(res.Model)
			if err != nil || cost != want {
				t.Fatalf("trial %d %s: model re-check failed: cost=%d err=%v", trial, engine.Name(), cost, err)
			}
		}
	}
}

func TestEnginesUnitSofts(t *testing.T) {
	// The MPMCS shape: hard structure + unit softs over every variable.
	ctx := context.Background()
	var inst cnf.WCNF
	// Hard: (1 ∧ 2) ∨ 3 encoded directly: (1∨3)(2∨3).
	inst.AddHard(1, 3)
	inst.AddHard(2, 3)
	// Prefer all variables false; weights favour falsifying 3 alone.
	inst.AddSoft(2, -1)
	inst.AddSoft(3, -2)
	inst.AddSoft(10, -3)
	// Optimal: set 1 and 2 (cost 5) rather than 3 (cost 10).
	for _, engine := range engines() {
		res, err := engine.Solve(ctx, &inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Status != Optimal || res.Cost != 5 {
			t.Errorf("%s: status %v cost %d, want OPTIMAL 5", engine.Name(), res.Status, res.Cost)
		}
		if !res.Model[1] || !res.Model[2] || res.Model[3] {
			t.Errorf("%s: model %v, want {1,2}", engine.Name(), res.Model)
		}
	}
}

func TestEnginesInfeasible(t *testing.T) {
	ctx := context.Background()
	var inst cnf.WCNF
	inst.AddHard(1)
	inst.AddHard(-1)
	inst.AddSoft(1, 2)
	for _, engine := range engines() {
		res, err := engine.Solve(ctx, &inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Status != Infeasible {
			t.Errorf("%s: got %v, want INFEASIBLE", engine.Name(), res.Status)
		}
	}
}

func TestEnginesNoSofts(t *testing.T) {
	ctx := context.Background()
	var inst cnf.WCNF
	inst.AddHard(1, 2)
	for _, engine := range engines() {
		res, err := engine.Solve(ctx, &inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Status != Optimal || res.Cost != 0 {
			t.Errorf("%s: status %v cost %d, want OPTIMAL 0", engine.Name(), res.Status, res.Cost)
		}
	}
}

func TestEnginesAllSoftsSatisfiable(t *testing.T) {
	ctx := context.Background()
	var inst cnf.WCNF
	inst.AddHard(1, 2)
	inst.AddSoft(3, 1)
	inst.AddSoft(4, 2)
	for _, engine := range engines() {
		res, err := engine.Solve(ctx, &inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Cost != 0 {
			t.Errorf("%s: cost %d, want 0", engine.Name(), res.Cost)
		}
	}
}

func TestEnginesNonUnitSofts(t *testing.T) {
	ctx := context.Background()
	var inst cnf.WCNF
	inst.AddHard(-1, -2)  // not both
	inst.AddSoft(7, 1, 2) // want at least one
	inst.AddSoft(3, 1)
	inst.AddSoft(3, 2)
	// Best: set exactly one of {1,2}: falsifies one weight-3 soft.
	for _, engine := range engines() {
		res, err := engine.Solve(ctx, &inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Status != Optimal || res.Cost != 3 {
			t.Errorf("%s: status %v cost %d, want OPTIMAL 3", engine.Name(), res.Status, res.Cost)
		}
	}
}

func TestEnginesLargeWeights(t *testing.T) {
	// Weights in the range produced by the −log transform with scale
	// 1e7 must not overflow or slow down any engine.
	ctx := context.Background()
	var inst cnf.WCNF
	inst.AddHard(1, 2, 3)
	inst.AddSoft(16094379, -1)
	inst.AddSoft(23025850, -2)
	inst.AddSoft(69077552, -3)
	for _, engine := range engines() {
		res, err := engine.Solve(ctx, &inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Cost != 16094379 {
			t.Errorf("%s: cost %d, want 16094379", engine.Name(), res.Cost)
		}
		if !res.Model[1] || res.Model[2] || res.Model[3] {
			t.Errorf("%s: model %v, want {1}", engine.Name(), res.Model)
		}
	}
}

func TestEnginesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A moderately hard instance so every engine hits its context check.
	rng := rand.New(rand.NewSource(59))
	var inst cnf.WCNF
	numVars := 60
	inst.NumVars = numVars
	for i := 0; i < 240; i++ {
		a := cnf.Lit(rng.Intn(numVars) + 1)
		b := cnf.Lit(rng.Intn(numVars) + 1)
		c := cnf.Lit(rng.Intn(numVars) + 1)
		if rng.Intn(2) == 0 {
			a = -a
		}
		if rng.Intn(2) == 0 {
			b = -b
		}
		if rng.Intn(2) == 0 {
			c = -c
		}
		inst.AddHard(a, b, c)
	}
	for v := 1; v <= numVars; v++ {
		inst.AddSoft(int64(1+rng.Intn(50)), -cnf.Lit(v))
	}
	for _, engine := range engines() {
		if _, err := engine.Solve(ctx, &inst); err == nil {
			t.Errorf("%s: cancelled solve returned no error", engine.Name())
		}
	}
}

func TestEnginesRejectInvalidInstance(t *testing.T) {
	ctx := context.Background()
	inst := &cnf.WCNF{NumVars: 1, Soft: []cnf.SoftClause{{Clause: cnf.Clause{1}, Weight: 0}}}
	for _, engine := range engines() {
		if _, err := engine.Solve(ctx, inst); err == nil {
			t.Errorf("%s: invalid instance accepted", engine.Name())
		}
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range engines() {
		if e.Name() == "" {
			t.Error("empty engine name")
		}
		if names[e.Name()] {
			t.Errorf("duplicate engine name %s", e.Name())
		}
		names[e.Name()] = true
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "OPTIMAL" || Infeasible.String() != "INFEASIBLE" || Unknown.String() != "UNKNOWN" {
		t.Error("Status.String mismatch")
	}
}

func TestEnginesWithDiverseSatOptions(t *testing.T) {
	// Engines built with unusual SAT options still find the optimum.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(61))
	inst := randomWCNF(rng, 7)
	want := bruteForceOptimum(inst)
	if want < 0 {
		t.Skip("instance infeasible")
	}
	diverse := []Solver{
		&LinearSU{SatOptions: sat.Options{VarDecay: 0.8, RestartBase: 20}},
		&LinearSU{SatOptions: sat.Options{InitialPhase: true}},
		&WMSU1{SatOptions: sat.Options{RandomSeed: 7}},
	}
	for _, engine := range diverse {
		res, err := engine.Solve(ctx, inst)
		if err != nil {
			t.Fatalf("%s: %v", engine.Name(), err)
		}
		if res.Cost != want {
			t.Errorf("%s: cost %d, want %d", engine.Name(), res.Cost, want)
		}
	}
}
