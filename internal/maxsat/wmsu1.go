package maxsat

import (
	"context"
	"fmt"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// WMSU1 is the core-guided Fu&Malik engine generalised to weights
// (WPM1, Ansótegui-Bonet-Levy): solve under assumptions that all soft
// clauses hold; on UNSAT, extract a core, pay its minimum weight,
// relax each core clause with a fresh variable (splitting clauses whose
// weight exceeds the minimum), add an exactly-one constraint over the
// fresh variables, and iterate until SAT. The accumulated payments are
// the optimal cost.
//
// The engine shines exactly where the MPMCS problem lives: optima that
// falsify few soft clauses, found after a handful of small cores.
//
// Run cooperatively (SolveWithProgress), the engine publishes its
// accumulated core payments as a global lower bound — each WPM1
// transformation preserves the instance's optimum minus the payment,
// so the running total is a sound lower bound at every step — and the
// feasible models it finds at intermediate strata as incumbents.
type WMSU1 struct {
	// SatOptions configures the underlying CDCL solver.
	SatOptions sat.Options
	// Stratified enables weight stratification: soft clauses are
	// activated stratum by stratum from the heaviest weight down, so
	// early cores concentrate on the literals that matter most — often
	// far fewer and smaller cores on instances with wide weight ranges
	// like the −log transform produces.
	Stratified bool
}

var _ ProgressSolver = (*WMSU1)(nil)

// Name implements Solver.
func (w *WMSU1) Name() string {
	if w.Stratified {
		return "wmsu1-strat"
	}
	return "wmsu1"
}

// wmsu1Soft is a live soft clause: its accumulated literals (original
// clause plus relaxation variables) and the selector that activates it.
type wmsu1Soft struct {
	lits     cnf.Clause // original literals plus relaxation variables
	weight   int64
	selector cnf.Lit // assuming ¬selector enforces the clause
}

// Solve implements Solver.
func (w *WMSU1) Solve(ctx context.Context, inst *cnf.WCNF) (Result, error) {
	return w.SolveWithProgress(ctx, inst, nil)
}

// SolveWithProgress implements ProgressSolver.
func (w *WMSU1) SolveWithProgress(ctx context.Context, inst *cnf.WCNF, prog Progress) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, fmt.Errorf("maxsat: %w", err)
	}
	s := sat.New(inst.NumVars, w.SatOptions)
	for _, c := range inst.Hard {
		if !s.AddClause(c...) {
			return Result{Status: Infeasible}, nil
		}
	}

	softs := make([]wmsu1Soft, 0, len(inst.Soft))
	for _, soft := range inst.Soft {
		sel := cnf.Lit(s.AddVars(1))
		clause := append(append(cnf.Clause{}, soft.Clause...), sel)
		if !s.AddClause(clause...) {
			return Result{Status: Infeasible}, nil
		}
		softs = append(softs, wmsu1Soft{
			lits:     append(cnf.Clause{}, soft.Clause...),
			weight:   soft.Weight,
			selector: sel,
		})
	}

	// threshold selects the active stratum: only softs with weight ≥
	// threshold are enforced via assumptions. Without stratification
	// every soft is active from the start.
	var threshold int64 = 1
	if w.Stratified {
		for _, soft := range softs {
			if soft.weight > threshold {
				threshold = soft.weight
			}
		}
	}

	var (
		cost     int64 // accumulated core payments: a proven lower bound
		best     []bool
		bestCost int64 = -1
		stats    obs.SolverStats
	)
	satSecs := liveTelemetry(ctx, &stats, w.Name(), s)
	// interrupted preserves whatever the engine has proven so far: the
	// stratified loop's intermediate models become a Feasible answer,
	// and the accumulated core payments ride along as the lower bound
	// even when no model exists yet.
	interrupted := func(err error) (Result, error) {
		if best != nil {
			return verifyResult(inst, Result{Status: Feasible, Model: best, Cost: bestCost, LowerBound: cost, Stats: stats})
		}
		return Result{LowerBound: cost, Stats: stats}, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return interrupted(fmt.Errorf("%w: %w", sat.ErrInterrupted, err))
		}
		assumps := make([]cnf.Lit, 0, len(softs))
		selToIdx := make(map[cnf.Lit]int, len(softs))
		for i, soft := range softs {
			if soft.weight < threshold {
				continue
			}
			assumps = append(assumps, soft.selector.Neg())
			selToIdx[soft.selector] = i
		}
		var callStart time.Time
		if satSecs != nil {
			callStart = time.Now()
		}
		status, err := s.Solve(ctx, assumps...)
		if satSecs != nil {
			satSecs.Observe(time.Since(callStart).Seconds())
		}
		addSATCall(&stats, s.ResetStats())
		if err != nil {
			return interrupted(err)
		}
		if status == sat.Sat {
			// Lower the threshold geometrically (but never past the
			// heaviest still-inactive weight, so progress is
			// guaranteed); −log weights are almost all distinct, so
			// stepping stratum-by-stratum would cost one SAT call per
			// weight. When nothing is inactive the model is optimal.
			var maxInactive int64
			for _, soft := range softs {
				if soft.weight < threshold && soft.weight > maxInactive {
					maxInactive = soft.weight
				}
			}
			model := truncateModel(s.Model(), inst.NumVars)
			if maxInactive == 0 {
				stats.RecordBound(stats.SATCalls, cost, cost)
				return verifyResult(inst, Result{Status: Optimal, Model: model, Cost: cost, Stats: stats})
			}
			// Intermediate stratum model: it satisfies the hard clauses,
			// so its true cost against the original instance is a valid
			// upper bound — the engine's anytime incumbent.
			if ub, err := inst.Cost(model); err == nil && (bestCost < 0 || ub < bestCost) {
				best, bestCost = model, ub
				stats.RecordBound(stats.SATCalls, cost, ub)
				if prog != nil {
					prog.PublishModel(ub, model)
				}
			}
			threshold = threshold / 8
			if threshold > maxInactive {
				threshold = maxInactive
			}
			if threshold < 1 {
				threshold = 1
			}
			continue
		}

		core := s.Core() // literals of the form ¬selector
		coreIdx := make([]int, 0, len(core))
		for _, l := range core {
			if idx, ok := selToIdx[l.Neg()]; ok {
				coreIdx = append(coreIdx, idx)
			}
		}
		if len(coreIdx) == 0 {
			// The hard clauses alone are unsatisfiable.
			return Result{Status: Infeasible, Stats: stats}, nil
		}

		wmin := softs[coreIdx[0]].weight
		for _, idx := range coreIdx[1:] {
			if softs[idx].weight < wmin {
				wmin = softs[idx].weight
			}
		}
		newCost, okAdd := cnf.AddWeights(cost, wmin)
		if !okAdd {
			return Result{Stats: stats}, fmt.Errorf("maxsat: core-payment lower bound overflows int64")
		}
		cost = newCost
		// Core-guided search: each core payment raises the proven lower
		// bound; the upper bound is the best intermediate model if any.
		stats.RecordBound(stats.SATCalls, cost, bestCost)
		if prog != nil {
			prog.PublishLower(cost)
		}

		// Relax every core clause: C ∨ r ∨ sel' replaces it at weight
		// wmin; the weight remainder keeps the existing clause and
		// selector. Exactly one of the fresh r variables must be true.
		inCore := make(map[int]bool, len(coreIdx))
		for _, idx := range coreIdx {
			inCore[idx] = true
		}
		next := make([]wmsu1Soft, 0, len(softs)+len(coreIdx))
		relaxVars := make([]cnf.Lit, 0, len(coreIdx))
		for idx, soft := range softs {
			if !inCore[idx] {
				next = append(next, soft)
				continue
			}
			r := cnf.Lit(s.AddVars(1))
			sel := cnf.Lit(s.AddVars(1))
			relaxVars = append(relaxVars, r)
			relaxed := append(append(cnf.Clause{}, soft.lits...), r)
			withSel := append(append(cnf.Clause{}, relaxed...), sel)
			if !s.AddClause(withSel...) {
				return Result{Status: Infeasible}, nil
			}
			next = append(next, wmsu1Soft{lits: relaxed, weight: wmin, selector: sel})
			if soft.weight > wmin {
				// Weight split: the original clause and selector live
				// on with the remaining weight.
				next = append(next, wmsu1Soft{lits: soft.lits, weight: soft.weight - wmin, selector: soft.selector})
			}
		}
		softs = next
		addExactlyOne(s, relaxVars)
	}
}

// addExactlyOne encodes Σ lits = 1 with an at-least-one clause and a
// sequential (ladder) at-most-one encoding: 3(n-1) clauses, n-1 aux
// variables.
func addExactlyOne(s *sat.Solver, lits []cnf.Lit) {
	s.AddClause(lits...)
	if len(lits) <= 1 {
		return
	}
	// Ladder: a_i means "some lit among lits[0..i] is true".
	prev := lits[0]
	for i := 1; i < len(lits); i++ {
		if i < len(lits)-1 {
			a := cnf.Lit(s.AddVars(1))
			s.AddClause(prev.Neg(), a)             // carry: prev true → a true
			s.AddClause(lits[i].Neg(), a)          // current true → a true
			s.AddClause(prev.Neg(), lits[i].Neg()) // prev and current not both
			prev = a
			continue
		}
		s.AddClause(prev.Neg(), lits[i].Neg())
	}
}
