package maxsat

import (
	"context"
	"fmt"
	"sort"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sat"
)

// BranchBound is a dedicated branch-and-bound Weighted Partial MaxSAT
// engine: depth-first search over the instance variables with unit
// propagation on the hard clauses and pruning by the weight of soft
// clauses already fully falsified. It needs no SAT oracle at all, which
// makes it a usefully different portfolio member — strong on small and
// highly-constrained instances, weak on large under-constrained ones.
//
// Run cooperatively (SolveWithProgress), the engine also prunes against
// the global incumbent published by sibling engines and publishes its
// own improving models.
type BranchBound struct{}

var _ ProgressSolver = (*BranchBound)(nil)

// Name implements Solver.
func (b *BranchBound) Name() string { return "branch-bound" }

type bbState struct {
	inst     *cnf.WCNF
	assign   []int8 // 0 unassigned, 1 true, -1 false; by variable
	order    []int  // variable branching order
	best     []bool
	bestCost int64
	steps    int64
	stats    obs.SolverStats

	prog     Progress
	bus      *obs.EventBus // live heartbeats; nil when disabled
	lastBeat time.Time
	globalUB int64 // cached sibling incumbent; -1 when none
	// minPrune is the smallest bound any prune ever used. On
	// completion the search has proven optimum ≥ min(bestCost,
	// minPrune): when a sibling's incumbent (below our own best)
	// pruned a branch, that branch may hide assignments cheaper than
	// our best — but none cheaper than the bound used. -1 = no prune.
	minPrune int64
}

// Solve implements Solver.
func (b *BranchBound) Solve(ctx context.Context, inst *cnf.WCNF) (Result, error) {
	return b.SolveWithProgress(ctx, inst, nil)
}

// SolveWithProgress implements ProgressSolver.
func (b *BranchBound) SolveWithProgress(ctx context.Context, inst *cnf.WCNF, prog Progress) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, fmt.Errorf("maxsat: %w", err)
	}
	st := &bbState{
		inst:     inst,
		assign:   make([]int8, inst.NumVars+1),
		bestCost: -1,
		prog:     prog,
		bus:      obs.BusFromContext(ctx),
		globalUB: -1,
		minPrune: -1,
	}
	name := b.Name()
	if n := obs.EngineNameFromContext(ctx); n != "" {
		name = n
	}
	st.stats.Start(name)

	// Branch on heavier variables first: variables appearing in heavy
	// soft clauses decide more cost, so deciding them early tightens the
	// bound sooner.
	weightOf := make([]int64, inst.NumVars+1)
	for _, soft := range inst.Soft {
		for _, l := range soft.Clause {
			if soft.Weight > weightOf[l.Var()] {
				weightOf[l.Var()] = soft.Weight
			}
		}
	}
	st.order = make([]int, inst.NumVars)
	for v := 1; v <= inst.NumVars; v++ {
		st.order[v-1] = v
	}
	sort.SliceStable(st.order, func(i, j int) bool {
		return weightOf[st.order[i]] > weightOf[st.order[j]]
	})

	if err := st.search(ctx, 0); err != nil {
		if st.best == nil {
			return Result{Stats: st.stats}, err
		}
		// Anytime answer: the subtree below the incumbent is
		// unexplored, so no lower bound is proven — only feasibility.
		return verifyResult(inst, Result{Status: Feasible, Model: st.best, Cost: st.bestCost, Stats: st.stats})
	}
	if st.bestCost < 0 {
		if st.minPrune < 0 {
			// Exhaustive search, no prune, no model: the hard clauses
			// admit no assignment.
			return Result{Status: Infeasible, Stats: st.stats}, nil
		}
		// Every feasible assignment was cut off by a sibling's
		// incumbent: the search only proves optimum ≥ minPrune.
		if st.prog != nil {
			st.prog.PublishLower(st.minPrune)
		}
		st.stats.RecordBound(st.stats.Decisions, st.minPrune, -1)
		return Result{Status: Unknown, LowerBound: st.minPrune, Stats: st.stats}, nil
	}
	if st.minPrune >= 0 && st.minPrune < st.bestCost {
		// Completion proves optimum ≥ minPrune but the pruning bound
		// came from a sibling's better incumbent, so our own model is
		// not proven optimal.
		if st.prog != nil {
			st.prog.PublishLower(st.minPrune)
		}
		st.stats.RecordBound(st.stats.Decisions, st.minPrune, st.bestCost)
		return verifyResult(inst, Result{Status: Feasible, Model: st.best, Cost: st.bestCost, LowerBound: st.minPrune, Stats: st.stats})
	}
	if st.prog != nil {
		st.prog.PublishLower(st.bestCost)
	}
	st.stats.RecordBound(st.stats.Decisions, st.bestCost, st.bestCost)
	return verifyResult(inst, Result{Status: Optimal, Model: st.best, Cost: st.bestCost, Stats: st.stats})
}

// maybeHeartbeat publishes the search counters at the live-telemetry
// cadence (rate-limited like sat.Telemetry, clock consulted only at
// the steps&511 poll boundary).
func (st *bbState) maybeHeartbeat() {
	if !st.bus.Enabled() {
		return
	}
	now := time.Now()
	if st.lastBeat.IsZero() {
		st.lastBeat = now
		return
	}
	if now.Sub(st.lastBeat) < 500*time.Millisecond {
		return
	}
	st.lastBeat = now
	st.bus.Publish(obs.Heartbeat{
		Engine:       st.stats.Engine(),
		Conflicts:    st.stats.Conflicts,
		Decisions:    st.stats.Decisions,
		Propagations: st.stats.Propagations,
	})
}

// pruneBound is the effective upper bound to prune against: the lower
// of the engine's own incumbent and the cached global one; -1 = none.
func (st *bbState) pruneBound() int64 {
	pb := st.bestCost
	if st.globalUB >= 0 && (pb < 0 || st.globalUB < pb) {
		pb = st.globalUB
	}
	return pb
}

// search explores assignments to order[depth:]; assign holds the current
// partial assignment.
func (st *bbState) search(ctx context.Context, depth int) error {
	st.steps++
	if st.steps&511 == 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %w", sat.ErrInterrupted, err)
		}
		// Refresh the sibling incumbent at the same cadence as the
		// cancellation check: the bound manager takes a lock, so per-node
		// polling would serialise the portfolio.
		if st.prog != nil {
			if cost, ok := st.prog.BestKnown(); ok {
				st.globalUB = cost
			}
		}
		st.maybeHeartbeat()
	}

	// Unit propagation on hard clauses; trail records for undo.
	var trail []int
	undo := func() {
		for _, v := range trail {
			st.assign[v] = 0
		}
	}
	//lint:ignore ctxpoll the fixpoint assigns at least one variable per iteration, bounded by the variable count; ctx is polled per search node
	for {
		unitVar, unitVal, conflict := st.findHardUnit()
		if conflict {
			st.stats.Conflicts++
			undo()
			return nil
		}
		if unitVar == 0 {
			break
		}
		st.assign[unitVar] = unitVal
		st.stats.Propagations++
		trail = append(trail, unitVar)
	}

	// Prune when already no better than the best incumbent (ours or a
	// sibling's). Any assignment below this node costs at least lb, so
	// optimum ≥ min over all prunes of the bound used — tracked in
	// minPrune for the completion-time optimality argument.
	lb := st.falsifiedWeight()
	if pb := st.pruneBound(); pb >= 0 && lb >= pb {
		if st.minPrune < 0 || pb < st.minPrune {
			st.minPrune = pb
		}
		undo()
		return nil
	}

	// Next unassigned variable in branching order.
	branch := 0
	for _, v := range st.order {
		if st.assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		// Complete assignment; hard clauses hold by propagation above.
		cost := st.falsifiedWeight()
		if st.bestCost < 0 || cost < st.bestCost {
			st.stats.RecordBound(st.stats.Decisions, 0, cost)
			st.bestCost = cost
			st.best = make([]bool, st.inst.NumVars+1)
			for v := 1; v <= st.inst.NumVars; v++ {
				st.best[v] = st.assign[v] == 1
			}
			if st.prog != nil {
				st.prog.PublishModel(cost, st.best)
			}
		}
		undo()
		return nil
	}

	for _, val := range [2]int8{1, -1} {
		st.assign[branch] = val
		st.stats.Decisions++
		if err := st.search(ctx, depth+1); err != nil {
			st.assign[branch] = 0
			undo()
			return err
		}
	}
	st.assign[branch] = 0
	undo()
	return nil
}

// findHardUnit scans hard clauses for a unit or a conflict.
func (st *bbState) findHardUnit() (unitVar int, unitVal int8, conflict bool) {
	for _, clause := range st.inst.Hard {
		satisfied := false
		unassigned := 0
		var candidate cnf.Lit
		for _, l := range clause {
			switch st.assign[l.Var()] {
			case 0:
				unassigned++
				candidate = l
			case 1:
				if l.Pos() {
					satisfied = true
				}
			case -1:
				if !l.Pos() {
					satisfied = true
				}
			}
			if satisfied {
				break
			}
		}
		if satisfied {
			continue
		}
		switch unassigned {
		case 0:
			return 0, 0, true
		case 1:
			val := int8(-1)
			if candidate.Pos() {
				val = 1
			}
			return candidate.Var(), val, false
		}
	}
	return 0, 0, false
}

// falsifiedWeight sums the weights of soft clauses every literal of
// which is assigned false — an admissible lower bound on any extension.
func (st *bbState) falsifiedWeight() int64 {
	var total int64
	for _, soft := range st.inst.Soft {
		falsified := true
		for _, l := range soft.Clause {
			v := st.assign[l.Var()]
			if v == 0 || (v == 1) == l.Pos() {
				falsified = false
				break
			}
		}
		if falsified {
			//lint:ignore weightsafe sums a subset of the soft weights, bounded by the Validate-checked total
			total += soft.Weight
		}
	}
	return total
}
