// Package quant provides quantitative fault-tree analysis on top of the
// BDD engine: exact top-event probability, the classical cut-set
// approximations, and per-event importance measures. These are the
// "body of measures used in FTA" that the paper's MPMCS is intended to
// extend.
package quant

import (
	"fmt"
	"math"
	"sort"

	"mpmcs4fta/internal/bdd"
	"mpmcs4fta/internal/fp"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/mcs"
)

// TopEventProbability computes the exact probability of the top event
// assuming independent basic events, by Shannon expansion over the
// tree's BDD.
func TopEventProbability(t *ft.Tree) (float64, error) {
	m, f, err := buildBDD(t)
	if err != nil {
		return 0, err
	}
	return m.Probability(f, t.Probabilities()), nil
}

// RareEventApprox returns the rare-event approximation Σᵢ P(MCSᵢ): an
// upper bound that is tight when probabilities are small.
func RareEventApprox(sets []mcs.CutSet, probs map[string]float64) float64 {
	total := 0.0
	for _, set := range sets {
		total += set.Probability(probs)
	}
	return total
}

// MinCutUpperBound returns the min-cut upper bound
// 1 − ∏ᵢ (1 − P(MCSᵢ)), which always dominates the exact probability
// and improves on the rare-event approximation.
func MinCutUpperBound(sets []mcs.CutSet, probs map[string]float64) float64 {
	sum := 0.0
	for _, set := range sets {
		p := set.Probability(probs)
		if p >= 1 {
			return 1
		}
		sum += math.Log1p(-p)
	}
	return -math.Expm1(sum)
}

// Importance bundles the classical importance measures for one event.
type Importance struct {
	Event string
	// Birnbaum is ∂P(top)/∂p(e) = P(top|e=1) − P(top|e=0).
	Birnbaum float64
	// Criticality is the Fussell-Vesely measure 1 − P(top|e=0)/P(top):
	// the fraction of top-event probability involving e.
	Criticality float64
	// RAW (risk achievement worth) is P(top|e=1)/P(top).
	RAW float64
	// RRW (risk reduction worth) is P(top)/P(top|e=0).
	RRW float64
}

// Measures computes all importance measures for every basic event,
// sorted by descending Birnbaum importance (ties broken by id). The
// ratio measures are reported as +Inf where their denominator is zero
// and the numerator is not.
func Measures(t *ft.Tree) ([]Importance, error) {
	m, f, err := buildBDD(t)
	if err != nil {
		return nil, err
	}
	probs := t.Probabilities()
	base := m.Probability(f, probs)

	events := t.Events()
	out := make([]Importance, 0, len(events))
	for _, e := range events {
		with, err := m.Restrict(f, e.ID, true)
		if err != nil {
			return nil, err
		}
		without, err := m.Restrict(f, e.ID, false)
		if err != nil {
			return nil, err
		}
		pWith := m.Probability(with, probs)
		pWithout := m.Probability(without, probs)
		imp := Importance{
			Event:       e.ID,
			Birnbaum:    pWith - pWithout,
			Criticality: safeFrac(base-pWithout, base),
			RAW:         safeFrac(pWith, base),
			RRW:         safeFrac(base, pWithout),
		}
		out = append(out, imp)
	}
	sort.Slice(out, func(i, j int) bool {
		//lint:ignore floatcmp exact comparison keeps the ordering a strict weak order; epsilon ties would make sort.Slice non-deterministic
		if out[i].Birnbaum != out[j].Birnbaum {
			return out[i].Birnbaum > out[j].Birnbaum
		}
		return out[i].Event < out[j].Event
	})
	return out, nil
}

func safeFrac(num, den float64) float64 {
	switch {
	case !fp.Zero(den):
		return num / den
	case fp.Zero(num):
		return 0
	case num > 0:
		return math.Inf(1)
	default:
		return math.Inf(-1)
	}
}

func buildBDD(t *ft.Tree) (*bdd.Manager, bdd.Ref, error) {
	f, err := t.Formula()
	if err != nil {
		return nil, bdd.False, err
	}
	m, err := bdd.NewManager(t.DFSEventOrder())
	if err != nil {
		return nil, bdd.False, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := m.FromExpr(f)
	if err != nil {
		return nil, bdd.False, fmt.Errorf("quant: build BDD: %w", err)
	}
	return m, ref, nil
}
