package quant

import (
	"math"
	"testing"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/mcs"
)

func TestBottomUpMatchesBDDOnNamedTrees(t *testing.T) {
	// FPS and PressureTank are strictly tree shaped.
	for _, tree := range []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()} {
		exact, err := TopEventProbability(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		fast, err := BottomUpProbability(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		if math.Abs(exact-fast) > 1e-12 {
			t.Errorf("%s: bottom-up %v, BDD %v", tree.Name(), fast, exact)
		}
	}
}

func TestBottomUpMatchesBDDOnRandomTrees(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tree, err := gen.Random(gen.Config{Events: 14, Seed: seed, NoSharing: true, VotingFrac: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := TopEventProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := BottomUpProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-fast) > 1e-10 {
			t.Errorf("seed %d: bottom-up %v, BDD %v", seed, fast, exact)
		}
	}
}

func TestBottomUpRejectsSharedStructure(t *testing.T) {
	tree := ft.New("dag")
	for _, id := range []string{"a", "b"} {
		if err := tree.AddEvent(id, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.AddAnd("g1", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("g2", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("top", "g1", "g2"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	if _, err := BottomUpProbability(tree); err == nil {
		t.Error("shared structure accepted")
	}
}

func TestBottomUpScalesToHugeTrees(t *testing.T) {
	// 50k events: far past the BDD node budget; bottom-up is linear.
	tree, err := gen.Random(gen.Config{Events: 50000, Seed: 3, NoSharing: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BottomUpProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 {
		t.Errorf("P(top) = %v outside [0,1]", p)
	}
}

// TestOrProbabilityTinyOperands is the regression test for the
// catastrophic cancellation bug: with every operand below 2⁻⁵³ the
// naive 1−∏(1−q) collapses to exactly 0; the log-space form must keep
// the rare-event sum.
func TestOrProbabilityTinyOperands(t *testing.T) {
	got := orProbability([]float64{1e-19, 8e-51})
	if got == 0 {
		t.Fatal("tiny OR collapsed to zero (catastrophic cancellation)")
	}
	if math.Abs(got-1e-19)/1e-19 > 1e-9 {
		t.Errorf("orProbability = %g, want ≈1e-19", got)
	}
	// End to end: an OR gate over events below the cancellation
	// threshold must agree with the BDD engine.
	tree := ft.New("tinyor")
	if err := tree.AddEvent("a", 1e-19); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("b", 3e-20); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("top", "a", "b"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	fast, err := BottomUpProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	if fast <= 0 || math.Abs(fast-1.3e-19)/1.3e-19 > 1e-9 {
		t.Errorf("BottomUpProbability = %g, want ≈1.3e-19", fast)
	}
	sets := []mcs.CutSet{{"a"}, {"b"}}
	if p := MinCutUpperBound(sets, tree.Probabilities()); p == 0 {
		t.Error("MinCutUpperBound collapsed to zero on tiny probabilities")
	}
}

func TestAtLeastProbability(t *testing.T) {
	tests := []struct {
		name  string
		k     int
		probs []float64
		want  float64
	}{
		{"k=0 always", 0, []float64{0.5}, 1},
		{"k>n never", 3, []float64{0.5, 0.5}, 0},
		{"1 of 1", 1, []float64{0.3}, 0.3},
		{"1 of 2 (or)", 1, []float64{0.5, 0.5}, 0.75},
		{"2 of 2 (and)", 2, []float64{0.5, 0.4}, 0.2},
		// 2 of 3 with p=.5 each: C(3,2)·0.125 + 0.125 = 0.5.
		{"2 of 3 identical", 2, []float64{0.5, 0.5, 0.5}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := atLeastProbability(tt.k, tt.probs); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("atLeastProbability = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAtLeastProbabilityAgainstEnumeration(t *testing.T) {
	probs := []float64{0.1, 0.7, 0.4, 0.25, 0.9}
	for k := 0; k <= 6; k++ {
		want := 0.0
		for mask := 0; mask < 1<<len(probs); mask++ {
			count := 0
			p := 1.0
			for i, q := range probs {
				if mask&(1<<i) != 0 {
					count++
					p *= q
				} else {
					p *= 1 - q
				}
			}
			if count >= k {
				want += p
			}
		}
		if got := atLeastProbability(k, probs); math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d: got %v, want %v", k, got, want)
		}
	}
}
