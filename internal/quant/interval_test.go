package quant

import (
	"testing"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
)

func TestIntervalProbabilityBracketsPoint(t *testing.T) {
	tree := gen.FPS()
	point, err := TopEventProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := IntervalProbability(tree, map[string]Interval{
		"x1": {Lo: 0.1, Hi: 0.3}, // point value 0.2 inside
		"x7": {Lo: 0.01, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo > point || iv.Hi < point {
		t.Errorf("interval [%v, %v] does not bracket point %v", iv.Lo, iv.Hi, point)
	}
	if iv.Lo >= iv.Hi {
		t.Errorf("interval degenerate: [%v, %v]", iv.Lo, iv.Hi)
	}
}

func TestIntervalProbabilityDegenerate(t *testing.T) {
	tree := gen.FPS()
	point, err := TopEventProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := IntervalProbability(tree, map[string]Interval{
		"x1": {Lo: 0.2, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != point || iv.Hi != point {
		t.Errorf("point interval should reproduce the point: [%v, %v] vs %v", iv.Lo, iv.Hi, point)
	}
	// No intervals at all: both bounds are the point value.
	iv, err = IntervalProbability(tree, nil)
	if err != nil || iv.Lo != point || iv.Hi != point {
		t.Errorf("empty map: [%v, %v], %v", iv.Lo, iv.Hi, err)
	}
}

func TestIntervalProbabilityMonotone(t *testing.T) {
	// Widening any interval can only widen the bounds.
	tree := gen.RedundantSCADA()
	narrow, err := IntervalProbability(tree, map[string]Interval{
		"c1": {Lo: 0.005, Hi: 0.02},
	})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := IntervalProbability(tree, map[string]Interval{
		"c1": {Lo: 0.001, Hi: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if wide.Lo > narrow.Lo+1e-15 || wide.Hi < narrow.Hi-1e-15 {
		t.Errorf("wider input produced narrower output: %+v vs %+v", wide, narrow)
	}
}

func TestIntervalProbabilityErrors(t *testing.T) {
	tree := gen.FPS()
	if _, err := IntervalProbability(tree, map[string]Interval{"ghost": {Lo: 0, Hi: 1}}); err == nil {
		t.Error("unknown event accepted")
	}
	if _, err := IntervalProbability(tree, map[string]Interval{"x1": {Lo: 0.5, Hi: 0.2}}); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := IntervalProbability(tree, map[string]Interval{"x1": {Lo: -0.1, Hi: 0.2}}); err == nil {
		t.Error("negative bound accepted")
	}
	if _, err := IntervalProbability(ft.New("bad"), nil); err == nil {
		t.Error("invalid tree accepted")
	}
}
