package quant

import (
	"fmt"
	"sort"

	"mpmcs4fta/internal/bdd"
	"mpmcs4fta/internal/ft"
)

// ModularProbability computes the exact top-event probability by
// modular decomposition (Dutuit & Rauzy): every module gate is analysed
// in isolation with a BDD over its own events, then replaced by a
// pseudo-event carrying its probability. Sharing *inside* a module is
// handled exactly by that module's BDD; sharing *across* module
// boundaries stays in the quotient tree, which is itself analysed with
// a BDD. The per-module BDDs are far smaller than one monolithic BDD,
// extending exact analysis to trees where TopEventProbability exhausts
// its node budget — at equal results wherever both complete.
func ModularProbability(t *ft.Tree) (float64, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	modules, err := t.Modules()
	if err != nil {
		return 0, err
	}
	isModule := make(map[string]bool, len(modules))
	for _, id := range modules {
		isModule[id] = true
	}

	// Process modules bottom-up: a module can only be evaluated after
	// the modules nested inside it. Order by subtree depth.
	depth := make(map[string]int)
	var measure func(id string) int
	measure = func(id string) int {
		if d, ok := depth[id]; ok {
			return d
		}
		depth[id] = 0 // cycle guard; tree is validated acyclic
		g := t.Gate(id)
		if g == nil {
			depth[id] = 1
			return 1
		}
		deepest := 0
		for _, in := range g.Inputs {
			if d := measure(in); d > deepest {
				deepest = d
			}
		}
		depth[id] = deepest + 1
		return depth[id]
	}
	sort.Slice(modules, func(i, j int) bool { return measure(modules[i]) < measure(modules[j]) })

	// moduleProb[g] is the exact probability of an already-solved
	// module gate; when encountered during a later module's BDD build,
	// it acts as an independent pseudo-event.
	moduleProb := make(map[string]float64, len(modules))
	for _, id := range modules {
		p, err := moduleGateProbability(t, id, isModule, moduleProb)
		if err != nil {
			return 0, err
		}
		moduleProb[id] = p
	}
	top, ok := moduleProb[t.Top()]
	if !ok {
		// The top gate is always a module; reaching here means the
		// module detection broke its contract.
		return 0, fmt.Errorf("quant: top gate %q missing from module results", t.Top())
	}
	return top, nil
}

// moduleGateProbability computes P(gate) with a BDD over the module's
// quotient structure: descendants that are themselves solved modules
// become pseudo-events.
func moduleGateProbability(t *ft.Tree, root string, isModule map[string]bool, moduleProb map[string]float64) (float64, error) {
	// Collect quotient leaves (events and nested solved modules) in
	// DFS order for the BDD variable ordering.
	var (
		order  []string
		seen   = make(map[string]bool)
		leaves = make(map[string]float64)
	)
	var collect func(id string, isRoot bool)
	collect = func(id string, isRoot bool) {
		if seen[id] {
			return
		}
		seen[id] = true
		if !isRoot {
			if p, solved := moduleProb[id]; solved {
				order = append(order, id)
				leaves[id] = p
				return
			}
		}
		if e := t.Event(id); e != nil {
			order = append(order, id)
			leaves[id] = e.Prob
			return
		}
		for _, in := range t.Gate(id).Inputs {
			collect(in, false)
		}
	}
	collect(root, true)

	m, err := bdd.NewManager(order)
	if err != nil {
		return 0, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := quotientBDD(t, m, root, leaves)
	if err != nil {
		return 0, err
	}
	return m.Probability(ref, leaves), nil
}

// quotientBDD builds the BDD of the gate function where every id in
// leaves is a BDD variable.
func quotientBDD(t *ft.Tree, m *bdd.Manager, root string, leaves map[string]float64) (bdd.Ref, error) {
	memo := make(map[string]bdd.Ref)
	var build func(id string, isRoot bool) (bdd.Ref, error)
	build = func(id string, isRoot bool) (bdd.Ref, error) {
		// The module root is always expanded as a gate; everything else
		// that registered as a quotient leaf becomes a BDD variable.
		if _, isLeaf := leaves[id]; isLeaf && !isRoot {
			return m.Var(id)
		}
		if ref, ok := memo[id]; ok {
			return ref, nil
		}
		g := t.Gate(id)
		refs := make([]bdd.Ref, len(g.Inputs))
		for i, in := range g.Inputs {
			ref, err := build(in, false)
			if err != nil {
				return bdd.False, err
			}
			refs[i] = ref
		}
		var out bdd.Ref
		switch g.Type {
		case ft.GateAnd:
			out = m.And(refs...)
		case ft.GateOr:
			out = m.Or(refs...)
		case ft.GateVoting:
			out = m.AtLeast(g.K, refs)
		}
		memo[id] = out
		return out, nil
	}
	return build(root, true)
}
