package quant

import (
	"fmt"

	"mpmcs4fta/internal/ft"
)

// Interval is a closed probability interval.
type Interval struct {
	Lo, Hi float64
}

// IntervalProbability propagates epistemic uncertainty: given an
// interval of failure probability for some (or all) basic events, it
// returns guaranteed bounds on P(top). Coherent structure functions are
// monotone in every event probability, so the exact bounds are obtained
// by evaluating the tree once at all lower bounds and once at all upper
// bounds. Events absent from the map use their point probability.
func IntervalProbability(t *ft.Tree, intervals map[string]Interval) (Interval, error) {
	if err := t.Validate(); err != nil {
		return Interval{}, err
	}
	for id, iv := range intervals {
		if t.Event(id) == nil {
			return Interval{}, fmt.Errorf("quant: %q is not a basic event", id)
		}
		if iv.Lo < 0 || iv.Hi > 1 || iv.Lo > iv.Hi {
			return Interval{}, fmt.Errorf("quant: event %q has invalid interval [%v, %v]", id, iv.Lo, iv.Hi)
		}
	}
	atBound := func(upper bool) (float64, error) {
		bounded := t.Clone()
		for id, iv := range intervals {
			p := iv.Lo
			if upper {
				p = iv.Hi
			}
			if err := bounded.SetProb(id, p); err != nil {
				return 0, err
			}
		}
		return TopEventProbability(bounded)
	}
	lo, err := atBound(false)
	if err != nil {
		return Interval{}, err
	}
	hi, err := atBound(true)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi}, nil
}
