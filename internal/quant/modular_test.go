package quant

import (
	"math"
	"testing"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
)

func TestModularMatchesBDDOnNamedTrees(t *testing.T) {
	for _, tree := range []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()} {
		exact, err := TopEventProbability(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		modular, err := ModularProbability(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		if math.Abs(exact-modular) > 1e-12 {
			t.Errorf("%s: modular %v, monolithic %v", tree.Name(), modular, exact)
		}
	}
}

func TestModularMatchesBDDOnSharedTrees(t *testing.T) {
	// Random trees with sharing: modular decomposition must agree with
	// the monolithic BDD wherever the latter completes.
	for seed := int64(0); seed < 20; seed++ {
		tree, err := gen.Random(gen.Config{Events: 14, Seed: seed, VotingFrac: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := TopEventProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		modular, err := ModularProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-modular) > 1e-10 {
			t.Errorf("seed %d: modular %v, monolithic %v", seed, modular, exact)
		}
	}
}

func TestModularHandlesSharingInsideModule(t *testing.T) {
	// Event s is shared by two gates under "mid"; mid is a module, so
	// its internal BDD resolves the dependence exactly. A naive
	// bottom-up pass would get this wrong.
	tree := ft.New("sharedInModule")
	for _, e := range []struct {
		id   string
		prob float64
	}{{"a", 0.3}, {"b", 0.4}, {"s", 0.5}, {"out", 0.2}} {
		if err := tree.AddEvent(e.id, e.prob); err != nil {
			t.Fatal(err)
		}
	}
	mustOK := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustOK(tree.AddAnd("left", "a", "s"))
	mustOK(tree.AddAnd("right", "b", "s"))
	mustOK(tree.AddOr("mid", "left", "right"))
	mustOK(tree.AddOr("top", "mid", "out"))
	tree.SetTop("top")

	exact, err := TopEventProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	modular, err := ModularProbability(tree)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-modular) > 1e-12 {
		t.Errorf("modular %v, monolithic %v", modular, exact)
	}
	// Cross-check the closed form: P(mid) = P((a∨... ) with shared s)
	// = p(s)·(1−(1−.3)(1−.4)) = .5·.58 = .29; P(top) = 1−(1−.29)(1−.2).
	want := 1 - (1-0.29)*(1-0.2)
	if math.Abs(exact-want) > 1e-12 {
		t.Errorf("closed form %v, BDD %v", want, exact)
	}

	// BottomUpProbability must refuse this shape.
	if _, err := BottomUpProbability(tree); err == nil {
		t.Error("bottom-up accepted a shared structure")
	}
}

func TestModularInvalidTree(t *testing.T) {
	if _, err := ModularProbability(ft.New("bad")); err == nil {
		t.Error("invalid tree accepted")
	}
}
