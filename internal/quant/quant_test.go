package quant

import (
	"math"
	"testing"

	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/mcs"
)

// exactBruteForce computes P(top) by weighted truth-table enumeration.
func exactBruteForce(t *testing.T, tree *ft.Tree) float64 {
	t.Helper()
	f, err := tree.Formula()
	if err != nil {
		t.Fatal(err)
	}
	probs := tree.Probabilities()
	vars := boolexpr.Vars(f)
	total := 0.0
	boolexpr.AllAssignments(vars, func(assign map[string]bool) bool {
		if !f.Eval(assign) {
			return true
		}
		p := 1.0
		for _, v := range vars {
			if assign[v] {
				p *= probs[v]
			} else {
				p *= 1 - probs[v]
			}
		}
		total += p
		return true
	})
	return total
}

func TestTopEventProbabilityAgainstBruteForce(t *testing.T) {
	trees := []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()}
	for _, tree := range trees {
		got, err := TopEventProbability(tree)
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		want := exactBruteForce(t, tree)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: P(top) = %v, want %v", tree.Name(), got, want)
		}
	}
}

func TestTopEventProbabilityRandom(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		tree, err := gen.Random(gen.Config{Events: 12, Seed: seed, VotingFrac: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopEventProbability(tree)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := exactBruteForce(t, tree)
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("seed %d: P(top) = %v, want %v", seed, got, want)
		}
	}
}

func TestApproximationsBracketExact(t *testing.T) {
	trees := []*ft.Tree{gen.FPS(), gen.PressureTank(), gen.RedundantSCADA()}
	for _, tree := range trees {
		exact, err := TopEventProbability(tree)
		if err != nil {
			t.Fatal(err)
		}
		sets, err := mcs.MOCUS(tree)
		if err != nil {
			t.Fatal(err)
		}
		probs := tree.Probabilities()
		rare := RareEventApprox(sets, probs)
		upper := MinCutUpperBound(sets, probs)
		const eps = 1e-12
		if upper < exact-eps {
			t.Errorf("%s: min-cut upper bound %v below exact %v", tree.Name(), upper, exact)
		}
		if rare < upper-eps {
			t.Errorf("%s: rare-event %v below min-cut bound %v", tree.Name(), rare, upper)
		}
	}
}

func TestMeasuresFPS(t *testing.T) {
	tree := gen.FPS()
	measures, err := Measures(tree)
	if err != nil {
		t.Fatal(err)
	}
	if len(measures) != 7 {
		t.Fatalf("got %d measures", len(measures))
	}
	byEvent := make(map[string]Importance, len(measures))
	for _, m := range measures {
		byEvent[m.Event] = m
	}

	// Birnbaum for x3 (an OR-side SPOF) must exceed x1's (half of an
	// AND pair with a low-probability partner).
	if byEvent["x3"].Birnbaum <= byEvent["x1"].Birnbaum {
		t.Errorf("Birnbaum(x3)=%v should exceed Birnbaum(x1)=%v",
			byEvent["x3"].Birnbaum, byEvent["x1"].Birnbaum)
	}
	// Sorted descending by Birnbaum.
	for i := 1; i < len(measures); i++ {
		if measures[i].Birnbaum > measures[i-1].Birnbaum {
			t.Error("measures not sorted by Birnbaum descending")
		}
	}
	// Sanity: Criticality within [0,1], RAW ≥ 1 is typical for OR-ish
	// trees, RRW ≥ 1 always (removing a failure can only help).
	for _, m := range measures {
		if m.Criticality < -1e-12 || m.Criticality > 1+1e-12 {
			t.Errorf("%s: criticality %v outside [0,1]", m.Event, m.Criticality)
		}
		if m.RRW < 1-1e-12 {
			t.Errorf("%s: RRW %v < 1", m.Event, m.RRW)
		}
	}
}

func TestBirnbaumMatchesDerivativeDefinition(t *testing.T) {
	// B_i = P(top | e=1) − P(top | e=0) computed independently by
	// setting the event probability to 1 / 0 and re-evaluating.
	tree := gen.PressureTank()
	measures, err := Measures(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range measures {
		with := tree.Clone()
		if err := with.SetProb(m.Event, 1); err != nil {
			t.Fatal(err)
		}
		pWith, err := TopEventProbability(with)
		if err != nil {
			t.Fatal(err)
		}
		without := tree.Clone()
		if err := without.SetProb(m.Event, 0); err != nil {
			t.Fatal(err)
		}
		pWithout, err := TopEventProbability(without)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.Birnbaum-(pWith-pWithout)) > 1e-12 {
			t.Errorf("%s: Birnbaum %v != %v", m.Event, m.Birnbaum, pWith-pWithout)
		}
	}
}

func TestMeasuresInvalidTree(t *testing.T) {
	if _, err := Measures(ft.New("empty")); err == nil {
		t.Error("invalid tree accepted")
	}
	if _, err := TopEventProbability(ft.New("empty")); err == nil {
		t.Error("invalid tree accepted")
	}
}

func TestSafeFrac(t *testing.T) {
	if safeFrac(1, 2) != 0.5 {
		t.Error("plain division wrong")
	}
	if safeFrac(0, 0) != 0 {
		t.Error("0/0 should be 0")
	}
	if !math.IsInf(safeFrac(1, 0), 1) {
		t.Error("1/0 should be +Inf")
	}
	if !math.IsInf(safeFrac(-1, 0), -1) {
		t.Error("-1/0 should be -Inf")
	}
}
