package quant

import (
	"fmt"
	"math"

	"mpmcs4fta/internal/ft"
)

// BottomUpProbability computes the exact top-event probability of a
// tree-shaped fault tree (no shared nodes) in a single bottom-up pass:
// AND gates multiply, OR gates complement-multiply, and K-of-N voting
// gates use the Poisson-binomial tail computed by dynamic programming.
// It runs in O(nodes · fan-in²) — no BDD, so it scales to trees far
// past the BDD node budget. Shared (DAG) structures are rejected
// because gate inputs would no longer be independent; use
// TopEventProbability (exact via BDD) there.
func BottomUpProbability(t *ft.Tree) (float64, error) {
	treeShaped, err := t.IsTreeShaped()
	if err != nil {
		return 0, err
	}
	if !treeShaped {
		return 0, fmt.Errorf("quant: tree has shared nodes; bottom-up probability requires a tree shape")
	}
	var walk func(id string) float64
	walk = func(id string) float64 {
		if e := t.Event(id); e != nil {
			return e.Prob
		}
		g := t.Gate(id)
		probs := make([]float64, len(g.Inputs))
		for i, in := range g.Inputs {
			probs[i] = walk(in)
		}
		switch g.Type {
		case ft.GateAnd:
			p := 1.0
			for _, q := range probs {
				p *= q
			}
			return p
		case ft.GateOr:
			return orProbability(probs)
		default: // ft.GateVoting
			return atLeastProbability(g.K, probs)
		}
	}
	return walk(t.Top()), nil
}

// orProbability returns 1 − ∏(1−qᵢ) computed in log space:
// −expm1(Σ log1p(−qᵢ)). The naive form collapses to 0 once every qᵢ
// drops below 2⁻⁵³ (1−q rounds to exactly 1), silently erasing rare
// branches; the log form keeps full relative precision down to the
// denormal range.
func orProbability(probs []float64) float64 {
	sum := 0.0
	for _, q := range probs {
		if q >= 1 {
			return 1
		}
		sum += math.Log1p(-q)
	}
	return -math.Expm1(sum)
}

// atLeastProbability returns P[at least k of n independent events with
// the given probabilities occur] — the Poisson-binomial tail, by the
// standard O(n·k) dynamic program over "exactly j among the first i".
func atLeastProbability(k int, probs []float64) float64 {
	if k <= 0 {
		return 1
	}
	n := len(probs)
	if k > n {
		return 0
	}
	// dp[j] = P[exactly j successes so far], capped at k (bucket k
	// accumulates "k or more").
	dp := make([]float64, k+1)
	dp[0] = 1
	for _, p := range probs {
		for j := k; j >= 1; j-- {
			if j == k {
				dp[k] = dp[k] + dp[k-1]*p
			} else {
				dp[j] = dp[j]*(1-p) + dp[j-1]*p
			}
		}
		dp[0] *= 1 - p
	}
	return dp[k]
}
