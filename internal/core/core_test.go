package core

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/mcs"
)

func TestAnalyzeFPS(t *testing.T) {
	// The paper's worked example: MPMCS = {x1, x2}, probability 0.02.
	sol, err := Analyze(context.Background(), gen.FPS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.CutSetIDs(); !reflect.DeepEqual(got, []string{"x1", "x2"}) {
		t.Errorf("MPMCS = %v, want [x1 x2]", got)
	}
	if math.Abs(sol.Probability-0.02) > 1e-9 {
		t.Errorf("probability = %v, want 0.02", sol.Probability)
	}
	if sol.Solver == "" || sol.Method == "" {
		t.Error("solution missing solver/method metadata")
	}
	if sol.Stats.Events != 7 || sol.Stats.Gates != 5 {
		t.Errorf("stats = %+v", sol.Stats)
	}
	if sol.Stats.SoftClauses != 7 {
		t.Errorf("expected 7 soft clauses, got %d", sol.Stats.SoftClauses)
	}
}

// TestTableIWeights reproduces the paper's Table I exactly (to the five
// decimal places printed there).
func TestTableIWeights(t *testing.T) {
	steps, err := BuildSteps(gen.FPS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"x1": 1.60944, "x2": 2.30259, "x3": 6.90776, "x4": 6.21461,
		"x5": 2.99573, "x6": 2.30259, "x7": 2.99573,
	}
	if len(steps.Weights) != len(want) {
		t.Fatalf("got %d weights", len(steps.Weights))
	}
	for _, w := range steps.Weights {
		if math.Abs(w.Weight-want[w.ID]) > 5e-6 {
			t.Errorf("w(%s) = %.5f, want %.5f", w.ID, w.Weight, want[w.ID])
		}
		if w.Scaled <= 0 || w.Hard {
			t.Errorf("w(%s) scaled=%d hard=%v", w.ID, w.Scaled, w.Hard)
		}
	}
}

// TestSuccessFormulaFPS checks the Step-1 transformation against the
// paper's worked Y(t).
func TestSuccessFormulaFPS(t *testing.T) {
	steps, err := BuildSteps(gen.FPS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := boolexpr.NewAnd(
		boolexpr.NewOr(boolexpr.V("x1"), boolexpr.V("x2")),
		boolexpr.NewAnd(
			boolexpr.V("x3"),
			boolexpr.V("x4"),
			boolexpr.NewOr(boolexpr.V("x5"), boolexpr.NewAnd(boolexpr.V("x6"), boolexpr.V("x7"))),
		),
	)
	if !boolexpr.Equal(steps.SuccessFormula, boolexpr.Expr(want)) {
		t.Errorf("Y(t) = %v, want %v", steps.SuccessFormula, want)
	}
}

func TestStepsInstanceShape(t *testing.T) {
	steps, err := BuildSteps(gen.FPS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Event variables must occupy DIMACS 1..7 in Events() order.
	for i, id := range []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7"} {
		if steps.Encoding.VarOf[id] != i+1 {
			t.Errorf("VarOf[%s] = %d, want %d", id, steps.Encoding.VarOf[id], i+1)
		}
	}
	// All softs are positive units over event variables.
	for _, soft := range steps.Instance.Soft {
		if len(soft.Clause) != 1 || !soft.Clause[0].Pos() || soft.Clause[0].Var() > 7 {
			t.Errorf("soft clause %v is not a positive event unit", soft.Clause)
		}
	}
	if err := steps.Instance.Validate(); err != nil {
		t.Errorf("instance invalid: %v", err)
	}
}

// TestAnalyzeMatchesOracle cross-checks the full pipeline against
// exhaustive enumeration on random trees, with and without voting
// gates, both encodings, sequential and parallel.
func TestAnalyzeMatchesOracle(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 20; seed++ {
		tree, err := gen.Random(gen.Config{Events: 10, Seed: seed, VotingFrac: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		sets, err := mcs.Exhaustive(tree)
		if err != nil {
			t.Fatal(err)
		}
		_, wantProb := mcs.MaxProbability(sets, tree.Probabilities())

		for _, opts := range []Options{
			{Sequential: true},
			{Sequential: true, PlaistedGreenbaum: true},
			{},
		} {
			sol, err := Analyze(ctx, tree, opts)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, opts, err)
			}
			if math.Abs(sol.Probability-wantProb) > 1e-9*wantProb {
				t.Fatalf("seed %d opts %+v: probability %v, oracle %v",
					seed, opts, sol.Probability, wantProb)
			}
			ok, err := mcs.IsMinimalCutSet(tree, sol.CutSetIDs())
			if err != nil || !ok {
				t.Fatalf("seed %d: reported set %v is not a minimal cut set (%v)",
					seed, sol.CutSetIDs(), err)
			}
		}
	}
}

func TestAnalyzeBDDMatchesMaxSAT(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 15; seed++ {
		tree, err := gen.Random(gen.Config{Events: 12, Seed: seed, VotingFrac: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		viaSAT, err := Analyze(ctx, tree, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		viaBDD, err := AnalyzeBDD(tree, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !mpmcsEqualProb(viaSAT, viaBDD) {
			t.Errorf("seed %d: MaxSAT %v (%v) vs BDD %v (%v)",
				seed, viaSAT.Probability, viaSAT.CutSetIDs(),
				viaBDD.Probability, viaBDD.CutSetIDs())
		}
	}
}

func TestAnalyzeTopKFPS(t *testing.T) {
	sols, err := AnalyzeTopK(context.Background(), gen.FPS(), 10, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// FPS has exactly 5 minimal cut sets; enumeration must stop there.
	if len(sols) != 5 {
		t.Fatalf("got %d cut sets, want 5", len(sols))
	}
	wantSets := [][]string{
		{"x1", "x2"},
		{"x5", "x6"},
		{"x5", "x7"},
		{"x4"},
		{"x3"},
	}
	wantProbs := []float64{0.02, 0.005, 0.0025, 0.002, 0.001}
	for i, sol := range sols {
		if !reflect.DeepEqual(sol.CutSetIDs(), wantSets[i]) {
			t.Errorf("rank %d: %v, want %v", i+1, sol.CutSetIDs(), wantSets[i])
		}
		if math.Abs(sol.Probability-wantProbs[i]) > 1e-9 {
			t.Errorf("rank %d: probability %v, want %v", i+1, sol.Probability, wantProbs[i])
		}
	}
	// Probabilities non-increasing.
	for i := 1; i < len(sols); i++ {
		if sols[i].Probability > sols[i-1].Probability+1e-12 {
			t.Error("top-k probabilities increase")
		}
	}
}

func TestAnalyzeTopKMatchesOracle(t *testing.T) {
	ctx := context.Background()
	for seed := int64(1); seed < 8; seed++ {
		tree, err := gen.Random(gen.Config{Events: 8, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		all, err := mcs.Exhaustive(tree)
		if err != nil {
			t.Fatal(err)
		}
		sols, err := AnalyzeTopK(ctx, tree, len(all)+3, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != len(all) {
			t.Fatalf("seed %d: enumerated %d sets, oracle has %d", seed, len(sols), len(all))
		}
		seen := make(map[string]bool, len(sols))
		for _, sol := range sols {
			key := ""
			for _, id := range sol.CutSetIDs() {
				key += id + ","
			}
			if seen[key] {
				t.Fatalf("seed %d: duplicate cut set %v", seed, sol.CutSetIDs())
			}
			seen[key] = true
			ok, err := mcs.IsMinimalCutSet(tree, sol.CutSetIDs())
			if err != nil || !ok {
				t.Fatalf("seed %d: %v is not minimal (%v)", seed, sol.CutSetIDs(), err)
			}
		}
	}
}

// TestAnalyzeTopKBDDMatchesMaxSAT: the BDD ranked enumeration and the
// MaxSAT blocking-clause loop produce the same probability ranking.
func TestAnalyzeTopKBDDMatchesMaxSAT(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 8; seed++ {
		tree, err := gen.Random(gen.Config{Events: 9, Seed: seed, VotingFrac: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		viaSAT, err := AnalyzeTopK(ctx, tree, 6, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		viaBDD, err := AnalyzeTopKBDD(tree, 6, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(viaSAT) != len(viaBDD) {
			t.Fatalf("seed %d: %d vs %d solutions", seed, len(viaSAT), len(viaBDD))
		}
		for i := range viaSAT {
			if !mpmcsEqualProb(viaSAT[i], viaBDD[i]) {
				t.Fatalf("seed %d rank %d: MaxSAT %v vs BDD %v",
					seed, i+1, viaSAT[i].Probability, viaBDD[i].Probability)
			}
		}
	}
	if _, err := AnalyzeTopKBDD(gen.FPS(), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAnalyzeTopKBadK(t *testing.T) {
	if _, err := AnalyzeTopK(context.Background(), gen.FPS(), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAnalyzeNoCutSet(t *testing.T) {
	tree := ft.New("impossible")
	if err := tree.AddEvent("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("b", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "a", "b"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	if _, err := Analyze(context.Background(), tree, Options{Sequential: true}); !errors.Is(err, ErrNoCutSet) {
		t.Errorf("got %v, want ErrNoCutSet", err)
	}
}

func TestAnalyzeZeroProbEventAvoided(t *testing.T) {
	// A p=0 event on one branch: the MPMCS must take the other branch.
	tree := ft.New("zero")
	if err := tree.AddEvent("impossible", 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("likely", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("top", "impossible", "likely"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	sol, err := Analyze(context.Background(), tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"likely"}) {
		t.Errorf("MPMCS = %v, want [likely]", sol.CutSetIDs())
	}
}

func TestAnalyzeCertainEventFree(t *testing.T) {
	// p=1 events cost nothing; MPMCS probability stays 1·0.3.
	tree := ft.New("certain")
	if err := tree.AddEvent("always", 1); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("rare", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "always", "rare"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")
	sol, err := Analyze(context.Background(), tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"always", "rare"}) {
		t.Errorf("MPMCS = %v, want [always rare]", sol.CutSetIDs())
	}
	if math.Abs(sol.Probability-0.3) > 1e-12 {
		t.Errorf("probability = %v, want 0.3", sol.Probability)
	}
}

func TestAnalyzeTimeout(t *testing.T) {
	tree, err := gen.Random(gen.Config{Events: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(context.Background(), tree, Options{Timeout: time.Nanosecond})
	if err == nil {
		t.Error("nanosecond timeout did not fail")
	}
}

func TestSolutionJSON(t *testing.T) {
	sol, err := Analyze(context.Background(), gen.FPS(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sol)
	if err != nil {
		t.Fatal(err)
	}
	var back Solution
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Probability != sol.Probability || len(back.MPMCS) != len(sol.MPMCS) {
		t.Error("JSON round trip lost data")
	}
	if len(back.Weights) != 7 {
		t.Errorf("weights table lost: %d entries", len(back.Weights))
	}
}

func TestLogWeightsEdgeCases(t *testing.T) {
	events := []*ft.BasicEvent{
		{ID: "zero", Prob: 0},
		{ID: "one", Prob: 1},
		{ID: "tiny", Prob: 1e-12},
		{ID: "nearOne", Prob: 1 - 1e-13},
	}
	weights := LogWeights(events, DefaultScale)
	if !weights[0].Hard || !math.IsInf(weights[0].Weight, 1) {
		t.Errorf("p=0: %+v", weights[0])
	}
	if weights[1].Hard || weights[1].Scaled != 0 {
		t.Errorf("p=1: %+v", weights[1])
	}
	if weights[2].Scaled <= 0 {
		t.Errorf("tiny probability should have a large positive weight: %+v", weights[2])
	}
	if weights[3].Scaled < 1 {
		t.Errorf("near-one probability must clamp to weight 1: %+v", weights[3])
	}
}

func TestAnalyzeInvalidTree(t *testing.T) {
	if _, err := Analyze(context.Background(), ft.New("bad"), Options{}); err == nil {
		t.Error("invalid tree accepted")
	}
	if _, err := BuildSteps(ft.New("bad"), Options{}); err == nil {
		t.Error("invalid tree accepted by BuildSteps")
	}
	if _, err := AnalyzeBDD(ft.New("bad"), Options{}); err == nil {
		t.Error("invalid tree accepted by AnalyzeBDD")
	}
}

func TestAnalyzeVotingGateTree(t *testing.T) {
	sol, err := Analyze(context.Background(), gen.RedundantSCADA(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Cut sets: pairs of {c1,c2,c3} (2-of-3), {n1,n2}, {ma}, {hw}, {sw}.
	// Probabilities: sw=0.003 is the single most likely.
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"sw"}) {
		t.Errorf("MPMCS = %v, want [sw]", sol.CutSetIDs())
	}
	if math.Abs(sol.Probability-0.003) > 1e-12 {
		t.Errorf("probability = %v", sol.Probability)
	}
}
