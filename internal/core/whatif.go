package core

import (
	"context"
	"fmt"
	"math"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
)

// Analyzer caches Steps 1–2 (the success-tree CNF encoding, which only
// depends on the tree's structure) so that repeated MPMCS analyses
// under changing event probabilities — what-if exploration, sensitivity
// sweeps — pay only for Steps 3–6 per query.
type Analyzer struct {
	tree *ft.Tree // private clone; probabilities mutated per query
	enc  *cnf.Encoding
	opts Options
}

// NewAnalyzer validates and encodes the tree once.
func NewAnalyzer(tree *ft.Tree, opts Options) (*Analyzer, error) {
	opts = opts.withDefaults()
	steps, err := BuildSteps(tree, opts)
	if err != nil {
		return nil, err
	}
	return &Analyzer{tree: tree.Clone(), enc: steps.Encoding, opts: opts}, nil
}

// Analyze computes the MPMCS with the given probability overrides
// applied on top of the tree's base probabilities (pass nil for none).
// Unknown event ids in overrides are rejected.
func (a *Analyzer) Analyze(ctx context.Context, overrides map[string]float64) (*Solution, error) {
	working := a.tree.Clone()
	for id, p := range overrides {
		if err := working.SetProb(id, p); err != nil {
			return nil, err
		}
	}
	weights := LogWeights(working.Events(), a.opts.Scale)

	instance := &cnf.WCNF{NumVars: a.enc.Formula.NumVars}
	for _, clause := range a.enc.Formula.Clauses {
		instance.AddHard(clause...)
	}
	for _, w := range weights {
		y := cnf.Lit(a.enc.VarOf[w.ID])
		switch {
		case w.Hard:
			instance.AddHard(y)
		case w.Scaled > 0:
			instance.AddSoft(w.Scaled, y)
		}
	}

	root := a.opts.tracer().StartSpan("analyze-whatif")
	defer root.End()
	res, report, err := solveSpanned(ctx, instance, a.opts, root)
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case maxsat.Infeasible:
		return nil, ErrNoCutSet
	case maxsat.Optimal, maxsat.Feasible:
	default:
		return nil, noAnswerErr(ctx)
	}
	steps := &Steps{Encoding: a.enc, Weights: weights, Instance: instance}
	sol, err := decodeSolution(working, steps, res, report, a.opts, root)
	if err != nil {
		return nil, err
	}
	recordAnalysisMetrics(a.opts.Metrics, sol, report)
	return sol, nil
}

// SwitchPoint finds the smallest probability of the given event at
// which it enters the MPMCS, holding every other probability fixed. As
// p(e) grows, the best cut set containing e gains probability linearly
// while the best without it stays constant, so membership is monotone
// in p and binary search applies. It returns (1, false, nil) when the
// event stays outside the MPMCS even at p = 1 (e.g. the event is not in
// any minimal cut set competitive at probability one).
func (a *Analyzer) SwitchPoint(ctx context.Context, event string, tol float64) (float64, bool, error) {
	if a.tree.Event(event) == nil {
		return 0, false, fmt.Errorf("core: %q is not a basic event", event)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	contains := func(p float64) (bool, error) {
		sol, err := a.Analyze(ctx, map[string]float64{event: p})
		if err != nil {
			return false, err
		}
		for _, e := range sol.MPMCS {
			if e.ID == event {
				return true, nil
			}
		}
		return false, nil
	}
	atOne, err := contains(1)
	if err != nil {
		return 0, false, err
	}
	if !atOne {
		return 1, false, nil
	}
	lo, hi := 0.0, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		in, err := contains(mid)
		if err != nil {
			return 0, false, err
		}
		if in {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true, nil
}

// Tree returns a copy of the analyzer's base tree.
func (a *Analyzer) Tree() *ft.Tree { return a.tree.Clone() }

// AnalyzeAbove enumerates every minimal cut set whose probability is at
// least minProb, in descending order — "all the ways the system fails
// with probability ≥ τ". It is the threshold variant of AnalyzeTopK,
// built on the same blocking-clause loop.
func AnalyzeAbove(ctx context.Context, tree *ft.Tree, minProb float64, opts Options) ([]*Solution, error) {
	if minProb <= 0 || math.IsNaN(minProb) {
		return nil, fmt.Errorf("core: minProb must be in (0,1], got %v", minProb)
	}
	opts = opts.withDefaults()
	root := opts.tracer().StartSpan("analyze-above")
	defer root.End()
	steps, err := buildSteps(tree, opts, root)
	if err != nil {
		return nil, err
	}
	instance := steps.Instance.Clone()

	var out []*Solution
	for {
		res, report, err := solveSpanned(ctx, instance, opts, root)
		if err != nil {
			return out, err
		}
		if res.Status == maxsat.Infeasible {
			break // every cut set enumerated; the rest rank below minProb
		}
		if res.Status == maxsat.Unknown {
			// Deadline with nothing this round. An empty result must not
			// read as "no cut set reaches the threshold" when the truth
			// is "the solver never answered".
			if len(out) == 0 {
				return nil, noAnswerErr(ctx)
			}
			break
		}
		solution, err := decodeSolution(tree, steps, res, report, opts, root)
		if err != nil {
			return out, err
		}
		recordAnalysisMetrics(opts.Metrics, solution, report)
		if solution.Probability < minProb {
			break // everything after ranks lower still
		}
		out = append(out, solution)
		if res.Status == maxsat.Feasible {
			// Anytime round: not proven maximal, so stop before the
			// descending-order contract is violated.
			break
		}
		block := make([]cnf.Lit, 0, len(solution.MPMCS))
		for _, e := range solution.MPMCS {
			block = append(block, cnf.Lit(steps.Encoding.VarOf[e.ID]))
		}
		if len(block) == 0 {
			break
		}
		instance.AddHard(block...)
	}
	return out, nil
}
