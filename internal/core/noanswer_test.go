package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
)

// unknownSolver models an engine stopped before it learned anything: a
// deadline expiring before round 0 — Status Unknown, nil error (the
// Solver contract's "partial answer" shape the portfolio passes
// through when the race is cancelled cooperatively).
type unknownSolver struct{}

func (unknownSolver) Name() string { return "unknown-fake" }

func (unknownSolver) Solve(context.Context, *cnf.WCNF) (maxsat.Result, error) {
	return maxsat.Result{Status: maxsat.Unknown}, nil
}

func unknownEngines() []portfolio.Engine {
	return []portfolio.Engine{{Name: "unknown-fake", Solver: unknownSolver{}}}
}

// Regression for the deadline-vs-infeasible conflation: AnalyzeTopK
// used to break out of round 0 on maxsat.Unknown and then report
// ErrNoCutSet ("fault tree has no cut set") — a wrong answer about the
// tree, where the truth is merely "the solver never answered". It must
// report ErrNoAnswer instead.
func TestAnalyzeTopKDeadlineIsNotNoCutSet(t *testing.T) {
	_, err := AnalyzeTopK(context.Background(), gen.FPS(), 3,
		Options{Sequential: true, Engines: unknownEngines()})
	if err == nil {
		t.Fatal("expected an error from an answerless solve")
	}
	if errors.Is(err, ErrNoCutSet) {
		t.Fatalf("deadline expiry misclassified as ErrNoCutSet: %v", err)
	}
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("got %v, want ErrNoAnswer", err)
	}
}

// The completeness verdict: an Unknown truncation after round 0 keeps
// the earlier rounds but must mark the enumeration incomplete.
func TestAnalyzeTopKCompleteVerdict(t *testing.T) {
	tree := gen.FPS()

	// Unbounded run: exact and complete.
	sols, complete, err := AnalyzeTopKComplete(context.Background(), tree, 3, Options{Sequential: true})
	if err != nil {
		t.Fatalf("top-3: %v", err)
	}
	if !complete {
		t.Errorf("unbounded top-%d enumeration reported incomplete", len(sols))
	}
	for i, s := range sols {
		if s.Status != maxsat.Optimal.String() {
			t.Errorf("round %d status %q, want OPTIMAL", i, s.Status)
		}
	}

	// Anytime truncation (FEASIBLE round): incomplete.
	sols, complete, err = AnalyzeTopKComplete(context.Background(), tree, 5,
		Options{Sequential: true, Engines: anytimeEngines()})
	if err != nil {
		t.Fatalf("anytime top-k: %v", err)
	}
	if complete {
		t.Errorf("FEASIBLE-truncated enumeration (%d sols) reported complete", len(sols))
	}
}

// A k larger than the number of existing cut sets must still be
// complete: the final Infeasible round is an exhaustiveness proof.
func TestAnalyzeTopKCompleteExhausted(t *testing.T) {
	tree := gen.FPS()
	sols, complete, err := AnalyzeTopKComplete(context.Background(), tree, 1_000_000, Options{Sequential: true})
	if err != nil {
		t.Fatalf("exhaustive enumeration: %v", err)
	}
	if !complete {
		t.Errorf("exhausted enumeration of %d cut sets reported incomplete", len(sols))
	}
	if len(sols) == 0 || len(sols) == 1_000_000 {
		t.Fatalf("suspicious cut-set count %d", len(sols))
	}
}

// An expired real deadline must never surface as ErrNoCutSet either —
// whatever error shape the portfolio reports, it is about the budget.
func TestAnalyzeTopKExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sols, err := AnalyzeTopK(ctx, gen.FPS(), 3, Options{Sequential: true})
	if err == nil {
		if len(sols) == 0 {
			t.Fatal("nil error with zero solutions")
		}
		t.Skip("solver answered despite the expired deadline")
	}
	if errors.Is(err, ErrNoCutSet) {
		t.Fatalf("expired deadline misclassified as ErrNoCutSet: %v", err)
	}
	if !errors.Is(err, ErrNoAnswer) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v carries neither ErrNoAnswer nor DeadlineExceeded", err)
	}
}

// AnalyzeDisjoint shared the same round-0 conflation.
func TestAnalyzeDisjointDeadlineIsNotNoCutSet(t *testing.T) {
	_, err := AnalyzeDisjoint(context.Background(), gen.FPS(), 3,
		Options{Sequential: true, Engines: unknownEngines()})
	if err == nil {
		t.Fatal("expected an error from an answerless solve")
	}
	if errors.Is(err, ErrNoCutSet) {
		t.Fatalf("deadline expiry misclassified as ErrNoCutSet: %v", err)
	}
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("got %v, want ErrNoAnswer", err)
	}
}

// AnalyzeAbove: an answerless round 0 must be ErrNoAnswer, not the
// silent empty slice that reads as "nothing above the threshold".
func TestAnalyzeAboveDeadlineIsNoAnswer(t *testing.T) {
	_, err := AnalyzeAbove(context.Background(), gen.FPS(), 0.001,
		Options{Sequential: true, Engines: unknownEngines()})
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("got %v, want ErrNoAnswer", err)
	}
}

// Analyze's own no-answer path must match the taxonomy too.
func TestAnalyzeUnknownIsNoAnswer(t *testing.T) {
	_, err := Analyze(context.Background(), gen.FPS(), Options{Sequential: true, Engines: unknownEngines()})
	if !errors.Is(err, ErrNoAnswer) {
		t.Fatalf("got %v, want ErrNoAnswer", err)
	}
	if errors.Is(err, ErrNoCutSet) {
		t.Fatalf("no-answer misclassified as ErrNoCutSet: %v", err)
	}
}
