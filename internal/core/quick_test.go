package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/mcs"
	"mpmcs4fta/internal/quant"
)

// genTree is a quick.Generator producing small random fault trees.
type genTree struct {
	T *ft.Tree
}

// Generate implements quick.Generator.
func (genTree) Generate(r *rand.Rand, _ int) reflect.Value {
	tree, err := gen.Random(gen.Config{
		Events:     4 + r.Intn(8),
		Seed:       r.Int63(),
		VotingFrac: 0.2,
	})
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(genTree{T: tree})
}

func coreQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(113))}
}

// TestQuickSolutionIsMinimalCutSet: the pipeline's answer is always a
// minimal cut set whose probability is the product of its members'.
func TestQuickSolutionIsMinimalCutSet(t *testing.T) {
	ctx := context.Background()
	property := func(g genTree) bool {
		sol, err := Analyze(ctx, g.T, Options{Sequential: true})
		if err != nil {
			return false
		}
		minimal, err := mcs.IsMinimalCutSet(g.T, sol.CutSetIDs())
		if err != nil || !minimal {
			return false
		}
		product := 1.0
		probs := g.T.Probabilities()
		for _, id := range sol.CutSetIDs() {
			product *= probs[id]
		}
		return math.Abs(product-sol.Probability) <= 1e-9*product
	}
	if err := quick.Check(property, coreQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickMaxSATMatchesBDDBaseline: both engines find the same optimal
// probability.
func TestQuickMaxSATMatchesBDDBaseline(t *testing.T) {
	ctx := context.Background()
	property := func(g genTree) bool {
		viaSAT, err := Analyze(ctx, g.T, Options{Sequential: true})
		if err != nil {
			return false
		}
		viaBDD, err := AnalyzeBDD(g.T, Options{})
		if err != nil {
			return false
		}
		return mpmcsEqualProb(viaSAT, viaBDD)
	}
	if err := quick.Check(property, coreQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickMPMCSBoundsTopEventProbability: P(MPMCS) ≤ P(top) always
// (the most likely single cut set cannot exceed the union's
// probability), and both lie in (0, 1].
func TestQuickMPMCSBoundsTopEventProbability(t *testing.T) {
	ctx := context.Background()
	property := func(g genTree) bool {
		sol, err := Analyze(ctx, g.T, Options{Sequential: true})
		if err != nil {
			return false
		}
		top, err := quant.TopEventProbability(g.T)
		if err != nil {
			return false
		}
		return sol.Probability > 0 && sol.Probability <= top+1e-12 && top <= 1+1e-12
	}
	if err := quick.Check(property, coreQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickTopKIsSortedAndDistinct: ranked enumeration yields strictly
// distinct minimal cut sets in non-increasing probability order.
func TestQuickTopKIsSortedAndDistinct(t *testing.T) {
	ctx := context.Background()
	property := func(g genTree) bool {
		sols, err := AnalyzeTopK(ctx, g.T, 4, Options{Sequential: true})
		if err != nil {
			return false
		}
		seen := make(map[string]bool, len(sols))
		prev := math.Inf(1)
		for _, sol := range sols {
			if sol.Probability > prev+1e-12 {
				return false
			}
			prev = sol.Probability
			key := ""
			for _, id := range sol.CutSetIDs() {
				key += id + "|"
			}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(property, coreQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickEncodingChoiceIrrelevant: full Tseitin and
// Plaisted-Greenbaum produce the same optimum.
func TestQuickEncodingChoiceIrrelevant(t *testing.T) {
	ctx := context.Background()
	property := func(g genTree) bool {
		full, err := Analyze(ctx, g.T, Options{Sequential: true})
		if err != nil {
			return false
		}
		pg, err := Analyze(ctx, g.T, Options{Sequential: true, PlaistedGreenbaum: true})
		if err != nil {
			return false
		}
		return mpmcsEqualProb(full, pg)
	}
	if err := quick.Check(property, coreQuickConfig()); err != nil {
		t.Error(err)
	}
}
