package core

import (
	"fmt"
	"time"

	"mpmcs4fta/internal/bdd"
	"mpmcs4fta/internal/fp"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
)

// AnalyzeBDD computes the MPMCS with the BDD engine instead of MaxSAT:
// build the structure function's ROBDD, extract the minimal-cut-set
// family (Rauzy), and pick the maximum-probability member by dynamic
// programming. This is the comparison baseline the paper names as
// future work (Experiment E6 in DESIGN.md); it returns the same
// Solution document with Method/Solver identifying the engine.
//
// Variables are ordered by depth-first traversal from the top event —
// the standard fault-tree ordering heuristic: it keeps the events of
// one subsystem adjacent, which the declared insertion order destroys
// on generated workloads.
func AnalyzeBDD(tree *ft.Tree, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	start := time.Now()
	f, err := tree.Formula()
	if err != nil {
		return nil, err
	}
	events := tree.Events()
	m, err := bdd.NewManager(tree.DFSEventOrder())
	if err != nil {
		return nil, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := m.FromExpr(f)
	if err != nil {
		return nil, err
	}
	cuts, err := m.MinimalCutSets(ref)
	if err != nil {
		return nil, err
	}
	if cuts == bdd.ZEmpty {
		return nil, ErrNoCutSet
	}
	probs := tree.Probabilities()
	set, prob := m.ZBestSet(cuts, probs)
	if prob <= 0 {
		return nil, ErrZeroProbability
	}

	weights := LogWeights(events, opts.Scale)
	weightByID := make(map[string]EventWeight, len(weights))
	for _, w := range weights {
		weightByID[w.ID] = w
	}
	var (
		logCost float64
		members []SolutionEvent
	)
	for _, id := range set {
		w := weightByID[id]
		members = append(members, SolutionEvent{
			ID:          id,
			Description: tree.Event(id).Description,
			Prob:        w.Prob,
			Weight:      w.Weight,
		})
		logCost += w.Weight
	}

	stats := tree.Stats()
	return &Solution{
		Tree:        tree.Name(),
		Method:      "BDD (Rauzy minimal cut sets)",
		MPMCS:       members,
		Probability: prob,
		LogCost:     logCost,
		Solver:      "bdd",
		Status:      maxsat.Optimal.String(),
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
		Stats: SolutionStats{
			Events: stats.Events,
			Gates:  stats.Gates,
			Vars:   m.NumNodes(),
		},
		Weights: weights,
	}, nil
}

// AnalyzeTopKBDD returns up to k minimal cut sets ranked by descending
// probability, computed entirely on the BDD side: Rauzy cut-set family
// plus exact best-first enumeration (bdd.ZTopSets). It is the
// counterpart of AnalyzeTopK for cross-checking the MaxSAT
// blocking-clause loop.
func AnalyzeTopKBDD(tree *ft.Tree, k int, opts Options) ([]*Solution, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	opts = opts.withDefaults()
	start := time.Now()
	f, err := tree.Formula()
	if err != nil {
		return nil, err
	}
	events := tree.Events()
	m, err := bdd.NewManager(tree.DFSEventOrder())
	if err != nil {
		return nil, err
	}
	m.SetNodeLimit(bdd.DefaultNodeLimit)
	ref, err := m.FromExpr(f)
	if err != nil {
		return nil, err
	}
	cuts, err := m.MinimalCutSets(ref)
	if err != nil {
		return nil, err
	}
	if cuts == bdd.ZEmpty {
		return nil, ErrNoCutSet
	}
	ranked := m.ZTopSets(cuts, tree.Probabilities(), k)
	elapsed := float64(time.Since(start).Microseconds()) / 1000

	weights := LogWeights(events, opts.Scale)
	weightByID := make(map[string]EventWeight, len(weights))
	for _, w := range weights {
		weightByID[w.ID] = w
	}
	stats := tree.Stats()
	out := make([]*Solution, 0, len(ranked))
	for _, r := range ranked {
		var (
			members []SolutionEvent
			logCost float64
		)
		for _, id := range r.Set {
			w := weightByID[id]
			members = append(members, SolutionEvent{
				ID:          id,
				Description: tree.Event(id).Description,
				Prob:        w.Prob,
				Weight:      w.Weight,
			})
			logCost += w.Weight
		}
		out = append(out, &Solution{
			Tree:        tree.Name(),
			Method:      "BDD (Rauzy minimal cut sets)",
			MPMCS:       members,
			Probability: r.Prob,
			LogCost:     logCost,
			Solver:      "bdd",
			Status:      maxsat.Optimal.String(),
			ElapsedMS:   elapsed,
			Stats: SolutionStats{
				Events: stats.Events,
				Gates:  stats.Gates,
				Vars:   m.NumNodes(),
			},
			Weights: weights,
		})
	}
	return out, nil
}

// mpmcsEqualProb reports whether two solutions agree on the MPMCS
// probability within floating-point tolerance — used by tests and the
// benchmark harness to cross-check MaxSAT against the BDD baseline
// (ties between distinct cut sets of equal probability are legitimate).
func mpmcsEqualProb(a, b *Solution) bool {
	if a == nil || b == nil {
		return a == b
	}
	return fp.Eq(a.Probability, b.Probability)
}
