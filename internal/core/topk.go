package core

import (
	"context"
	"fmt"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
)

// AnalyzeTopK returns up to k minimal cut sets in descending
// probability order, starting with the MPMCS. Each round re-solves the
// MaxSAT instance with a blocking clause requiring at least one event
// of every previously reported cut set to survive, which excludes that
// set and all its supersets — exactly the fault-prioritisation workflow
// the paper motivates.
func AnalyzeTopK(ctx context.Context, tree *ft.Tree, k int, opts Options) ([]*Solution, error) {
	opts = opts.withDefaults()
	if k < 1 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if k == 1 {
		// A top-1 query is exactly Analyze, which can exploit modular
		// decomposition; enumeration beyond the first set needs global
		// blocking clauses and stays monolithic.
		if plan := decompositionPlan(tree, opts); plan != nil {
			solution, err := Analyze(ctx, tree, opts)
			if err != nil {
				return nil, err
			}
			return []*Solution{solution}, nil
		}
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	root := opts.tracer().StartSpan("analyze-topk")
	defer root.End()
	if root.Recording() {
		root.SetString("tree", tree.Name())
		root.SetInt("k", int64(k))
	}
	steps, err := buildSteps(tree, opts, root)
	if err != nil {
		return nil, err
	}
	instance := steps.Instance.Clone()

	var out []*Solution
	for round := 0; round < k; round++ {
		start := time.Now()
		res, report, err := solveSpanned(ctx, instance, opts, root)
		if err != nil {
			return out, err
		}
		if res.Status == maxsat.Infeasible {
			break // all cut sets enumerated
		}
		if res.Status == maxsat.Unknown {
			break // deadline with nothing to report; keep earlier rounds
		}
		solution, err := decodeSolution(tree, steps, res, report, opts, root)
		if err != nil {
			return out, err
		}
		solution.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		recordAnalysisMetrics(opts.Metrics, solution, report)
		out = append(out, solution)
		if res.Status == maxsat.Feasible {
			// An anytime round is not proven maximal, so later rounds
			// could rank out of order: report it and stop enumerating.
			break
		}

		// Block this cut set and all supersets: at least one member
		// event must not fail (yᵢ true).
		block := make([]cnf.Lit, 0, len(solution.MPMCS))
		for _, e := range solution.MPMCS {
			block = append(block, cnf.Lit(steps.Encoding.VarOf[e.ID]))
		}
		if len(block) == 0 {
			// The empty cut set (top event unconditionally true) has no
			// supersets to block; enumeration is complete.
			break
		}
		instance.AddHard(block...)
	}
	if len(out) == 0 {
		return nil, ErrNoCutSet
	}
	return out, nil
}
