package core

import (
	"context"
	"fmt"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
)

// AnalyzeTopK returns up to k minimal cut sets in descending
// probability order, starting with the MPMCS. Each round re-solves the
// MaxSAT instance with a blocking clause requiring at least one event
// of every previously reported cut set to survive, which excludes that
// set and all its supersets — exactly the fault-prioritisation workflow
// the paper motivates.
//
// When the deadline expires before the first round produces anything,
// the error wraps ErrNoAnswer (and the context's error), never
// ErrNoCutSet: a timeout is not an infeasibility proof. A deadline
// that strikes after some rounds completed returns those rounds.
func AnalyzeTopK(ctx context.Context, tree *ft.Tree, k int, opts Options) ([]*Solution, error) {
	out, _, err := AnalyzeTopKComplete(ctx, tree, k, opts)
	return out, err
}

// AnalyzeTopKComplete is AnalyzeTopK plus an exactness verdict:
// complete is true only when every returned solution is proven OPTIMAL
// and the enumeration itself is exhaustive — either k sets were
// produced, or the solver proved no further cut set exists. A deadline
// truncation (fewer than k sets without an infeasibility proof, or a
// FEASIBLE final round) reports complete=false, which is the signal a
// result cache needs: only complete enumerations may be reused.
func AnalyzeTopKComplete(ctx context.Context, tree *ft.Tree, k int, opts Options) (out []*Solution, complete bool, err error) {
	opts = opts.withDefaults()
	if k < 1 {
		return nil, false, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if k == 1 {
		// A top-1 query is exactly Analyze, which can exploit modular
		// decomposition; enumeration beyond the first set needs global
		// blocking clauses and stays monolithic.
		if plan := decompositionPlan(tree, opts); plan != nil {
			solution, err := Analyze(ctx, tree, opts)
			if err != nil {
				return nil, false, err
			}
			return []*Solution{solution}, solution.Status == maxsat.Optimal.String(), nil
		}
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	root := opts.tracer().StartSpan("analyze-topk")
	defer root.End()
	if root.Recording() {
		root.SetString("tree", tree.Name())
		root.SetInt("k", int64(k))
	}
	steps, err := buildSteps(tree, opts, root)
	if err != nil {
		return nil, false, err
	}
	instance := steps.Instance.Clone()

	complete = true // until a deadline truncation proves otherwise
	for round := 0; round < k; round++ {
		start := time.Now()
		res, report, err := solveSpanned(ctx, instance, opts, root)
		if err != nil {
			return out, false, err
		}
		if res.Status == maxsat.Infeasible {
			if round == 0 {
				// No cut set at all: a genuine infeasibility proof, not
				// a budget artefact.
				return nil, true, ErrNoCutSet
			}
			break // all cut sets enumerated
		}
		if res.Status == maxsat.Unknown {
			// Deadline with nothing to report this round: keep earlier
			// rounds, but the enumeration is truncated, and an empty
			// result is "no answer", never "no cut set".
			complete = false
			if round == 0 {
				return nil, false, noAnswerErr(ctx)
			}
			break
		}
		solution, err := decodeSolution(tree, steps, res, report, opts, root)
		if err != nil {
			return out, false, err
		}
		solution.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		recordAnalysisMetrics(opts.Metrics, solution, report)
		out = append(out, solution)
		if res.Status == maxsat.Feasible {
			// An anytime round is not proven maximal, so later rounds
			// could rank out of order: report it and stop enumerating.
			complete = false
			break
		}

		// Block this cut set and all supersets: at least one member
		// event must not fail (yᵢ true).
		block := make([]cnf.Lit, 0, len(solution.MPMCS))
		for _, e := range solution.MPMCS {
			block = append(block, cnf.Lit(steps.Encoding.VarOf[e.ID]))
		}
		if len(block) == 0 {
			// The empty cut set (top event unconditionally true) has no
			// supersets to block; enumeration is complete.
			break
		}
		instance.AddHard(block...)
	}
	return out, complete, nil
}
