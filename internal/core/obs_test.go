package core

import (
	"context"
	"testing"
	"time"

	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/obs"
)

// collectNames flattens a span tree into name → count.
func collectNames(recs []*obs.SpanRecord, into map[string]int) {
	for _, r := range recs {
		into[r.Name]++
		collectNames(r.Children, into)
	}
}

func TestAnalyzeTraceCoversSixSteps(t *testing.T) {
	tracer := obs.NewJSONTracer()
	sol, err := Analyze(context.Background(), gen.FPS(), Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}

	names := make(map[string]int)
	collectNames(tracer.Roots(), names)
	for _, step := range []string{"analyze", "validate", "formula", "weights", "encode", "solve", "decode"} {
		if names[step] == 0 {
			t.Errorf("trace missing %q span; got %v", step, names)
		}
	}
	// One engine span per portfolio member, losers included.
	engineSpans := 0
	for name, n := range names {
		if len(name) > 7 && name[:7] == "engine:" {
			engineSpans += n
		}
	}
	if want := len(Options{}.withDefaults().Engines); engineSpans != want {
		t.Errorf("got %d engine spans, want %d (every member, including losers)", engineSpans, want)
	}

	// The winning engine's counters must surface in the solution stats.
	st := sol.Stats.Solver
	if st.SATCalls == 0 && st.Decisions == 0 {
		t.Errorf("solution stats carry no solver counters: %+v", st)
	}
	if len(st.Bounds) == 0 {
		t.Error("solution stats missing the bound trajectory")
	}
}

func TestAnalyzeTraceEngineCounters(t *testing.T) {
	tracer := obs.NewJSONTracer()
	if _, err := Analyze(context.Background(), gen.FPS(), Options{Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	var check func(recs []*obs.SpanRecord)
	found := 0
	check = func(recs []*obs.SpanRecord) {
		for _, r := range recs {
			if len(r.Name) > 7 && r.Name[:7] == "engine:" {
				found++
				for _, key := range []string{"satCalls", "conflicts", "decisions", "propagations"} {
					if _, ok := r.Attrs[key]; !ok {
						t.Errorf("engine span %s missing %q attr: %v", r.Name, key, r.Attrs)
					}
				}
			}
			check(r.Children)
		}
	}
	check(tracer.Roots())
	if found == 0 {
		t.Fatal("no engine spans recorded")
	}
}

func TestAnalyzeMetrics(t *testing.T) {
	m := obs.NewMetrics()
	if _, err := Analyze(context.Background(), gen.FPS(), Options{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.Get("analyses"); got != 1 {
		t.Errorf("analyses = %d", got)
	}
	winners := int64(0)
	for name, v := range m.Snapshot() {
		if len(name) > 7 && name[:7] == "winner." {
			winners += v
		}
	}
	if winners != 1 {
		t.Errorf("winner counters sum to %d, want 1", winners)
	}
}

func TestAnalyzeTopKTraced(t *testing.T) {
	tracer := obs.NewJSONTracer()
	sols, err := AnalyzeTopK(context.Background(), gen.FPS(), 2, Options{Tracer: tracer, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions", len(sols))
	}
	names := make(map[string]int)
	collectNames(tracer.Roots(), names)
	if names["analyze-topk"] != 1 {
		t.Errorf("want one analyze-topk root, got %v", names)
	}
	if names["solve"] < 2 || names["decode"] < 2 {
		t.Errorf("want one solve+decode per round, got %v", names)
	}
	for _, step := range []string{"validate", "formula", "weights", "encode"} {
		if names[step] != 1 {
			t.Errorf("steps 1-4 should run once, got %v", names)
		}
	}
}

// TestAnalyzeNoTracerZeroStepAllocs pins the acceptance criterion that
// the disabled tracing path creates no per-step objects: the no-op
// span tree used by buildSteps and friends must not allocate.
func TestAnalyzeNoTracerZeroStepAllocs(t *testing.T) {
	var opts Options
	tr := opts.tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.StartSpan("analyze")
		for _, step := range [...]string{"validate", "formula", "weights", "encode", "solve", "decode"} {
			sp := root.StartSpan(step)
			if sp.Recording() {
				sp.SetInt("vars", 1)
			}
			sp.End()
		}
		root.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing path allocates %v objects per analysis, want 0", allocs)
	}
}

// TestAnalyzeEventStream runs a full portfolio solve with a live event
// bus attached and checks the acceptance contract of the /events
// stream: a solveStarted opener, strictly increasing sequence numbers,
// a monotone bound trajectory (upper bounds never rise, lower bounds
// never fall — BoundImproved is published under the Bounds lock), and
// a solveFinished terminal frame.
func TestAnalyzeEventStream(t *testing.T) {
	bus := obs.NewEventBus()
	sub := bus.Subscribe(4096)
	defer sub.Close()

	sol, err := Analyze(context.Background(), gen.FPS(), Options{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}

	var events []obs.Event
	deadline := time.After(10 * time.Second)
drain:
	for {
		select {
		case ev := <-sub.Events():
			events = append(events, ev)
			if ev.Kind == obs.KindSolveFinished {
				break drain
			}
		case <-deadline:
			t.Fatalf("no solveFinished terminal frame; %d events so far", len(events))
		}
	}

	if events[0].Kind != obs.KindSolveStarted {
		t.Errorf("first event kind %q, want %q", events[0].Kind, obs.KindSolveStarted)
	}
	started, ok := events[0].Data.(obs.SolveStarted)
	if !ok || started.Engines == 0 || started.Vars == 0 {
		t.Errorf("solveStarted payload %#v, want engine and variable counts", events[0].Data)
	}

	var lastSeq uint64
	var lastLB int64 = -1 << 62
	var lastUB int64 = 1<<62 - 1
	boundFrames := 0
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence numbers not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.AtMS < 0 {
			t.Fatalf("negative event timestamp %v", ev.AtMS)
		}
		bi, ok := ev.Data.(obs.BoundImproved)
		if !ok {
			continue
		}
		boundFrames++
		if bi.Engine == "" {
			t.Errorf("bound frame without engine attribution: %+v", bi)
		}
		if bi.Lower < lastLB {
			t.Errorf("lower bound fell: %d after %d", bi.Lower, lastLB)
		}
		lastLB = bi.Lower
		if bi.Upper >= 0 {
			if bi.Upper > lastUB {
				t.Errorf("upper bound rose: %d after %d", bi.Upper, lastUB)
			}
			lastUB = bi.Upper
		}
	}
	if boundFrames == 0 {
		t.Error("no BoundImproved frames in the stream")
	}

	fin, ok := events[len(events)-1].Data.(obs.SolveFinished)
	if !ok {
		t.Fatalf("terminal frame payload %#v, want SolveFinished", events[len(events)-1].Data)
	}
	if fin.Status != sol.Status {
		t.Errorf("terminal frame status %q, want the solution's %q", fin.Status, sol.Status)
	}
	if fin.ElapsedMS < 0 {
		t.Errorf("negative elapsed %v in terminal frame", fin.ElapsedMS)
	}

	// The winner's bound trajectory is tagged with the portfolio's
	// registered engine name, so merged trajectories stay attributable.
	for _, step := range sol.Stats.Solver.Bounds {
		if step.Engine == "" {
			t.Errorf("untagged bound step %+v in solution stats", step)
		}
	}
}
