package core

import (
	"context"
	"testing"

	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/obs"
)

// collectNames flattens a span tree into name → count.
func collectNames(recs []*obs.SpanRecord, into map[string]int) {
	for _, r := range recs {
		into[r.Name]++
		collectNames(r.Children, into)
	}
}

func TestAnalyzeTraceCoversSixSteps(t *testing.T) {
	tracer := obs.NewJSONTracer()
	sol, err := Analyze(context.Background(), gen.FPS(), Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}

	names := make(map[string]int)
	collectNames(tracer.Roots(), names)
	for _, step := range []string{"analyze", "validate", "formula", "weights", "encode", "solve", "decode"} {
		if names[step] == 0 {
			t.Errorf("trace missing %q span; got %v", step, names)
		}
	}
	// One engine span per portfolio member, losers included.
	engineSpans := 0
	for name, n := range names {
		if len(name) > 7 && name[:7] == "engine:" {
			engineSpans += n
		}
	}
	if want := len(Options{}.withDefaults().Engines); engineSpans != want {
		t.Errorf("got %d engine spans, want %d (every member, including losers)", engineSpans, want)
	}

	// The winning engine's counters must surface in the solution stats.
	st := sol.Stats.Solver
	if st.SATCalls == 0 && st.Decisions == 0 {
		t.Errorf("solution stats carry no solver counters: %+v", st)
	}
	if len(st.Bounds) == 0 {
		t.Error("solution stats missing the bound trajectory")
	}
}

func TestAnalyzeTraceEngineCounters(t *testing.T) {
	tracer := obs.NewJSONTracer()
	if _, err := Analyze(context.Background(), gen.FPS(), Options{Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	var check func(recs []*obs.SpanRecord)
	found := 0
	check = func(recs []*obs.SpanRecord) {
		for _, r := range recs {
			if len(r.Name) > 7 && r.Name[:7] == "engine:" {
				found++
				for _, key := range []string{"satCalls", "conflicts", "decisions", "propagations"} {
					if _, ok := r.Attrs[key]; !ok {
						t.Errorf("engine span %s missing %q attr: %v", r.Name, key, r.Attrs)
					}
				}
			}
			check(r.Children)
		}
	}
	check(tracer.Roots())
	if found == 0 {
		t.Fatal("no engine spans recorded")
	}
}

func TestAnalyzeMetrics(t *testing.T) {
	m := obs.NewMetrics()
	if _, err := Analyze(context.Background(), gen.FPS(), Options{Metrics: m}); err != nil {
		t.Fatal(err)
	}
	if got := m.Get("analyses"); got != 1 {
		t.Errorf("analyses = %d", got)
	}
	winners := int64(0)
	for name, v := range m.Snapshot() {
		if len(name) > 7 && name[:7] == "winner." {
			winners += v
		}
	}
	if winners != 1 {
		t.Errorf("winner counters sum to %d, want 1", winners)
	}
}

func TestAnalyzeTopKTraced(t *testing.T) {
	tracer := obs.NewJSONTracer()
	sols, err := AnalyzeTopK(context.Background(), gen.FPS(), 2, Options{Tracer: tracer, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 2 {
		t.Fatalf("got %d solutions", len(sols))
	}
	names := make(map[string]int)
	collectNames(tracer.Roots(), names)
	if names["analyze-topk"] != 1 {
		t.Errorf("want one analyze-topk root, got %v", names)
	}
	if names["solve"] < 2 || names["decode"] < 2 {
		t.Errorf("want one solve+decode per round, got %v", names)
	}
	for _, step := range []string{"validate", "formula", "weights", "encode"} {
		if names[step] != 1 {
			t.Errorf("steps 1-4 should run once, got %v", names)
		}
	}
}

// TestAnalyzeNoTracerZeroStepAllocs pins the acceptance criterion that
// the disabled tracing path creates no per-step objects: the no-op
// span tree used by buildSteps and friends must not allocate.
func TestAnalyzeNoTracerZeroStepAllocs(t *testing.T) {
	var opts Options
	tr := opts.tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.StartSpan("analyze")
		for _, step := range [...]string{"validate", "formula", "weights", "encode", "solve", "decode"} {
			sp := root.StartSpan(step)
			if sp.Recording() {
				sp.SetInt("vars", 1)
			}
			sp.End()
		}
		root.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracing path allocates %v objects per analysis, want 0", allocs)
	}
}
