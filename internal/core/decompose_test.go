package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/obs"
)

// fourModuleTree builds top = OR(m1..m4) with four independent modules
// of distinct optima; the global MPMCS is m4's {d1, d2} at p = 0.4.
func fourModuleTree(t *testing.T) *ft.Tree {
	t.Helper()
	tree := ft.New("four-modules")
	add := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	for id, p := range map[string]float64{
		"a1": 0.3, "a2": 0.4, "a3": 0.5,
		"b1": 0.01, "b2": 0.002, "b3": 0.03,
		"c1": 0.1, "c2": 0.2, "c3": 0.25,
		"d1": 0.5, "d2": 0.8,
	} {
		add(tree.AddEvent(id, p))
	}
	add(tree.AddAnd("m1", "a1", "a2", "a3"))       // 0.06
	add(tree.AddOr("m2", "b1", "b2", "b3"))        // 0.03
	add(tree.AddVoting("m3", 2, "c1", "c2", "c3")) // 0.05
	add(tree.AddAnd("m4", "d1", "d2"))             // 0.40 — the winner
	add(tree.AddOr("top", "m1", "m2", "m3", "m4"))
	tree.SetTop("top")
	return tree
}

// TestAnalyzeDecomposedMatchesMonolithic: on a tree with ≥4 independent
// modules, the decomposed path must return the identical optimal cut
// set, cost and probability as the monolithic path.
func TestAnalyzeDecomposedMatchesMonolithic(t *testing.T) {
	tree := fourModuleTree(t)
	metrics := obs.NewMetrics()
	decomposed, err := Analyze(context.Background(), tree, Options{
		Sequential:         true,
		DecomposeMinEvents: 2,
		Metrics:            metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.Get("modular_analyses"); got != 1 {
		t.Fatalf("modular_analyses = %d: the decomposed path did not run", got)
	}
	if got := metrics.Get("modules_solved"); got < 4 {
		t.Fatalf("modules_solved = %d, want ≥4", got)
	}

	monolithic, err := Analyze(context.Background(), tree, Options{
		Sequential:  true,
		NoDecompose: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := strings.Join(decomposed.CutSetIDs(), ","), strings.Join(monolithic.CutSetIDs(), ","); got != want {
		t.Fatalf("decomposed cut set %s, monolithic %s", got, want)
	}
	if got, want := decomposed.Probability, monolithic.Probability; math.Abs(got-want) > 1e-9*math.Max(got, want) {
		t.Fatalf("probability %v vs %v", got, want)
	}
	if math.Abs(decomposed.LogCost-monolithic.LogCost) > 1e-9 {
		t.Fatalf("logCost %v vs %v", decomposed.LogCost, monolithic.LogCost)
	}
	if decomposed.Status != "OPTIMAL" || monolithic.Status != "OPTIMAL" {
		t.Fatalf("status %s vs %s, want OPTIMAL", decomposed.Status, monolithic.Status)
	}
	if got := strings.Join(decomposed.CutSetIDs(), ","); got != "d1,d2" {
		t.Fatalf("MPMCS = %s, want d1,d2", got)
	}
	if math.Abs(decomposed.Probability-0.4) > 1e-9 {
		t.Fatalf("probability = %v, want 0.4", decomposed.Probability)
	}
	// Aggregated instance sizes cover every module solve.
	if decomposed.Stats.Vars <= 0 || decomposed.Stats.SoftClauses < tree.NumEvents() {
		t.Fatalf("aggregated stats look empty: %+v", decomposed.Stats)
	}
	if decomposed.Solver == "" {
		t.Fatal("decomposed solution has no winning engine")
	}
	// Both report the full Table-I transform over the original events.
	if len(decomposed.Weights) != tree.NumEvents() {
		t.Fatalf("weights table has %d rows, want %d", len(decomposed.Weights), tree.NumEvents())
	}
}

// TestAnalyzeTopK1RoutesThroughDecomposition: the CLI's default top-1
// query goes through Analyze (and so the planner) when a plan exists.
func TestAnalyzeTopK1RoutesThroughDecomposition(t *testing.T) {
	tree := fourModuleTree(t)
	metrics := obs.NewMetrics()
	out, err := AnalyzeTopK(context.Background(), tree, 1, Options{
		Sequential:         true,
		DecomposeMinEvents: 2,
		Metrics:            metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("top-1 returned %d solutions", len(out))
	}
	if got := metrics.Get("modular_analyses"); got != 1 {
		t.Fatalf("modular_analyses = %d: top-1 did not route through decomposition", got)
	}
	if got := strings.Join(out[0].CutSetIDs(), ","); got != "d1,d2" {
		t.Fatalf("MPMCS = %s, want d1,d2", got)
	}

	// k > 1 must stay monolithic: blocking clauses are global.
	multi, err := AnalyzeTopK(context.Background(), tree, 3, Options{
		Sequential:         true,
		DecomposeMinEvents: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 3 {
		t.Fatalf("top-3 returned %d solutions", len(multi))
	}
	if got := strings.Join(multi[0].CutSetIDs(), ","); got != "d1,d2" {
		t.Fatalf("top-3 first set = %s, want d1,d2", got)
	}
	for i := 1; i < len(multi); i++ {
		if multi[i].Probability > multi[i-1].Probability {
			t.Fatalf("top-k out of order at %d: %v > %v", i, multi[i].Probability, multi[i-1].Probability)
		}
	}
}

// TestAnalyzeNoDecomposeMatchesDefault: the flag-off fallback and the
// default path agree on a modular tree even at the default MinEvents
// threshold (where this small tree stays monolithic anyway).
func TestAnalyzeNoDecomposeMatchesDefault(t *testing.T) {
	tree := fourModuleTree(t)
	def, err := Analyze(context.Background(), tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Analyze(context.Background(), tree, Options{Sequential: true, NoDecompose: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(def.CutSetIDs(), ",") != strings.Join(off.CutSetIDs(), ",") {
		t.Fatalf("cut sets differ: %v vs %v", def.CutSetIDs(), off.CutSetIDs())
	}
}

// TestAnalyzeDecomposedImpossibleModule: a module that can never occur
// becomes a hard pseudo-event and the optimum comes from elsewhere;
// a tree whose top depends on the impossible module yields ErrNoCutSet
// exactly like the monolithic path.
func TestAnalyzeDecomposedImpossibleModule(t *testing.T) {
	tree := ft.New("impossible-module")
	add := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	add(tree.AddEvent("z", 0))
	for id, p := range map[string]float64{"a1": 0.2, "a2": 0.3, "b1": 0.1, "b2": 0.4} {
		add(tree.AddEvent(id, p))
	}
	add(tree.AddAnd("m1", "z", "a1", "a2"))
	add(tree.AddAnd("m2", "b1", "b2"))
	add(tree.AddOr("top", "m1", "m2"))
	tree.SetTop("top")

	sol, err := Analyze(context.Background(), tree, Options{Sequential: true, DecomposeMinEvents: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(sol.CutSetIDs(), ","); got != "b1,b2" {
		t.Fatalf("MPMCS = %s, want b1,b2", got)
	}

	blocked := ft.New("blocked")
	add(blocked.AddEvent("z", 0))
	for id, p := range map[string]float64{"a1": 0.2, "a2": 0.3, "b1": 0.1, "b2": 0.4} {
		add(blocked.AddEvent(id, p))
	}
	add(blocked.AddAnd("m1", "z", "a1", "a2"))
	add(blocked.AddOr("m2", "b1", "b2"))
	add(blocked.AddAnd("top", "m1", "m2"))
	blocked.SetTop("top")
	if _, err := Analyze(context.Background(), blocked, Options{Sequential: true, DecomposeMinEvents: 2}); err != ErrNoCutSet {
		t.Fatalf("blocked tree error = %v, want ErrNoCutSet", err)
	}
}
