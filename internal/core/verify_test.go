package core

import (
	"context"
	"testing"

	"mpmcs4fta/internal/gen"
)

func TestVerifySolutionAccepts(t *testing.T) {
	ctx := context.Background()
	sol, err := Analyze(ctx, gen.FPS(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySolution(gen.FPS(), sol); err != nil {
		t.Errorf("genuine solution rejected: %v", err)
	}
}

func TestVerifySolutionRejectsTampering(t *testing.T) {
	ctx := context.Background()
	sol, err := Analyze(ctx, gen.FPS(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("nil", func(t *testing.T) {
		if err := VerifySolution(gen.FPS(), nil); err == nil {
			t.Error("nil solution accepted")
		}
	})
	t.Run("wrong probability", func(t *testing.T) {
		tampered := *sol
		tampered.Probability = 0.5
		if err := VerifySolution(gen.FPS(), &tampered); err == nil {
			t.Error("tampered probability accepted")
		}
	})
	t.Run("non-minimal set", func(t *testing.T) {
		tampered := *sol
		tampered.MPMCS = append(append([]SolutionEvent(nil), sol.MPMCS...), SolutionEvent{
			ID: "x5", Prob: 0.05, Weight: 2.99573,
		})
		if err := VerifySolution(gen.FPS(), &tampered); err == nil {
			t.Error("non-minimal set accepted")
		}
	})
	t.Run("unknown event", func(t *testing.T) {
		tampered := *sol
		tampered.MPMCS = []SolutionEvent{{ID: "ghost", Prob: 1}}
		if err := VerifySolution(gen.FPS(), &tampered); err == nil {
			t.Error("unknown event accepted")
		}
	})
	t.Run("drifted event probability", func(t *testing.T) {
		tampered := *sol
		tampered.MPMCS = append([]SolutionEvent(nil), sol.MPMCS...)
		tampered.MPMCS[0].Prob += 0.01
		if err := VerifySolution(gen.FPS(), &tampered); err == nil {
			t.Error("drifted probability accepted")
		}
	})
	t.Run("wrong tree", func(t *testing.T) {
		if err := VerifySolution(gen.PressureTank(), sol); err == nil {
			t.Error("solution verified against the wrong tree")
		}
	})
}

func TestAnalyzeDisjointFPS(t *testing.T) {
	ctx := context.Background()
	sols, err := AnalyzeDisjoint(ctx, gen.FPS(), 10, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// {x1,x2} first; then the best disjoint from it: {x3}=.001,
	// {x4}=.002, {x5,x6}=.005 all disjoint → {x5,x6}; then among sets
	// disjoint from both: {x3}, {x4} → {x4}; then {x3}.
	wantSets := [][]string{
		{"x1", "x2"},
		{"x5", "x6"},
		{"x4"},
		{"x3"},
	}
	if len(sols) != len(wantSets) {
		t.Fatalf("got %d disjoint sets, want %d", len(sols), len(wantSets))
	}
	used := make(map[string]bool)
	for i, sol := range sols {
		ids := sol.CutSetIDs()
		if len(ids) != len(wantSets[i]) {
			t.Fatalf("rank %d: %v, want %v", i+1, ids, wantSets[i])
		}
		for j := range ids {
			if ids[j] != wantSets[i][j] {
				t.Fatalf("rank %d: %v, want %v", i+1, ids, wantSets[i])
			}
			if used[ids[j]] {
				t.Fatalf("event %s reused across disjoint sets", ids[j])
			}
			used[ids[j]] = true
		}
	}
}

func TestAnalyzeDisjointErrors(t *testing.T) {
	if _, err := AnalyzeDisjoint(context.Background(), gen.FPS(), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestAnalyzeDisjointSolutionsVerify(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 6; seed++ {
		tree, err := gen.Random(gen.Config{Events: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sols, err := AnalyzeDisjoint(ctx, tree, 5, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, sol := range sols {
			if err := VerifySolution(tree, sol); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}
