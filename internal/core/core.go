// Package core implements the paper's contribution: computing the
// Maximum Probability Minimal Cut Set (MPMCS) of a fault tree by
// reduction to Weighted Partial MaxSAT, solved by a parallel portfolio.
//
// The six steps of the resolution method map to this package as
// follows:
//
//	Step 1 (logical transformation)  — Steps.SuccessFormula via boolexpr.Dual
//	Step 2 (CNF conversion)          — Steps.Encoding via cnf.Tseitin
//	Step 3 (−log weights)            — Steps.Weights via LogWeights
//	Step 4 (WPMS instance)           — Steps.Instance (hard CNF + unit softs)
//	Step 5 (parallel resolution)     — portfolio.Solve
//	Step 6 (reverse transformation)  — exp(−Σ wᵢ) over the chosen events
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"mpmcs4fta/internal/boolexpr"
	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/fp"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/portfolio"
)

// DefaultScale converts float −log weights to the integer weights used
// by the MaxSAT engines: wᵢ(int) = round(wᵢ · DefaultScale). At 1e7 the
// rounding error per event is below 5e-8 in log space, far finer than
// any realistic probability estimate.
const DefaultScale = 1e7

// Sentinel errors.
var (
	// ErrNoCutSet is returned when the top event cannot occur at all
	// (no cut set exists under the given constraints).
	ErrNoCutSet = errors.New("core: fault tree has no cut set")
	// ErrZeroProbability is returned when every cut set has probability
	// zero (all involve impossible events).
	ErrZeroProbability = errors.New("core: all cut sets have probability zero")
	// ErrNoAnswer is returned when the solve ended (deadline expiry,
	// cancellation) before any answer — optimal, anytime incumbent or
	// infeasibility proof — was established. It is distinct from
	// ErrNoCutSet: "we ran out of time" is not "the tree has no cut
	// set", and conflating them turns a transient budget artefact into
	// a wrong (and cacheable) verdict about the tree.
	ErrNoAnswer = errors.New("core: no answer before the deadline")
)

// noAnswerErr wraps ErrNoAnswer together with the context's own error
// when the context has expired, so callers can match either sentinel
// (errors.Is(err, ErrNoAnswer), errors.Is(err, context.DeadlineExceeded)).
func noAnswerErr(ctx context.Context) error {
	if cause := ctx.Err(); cause != nil {
		return fmt.Errorf("%w (%w)", ErrNoAnswer, cause)
	}
	return ErrNoAnswer
}

// Options configures the pipeline. The zero value selects defaults.
type Options struct {
	// Engines is the Step-5 portfolio; nil selects
	// portfolio.DefaultEngines().
	Engines []portfolio.Engine
	// Sequential runs the engines one at a time (deterministic winner,
	// useful for tests and per-engine benchmarking).
	Sequential bool
	// Scale overrides DefaultScale.
	Scale float64
	// PlaistedGreenbaum selects the polarity-aware CNF encoding in
	// Step 2.
	PlaistedGreenbaum bool
	// Timeout bounds the whole analysis (0 = none).
	Timeout time.Duration
	// Tracer records hierarchical spans for the six pipeline steps and
	// the per-engine portfolio race. Nil disables tracing at zero cost.
	Tracer obs.Tracer
	// Metrics, when non-nil, accumulates process-level counters
	// (analyses, winner tallies, solver work) across calls, and is
	// plumbed into the solvers to record live histograms (SAT-call
	// latency, learnt-clause lengths, trail depths).
	Metrics *obs.Metrics
	// Bus, when non-nil, receives live solver events — solve and engine
	// lifecycle, bound improvements, restarts, heartbeats — while the
	// analysis runs (see obs.EventBus and obs.Server). Nil disables the
	// event path at zero cost.
	Bus *obs.EventBus
	// NoDecompose disables modular decomposition of the solve path: the
	// tree is solved as one monolithic WCNF instance even when it has
	// independent modules (the --no-decompose CLI flag).
	NoDecompose bool
	// DecomposeWorkers sizes the shared scheduler pool for module
	// sub-solves (≤0 selects GOMAXPROCS).
	DecomposeWorkers int
	// DecomposeMinEvents is the smallest module subtree worth its own
	// sub-solve (≤0 selects decomp.DefaultMinEvents).
	DecomposeMinEvents int
}

func (o Options) withDefaults() Options {
	if o.Engines == nil {
		o.Engines = portfolio.DefaultEngines()
	}
	if fp.Zero(o.Scale) {
		o.Scale = DefaultScale
	}
	return o
}

// tracer returns the configured tracer or the zero-cost no-op one.
func (o Options) tracer() obs.Tracer {
	if o.Tracer == nil {
		return obs.Nop()
	}
	return o.Tracer
}

// EventWeight is one row of the paper's Table I: an event probability
// and its −log transform (both the exact float and the scaled integer
// actually handed to the MaxSAT engines).
type EventWeight struct {
	ID     string  `json:"id"`
	Prob   float64 `json:"probability"`
	Weight float64 `json:"weight"` // −ln(p)
	Scaled int64   `json:"scaled"` // round(weight · scale); 0 marks a free (p=1) event
	Hard   bool    `json:"hard"`   // p=0: the event can never fail
}

// Steps exposes the intermediate artefacts of Steps 1–4 so that
// examples, tests and the CLI can show the pipeline at work.
type Steps struct {
	// FaultFormula is f(t), the structure function over event ids.
	FaultFormula boolexpr.Expr
	// SuccessFormula is Y(t): f(t) with gates flipped and variables
	// positive (y = ¬x), per Step 1.
	SuccessFormula boolexpr.Expr
	// Encoding is the Tseitin CNF of ¬Y(t) over the y variables; the
	// event ids occupy DIMACS variables 1..len(Weights) in Events()
	// order (Step 2).
	Encoding *cnf.Encoding
	// Weights holds the Step-3 probability transform for every event.
	Weights []EventWeight
	// Instance is the Step-4 Weighted Partial MaxSAT instance: the hard
	// CNF plus one positive unit soft clause (yᵢ) per fallible event.
	Instance *cnf.WCNF
}

// BuildSteps runs Steps 1–4 of the pipeline.
func BuildSteps(tree *ft.Tree, opts Options) (*Steps, error) {
	opts = opts.withDefaults()
	return buildSteps(tree, opts, opts.tracer())
}

// buildSteps runs Steps 1–4, recording one span per pipeline step
// under parent (the tracer itself, or an analysis root span).
func buildSteps(tree *ft.Tree, opts Options, parent obs.SpanStarter) (*Steps, error) {
	sp := parent.StartSpan("validate")
	err := tree.Validate()
	sp.End()
	if err != nil {
		return nil, err
	}

	sp = parent.StartSpan("formula")
	f, err := tree.Formula()
	if err != nil {
		sp.End()
		return nil, err
	}
	success := boolexpr.Dual(f)
	sp.End()

	events := tree.Events()
	order := make([]string, len(events))
	for i, e := range events {
		order[i] = e.ID
	}

	sp = parent.StartSpan("weights")
	weights := LogWeights(events, opts.Scale)
	if sp.Recording() {
		sp.SetInt("events", int64(len(weights)))
	}
	sp.End()

	sp = parent.StartSpan("encode")
	// ¬Y(t) over the y variables models the occurrence of the top event
	// (Step 1); Tseitin converts it to CNF (Step 2).
	enc, err := cnf.Tseitin(boolexpr.Not{X: success}, cnf.TseitinOptions{
		PlaistedGreenbaum: opts.PlaistedGreenbaum,
		VarOrder:          order,
	})
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("core: encode success tree: %w", err)
	}

	instance := &cnf.WCNF{NumVars: enc.Formula.NumVars}
	for _, clause := range enc.Formula.Clauses {
		instance.AddHard(clause...)
	}
	for _, w := range weights {
		y := cnf.Lit(enc.VarOf[w.ID])
		switch {
		case w.Hard:
			// p = 0: the event cannot fail, i.e. yᵢ must hold.
			instance.AddHard(y)
		case w.Scaled > 0:
			// Falsifying yᵢ (event fails) costs the −log weight.
			instance.AddSoft(w.Scaled, y)
		}
		// Scaled == 0 (p = 1): the event fails freely at no cost; no
		// clause is needed.
	}
	if sp.Recording() {
		sp.SetInt("vars", int64(instance.NumVars))
		sp.SetInt("hardClauses", int64(len(instance.Hard)))
		sp.SetInt("softClauses", int64(len(instance.Soft)))
	}
	sp.End()

	return &Steps{
		FaultFormula:   f,
		SuccessFormula: success,
		Encoding:       enc,
		Weights:        weights,
		Instance:       instance,
	}, nil
}

// LogWeights performs Step 3: wᵢ = −ln(p(xᵢ)), scaled to integers.
// Events with p = 0 are marked Hard (they can never fail); events with
// p = 1 get weight 0 (failing them is free). Weights that would round
// to 0 for p < 1 are clamped to 1 to stay positive.
func LogWeights(events []*ft.BasicEvent, scale float64) []EventWeight {
	out := make([]EventWeight, len(events))
	for i, e := range events {
		w := EventWeight{ID: e.ID, Prob: e.Prob}
		switch {
		case fp.Zero(e.Prob):
			w.Weight = math.Inf(1)
			w.Hard = true
		case fp.One(e.Prob):
			w.Weight = 0
			w.Scaled = 0
		default:
			w.Weight = -math.Log(e.Prob)
			w.Scaled = int64(math.Round(w.Weight * scale))
			if w.Scaled < 1 {
				w.Scaled = 1
			}
		}
		out[i] = w
	}
	return out
}

// SolutionEvent is one MPMCS member in the solution document.
type SolutionEvent struct {
	ID          string  `json:"id"`
	Description string  `json:"description,omitempty"`
	Prob        float64 `json:"probability"`
	Weight      float64 `json:"weight"`
}

// SolutionStats summarises instance sizes and solver effort.
type SolutionStats struct {
	Events      int `json:"events"`
	Gates       int `json:"gates"`
	Vars        int `json:"vars"`
	HardClauses int `json:"hardClauses"`
	SoftClauses int `json:"softClauses"`
	// Solver reports the winning engine's work counters and cost-bound
	// trajectory (zero-valued for the BDD baseline, which has no SAT
	// oracle).
	Solver obs.SolverStats `json:"solver"`
}

// Solution is the analysis result — the content of the JSON document
// the MPMCS4FTA tool emits (the paper's Fig. 2 artefact).
type Solution struct {
	Tree        string          `json:"tree"`
	Method      string          `json:"method"`
	MPMCS       []SolutionEvent `json:"mpmcs"`
	Probability float64         `json:"probability"`
	LogCost     float64         `json:"logCost"` // Σ wᵢ over the MPMCS
	Solver      string          `json:"solver"`
	ElapsedMS   float64         `json:"elapsedMillis"`
	Stats       SolutionStats   `json:"stats"`
	// Status is "OPTIMAL" when the solve proved the reported cut set
	// maximal-probability, "FEASIBLE" for an anytime answer returned
	// under a deadline: still a sound minimal cut set, but possibly not
	// the most probable one.
	Status string `json:"status,omitempty"`
	// OptimalityGap bounds how far a FEASIBLE answer may be from the
	// optimum, in −log-probability space: the true MPMCS log-cost is at
	// least LogCost − OptimalityGap. Zero (omitted) when OPTIMAL.
	OptimalityGap float64 `json:"optimalityGap,omitempty"`
	// ProbabilityUpperBound is exp(−provenLowerBound): no cut set is
	// more probable than this. Set only for FEASIBLE answers.
	ProbabilityUpperBound float64 `json:"probabilityUpperBound,omitempty"`
	// Weights reproduces Table I: the Step-3 transform of every event.
	Weights []EventWeight `json:"weights"`
}

// CutSetIDs returns the MPMCS member ids, sorted.
func (s *Solution) CutSetIDs() []string {
	ids := make([]string, len(s.MPMCS))
	for i, e := range s.MPMCS {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// Analyze computes the MPMCS of the tree via the full six-step
// pipeline.
func Analyze(ctx context.Context, tree *ft.Tree, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	start := time.Now()
	root := opts.tracer().StartSpan("analyze")
	defer root.End()
	if root.Recording() {
		root.SetString("tree", tree.Name())
	}
	if plan := decompositionPlan(tree, opts); plan != nil {
		solution, err := analyzeDecomposed(ctx, tree, plan, opts, root)
		if err != nil {
			return nil, err
		}
		solution.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		recordDecomposedMetrics(opts.Metrics, solution, plan, time.Since(start))
		return solution, nil
	}
	steps, err := buildSteps(tree, opts, root)
	if err != nil {
		return nil, err
	}
	res, report, err := solveSpanned(ctx, steps.Instance, opts, root)
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case maxsat.Infeasible:
		return nil, ErrNoCutSet
	case maxsat.Optimal, maxsat.Feasible:
		// proceed; Feasible is the anytime answer under a deadline
	default:
		return nil, noAnswerErr(ctx)
	}
	solution, err := decodeSolution(tree, steps, res, report, opts, root)
	if err != nil {
		return nil, err
	}
	solution.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	recordAnalysisMetrics(opts.Metrics, solution, report)
	return solution, nil
}

// solveInstance runs Step 5 on an encoded instance. It is the lowest
// common choke point of every analysis flavour, so the live-telemetry
// plumbing happens here: the bus and metrics registry ride the context
// into the portfolio and its engines, and each solve is bracketed by
// SolveStarted / SolveFinished events — the terminal frame /events
// subscribers wait for.
func solveInstance(ctx context.Context, inst *cnf.WCNF, opts Options) (maxsat.Result, portfolio.Report, error) {
	bus := opts.Bus
	if bus.Enabled() {
		ctx = obs.ContextWithBus(ctx, bus)
		bus.Publish(obs.SolveStarted{
			Vars:        inst.NumVars,
			HardClauses: len(inst.Hard),
			SoftClauses: len(inst.Soft),
			Engines:     len(opts.Engines),
		})
	}
	if opts.Metrics != nil {
		ctx = obs.ContextWithMetrics(ctx, opts.Metrics)
	}
	start := time.Now()
	var (
		res    maxsat.Result
		report portfolio.Report
		err    error
	)
	if opts.Sequential {
		res, report, err = portfolio.SolveSequential(ctx, inst, opts.Engines)
	} else {
		res, report, err = portfolio.Solve(ctx, inst, opts.Engines)
	}
	if err != nil && errors.Is(err, portfolio.ErrNoAnswer) {
		// Translate the portfolio's "race ended empty-handed" into the
		// pipeline taxonomy: callers must be able to tell a budget
		// expiry (ErrNoAnswer) from a verdict about the tree
		// (ErrNoCutSet), or a cache would make the wrong one permanent.
		err = fmt.Errorf("%w (%w)", ErrNoAnswer, err)
	}
	if bus.Enabled() {
		finished := obs.SolveFinished{
			Status:     res.Status.String(),
			Winner:     report.Winner,
			Cost:       res.Cost,
			LowerBound: res.LowerBound,
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		}
		if err != nil {
			finished.Err = err.Error()
		}
		bus.Publish(finished)
	}
	return res, report, err
}

// solveSpanned wraps Step 5 in a "solve" span; the span rides the
// context into the portfolio, which records one child span per engine.
func solveSpanned(ctx context.Context, inst *cnf.WCNF, opts Options, parent obs.SpanStarter) (maxsat.Result, portfolio.Report, error) {
	sp := parent.StartSpan("solve")
	defer sp.End()
	if sp.Recording() {
		ctx = obs.ContextWithSpan(ctx, sp)
		sp.SetBool("sequential", opts.Sequential)
	}
	res, report, err := solveInstance(ctx, inst, opts)
	if sp.Recording() {
		sp.SetString("winner", report.Winner)
		sp.SetFloat("elapsedMillis", float64(report.Elapsed.Microseconds())/1000)
	}
	return res, report, err
}

// decodeSolution wraps Step 6 in a "decode" span.
func decodeSolution(tree *ft.Tree, steps *Steps, res maxsat.Result, report portfolio.Report, opts Options, parent obs.SpanStarter) (*Solution, error) {
	sp := parent.StartSpan("decode")
	defer sp.End()
	solution, err := buildSolution(tree, steps, res, report, opts)
	if err == nil && sp.Recording() {
		sp.SetInt("cutSetSize", int64(len(solution.MPMCS)))
		sp.SetFloat("probability", solution.Probability)
		sp.SetString("solutionStatus", solution.Status)
	}
	return solution, err
}

// recordAnalysisMetrics folds one completed analysis into the
// process-level counters. Safe on a nil registry.
func recordAnalysisMetrics(m *obs.Metrics, sol *Solution, report portfolio.Report) {
	if m == nil {
		return
	}
	m.Add("analyses", 1)
	m.Add("solve_us_total", report.Elapsed.Microseconds())
	if report.Winner != "" {
		m.Add("winner."+report.Winner, 1)
	}
	if sol.Status == maxsat.Feasible.String() {
		m.Add("anytime_answers", 1)
	}
	s := sol.Stats.Solver
	m.Add("sat_calls", s.SATCalls)
	m.Add("conflicts", s.Conflicts)
	m.Add("decisions", s.Decisions)
	m.Add("propagations", s.Propagations)
	if c := report.Coop; c.ModelsPublished > 0 || c.LowerBoundsPublished > 0 {
		m.Add("coop_models_published", c.ModelsPublished)
		m.Add("coop_models_improved", c.ModelsImproved)
		m.Add("coop_lower_bounds_published", c.LowerBoundsPublished)
	}
	if report.Coop.RaceClosedByBounds {
		m.Add("coop_race_closed_by_bounds", 1)
	}
}

// buildSolution extracts the cut set from a MaxSAT model (falsified y
// variables = failed events), minimises it defensively, and performs
// the Step-6 reverse transformation. Feasible (anytime) results decode
// exactly like Optimal ones — the minimisation pass guarantees the
// reported set is a genuine minimal cut set either way — but carry the
// optimality gap translated back to log/probability space.
func buildSolution(tree *ft.Tree, steps *Steps, res maxsat.Result, report portfolio.Report, opts Options) (*Solution, error) {
	model := res.Model
	winner := report.Winner
	var solverStats obs.SolverStats
	if win := report.WinnerReport(); win != nil {
		solverStats = win.Stats
	}
	failed := make(map[string]bool, len(steps.Weights))
	for _, w := range steps.Weights {
		y := steps.Encoding.VarOf[w.ID]
		if y < len(model) && !model[y] {
			failed[w.ID] = true
		}
	}
	set := minimizeCutSet(tree, failed)

	weightByID := make(map[string]EventWeight, len(steps.Weights))
	for _, w := range steps.Weights {
		weightByID[w.ID] = w
	}

	var (
		logCost float64
		events  []SolutionEvent
	)
	probability := 1.0
	for _, id := range set {
		w := weightByID[id]
		e := tree.Event(id)
		events = append(events, SolutionEvent{
			ID:          id,
			Description: e.Description,
			Prob:        w.Prob,
			Weight:      w.Weight,
		})
		logCost += w.Weight
		probability *= w.Prob
	}
	// Step 6: PF(t) = exp(−Σ wᵢ); equals the direct product up to
	// floating-point round-off.
	fromLog := math.Exp(-logCost)
	if math.Abs(fromLog-probability) > 1e-9*math.Max(fromLog, probability) {
		return nil, fmt.Errorf("core: reverse transform mismatch: exp(−Σw)=%v, ∏p=%v", fromLog, probability)
	}

	stats := tree.Stats()
	solution := &Solution{
		Tree:        tree.Name(),
		Method:      "Weighted Partial MaxSAT",
		MPMCS:       events,
		Probability: probability,
		LogCost:     logCost,
		Solver:      winner,
		Status:      res.Status.String(),
		Stats: SolutionStats{
			Events:      stats.Events,
			Gates:       stats.Gates,
			Vars:        steps.Instance.NumVars,
			HardClauses: len(steps.Instance.Hard),
			SoftClauses: len(steps.Instance.Soft),
			Solver:      solverStats,
		},
		Weights: steps.Weights,
	}
	if res.Status == maxsat.Feasible {
		scale := opts.Scale
		if fp.Zero(scale) {
			scale = DefaultScale
		}
		if gap := res.Gap(); gap > 0 {
			solution.OptimalityGap = float64(gap) / scale
		}
		// No cut set is cheaper than the proven lower bound, so none is
		// more probable than exp(−lb/scale).
		solution.ProbabilityUpperBound = math.Exp(-float64(res.LowerBound) / scale)
	}
	return solution, nil
}

// minimizeCutSet greedily removes unnecessary events; for coherent
// trees the result is a minimal cut set. MaxSAT optima are already
// minimal whenever every event has positive weight, so this is a cheap
// defensive pass that also covers free (p=1) events.
func minimizeCutSet(tree *ft.Tree, failed map[string]bool) []string {
	ids := make([]string, 0, len(failed))
	for id, isFailed := range failed {
		if isFailed {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		if !failed[id] {
			continue
		}
		failed[id] = false
		still, err := tree.Eval(failed)
		if err != nil || !still {
			failed[id] = true
		}
	}
	out := ids[:0]
	for _, id := range ids {
		if failed[id] {
			out = append(out, id)
		}
	}
	return out
}
