package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/mcs"
)

func TestAnalyzerMatchesAnalyze(t *testing.T) {
	ctx := context.Background()
	tree := gen.FPS()
	analyzer, err := NewAnalyzer(tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	incremental, err := analyzer.Analyze(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Analyze(ctx, tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(incremental.CutSetIDs(), direct.CutSetIDs()) {
		t.Errorf("incremental %v vs direct %v", incremental.CutSetIDs(), direct.CutSetIDs())
	}
	if math.Abs(incremental.Probability-direct.Probability) > 1e-12 {
		t.Errorf("probabilities differ: %v vs %v", incremental.Probability, direct.Probability)
	}
}

func TestAnalyzerOverrides(t *testing.T) {
	ctx := context.Background()
	analyzer, err := NewAnalyzer(gen.FPS(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Make the no-water event dominant: the MPMCS must switch to {x3}.
	sol, err := analyzer.Analyze(ctx, map[string]float64{"x3": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"x3"}) {
		t.Errorf("MPMCS = %v, want [x3]", sol.CutSetIDs())
	}
	if math.Abs(sol.Probability-0.5) > 1e-9 {
		t.Errorf("probability = %v", sol.Probability)
	}

	// The base tree is untouched: a fresh query returns the original.
	sol, err = analyzer.Analyze(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sol.CutSetIDs(), []string{"x1", "x2"}) {
		t.Errorf("base MPMCS = %v after override query", sol.CutSetIDs())
	}
}

func TestAnalyzerOverrideErrors(t *testing.T) {
	analyzer, err := NewAnalyzer(gen.FPS(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analyzer.Analyze(context.Background(), map[string]float64{"ghost": 0.1}); err == nil {
		t.Error("unknown event accepted")
	}
	if _, err := analyzer.Analyze(context.Background(), map[string]float64{"x1": 1.5}); err == nil {
		t.Error("invalid probability accepted")
	}
	if _, err := NewAnalyzer(gen.FPS().Clone(), Options{}); err != nil {
		t.Errorf("NewAnalyzer on valid tree: %v", err)
	}
}

func TestAnalyzerAgreesWithOracleUnderOverrides(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 8; seed++ {
		tree, err := gen.Random(gen.Config{Events: 9, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		analyzer, err := NewAnalyzer(tree, Options{Sequential: true})
		if err != nil {
			t.Fatal(err)
		}
		// Perturb two events and check against the oracle on the
		// perturbed tree.
		events := tree.Events()
		overrides := map[string]float64{
			events[0].ID: 0.9,
			events[1].ID: 0.001,
		}
		sol, err := analyzer.Analyze(ctx, overrides)
		if err != nil {
			t.Fatal(err)
		}
		perturbed := tree.Clone()
		for id, p := range overrides {
			if err := perturbed.SetProb(id, p); err != nil {
				t.Fatal(err)
			}
		}
		sets, err := mcs.Exhaustive(perturbed)
		if err != nil {
			t.Fatal(err)
		}
		_, want := mcs.MaxProbability(sets, perturbed.Probabilities())
		if math.Abs(sol.Probability-want) > 1e-9*want {
			t.Errorf("seed %d: got %v, oracle %v", seed, sol.Probability, want)
		}
	}
}

func TestSwitchPointFPS(t *testing.T) {
	ctx := context.Background()
	analyzer, err := NewAnalyzer(gen.FPS(), Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// x3 is a singleton cut set; it enters the MPMCS once p(x3)
	// exceeds the current best 0.02. The switch point is 0.02.
	p, found, err := analyzer.SwitchPoint(ctx, "x3", 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("x3 should enter the MPMCS at high probability")
	}
	if math.Abs(p-0.02) > 1e-4 {
		t.Errorf("switch point = %v, want ≈0.02", p)
	}

	// x1 is already in the MPMCS: its switch point is at or below its
	// current probability.
	p, found, err = analyzer.SwitchPoint(ctx, "x1", 1e-6)
	if err != nil || !found {
		t.Fatalf("x1: %v, %v, %v", p, found, err)
	}
	if p > 0.2+1e-6 {
		t.Errorf("x1 switch point %v should not exceed its current probability", p)
	}

	if _, _, err := analyzer.SwitchPoint(ctx, "ghost", 0); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestSwitchPointNever(t *testing.T) {
	// Event b only appears AND-ed with an impossible event: it never
	// enters the MPMCS.
	tree := gen.FPS()
	if err := tree.AddEvent("imp", 0); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddEvent("b", 0.1); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("dead", "imp", "b"); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddOr("newtop", "top", "dead"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("newtop")
	analyzer, err := NewAnalyzer(tree, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	p, found, err := analyzer.SwitchPoint(context.Background(), "b", 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if found || p != 1 {
		t.Errorf("got %v, %v; want 1, false", p, found)
	}
}

func TestAnalyzeAboveFPS(t *testing.T) {
	ctx := context.Background()
	sols, err := AnalyzeAbove(ctx, gen.FPS(), 0.002, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	// Cut sets with probability ≥ 0.002: {x1,x2}=.02, {x5,x6}=.005,
	// {x5,x7}=.0025, {x4}=.002.
	if len(sols) != 4 {
		t.Fatalf("got %d solutions, want 4", len(sols))
	}
	for i, sol := range sols {
		if sol.Probability < 0.002 {
			t.Errorf("rank %d probability %v below threshold", i+1, sol.Probability)
		}
	}
	if !reflect.DeepEqual(sols[3].CutSetIDs(), []string{"x4"}) {
		t.Errorf("last = %v, want [x4]", sols[3].CutSetIDs())
	}

	// A threshold above the MPMCS yields nothing.
	sols, err = AnalyzeAbove(ctx, gen.FPS(), 0.5, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Errorf("got %d solutions above 0.5", len(sols))
	}

	if _, err := AnalyzeAbove(ctx, gen.FPS(), 0, Options{}); err == nil {
		t.Error("zero threshold accepted")
	}
}
