package core

import (
	"context"
	"fmt"
	"math"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/mcs"
)

// VerifySolution independently checks a Solution document against the
// tree it claims to analyse: the reported set must be a minimal cut
// set, its probability must be the product of the members'
// probabilities, and the log-cost must match. It is the check a
// downstream consumer (or an auditor of the tool's JSON output) runs
// before acting on a solution.
func VerifySolution(tree *ft.Tree, sol *Solution) error {
	if sol == nil {
		return fmt.Errorf("core: nil solution")
	}
	ids := sol.CutSetIDs()
	minimal, err := mcs.IsMinimalCutSet(tree, ids)
	if err != nil {
		return fmt.Errorf("core: verify cut set: %w", err)
	}
	if !minimal {
		return fmt.Errorf("core: reported set %v is not a minimal cut set", ids)
	}
	product := 1.0
	for _, e := range sol.MPMCS {
		actual := tree.Event(e.ID)
		if actual == nil {
			return fmt.Errorf("core: solution references unknown event %q", e.ID)
		}
		if math.Abs(actual.Prob-e.Prob) > 1e-12 {
			return fmt.Errorf("core: event %q probability drifted: solution %v, tree %v", e.ID, e.Prob, actual.Prob)
		}
		product *= actual.Prob
	}
	if math.Abs(product-sol.Probability) > 1e-9*math.Max(product, 1e-300) {
		return fmt.Errorf("core: probability %v does not match member product %v", sol.Probability, product)
	}
	if logFromProb := math.Exp(-sol.LogCost); math.Abs(logFromProb-sol.Probability) > 1e-9*math.Max(sol.Probability, 1e-300) {
		return fmt.Errorf("core: exp(−logCost) %v does not match probability %v", logFromProb, sol.Probability)
	}
	return nil
}

// AnalyzeDisjoint enumerates up to k minimal cut sets that share no
// events, in descending probability order: the "independent failure
// modes" view used for repair planning — fixing all events of one set
// leaves the remaining reported modes intact. After each solution,
// every member event is excluded outright (hard yᵢ), so later sets are
// event-disjoint from all earlier ones. Enumeration stops early when no
// cut set avoiding all previous events exists.
func AnalyzeDisjoint(ctx context.Context, tree *ft.Tree, k int, opts Options) ([]*Solution, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	opts = opts.withDefaults()
	steps, err := BuildSteps(tree, opts)
	if err != nil {
		return nil, err
	}
	instance := steps.Instance.Clone()

	var out []*Solution
	for round := 0; round < k; round++ {
		res, report, err := solveInstance(ctx, instance, opts)
		if err != nil {
			return out, err
		}
		if res.Status == maxsat.Infeasible {
			break // no cut set avoids all previous events
		}
		if res.Status == maxsat.Unknown {
			// Deadline with nothing this round: keep earlier rounds, and
			// an empty result is "no answer", not "no cut set".
			if len(out) == 0 {
				return nil, noAnswerErr(ctx)
			}
			break
		}
		solution, err := buildSolution(tree, steps, res, report, opts)
		if err != nil {
			return out, err
		}
		out = append(out, solution)
		if res.Status == maxsat.Feasible || len(solution.MPMCS) == 0 {
			break
		}
		for _, e := range solution.MPMCS {
			// Force the event to survive in all later rounds.
			instance.AddHard(cnf.Lit(steps.Encoding.VarOf[e.ID]))
		}
	}
	if len(out) == 0 {
		return nil, ErrNoCutSet
	}
	return out, nil
}
