package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"mpmcs4fta/internal/decomp"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sched"
)

// decompositionPlan returns the non-trivial plan Analyze should route
// through, or nil for the monolithic path. Planning failures fall back
// silently: whatever made the tree unplannable (it is validated first,
// so in practice nothing) will surface through the monolithic
// pipeline's own validation.
func decompositionPlan(tree *ft.Tree, opts Options) *decomp.Plan {
	if opts.NoDecompose {
		return nil
	}
	plan, err := decomp.BuildPlan(tree, decomp.Options{MinEvents: opts.DecomposeMinEvents})
	if err != nil || plan.Trivial() {
		return nil
	}
	return plan
}

// analyzeDecomposed is the modular counterpart of the monolithic
// solve-then-decode path in Analyze: each plan node runs the full
// Steps-1–6 pipeline over its quotient tree (its own portfolio race,
// with the bus and metrics riding the context as usual), scheduled
// bottom-up over a shared worker pool, and the module optima are
// recombined into one Solution over the original tree.
func analyzeDecomposed(ctx context.Context, tree *ft.Tree, plan *decomp.Plan, opts Options, parent obs.SpanStarter) (*Solution, error) {
	pool := sched.New(opts.DecomposeWorkers)
	defer pool.Close()

	sp := parent.StartSpan("decompose")
	defer sp.End()
	if sp.Recording() {
		sp.SetInt("modules", int64(len(plan.Nodes)))
		sp.SetInt("workers", int64(pool.Workers()))
	}

	solveNode := func(nodeCtx context.Context, node *decomp.PlanNode) (decomp.ModuleSolution, error) {
		msp := sp.StartSpan("module")
		defer msp.End()
		if msp.Recording() {
			msp.SetString("module", node.ID)
			msp.SetInt("events", int64(node.Events))
		}
		steps, err := buildSteps(node.Tree, opts, msp)
		if err != nil {
			return decomp.ModuleSolution{}, err
		}
		res, report, err := solveSpanned(nodeCtx, steps.Instance, opts, msp)
		if err != nil {
			return decomp.ModuleSolution{}, err
		}
		sol := decomp.ModuleSolution{
			Winner:      report.Winner,
			Vars:        steps.Instance.NumVars,
			HardClauses: len(steps.Instance.Hard),
			SoftClauses: len(steps.Instance.Soft),
		}
		if win := report.WinnerReport(); win != nil {
			sol.Stats = win.Stats
		}
		switch res.Status {
		case maxsat.Infeasible:
			// This module's top can never occur: it re-enters the parent
			// as a p=0 pseudo-event (which LogWeights turns into a hard
			// "cannot fail" constraint).
			sol.Impossible = true
			return sol, nil
		case maxsat.Optimal, maxsat.Feasible:
		default:
			return sol, fmt.Errorf("core: module %q: %w", node.ID, noAnswerErr(nodeCtx))
		}

		failed := make(map[string]bool, len(steps.Weights))
		for _, w := range steps.Weights {
			y := steps.Encoding.VarOf[w.ID]
			if y < len(res.Model) && !res.Model[y] {
				failed[w.ID] = true
			}
		}
		sol.CutSet = minimizeCutSet(node.Tree, failed)
		sol.Probability = 1
		for _, id := range sol.CutSet {
			sol.Probability *= node.Tree.Event(id).Prob
		}
		sol.Optimal = res.Status == maxsat.Optimal
		if res.Status == maxsat.Feasible {
			if gap := res.Gap(); gap > 0 {
				sol.GapLog = float64(gap) / opts.Scale
			}
		}
		return sol, nil
	}

	outcome, err := decomp.Execute(ctx, plan, solveNode, decomp.ExecOptions{Pool: pool, Bus: opts.Bus})
	if err != nil {
		return nil, err
	}
	if outcome.Impossible {
		return nil, ErrNoCutSet
	}
	return composeSolution(tree, plan, outcome, opts)
}

// composeSolution performs the decomposed Step 6: the expanded cut set
// is re-weighted against the original tree's Table-I transform, module
// instance sizes and solver counters are aggregated, and the composed
// optimality verdict (all-modules-optimal, summed gap) is translated
// to the same Status/gap fields the monolithic path reports.
func composeSolution(tree *ft.Tree, plan *decomp.Plan, outcome *decomp.Outcome, opts Options) (*Solution, error) {
	weights := LogWeights(tree.Events(), opts.Scale)
	weightByID := make(map[string]EventWeight, len(weights))
	for _, w := range weights {
		weightByID[w.ID] = w
	}

	var (
		logCost float64
		events  []SolutionEvent
	)
	probability := 1.0
	for _, id := range outcome.CutSet {
		w, ok := weightByID[id]
		if !ok {
			return nil, fmt.Errorf("core: decomposed cut set contains unknown event %q", id)
		}
		e := tree.Event(id)
		events = append(events, SolutionEvent{
			ID:          id,
			Description: e.Description,
			Prob:        w.Prob,
			Weight:      w.Weight,
		})
		logCost += w.Weight
		probability *= w.Prob
	}
	fromLog := math.Exp(-logCost)
	if math.Abs(fromLog-probability) > 1e-9*math.Max(fromLog, probability) {
		return nil, fmt.Errorf("core: reverse transform mismatch: exp(−Σw)=%v, ∏p=%v", fromLog, probability)
	}

	var agg SolutionStats
	rootSol := outcome.Solutions[plan.Root]
	for _, id := range plan.Order {
		sol, ok := outcome.Solutions[id]
		if !ok {
			continue
		}
		agg.Vars += sol.Vars
		agg.HardClauses += sol.HardClauses
		agg.SoftClauses += sol.SoftClauses
		agg.Solver.Add(sol.Stats)
	}
	stats := tree.Stats()
	agg.Events = stats.Events
	agg.Gates = stats.Gates

	solution := &Solution{
		Tree:        tree.Name(),
		Method:      "Weighted Partial MaxSAT",
		MPMCS:       events,
		Probability: probability,
		LogCost:     logCost,
		Solver:      rootSol.Winner,
		Status:      maxsat.Optimal.String(),
		Stats:       agg,
		Weights:     weights,
	}
	if !outcome.Optimal {
		solution.Status = maxsat.Feasible.String()
		solution.OptimalityGap = outcome.GapLog
		// No cut set costs less than (achieved − composed gap), so none
		// is more probable than exp(−(LogCost − gap)).
		solution.ProbabilityUpperBound = math.Exp(-(logCost - outcome.GapLog))
	}
	return solution, nil
}

// recordDecomposedMetrics folds one modular analysis into the
// process-level counters. Safe on a nil registry.
func recordDecomposedMetrics(m *obs.Metrics, sol *Solution, plan *decomp.Plan, elapsed time.Duration) {
	if m == nil {
		return
	}
	m.Add("analyses", 1)
	m.Add("modular_analyses", 1)
	m.Add("modules_solved", int64(len(plan.Nodes)))
	m.Add("solve_us_total", elapsed.Microseconds())
	if sol.Status == maxsat.Feasible.String() {
		m.Add("anytime_answers", 1)
	}
	s := sol.Stats.Solver
	m.Add("sat_calls", s.SATCalls)
	m.Add("conflicts", s.Conflicts)
	m.Add("decisions", s.Decisions)
	m.Add("propagations", s.Propagations)
}
