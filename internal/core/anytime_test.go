package core

import (
	"context"
	"testing"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/portfolio"
)

// firstModelCancel cancels a context on the first published model,
// turning any cooperative engine into a deterministic anytime one.
type firstModelCancel struct{ cancel context.CancelFunc }

func (p firstModelCancel) PublishModel(int64, []bool) { p.cancel() }
func (p firstModelCancel) PublishLower(int64)         {}
func (p firstModelCancel) BestKnown() (int64, bool)   { return 0, false }
func (p firstModelCancel) ProvenLower() int64         { return 0 }

// anytimeSolver wraps a cooperative engine so its solve is interrupted
// right after the first incumbent — the deterministic stand-in for a
// deadline expiring mid-search.
type anytimeSolver struct{ inner maxsat.ProgressSolver }

func (w anytimeSolver) Name() string { return "anytime-fake" }

func (w anytimeSolver) Solve(ctx context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return w.inner.SolveWithProgress(ctx, inst, firstModelCancel{cancel})
}

func anytimeEngines() []portfolio.Engine {
	return []portfolio.Engine{{Name: "anytime-fake", Solver: anytimeSolver{inner: &maxsat.LinearSU{}}}}
}

// TestAnalyzeFeasibleDecodes: a FEASIBLE solver answer must decode to a
// full Solution document — genuine minimal cut set, FEASIBLE status,
// gap fields in probability space — instead of an error.
func TestAnalyzeFeasibleDecodes(t *testing.T) {
	tree := gen.FPS()
	sol, err := Analyze(context.Background(), tree, Options{Sequential: true, Engines: anytimeEngines()})
	if err != nil {
		t.Fatalf("anytime analysis failed: %v", err)
	}
	if sol.Status != maxsat.Feasible.String() {
		t.Fatalf("status %q, want FEASIBLE", sol.Status)
	}
	if len(sol.MPMCS) == 0 {
		t.Fatal("anytime solution reports no cut set")
	}
	// The decoded set must be a sound minimal cut set regardless of
	// optimality; VerifySolution re-checks minimality, membership and
	// the probability arithmetic.
	if err := VerifySolution(tree, sol); err != nil {
		t.Fatalf("anytime solution failed verification: %v", err)
	}
	if sol.OptimalityGap < 0 {
		t.Errorf("optimality gap %v is negative", sol.OptimalityGap)
	}
	if sol.ProbabilityUpperBound <= 0 || sol.ProbabilityUpperBound > 1 {
		t.Errorf("probability upper bound %v outside (0,1]", sol.ProbabilityUpperBound)
	}
	// No cut set can beat the proven upper bound — in particular not the
	// reported one.
	if sol.Probability > sol.ProbabilityUpperBound*(1+1e-9) {
		t.Errorf("reported p=%v exceeds its own upper bound %v", sol.Probability, sol.ProbabilityUpperBound)
	}
	// FPS optimum is 0.02; an anytime answer may only be less probable.
	if sol.Probability > 0.02*(1+1e-9) {
		t.Errorf("anytime p=%v beats the FPS optimum 0.02", sol.Probability)
	}
}

// TestAnalyzeTopKStopsAfterFeasible: an anytime round is not proven
// maximal, so enumeration must report it and stop rather than emit
// later rounds in unprovable order.
func TestAnalyzeTopKStopsAfterFeasible(t *testing.T) {
	sols, err := AnalyzeTopK(context.Background(), gen.FPS(), 5, Options{Sequential: true, Engines: anytimeEngines()})
	if err != nil {
		t.Fatalf("anytime top-k failed: %v", err)
	}
	if len(sols) != 1 {
		t.Fatalf("got %d solutions after a FEASIBLE round, want 1", len(sols))
	}
	if sols[0].Status != maxsat.Feasible.String() {
		t.Errorf("status %q, want FEASIBLE", sols[0].Status)
	}
}
