// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the MiniSat lineage: two-watched-literal propagation over an
// arena-backed clause database (one flat []lit of headers and literals,
// addressed by clauseRef indices, compacted by a garbage collector at
// clause-deletion points), VSIDS branching with phase saving, first-UIP
// clause learning with recursive (implication-graph-deep) minimisation
// and on-the-fly binary self-subsumption, Luby restarts, LBD-guided
// learnt-clause deletion, and incremental solving under assumptions with
// unsatisfiable-core extraction.
//
// Beyond plain SAT, the solver supports one linear pseudo-Boolean budget
// constraint (Σ wᵢ·[ℓᵢ true] ≤ bound) enforced by a dedicated propagator
// that produces ordinary reason clauses, so learning and core extraction
// work through it unchanged. The budget is what lets the LinearSU MaxSAT
// engine (internal/maxsat) perform model-improving search without
// encoding large pseudo-Boolean constraints into clauses.
//
// A small DPLL solver (Dpll) is also provided; it serves as a diverse
// portfolio member and as a test oracle for the CDCL implementation.
package sat

import "mpmcs4fta/internal/cnf"

// lit is the internal literal representation: variable v (0-based) in
// positive polarity is 2v, negative is 2v+1.
type lit uint32

const litUndef lit = ^lit(0)

func mkLit(v int, neg bool) lit {
	l := lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

func (l lit) variable() int { return int(l >> 1) }
func (l lit) sign() bool    { return l&1 == 1 } // true when negated
func (l lit) neg() lit      { return l ^ 1 }

// fromDimacs converts a cnf.Lit (±v, 1-based) to the internal form.
func fromDimacs(l cnf.Lit) lit {
	if l < 0 {
		return mkLit(int(-l)-1, true)
	}
	return mkLit(int(l)-1, false)
}

// toDimacs converts an internal literal back to cnf.Lit form.
func toDimacs(l lit) cnf.Lit {
	v := cnf.Lit(l.variable() + 1)
	if l.sign() {
		return -v
	}
	return v
}

// lbool is a three-valued assignment.
type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)
