package sat

import (
	"time"

	"mpmcs4fta/internal/obs"
)

// Telemetry configures live instrumentation of the search: restart
// events and periodic heartbeats on the bus, plus histograms of learnt
// conflict-clause lengths and trail depths. All fields are optional —
// the bus and histograms are nil-safe — and a nil *Telemetry (the
// default) keeps the search loop at one pointer comparison of
// overhead, preserving the zero-cost-when-disabled rule.
type Telemetry struct {
	// Bus receives RestartFired and Heartbeat events.
	Bus *obs.EventBus
	// Engine names this solver in published events.
	Engine string
	// HeartbeatEvery rate-limits Heartbeat events; default 500ms. The
	// clock is only consulted at the search loop's existing
	// cancellation-poll boundaries (every 1024 conflicts or decisions),
	// so heartbeats cost the hot path nothing between polls.
	HeartbeatEvery time.Duration
	// LearntLen, when set, records the length of every learnt conflict
	// clause.
	LearntLen *obs.Histogram
	// TrailDepth, when set, records the assignment-trail depth at each
	// heartbeat.
	TrailDepth *obs.Histogram
}

// SetTelemetry installs (or with nil removes) live instrumentation.
// Call before Solve; the solver keeps the pointer.
func (s *Solver) SetTelemetry(t *Telemetry) {
	s.tel = t
	s.lastBeat = time.Time{}
}

// maybeHeartbeat publishes a Heartbeat if telemetry is on and the
// rate-limit interval has passed. Called only at the search loop's
// poll boundaries.
func (s *Solver) maybeHeartbeat() {
	t := s.tel
	if t == nil || !t.Bus.Enabled() {
		return
	}
	every := t.HeartbeatEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	now := time.Now()
	if s.lastBeat.IsZero() {
		// First poll only starts the clock: a heartbeat this early
		// would just duplicate the engine-started event.
		s.lastBeat = now
		return
	}
	if now.Sub(s.lastBeat) < every {
		return
	}
	s.lastBeat = now
	t.TrailDepth.Observe(float64(len(s.trail)))
	t.Bus.Publish(obs.Heartbeat{
		Engine:       t.Engine,
		Conflicts:    s.stats.Conflicts,
		Decisions:    s.stats.Decisions,
		Propagations: s.stats.Propagations,
		Restarts:     s.stats.Restarts,
		Learnt:       s.stats.Learnt,
		TrailDepth:   len(s.trail),
		LearntDB:     len(s.learnts),
		ArenaWords:   s.ca.words(),
		ClauseGCs:    s.stats.ClauseGCs,
	})
}
