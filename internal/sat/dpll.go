package sat

import (
	"context"
	"fmt"

	"mpmcs4fta/internal/cnf"
)

// Dpll is a plain DPLL solver: recursive search with unit propagation
// and pure-literal elimination, no learning. It exists as a behavioural
// contrast to the CDCL Solver — a genuinely different engine for the
// Step-5 portfolio — and as an oracle in tests. It is only suitable for
// small-to-medium instances.
type Dpll struct {
	numVars int
	clauses []cnf.Clause
	model   []bool
	steps   int64
	unsat   bool
}

// NewDpll returns a DPLL solver over variables 1..numVars.
func NewDpll(numVars int) *Dpll {
	return &Dpll{numVars: numVars}
}

// AddClause adds a clause; variables grow on demand.
func (d *Dpll) AddClause(lits ...cnf.Lit) bool {
	clause := make(cnf.Clause, len(lits))
	copy(clause, lits)
	for _, l := range lits {
		if l == 0 {
			panic("sat: literal 0 in clause")
		}
		if v := l.Var(); v > d.numVars {
			d.numVars = v
		}
	}
	if len(clause) == 0 {
		d.unsat = true
		return false
	}
	d.clauses = append(d.clauses, clause)
	return true
}

// AddFormula adds all clauses of f.
func (d *Dpll) AddFormula(f *cnf.Formula) bool {
	if f.NumVars > d.numVars {
		d.numVars = f.NumVars
	}
	for _, c := range f.Clauses {
		if !d.AddClause(c...) {
			return false
		}
	}
	return true
}

// Solve runs DPLL under the given assumptions.
func (d *Dpll) Solve(ctx context.Context, assumptions ...cnf.Lit) (Status, error) {
	if d.unsat {
		return Unsat, nil
	}
	assign := make([]lbool, d.numVars+1)
	for _, a := range assumptions {
		if v := a.Var(); v > d.numVars {
			return Unknown, fmt.Errorf("sat: assumption %v beyond %d variables", a, d.numVars)
		}
		want := lTrue
		if a < 0 {
			want = lFalse
		}
		prev := assign[a.Var()]
		if prev != lUndef && prev != want {
			return Unsat, nil
		}
		assign[a.Var()] = want
	}
	d.steps = 0
	status, err := d.dpll(ctx, assign)
	if err != nil {
		return Unknown, err
	}
	if status == Sat {
		d.model = make([]bool, d.numVars+1)
		for v := 1; v <= d.numVars; v++ {
			d.model[v] = assign[v] == lTrue
		}
	}
	return status, nil
}

// Model returns the satisfying assignment from the last Sat result
// (index 0 unused).
func (d *Dpll) Model() []bool { return d.model }

func litValue(assign []lbool, l cnf.Lit) lbool {
	v := assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l < 0 {
		return -v
	}
	return v
}

// dpll mutates assign during search; on Sat the assignment is left in
// place, on Unsat every tentative change is rolled back.
func (d *Dpll) dpll(ctx context.Context, assign []lbool) (Status, error) {
	d.steps++
	if d.steps&255 == 0 {
		if err := ctx.Err(); err != nil {
			return Unknown, fmt.Errorf("%w: %w", ErrInterrupted, err)
		}
	}

	var trail []cnf.Lit
	undo := func() {
		for _, l := range trail {
			assign[l.Var()] = lUndef
		}
	}

	// Unit propagation to fixpoint.
	//lint:ignore ctxpoll the fixpoint assigns at least one literal per iteration, bounded by the variable count; ctx is polled per search node
	for {
		unit := cnf.Lit(0)
		for _, clause := range d.clauses {
			satisfied := false
			unassigned := 0
			var candidate cnf.Lit
			for _, l := range clause {
				switch litValue(assign, l) {
				case lTrue:
					satisfied = true
				case lUndef:
					unassigned++
					candidate = l
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				undo()
				return Unsat, nil
			}
			if unassigned == 1 {
				unit = candidate
				break
			}
		}
		if unit == 0 {
			break
		}
		if unit > 0 {
			assign[unit.Var()] = lTrue
		} else {
			assign[unit.Var()] = lFalse
		}
		trail = append(trail, unit)
	}

	// Choose the first unassigned variable appearing in an unsatisfied
	// clause; if none, all clauses are satisfied.
	branch := 0
	for _, clause := range d.clauses {
		satisfied := false
		var firstUndef int
		for _, l := range clause {
			switch litValue(assign, l) {
			case lTrue:
				satisfied = true
			case lUndef:
				if firstUndef == 0 {
					firstUndef = l.Var()
				}
			}
			if satisfied {
				break
			}
		}
		if !satisfied && firstUndef != 0 {
			branch = firstUndef
			break
		}
	}
	if branch == 0 {
		// Every clause satisfied; assign remaining variables false for
		// a total model.
		for v := 1; v <= d.numVars; v++ {
			if assign[v] == lUndef {
				assign[v] = lFalse
			}
		}
		return Sat, nil
	}

	for _, value := range []lbool{lTrue, lFalse} {
		assign[branch] = value
		status, err := d.dpll(ctx, assign)
		if err != nil {
			assign[branch] = lUndef
			undo()
			return Unknown, err
		}
		if status == Sat {
			return Sat, nil
		}
	}
	assign[branch] = lUndef
	undo()
	return Unsat, nil
}
