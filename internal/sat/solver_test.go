package sat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
)

func TestLitConversion(t *testing.T) {
	tests := []struct {
		dimacs cnf.Lit
		v      int
		neg    bool
	}{
		{1, 0, false},
		{-1, 0, true},
		{5, 4, false},
		{-7, 6, true},
	}
	for _, tt := range tests {
		l := fromDimacs(tt.dimacs)
		if l.variable() != tt.v || l.sign() != tt.neg {
			t.Errorf("fromDimacs(%d) = var %d sign %v", tt.dimacs, l.variable(), l.sign())
		}
		if toDimacs(l) != tt.dimacs {
			t.Errorf("toDimacs(fromDimacs(%d)) = %d", tt.dimacs, toDimacs(l))
		}
		if l.neg().neg() != l {
			t.Errorf("double negation changed literal %d", tt.dimacs)
		}
	}
}

// TestDuplicateAssumptionsExceedNumVars: every already-satisfied
// assumption burns a dummy decision level, so the decision level can
// exceed numVars. computeLBD's levelStamp scratch array must cover
// those levels — this repro used to panic with an index out of range
// when the learnt clause contained a literal from such a level.
func TestDuplicateAssumptionsExceedNumVars(t *testing.T) {
	ctx := context.Background()
	s := New(5, Options{})
	s.AddClause(-1, -2, 3)
	s.AddClause(-1, -2, -3)
	status, err := s.Solve(ctx, 1, 1, 1, 1, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if status != Unsat {
		t.Errorf("got %v, want Unsat (assumptions force the conflict)", status)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestSolveTrivial(t *testing.T) {
	ctx := context.Background()

	t.Run("empty instance is sat", func(t *testing.T) {
		s := New(0, Options{})
		status, err := s.Solve(ctx)
		if err != nil || status != Sat {
			t.Errorf("got %v, %v", status, err)
		}
	})

	t.Run("unit clauses", func(t *testing.T) {
		s := New(2, Options{})
		s.AddClause(1)
		s.AddClause(-2)
		status, err := s.Solve(ctx)
		if err != nil || status != Sat {
			t.Fatalf("got %v, %v", status, err)
		}
		m := s.Model()
		if !m[1] || m[2] {
			t.Errorf("model = %v", m)
		}
	})

	t.Run("contradictory units", func(t *testing.T) {
		s := New(1, Options{})
		s.AddClause(1)
		if ok := s.AddClause(-1); ok {
			t.Error("adding contradiction should report false")
		}
		status, err := s.Solve(ctx)
		if err != nil || status != Unsat {
			t.Errorf("got %v, %v", status, err)
		}
	})

	t.Run("empty clause", func(t *testing.T) {
		s := New(1, Options{})
		if ok := s.AddClause(); ok {
			t.Error("empty clause should report false")
		}
		status, _ := s.Solve(ctx)
		if status != Unsat {
			t.Errorf("got %v", status)
		}
	})

	t.Run("tautology ignored", func(t *testing.T) {
		s := New(1, Options{})
		s.AddClause(1, -1)
		status, _ := s.Solve(ctx)
		if status != Sat {
			t.Errorf("got %v", status)
		}
	})

	t.Run("var growth", func(t *testing.T) {
		s := New(0, Options{})
		s.AddClause(10)
		if s.NumVars() != 10 {
			t.Errorf("NumVars = %d", s.NumVars())
		}
		if n := s.AddVars(2); n != 12 {
			t.Errorf("AddVars = %d", n)
		}
	})
}

// pigeonhole encodes PHP(p, h): p pigeons into h holes — unsatisfiable
// when p > h. Variable (i,j) = pigeon i in hole j.
func pigeonhole(s interface{ AddClause(...cnf.Lit) bool }, pigeons, holes int) {
	v := func(i, j int) cnf.Lit { return cnf.Lit(i*holes + j + 1) }
	for i := 0; i < pigeons; i++ {
		clause := make([]cnf.Lit, holes)
		for j := 0; j < holes; j++ {
			clause[j] = v(i, j)
		}
		s.AddClause(clause...)
	}
	for j := 0; j < holes; j++ {
		for i1 := 0; i1 < pigeons; i1++ {
			for i2 := i1 + 1; i2 < pigeons; i2++ {
				s.AddClause(-v(i1, j), -v(i2, j))
			}
		}
	}
}

func TestPigeonhole(t *testing.T) {
	ctx := context.Background()
	t.Run("php 5 into 5 sat", func(t *testing.T) {
		s := New(25, Options{})
		pigeonhole(s, 5, 5)
		status, err := s.Solve(ctx)
		if err != nil || status != Sat {
			t.Errorf("got %v, %v", status, err)
		}
	})
	t.Run("php 6 into 5 unsat", func(t *testing.T) {
		s := New(30, Options{})
		pigeonhole(s, 6, 5)
		status, err := s.Solve(ctx)
		if err != nil || status != Unsat {
			t.Errorf("got %v, %v", status, err)
		}
		if s.Stats().Conflicts == 0 {
			t.Error("expected a non-trivial search")
		}
	})
}

// randomCNF produces a random k-CNF instance.
func randomCNF(rng *rand.Rand, numVars, numClauses, k int) *cnf.Formula {
	f := &cnf.Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		clause := make([]cnf.Lit, 0, k)
		for len(clause) < k {
			v := rng.Intn(numVars) + 1
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			clause = append(clause, l)
		}
		f.AddClause(clause...)
	}
	return f
}

// bruteForceSat reports satisfiability by enumeration.
func bruteForceSat(f *cnf.Formula) bool {
	n := f.NumVars
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		if ok, _ := f.Eval(assign); ok {
			return true
		}
	}
	return false
}

func TestRandomAgainstBruteForce(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		numVars := 4 + rng.Intn(9)
		f := randomCNF(rng, numVars, 3+rng.Intn(5*numVars), 3)
		want := bruteForceSat(f)

		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if (status == Sat) != want {
			t.Fatalf("trial %d: CDCL says %v, brute force says %v", trial, status, want)
		}
		if status == Sat {
			ok, err := f.Eval(s.Model())
			if err != nil || !ok {
				t.Fatalf("trial %d: CDCL model does not satisfy formula (%v)", trial, err)
			}
		}

		d := NewDpll(f.NumVars)
		d.AddFormula(f)
		dstatus, err := d.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if (dstatus == Sat) != want {
			t.Fatalf("trial %d: DPLL says %v, brute force says %v", trial, dstatus, want)
		}
		if dstatus == Sat {
			ok, err := f.Eval(d.Model())
			if err != nil || !ok {
				t.Fatalf("trial %d: DPLL model invalid (%v)", trial, err)
			}
		}
	}
}

func TestSolverOptionsDiversity(t *testing.T) {
	// Different option sets must all solve the same instance correctly.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(37))
	f := randomCNF(rng, 12, 40, 3)
	want := bruteForceSat(f)
	optionSets := []Options{
		{},
		{VarDecay: 0.8, RestartBase: 10},
		{InitialPhase: true},
		{RandomSeed: 99, RandomFreq: 0.1},
		{ClauseDecay: 0.9},
	}
	for i, opts := range optionSets {
		s := New(f.NumVars, opts)
		s.AddFormula(f)
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if (status == Sat) != want {
			t.Errorf("option set %d: got %v, want sat=%v", i, status, want)
		}
	}
}

func TestIncrementalSolving(t *testing.T) {
	ctx := context.Background()
	s := New(3, Options{})
	s.AddClause(1, 2)
	status, err := s.Solve(ctx)
	if err != nil || status != Sat {
		t.Fatalf("first solve: %v, %v", status, err)
	}
	// Add clauses between calls (blocking-clause style).
	s.AddClause(-1)
	s.AddClause(-2)
	status, err = s.Solve(ctx)
	if err != nil || status != Unsat {
		t.Fatalf("second solve: %v, %v", status, err)
	}
}

func TestAssumptions(t *testing.T) {
	ctx := context.Background()
	s := New(3, Options{})
	s.AddClause(-1, 2) // 1 → 2
	s.AddClause(-2, 3) // 2 → 3

	status, err := s.Solve(ctx, 1, -3)
	if err != nil || status != Unsat {
		t.Fatalf("assume {1, ¬3}: %v, %v", status, err)
	}
	core := s.Core()
	if len(core) == 0 || len(core) > 2 {
		t.Fatalf("core = %v", core)
	}
	inCore := make(map[cnf.Lit]bool)
	for _, l := range core {
		inCore[l] = true
	}
	for _, l := range core {
		if l != 1 && l != -3 {
			t.Errorf("core literal %v is not an assumption", l)
		}
	}
	// The core must be genuinely unsatisfiable together with the
	// clauses: {1, ¬3} is (nothing smaller is).
	if !(inCore[1] && inCore[-3]) {
		t.Errorf("core %v should contain both assumptions", core)
	}

	// Solving again without assumptions must succeed: the instance
	// itself is satisfiable.
	status, err = s.Solve(ctx)
	if err != nil || status != Sat {
		t.Fatalf("solve without assumptions: %v, %v", status, err)
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	ctx := context.Background()
	s := New(2, Options{})
	s.AddClause(1, 2)
	status, err := s.Solve(ctx, 1, -1)
	if err != nil || status != Unsat {
		t.Fatalf("got %v, %v", status, err)
	}
	core := s.Core()
	inCore := make(map[cnf.Lit]bool)
	for _, l := range core {
		inCore[l] = true
	}
	if !inCore[1] || !inCore[-1] {
		t.Errorf("core %v should contain 1 and -1", core)
	}
}

func TestAssumptionsSat(t *testing.T) {
	ctx := context.Background()
	s := New(3, Options{})
	s.AddClause(1, 2, 3)
	status, err := s.Solve(ctx, -1, -2)
	if err != nil || status != Sat {
		t.Fatalf("got %v, %v", status, err)
	}
	m := s.Model()
	if m[1] || m[2] || !m[3] {
		t.Errorf("model %v violates assumptions or clause", m)
	}
}

func TestAssumptionCoreRandom(t *testing.T) {
	// Property: whenever Solve(assumps) is Unsat, the returned core is a
	// subset of the assumptions and clauses+core is itself Unsat.
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		numVars := 5 + rng.Intn(6)
		f := randomCNF(rng, numVars, 2*numVars, 3)
		var assumps []cnf.Lit
		seen := make(map[int]bool)
		for len(assumps) < 3 {
			v := rng.Intn(numVars) + 1
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.Lit(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			assumps = append(assumps, l)
		}

		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		status, err := s.Solve(ctx, assumps...)
		if err != nil {
			t.Fatal(err)
		}
		if status != Unsat {
			continue
		}
		core := s.Core()
		isAssump := make(map[cnf.Lit]bool, len(assumps))
		for _, a := range assumps {
			isAssump[a] = true
		}
		for _, l := range core {
			if !isAssump[l] {
				t.Fatalf("trial %d: core literal %v not among assumptions %v", trial, l, assumps)
			}
		}
		// Check clauses + core unit clauses are unsatisfiable.
		check := NewDpll(f.NumVars)
		check.AddFormula(f)
		cstatus, err := check.Solve(ctx, core...)
		if err != nil {
			t.Fatal(err)
		}
		if cstatus != Unsat {
			t.Fatalf("trial %d: core %v is not actually unsatisfiable", trial, core)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(0, Options{})
	pigeonhole(s, 9, 8) // hard enough to pass the conflict-check interval
	if _, err := s.Solve(ctx); err == nil {
		t.Error("cancelled solve should return an error")
	}

	d := NewDpll(0)
	pigeonhole(d, 9, 8)
	if _, err := d.Solve(ctx); err == nil {
		t.Error("cancelled DPLL solve should return an error")
	}
}

func TestStatsProgress(t *testing.T) {
	s := New(30, Options{})
	pigeonhole(s, 6, 5)
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status.String mismatch")
	}
}

func TestDpllAssumptionConflict(t *testing.T) {
	d := NewDpll(2)
	d.AddClause(1, 2)
	status, err := d.Solve(context.Background(), 1, -1)
	if err != nil || status != Unsat {
		t.Errorf("got %v, %v", status, err)
	}
}

func TestDpllEmptyClause(t *testing.T) {
	d := NewDpll(1)
	if d.AddClause() {
		t.Error("empty clause accepted")
	}
	status, _ := d.Solve(context.Background())
	if status != Unsat {
		t.Errorf("got %v", status)
	}
}
