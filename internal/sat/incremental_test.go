package sat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
)

// TestIncrementalStress interleaves clause additions, assumption solves
// and plain solves on one CDCL solver, checking every answer against a
// fresh DPLL solver built from scratch — the strongest guard against
// state leaking between incremental calls (stale watches, trail
// corruption, learnt clauses outliving their justification).
func TestIncrementalStress(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 25; trial++ {
		numVars := 5 + rng.Intn(8)
		s := New(numVars, Options{})
		var clauses []cnf.Clause

		steps := 12 + rng.Intn(15)
		for step := 0; step < steps; step++ {
			switch rng.Intn(3) {
			case 0: // add a random clause
				k := 1 + rng.Intn(3)
				clause := make(cnf.Clause, k)
				for i := range clause {
					l := cnf.Lit(rng.Intn(numVars) + 1)
					if rng.Intn(2) == 0 {
						l = -l
					}
					clause[i] = l
				}
				clauses = append(clauses, clause)
				s.AddClause(clause...)
			case 1: // solve without assumptions
				got, err := s.Solve(ctx)
				if err != nil {
					t.Fatal(err)
				}
				want := freshDPLL(t, ctx, numVars, clauses)
				if got != want {
					t.Fatalf("trial %d step %d: CDCL %v, fresh DPLL %v (clauses %v)",
						trial, step, got, want, clauses)
				}
				if got == Sat {
					assertModelSatisfies(t, s.Model(), clauses)
				}
			default: // solve under random assumptions
				var assumps []cnf.Lit
				used := make(map[int]bool)
				for len(assumps) < 2 {
					v := rng.Intn(numVars) + 1
					if used[v] {
						continue
					}
					used[v] = true
					l := cnf.Lit(v)
					if rng.Intn(2) == 0 {
						l = -l
					}
					assumps = append(assumps, l)
				}
				got, err := s.Solve(ctx, assumps...)
				if err != nil {
					t.Fatal(err)
				}
				want := freshDPLLAssume(t, ctx, numVars, clauses, assumps)
				if got != want {
					t.Fatalf("trial %d step %d: CDCL %v, fresh DPLL %v under %v",
						trial, step, got, want, assumps)
				}
			}
		}
	}
}

func freshDPLL(t *testing.T, ctx context.Context, numVars int, clauses []cnf.Clause) Status {
	t.Helper()
	d := NewDpll(numVars)
	for _, c := range clauses {
		d.AddClause(c...)
	}
	status, err := d.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return status
}

func freshDPLLAssume(t *testing.T, ctx context.Context, numVars int, clauses []cnf.Clause, assumps []cnf.Lit) Status {
	t.Helper()
	d := NewDpll(numVars)
	for _, c := range clauses {
		d.AddClause(c...)
	}
	status, err := d.Solve(ctx, assumps...)
	if err != nil {
		t.Fatal(err)
	}
	return status
}

func assertModelSatisfies(t *testing.T, model []bool, clauses []cnf.Clause) {
	t.Helper()
	for _, clause := range clauses {
		ok := false
		for _, l := range clause {
			if l.Var() < len(model) && model[l.Var()] == l.Pos() {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("model violates clause %v", clause)
		}
	}
}

// TestIncrementalBudgetStress mixes budget tightening with clause
// additions, validating against brute force at every step.
func TestIncrementalBudgetStress(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 20; trial++ {
		numVars := 4 + rng.Intn(5)
		s := New(numVars, Options{})
		var clauses []cnf.Clause

		lits := make([]cnf.Lit, numVars)
		weights := make([]int64, numVars)
		var total int64
		for v := 1; v <= numVars; v++ {
			lits[v-1] = cnf.Lit(v)
			weights[v-1] = int64(1 + rng.Intn(9))
			total += weights[v-1]
		}
		if err := s.SetBudget(lits, weights, total); err != nil {
			t.Fatal(err)
		}
		bound := total

		for step := 0; step < 10; step++ {
			if rng.Intn(2) == 0 {
				clause := cnf.Clause{
					cnf.Lit(rng.Intn(numVars) + 1),
					-cnf.Lit(rng.Intn(numVars) + 1),
				}
				clauses = append(clauses, clause)
				s.AddClause(clause...)
			} else if bound > 0 {
				bound -= int64(rng.Intn(3))
				if bound < 0 {
					bound = 0
				}
				if err := s.SetBudgetBound(bound); err != nil {
					t.Fatal(err)
				}
			}
			got, err := s.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceBudget(numVars, clauses, weights, bound)
			if (got == Sat) != want {
				t.Fatalf("trial %d step %d: CDCL %v, brute force sat=%v (bound %d)",
					trial, step, got, want, bound)
			}
		}
	}
}

func bruteForceBudget(numVars int, clauses []cnf.Clause, weights []int64, bound int64) bool {
	f := cnf.Formula{NumVars: numVars, Clauses: clauses}
	assign := make([]bool, numVars+1)
	for mask := 0; mask < 1<<uint(numVars); mask++ {
		var cost int64
		for v := 1; v <= numVars; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
			if assign[v] {
				cost += weights[v-1]
			}
		}
		if cost > bound {
			continue
		}
		if ok, _ := f.Eval(assign); ok {
			return true
		}
	}
	return false
}
