package sat

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mpmcs4fta/internal/cnf"
)

// genInstance is a quick.Generator for small random CNF instances in
// the phase-transition density region.
type genInstance struct {
	F *cnf.Formula
}

// Generate implements quick.Generator.
func (genInstance) Generate(r *rand.Rand, _ int) reflect.Value {
	numVars := 3 + r.Intn(10)
	numClauses := 1 + r.Intn(4*numVars)
	f := &cnf.Formula{NumVars: numVars}
	for i := 0; i < numClauses; i++ {
		k := 1 + r.Intn(3)
		clause := make([]cnf.Lit, k)
		for j := range clause {
			l := cnf.Lit(r.Intn(numVars) + 1)
			if r.Intn(2) == 0 {
				l = -l
			}
			clause[j] = l
		}
		f.AddClause(clause...)
	}
	return reflect.ValueOf(genInstance{F: f})
}

func satQuickConfig() *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(107))}
}

// TestQuickCDCLAgreesWithDPLL: the two engines decide identically, and
// SAT models actually satisfy the formula.
func TestQuickCDCLAgreesWithDPLL(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance) bool {
		s := New(g.F.NumVars, Options{})
		s.AddFormula(g.F)
		cdclStatus, err := s.Solve(ctx)
		if err != nil {
			return false
		}
		d := NewDpll(g.F.NumVars)
		d.AddFormula(g.F)
		dpllStatus, err := d.Solve(ctx)
		if err != nil {
			return false
		}
		if cdclStatus != dpllStatus {
			return false
		}
		if cdclStatus == Sat {
			ok, err := g.F.Eval(s.Model())
			if err != nil || !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, satQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveIsStable: re-solving the same instance gives the same
// answer (the solver must reset its per-call state correctly).
func TestQuickSolveIsStable(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance) bool {
		s := New(g.F.NumVars, Options{})
		s.AddFormula(g.F)
		first, err := s.Solve(ctx)
		if err != nil {
			return false
		}
		second, err := s.Solve(ctx)
		if err != nil {
			return false
		}
		return first == second
	}
	if err := quick.Check(property, satQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickAssumptionConsistency: if Solve(a) is Sat, the model honours
// every assumption; if Unsat, the core is a subset of the assumptions.
func TestQuickAssumptionConsistency(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance, rawAssumps []int8) bool {
		var assumps []cnf.Lit
		seen := make(map[int]bool)
		for _, raw := range rawAssumps {
			v := int(raw)
			if v < 0 {
				v = -v
			}
			v = v%g.F.NumVars + 1
			if seen[v] {
				continue
			}
			seen[v] = true
			l := cnf.Lit(v)
			if raw < 0 {
				l = -l
			}
			assumps = append(assumps, l)
			if len(assumps) == 3 {
				break
			}
		}
		s := New(g.F.NumVars, Options{})
		s.AddFormula(g.F)
		status, err := s.Solve(ctx, assumps...)
		if err != nil {
			return false
		}
		switch status {
		case Sat:
			m := s.Model()
			for _, a := range assumps {
				if m[a.Var()] != a.Pos() {
					return false
				}
			}
		case Unsat:
			isAssump := make(map[cnf.Lit]bool, len(assumps))
			for _, a := range assumps {
				isAssump[a] = true
			}
			for _, l := range s.Core() {
				if !isAssump[l] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, satQuickConfig()); err != nil {
		t.Error(err)
	}
}

// TestQuickBudgetMonotone: raising the budget bound can only keep or
// gain satisfiability, never lose it.
func TestQuickBudgetMonotone(t *testing.T) {
	ctx := context.Background()
	property := func(g genInstance, rawBound uint16) bool {
		lits := make([]cnf.Lit, g.F.NumVars)
		weights := make([]int64, g.F.NumVars)
		var total int64
		for v := 1; v <= g.F.NumVars; v++ {
			lits[v-1] = cnf.Lit(v)
			weights[v-1] = int64(v)
			total += int64(v)
		}
		bound := int64(rawBound) % (total + 1)

		solveAt := func(b int64) (Status, bool) {
			s := New(g.F.NumVars, Options{})
			s.AddFormula(g.F)
			if err := s.SetBudget(lits, weights, b); err != nil {
				return Unknown, false
			}
			status, err := s.Solve(ctx)
			return status, err == nil
		}
		tight, ok1 := solveAt(bound)
		loose, ok2 := solveAt(total)
		if !ok1 || !ok2 {
			return false
		}
		// tight Sat implies loose Sat.
		return tight != Sat || loose == Sat
	}
	if err := quick.Check(property, satQuickConfig()); err != nil {
		t.Error(err)
	}
}
