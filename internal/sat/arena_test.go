package sat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
)

func TestArenaAllocAccessors(t *testing.T) {
	var a clauseArena
	r1 := a.alloc([]lit{mkLit(0, false), mkLit(1, true), mkLit(2, false)}, 0)
	r2 := a.alloc([]lit{mkLit(3, false), mkLit(4, false)}, flagLearnt)

	if a.size(r1) != 3 || a.size(r2) != 2 {
		t.Fatalf("sizes = %d, %d", a.size(r1), a.size(r2))
	}
	if a.learnt(r1) || !a.learnt(r2) {
		t.Fatalf("learnt flags = %v, %v", a.learnt(r1), a.learnt(r2))
	}
	if a.deleted(r1) || a.temp(r1) {
		t.Fatal("fresh clause carries deleted/temp flags")
	}
	want := []lit{mkLit(0, false), mkLit(1, true), mkLit(2, false)}
	for i, l := range a.lits(r1) {
		if l != want[i] {
			t.Fatalf("lits(r1)[%d] = %v, want %v", i, l, want[i])
		}
	}
	a.setLBD(r2, 7)
	a.setAct(r2, 2.5)
	if a.lbd(r2) != 7 || a.act(r2) != 2.5 {
		t.Fatalf("lbd/act roundtrip: %d, %v", a.lbd(r2), a.act(r2))
	}
	if a.wasted != 0 {
		t.Fatalf("wasted = %d before any deletion", a.wasted)
	}
	a.markDeleted(r1)
	if !a.deleted(r1) || a.wasted != hdrWords+3 {
		t.Fatalf("deleted=%v wasted=%d", a.deleted(r1), a.wasted)
	}
}

func TestArenaRelocForwarding(t *testing.T) {
	var a clauseArena
	dead := a.alloc([]lit{mkLit(0, false), mkLit(1, false)}, 0)
	live := a.alloc([]lit{mkLit(2, false), mkLit(3, true), mkLit(4, false)}, flagLearnt)
	a.setLBD(live, 3)
	a.markDeleted(dead)

	to := clauseArena{}
	ref1, ref2 := live, live
	a.reloc(&ref1, &to)
	a.reloc(&ref2, &to) // second reloc must follow the forwarding ref
	if ref1 != ref2 {
		t.Fatalf("two relocs of the same clause diverged: %d vs %d", ref1, ref2)
	}
	if to.size(ref1) != 3 || !to.learnt(ref1) || to.lbd(ref1) != 3 {
		t.Fatal("relocated clause lost header state")
	}
	if got, want := to.lits(ref1)[1], mkLit(3, true); got != want {
		t.Fatalf("relocated lits[1] = %v, want %v", got, want)
	}
	// Only the live clause moved: the new arena holds exactly one clause.
	if to.words() != hdrWords+3 {
		t.Fatalf("new arena words = %d, want %d (dead clause copied?)", to.words(), hdrWords+3)
	}
}

// checkSolverRefs verifies every clauseRef the solver holds is
// structurally sound after a GC: watch lists point at live clauses that
// really watch the literal, reasons of assigned variables resolve, and
// the clause DB lists contain no deleted refs.
func checkSolverRefs(t *testing.T, s *Solver) {
	t.Helper()
	for l := range s.watches {
		for _, w := range s.watches[l] {
			if s.ca.deleted(w.ref) {
				t.Fatalf("watch list %d holds a deleted clause", l)
			}
			cl := s.ca.lits(w.ref)
			if len(cl) < 2 {
				t.Fatalf("watched clause of size %d", len(cl))
			}
			if cl[0].neg() != lit(l) && cl[1].neg() != lit(l) {
				t.Fatalf("clause %v does not watch literal %d", cl, l)
			}
		}
	}
	for v := 0; v < s.numVars; v++ {
		if r := s.reason[v]; r != refUndef {
			if s.ca.deleted(r) {
				t.Fatalf("reason of var %d is a deleted clause", v)
			}
			if got := s.ca.lits(r)[0].variable(); got != v {
				t.Fatalf("reason clause of var %d asserts var %d", v, got)
			}
		}
	}
	for _, cr := range s.clauses {
		if s.ca.deleted(cr) || s.ca.size(cr) < 2 {
			t.Fatal("problem clause list holds deleted/short clause")
		}
	}
	for _, cr := range s.learnts {
		if s.ca.deleted(cr) || !s.ca.learnt(cr) {
			t.Fatal("learnt DB holds deleted or non-learnt clause")
		}
	}
}

// TestGCRemapsRefs drives a solve that learns clauses, then forces
// deletion and compaction and checks every ref was remapped.
func TestGCRemapsRefs(t *testing.T) {
	ctx := context.Background()
	s := New(30, Options{})
	pigeonhole(s, 6, 5)
	if status, err := s.Solve(ctx); err != nil || status != Unsat {
		t.Fatalf("php(6,5): %v, %v", status, err)
	}
	// Re-solve a satisfiable extension after compaction: delete every
	// other learnt clause, sweep, compact.
	s2 := New(25, Options{})
	pigeonhole(s2, 5, 5)
	if status, err := s2.Solve(ctx); err != nil || status != Sat {
		t.Fatalf("php(5,5): %v, %v", status, err)
	}
	kept := s2.learnts[:0]
	for i, cr := range s2.learnts {
		if i%2 == 0 && !s2.locked(cr) {
			s2.ca.markDeleted(cr)
		} else {
			kept = append(kept, cr)
		}
	}
	s2.learnts = kept
	s2.sweepWatches()
	before := s2.ca.words()
	wasted := s2.ca.wasted
	s2.garbageCollect()
	checkSolverRefs(t, s2)
	if s2.ca.wasted != 0 {
		t.Fatalf("wasted = %d after GC", s2.ca.wasted)
	}
	if wasted > 0 && s2.ca.words() != before-wasted {
		t.Fatalf("arena words %d, want %d - %d", s2.ca.words(), before, wasted)
	}
	if s2.stats.ClauseGCs != 1 {
		t.Fatalf("ClauseGCs = %d", s2.stats.ClauseGCs)
	}
	// The compacted solver must still answer correctly.
	if status, err := s2.Solve(ctx); err != nil || status != Sat {
		t.Fatalf("post-GC solve: %v, %v", status, err)
	}
	pigeonhole(s2, 6, 5) // extend to the unsat instance incrementally
	if status, err := s2.Solve(ctx); err != nil || status != Unsat {
		t.Fatalf("post-GC incremental solve: %v, %v", status, err)
	}
}

// TestGCDuringSearch shrinks the learnt-DB cap so reduceDB (and with it
// the compacting GC) fires organically mid-search; the solver must stay
// correct with refs moving under the live trail and watch lists.
func TestGCDuringSearch(t *testing.T) {
	ctx := context.Background()
	s := New(0, Options{})
	pigeonhole(s, 7, 6)
	s.maxLearnts = 20 // force frequent reduceDB + GC
	status, err := s.Solve(ctx)
	if err != nil || status != Unsat {
		t.Fatalf("php(7,6): %v, %v", status, err)
	}
	if s.stats.Deleted == 0 {
		t.Fatal("reduceDB never deleted a clause despite tiny cap")
	}
	if s.stats.ClauseGCs == 0 {
		t.Fatal("clause GC never ran despite heavy deletion")
	}
	checkSolverRefs(t, s)
}

// TestGCWithBudgetReasons runs the LinearSU-style incremental loop with
// a tiny learnt cap: budget reasons live in the arena as temp clauses
// and must survive (or be reclaimed by) compactions across Solve calls.
func TestGCWithBudgetReasons(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		numVars := 6 + rng.Intn(5)
		f := randomCNF(rng, numVars, 3*numVars, 3)
		lits := make([]cnf.Lit, numVars)
		weights := make([]int64, numVars)
		var total int64
		for v := 1; v <= numVars; v++ {
			lits[v-1] = cnf.Lit(v)
			weights[v-1] = int64(1 + rng.Intn(9))
			total += weights[v-1]
		}
		want := bruteForceMinCost(f, lits, weights)

		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		if err := s.SetBudget(lits, weights, total); err != nil {
			t.Fatal(err)
		}
		s.maxLearnts = 10
		best := int64(-1)
		for {
			status, err := s.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if status != Sat {
				break
			}
			m := s.Model()
			var cost int64
			for i, l := range lits {
				if m[l.Var()] == l.Pos() {
					cost += weights[i]
				}
			}
			best = cost
			if cost == 0 {
				break
			}
			if err := s.SetBudgetBound(cost - 1); err != nil {
				t.Fatal(err)
			}
		}
		if best != want {
			t.Fatalf("trial %d: linear search under GC found %d, brute force %d", trial, best, want)
		}
		checkSolverRefs(t, s)
	}
}

// TestIncrementalSolveAcrossGC interleaves clause addition, solving and
// explicit compaction: refs handed out before a GC (problem clause DB,
// level-0 reasons) must stay valid for later Solve calls.
func TestIncrementalSolveAcrossGC(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		numVars := 5 + rng.Intn(6)
		f := randomCNF(rng, numVars, 2*numVars, 3)
		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		if _, err := s.Solve(ctx); err != nil {
			t.Fatal(err)
		}
		s.garbageCollect() // compact between incremental calls
		checkSolverRefs(t, s)

		g := randomCNF(rng, numVars, numVars, 3)
		s.AddFormula(g)
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		combined := &cnf.Formula{NumVars: numVars}
		for _, c := range f.Clauses {
			combined.AddClause(c...)
		}
		for _, c := range g.Clauses {
			combined.AddClause(c...)
		}
		if want := bruteForceSat(combined); (status == Sat) != want {
			t.Fatalf("trial %d: post-GC incremental solve %v, brute force %v", trial, status, want)
		}
		if status == Sat {
			if ok, _ := combined.Eval(s.Model()); !ok {
				t.Fatalf("trial %d: post-GC model violates combined formula", trial)
			}
		}
	}
}
