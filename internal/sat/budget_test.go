package sat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
)

// bruteForceMinCost finds the minimum of Σ weights[i]·[lits[i] true] over
// all models of f, or -1 when f is unsatisfiable.
func bruteForceMinCost(f *cnf.Formula, lits []cnf.Lit, weights []int64) int64 {
	n := f.NumVars
	best := int64(-1)
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<uint(v-1)) != 0
		}
		ok, _ := f.Eval(assign)
		if !ok {
			continue
		}
		var cost int64
		for i, l := range lits {
			if assign[l.Var()] == l.Pos() {
				cost += weights[i]
			}
		}
		if best < 0 || cost < best {
			best = cost
		}
	}
	return best
}

func TestBudgetValidation(t *testing.T) {
	s := New(2, Options{})
	if err := s.SetBudget([]cnf.Lit{1}, []int64{1, 2}, 5); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := s.SetBudget([]cnf.Lit{1}, []int64{0}, 5); err == nil {
		t.Error("zero weight accepted")
	}
	if err := s.SetBudget([]cnf.Lit{1, 1}, []int64{1, 2}, 5); err == nil {
		t.Error("duplicate literal accepted")
	}
	if err := s.SetBudgetBound(3); err == nil {
		t.Error("SetBudgetBound without budget accepted")
	}
	if err := s.SetBudget([]cnf.Lit{1, -2}, []int64{3, 4}, 5); err != nil {
		t.Fatalf("valid budget rejected: %v", err)
	}
	if err := s.SetBudgetBound(6); err == nil {
		t.Error("raising the bound should be rejected")
	}
	if err := s.SetBudgetBound(2); err != nil {
		t.Errorf("tightening the bound failed: %v", err)
	}
}

func TestBudgetWeightOverflowRejected(t *testing.T) {
	s := New(2, Options{})
	err := s.SetBudget([]cnf.Lit{1, 2}, []int64{1 << 62, 1 << 62}, 5)
	if err == nil {
		t.Fatal("total weight 2^63 accepted; the budget sum wrapped int64")
	}
}

func TestBudgetRefreshOnlyLowers(t *testing.T) {
	ctx := context.Background()
	// x1 ∨ x2, weights 5 and 3: minimum cost 3.
	build := func(bound int64) *Solver {
		s := New(2, Options{})
		s.AddClause(1, 2)
		if err := s.SetBudget([]cnf.Lit{1, 2}, []int64{5, 3}, bound); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// A refresh tightening the bound below the optimum flips the answer
	// to Unsat even though the initial bound admits a model.
	s := build(7)
	s.SetBudgetRefresh(func() (int64, bool) { return 2, true })
	status, err := s.Solve(ctx)
	if err != nil || status != Unsat {
		t.Errorf("refresh to 2: want UNSAT, got %v, %v", status, err)
	}
	if got := s.BudgetBound(); got != 2 {
		t.Errorf("budget bound after refresh: got %d, want 2", got)
	}

	// A refresh offering a looser bound must be ignored: the bound never
	// rises, so an Unsat-proving bound stays proving.
	s = build(2)
	s.SetBudgetRefresh(func() (int64, bool) { return 10, true })
	status, err = s.Solve(ctx)
	if err != nil || status != Unsat {
		t.Errorf("refresh to 10 over bound 2: want UNSAT, got %v, %v", status, err)
	}
	if got := s.BudgetBound(); got != 2 {
		t.Errorf("budget bound was raised by refresh: got %d, want 2", got)
	}
}

func TestBudgetSimple(t *testing.T) {
	ctx := context.Background()
	// x1 ∨ x2, weights 5 and 3 on the positive literals.
	build := func(bound int64) *Solver {
		s := New(2, Options{})
		s.AddClause(1, 2)
		if err := s.SetBudget([]cnf.Lit{1, 2}, []int64{5, 3}, bound); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Minimum achievable cost is 3 (set x2 only).
	status, err := build(3).Solve(ctx)
	if err != nil || status != Sat {
		t.Errorf("bound 3: %v, %v", status, err)
	}
	status, err = build(2).Solve(ctx)
	if err != nil || status != Unsat {
		t.Errorf("bound 2: %v, %v", status, err)
	}
	s := build(7)
	status, err = s.Solve(ctx)
	if err != nil || status != Sat {
		t.Fatalf("bound 7: %v, %v", status, err)
	}
	m := s.Model()
	var cost int64
	if m[1] {
		cost += 5
	}
	if m[2] {
		cost += 3
	}
	if cost > 7 {
		t.Errorf("model cost %d exceeds bound 7", cost)
	}
}

func TestBudgetAgainstBruteForce(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		numVars := 4 + rng.Intn(6)
		f := randomCNF(rng, numVars, 2*numVars, 3)
		var (
			lits    []cnf.Lit
			weights []int64
		)
		for v := 1; v <= numVars; v++ {
			if rng.Intn(3) == 0 {
				continue // leave some variables un-budgeted
			}
			l := cnf.Lit(v)
			if rng.Intn(4) == 0 {
				l = -l
			}
			lits = append(lits, l)
			weights = append(weights, int64(1+rng.Intn(10)))
		}
		if len(lits) == 0 {
			continue
		}
		minCost := bruteForceMinCost(f, lits, weights)

		var total int64
		for _, w := range weights {
			total += w
		}
		for _, bound := range []int64{0, minCost - 1, minCost, minCost + 2, total} {
			if bound < 0 {
				continue
			}
			s := New(f.NumVars, Options{})
			s.AddFormula(f)
			if err := s.SetBudget(lits, weights, bound); err != nil {
				t.Fatal(err)
			}
			status, err := s.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wantSat := minCost >= 0 && minCost <= bound
			if (status == Sat) != wantSat {
				t.Fatalf("trial %d bound %d: got %v, want sat=%v (minCost %d)",
					trial, bound, status, wantSat, minCost)
			}
			if status == Sat {
				ok, _ := f.Eval(s.Model())
				if !ok {
					t.Fatalf("trial %d: model violates clauses", trial)
				}
				var cost int64
				m := s.Model()
				for i, l := range lits {
					if m[l.Var()] == l.Pos() {
						cost += weights[i]
					}
				}
				if cost > bound {
					t.Fatalf("trial %d: model cost %d exceeds bound %d", trial, cost, bound)
				}
			}
		}
	}
}

// TestBudgetLinearSearch drives the exact loop LinearSU uses: repeatedly
// tighten the bound below the last model's cost until Unsat; the last
// model must be optimal.
func TestBudgetLinearSearch(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		numVars := 4 + rng.Intn(5)
		f := randomCNF(rng, numVars, numVars+rng.Intn(numVars), 3)
		lits := make([]cnf.Lit, numVars)
		weights := make([]int64, numVars)
		var total int64
		for v := 1; v <= numVars; v++ {
			lits[v-1] = cnf.Lit(v)
			weights[v-1] = int64(1 + rng.Intn(20))
			total += weights[v-1]
		}
		want := bruteForceMinCost(f, lits, weights)

		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		if err := s.SetBudget(lits, weights, total); err != nil {
			t.Fatal(err)
		}
		best := int64(-1)
		for {
			status, err := s.Solve(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if status != Sat {
				break
			}
			m := s.Model()
			var cost int64
			for i, l := range lits {
				if m[l.Var()] == l.Pos() {
					cost += weights[i]
				}
			}
			best = cost
			if cost == 0 {
				break
			}
			if err := s.SetBudgetBound(cost - 1); err != nil {
				t.Fatal(err)
			}
		}
		if best != want {
			t.Fatalf("trial %d: linear search found %d, brute force %d", trial, best, want)
		}
	}
}
