package sat

import "math"

// clauseRef is an index into the clause arena, replacing *clause
// pointers in watch lists, reasons and the clause databases. Indices
// survive arena growth (unlike pointers into a reallocated slice) and
// let a compacting garbage collector move clauses with a simple
// forwarding scheme.
type clauseRef uint32

// refUndef marks "no clause": a decision or unset reason.
const refUndef clauseRef = ^clauseRef(0)

// Arena clause layout, all words lit-typed for index arithmetic:
//
//	word 0: size<<hdrSizeShift | flags
//	word 1: LBD (learnt clauses), or the forwarding ref once relocated
//	word 2: activity as float32 bits (learnt clauses)
//	word 3..3+size: literals
//
// The uniform 3-word header wastes two words on problem clauses but
// keeps every accessor branch-free.
const (
	hdrWords     = 3
	hdrSizeShift = 4

	flagLearnt  = 1 << 0
	flagDeleted = 1 << 1
	flagReloced = 1 << 2
	// flagTemp marks transient budget-propagator clauses (reasons and
	// conflicts materialised by propagateBudget). They are never
	// attached to watch lists; the solver marks them deleted as soon as
	// they leave the reason table so the GC reclaims them.
	flagTemp = 1 << 3
)

// maxClauseSize keeps size<<hdrSizeShift from overflowing a word.
const maxClauseSize = math.MaxUint32 >> hdrSizeShift

// clauseArena is a flat clause store: one []lit holding headers
// followed by literals. It eliminates per-clause Go allocations (zero
// GC pressure from learning) and pointer-chasing in propagation (clause
// headers and literals are adjacent words).
type clauseArena struct {
	data   []lit
	wasted int // words occupied by deleted clauses, reclaimed by GC
}

// alloc appends a clause and returns its ref. The literals are copied;
// the caller's slice may be reused.
func (a *clauseArena) alloc(lits []lit, flags lit) clauseRef {
	if len(lits) > maxClauseSize || uint64(len(a.data))+hdrWords+uint64(len(lits)) > math.MaxUint32 {
		panic("sat: clause arena exceeds 2^32 words")
	}
	r := clauseRef(len(a.data))
	a.data = append(a.data, lit(len(lits))<<hdrSizeShift|flags, 0, 0)
	a.data = append(a.data, lits...)
	return r
}

func (a *clauseArena) size(r clauseRef) int     { return int(a.data[r] >> hdrSizeShift) }
func (a *clauseArena) learnt(r clauseRef) bool  { return a.data[r]&flagLearnt != 0 }
func (a *clauseArena) deleted(r clauseRef) bool { return a.data[r]&flagDeleted != 0 }
func (a *clauseArena) temp(r clauseRef) bool    { return a.data[r]&flagTemp != 0 }

// lits returns the clause's literal slice, aliasing arena storage. The
// view is invalidated by any alloc (append may move data) and by GC.
func (a *clauseArena) lits(r clauseRef) []lit {
	base := int(r) + hdrWords
	return a.data[base : base+a.size(r) : base+a.size(r)]
}

func (a *clauseArena) lbd(r clauseRef) int       { return int(a.data[r+1]) }
func (a *clauseArena) setLBD(r clauseRef, v int) { a.data[r+1] = lit(v) }

func (a *clauseArena) act(r clauseRef) float32 {
	return math.Float32frombits(uint32(a.data[r+2]))
}
func (a *clauseArena) setAct(r clauseRef, v float32) {
	a.data[r+2] = lit(math.Float32bits(v))
}

// markDeleted flags the clause dead and accounts its words as wasted.
// The storage is reclaimed by the next compacting GC.
func (a *clauseArena) markDeleted(r clauseRef) {
	a.data[r] |= flagDeleted
	a.wasted += hdrWords + a.size(r)
}

// reloc moves the clause at *r into 'to' (unless a previous reloc
// already moved it, in which case the stored forwarding ref is used)
// and rewrites *r. Only live clauses may be relocated; the old arena is
// discarded after a full GC pass, so the forwarding overwrite of the
// LBD word is harmless.
func (a *clauseArena) reloc(r *clauseRef, to *clauseArena) {
	old := *r
	if a.data[old]&flagReloced != 0 {
		*r = clauseRef(a.data[old+1])
		return
	}
	end := int(old) + hdrWords + a.size(old)
	nr := clauseRef(len(to.data))
	to.data = append(to.data, a.data[old:end]...)
	a.data[old] |= flagReloced
	a.data[old+1] = lit(nr)
	*r = nr
}

// words reports the arena footprint in 4-byte words.
func (a *clauseArena) words() int { return len(a.data) }
