package sat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
)

// TestDeterministicAcrossRuns: the solver is fully deterministic — the
// same instance solved twice by fresh solvers yields identical models
// and statistics.
func TestDeterministicAcrossRuns(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(163))
	f := randomCNF(rng, 20, 80, 3)

	solveOnce := func() ([]bool, Stats, Status) {
		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return s.Model(), s.Stats(), status
	}
	model1, stats1, status1 := solveOnce()
	model2, stats2, status2 := solveOnce()
	if status1 != status2 || stats1 != stats2 {
		t.Errorf("runs differ: %v/%+v vs %v/%+v", status1, stats1, status2, stats2)
	}
	for i := range model1 {
		if model1[i] != model2[i] {
			t.Fatalf("models differ at %d", i)
		}
	}
}

// TestSeededRandomnessDeterministic: RandomSeed makes the randomised
// heuristic reproducible, and different seeds may explore differently
// while agreeing on satisfiability.
func TestSeededRandomnessDeterministic(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(167))
	f := randomCNF(rng, 18, 70, 3)

	solveSeed := func(seed int64) (Status, Stats) {
		s := New(f.NumVars, Options{RandomSeed: seed, RandomFreq: 0.2})
		s.AddFormula(f)
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return status, s.Stats()
	}
	statusA1, statsA1 := solveSeed(5)
	statusA2, statsA2 := solveSeed(5)
	if statusA1 != statusA2 || statsA1 != statsA2 {
		t.Error("same seed must reproduce the run exactly")
	}
	statusB, _ := solveSeed(99)
	if statusA1 != statusB {
		t.Error("different seeds must agree on satisfiability")
	}
}

// TestBudgetBoundZero: a zero budget forces every budgeted literal
// false.
func TestBudgetBoundZero(t *testing.T) {
	ctx := context.Background()
	s := New(3, Options{})
	s.AddClause(1, 2, 3)
	if err := s.SetBudget([]cnf.Lit{1, 2}, []int64{5, 5}, 0); err != nil {
		t.Fatal(err)
	}
	status, err := s.Solve(ctx)
	if err != nil || status != Sat {
		t.Fatalf("got %v, %v", status, err)
	}
	m := s.Model()
	if m[1] || m[2] || !m[3] {
		t.Errorf("model %v: budgeted literals must be false, 3 must carry the clause", m)
	}
}

// TestBudgetWithAssumptions: assumptions interact correctly with the
// budget propagator.
func TestBudgetWithAssumptions(t *testing.T) {
	ctx := context.Background()
	s := New(3, Options{})
	s.AddClause(1, 2, 3)
	if err := s.SetBudget([]cnf.Lit{1, 2, 3}, []int64{4, 3, 2}, 4); err != nil {
		t.Fatal(err)
	}
	// Assume 1 true (weight 4): nothing else fits.
	status, err := s.Solve(ctx, 1)
	if err != nil || status != Sat {
		t.Fatalf("got %v, %v", status, err)
	}
	m := s.Model()
	if !m[1] || m[2] || m[3] {
		t.Errorf("model %v under assumption 1 and bound 4", m)
	}
	// Assuming both heavy literals exceeds the bound: UNSAT with a core.
	status, err = s.Solve(ctx, 1, 2)
	if err != nil || status != Unsat {
		t.Fatalf("got %v, %v", status, err)
	}
	if len(s.Core()) == 0 {
		t.Error("budget-driven UNSAT under assumptions should produce a core")
	}
}

// TestStatsMonotone: counters only grow across solves on one solver.
func TestStatsMonotone(t *testing.T) {
	ctx := context.Background()
	s := New(0, Options{})
	pigeonhole(s, 6, 5)
	if _, err := s.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	first := s.Stats()
	s.AddClause(1) // harmless unit
	if _, err := s.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	second := s.Stats()
	if second.Conflicts < first.Conflicts || second.Decisions < first.Decisions {
		t.Errorf("stats went backwards: %+v then %+v", first, second)
	}
}
