package sat

import (
	"context"
	"math/rand"
	"testing"

	"mpmcs4fta/internal/cnf"
)

// TestLearntClausesSoundAndAsserting is the differential guard for
// recursive minimisation and binary self-subsumption: on random
// instances, every learnt clause observed right after conflict analysis
// must (a) still be asserting at the backjump level — exactly one
// literal from the current decision level, every other literal
// falsified at a level ≤ btLevel — and (b) be logically implied by the
// original formula, checked with the independent DPLL solver. A
// minimisation bug that drops a required literal breaks (b); one that
// mis-selects the backjump level breaks (a).
func TestLearntClausesSoundAndAsserting(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		numVars := 6 + rng.Intn(6)
		f := randomCNF(rng, numVars, 3+rng.Intn(5*numVars), 3)

		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		checked := 0
		s.testOnLearnt = func(learnt []lit, btLevel int) {
			if checked >= 200 {
				return // keep the DPLL cross-check affordable
			}
			checked++

			// (a) asserting shape, inspected before the backjump.
			if s.value(learnt[0]) != lFalse {
				t.Fatalf("trial %d: asserting literal not falsified", trial)
			}
			if lv := s.level[learnt[0].variable()]; lv != s.decisionLevel() {
				t.Fatalf("trial %d: asserting literal at level %d, decision level %d", trial, lv, s.decisionLevel())
			}
			for _, l := range learnt[1:] {
				if s.value(l) != lFalse {
					t.Fatalf("trial %d: learnt literal %v not falsified", trial, toDimacs(l))
				}
				if lv := s.level[l.variable()]; lv > btLevel {
					t.Fatalf("trial %d: learnt literal at level %d above backjump level %d — clause not asserting after backjump",
						trial, lv, btLevel)
				}
			}

			// (b) implication: formula ∧ ¬(learnt) must be UNSAT.
			d := NewDpll(f.NumVars)
			d.AddFormula(f)
			negs := make([]cnf.Lit, len(learnt))
			for i, l := range learnt {
				negs[i] = -toDimacs(l)
			}
			status, err := d.Solve(ctx, negs...)
			if err != nil {
				t.Fatal(err)
			}
			if status != Unsat {
				t.Fatalf("trial %d: learnt clause %v not implied by the formula — minimisation dropped a required literal",
					trial, negs)
			}
		}
		want := bruteForceSat(f)
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if (status == Sat) != want {
			t.Fatalf("trial %d: got %v, brute force %v", trial, status, want)
		}
	}
}

// TestRecursiveMinimisationFires asserts the deep minimiser actually
// removes literals on a conflict-rich instance (pigeonhole), i.e. the
// machinery is exercised, not just present.
func TestRecursiveMinimisationFires(t *testing.T) {
	s := New(30, Options{})
	pigeonhole(s, 6, 5)
	if status, err := s.Solve(context.Background()); err != nil || status != Unsat {
		t.Fatalf("php(6,5): %v, %v", status, err)
	}
	if s.stats.Minimized == 0 {
		t.Fatal("recursive minimisation removed no literals on php(6,5)")
	}
}

// TestMinimisationWithBudget replays the learnt-clause asserting check
// under the budget propagator, whose temp reason clauses feed conflict
// analysis: minimisation must follow those reasons soundly too.
func TestMinimisationWithBudget(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		numVars := 6 + rng.Intn(5)
		f := randomCNF(rng, numVars, 3*numVars, 3)
		lits := make([]cnf.Lit, numVars)
		weights := make([]int64, numVars)
		var total int64
		for v := 1; v <= numVars; v++ {
			lits[v-1] = cnf.Lit(v)
			weights[v-1] = int64(1 + rng.Intn(7))
			total += weights[v-1]
		}
		bound := total / 3
		want := bruteForceMinCost(f, lits, weights)

		s := New(f.NumVars, Options{})
		s.AddFormula(f)
		if err := s.SetBudget(lits, weights, bound); err != nil {
			t.Fatal(err)
		}
		s.testOnLearnt = func(learnt []lit, btLevel int) {
			for _, l := range learnt {
				if s.value(l) != lFalse {
					t.Fatalf("trial %d: learnt literal %v not falsified", trial, toDimacs(l))
				}
			}
			for _, l := range learnt[1:] {
				if lv := s.level[l.variable()]; lv > btLevel {
					t.Fatalf("trial %d: literal level %d above backjump %d", trial, lv, btLevel)
				}
			}
		}
		status, err := s.Solve(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantSat := want >= 0 && want <= bound
		if (status == Sat) != wantSat {
			t.Fatalf("trial %d: got %v, want sat=%v (minCost %d, bound %d)", trial, status, wantSat, want, bound)
		}
	}
}
