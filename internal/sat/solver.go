package sat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrInterrupted is returned (wrapped) when a Solve call is cancelled
// through its context.
var ErrInterrupted = errors.New("sat: interrupted")

// Options tunes solver heuristics. The zero value selects defaults;
// fields exist chiefly to diversify portfolio members.
type Options struct {
	// VarDecay is the VSIDS activity decay factor in (0,1); default 0.95.
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay; default 0.999.
	ClauseDecay float64
	// RestartBase is the Luby restart unit in conflicts; default 100.
	RestartBase int
	// InitialPhase is the default polarity for unassigned variables
	// before phase saving kicks in (false = try false first, the
	// MiniSat default).
	InitialPhase bool
	// RandomSeed, when non-zero, enables occasional random decisions
	// (frequency RandomFreq) seeded deterministically.
	RandomSeed int64
	// RandomFreq is the fraction of random decisions in [0,1); default
	// 0.02 when RandomSeed is set.
	RandomFreq float64
}

func (o Options) withDefaults() Options {
	if o.VarDecay == 0 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay == 0 {
		o.ClauseDecay = 0.999
	}
	if o.RestartBase == 0 {
		o.RestartBase = 100
	}
	if o.RandomSeed != 0 && o.RandomFreq == 0 {
		o.RandomFreq = 0.02
	}
	return o
}

// Stats counts solver work since construction.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Deleted      int64
	// Minimized counts literals removed from learnt clauses by
	// recursive minimisation and binary self-subsumption.
	Minimized int64
	// ClauseGCs counts compactions of the clause arena.
	ClauseGCs int64
}

// watcher pairs a clause ref with a blocker literal: when the blocker
// is already true the clause is satisfied and need not be touched, so
// propagation often decides on the 8-byte watcher alone without loading
// the clause.
type watcher struct {
	ref     clauseRef
	blocker lit
}

// seen-mark states used by conflict analysis and recursive clause
// minimisation. seenSource marks literals of the learnt clause under
// construction; seenRemovable/seenFailed cache litRedundant verdicts
// within one analyze call (the poison cache), so shared sub-DAGs of the
// implication graph are classified once.
const (
	seenNone      byte = 0
	seenSource    byte = 1
	seenRemovable byte = 2
	seenFailed    byte = 3
)

// shrinkElem is a litRedundant stack frame: resume examining the reason
// of l at literal index i.
type shrinkElem struct {
	i int
	l lit
}

// Solver is a CDCL SAT solver. It is not safe for concurrent use; run
// one Solver per goroutine.
type Solver struct {
	opts Options

	numVars   int
	ca        clauseArena // flat clause store; all clause state lives here
	clauses   []clauseRef
	learnts   []clauseRef
	watches   [][]watcher // indexed by lit: clauses to inspect when lit becomes true
	assigns   []lbool     // by variable
	level     []int
	reason    []clauseRef
	polarity  []bool // phase saving: last assigned value
	activity  []float64
	varInc    float64
	clauseInc float64
	order     *varHeap
	rng       *rand.Rand

	trail    []lit
	trailLim []int
	qhead    int

	seen        []byte // conflict-analysis marks, see seen* constants
	toClear     []int  // vars whose seen mark must be reset after analyze
	shrinkStack []shrinkElem
	learntBuf   []lit    // reusable learnt-clause buffer
	stamp       uint64   // shared stamp for seen2/levelStamp
	seen2       []uint64 // var -> stamp: learnt-clause membership marks
	levelStamp  []uint64 // level -> stamp: LBD distinct-level counting

	unsat   bool // established at level 0
	model   []bool
	core    []cnf.Lit
	assumps []lit

	maxLearnts float64

	// Budget propagator state (see SetBudget).
	budgetWeight  []int64 // by lit; 0 when not budgeted
	budgetLits    []lit   // budgeted literals, sorted by descending weight
	budgetBound   int64
	budgetSum     int64 // weight of currently-true budgeted literals
	hasBudget     bool
	budgetRefresh func() (int64, bool)
	budgetScratch []lit // reusable reason-construction buffer

	stats Stats

	// Live telemetry (see SetTelemetry); nil when disabled.
	tel      *Telemetry
	lastBeat time.Time

	// testOnLearnt, when set (tests only), observes every learnt clause
	// right after conflict analysis, before backjumping.
	testOnLearnt func(learnt []lit, btLevel int)
}

// New returns a solver over variables 1..numVars (DIMACS numbering).
func New(numVars int, opts Options) *Solver {
	s := &Solver{
		opts:      opts.withDefaults(),
		varInc:    1,
		clauseInc: 1,
	}
	s.order = newVarHeap()
	if s.opts.RandomSeed != 0 {
		s.rng = rand.New(rand.NewSource(s.opts.RandomSeed))
	}
	s.growTo(numVars)
	return s
}

// NumVars returns the current number of variables.
func (s *Solver) NumVars() int { return s.numVars }

// AddVars grows the variable range by n and returns the new NumVars.
func (s *Solver) AddVars(n int) int {
	s.growTo(s.numVars + n)
	return s.numVars
}

func (s *Solver) growTo(numVars int) {
	for s.numVars < numVars {
		s.assigns = append(s.assigns, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, refUndef)
		s.polarity = append(s.polarity, s.opts.InitialPhase)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, seenNone)
		s.seen2 = append(s.seen2, 0)
		s.watches = append(s.watches, nil, nil)
		s.budgetWeight = append(s.budgetWeight, 0, 0)
		s.numVars++
	}
	for len(s.levelStamp) < s.numVars+1 {
		s.levelStamp = append(s.levelStamp, 0)
	}
	s.order.grow(s.numVars, s.activity)
	for v := 0; v < s.numVars; v++ {
		if s.assigns[v] == lUndef {
			s.order.insert(v)
		}
	}
}

// Stats returns a copy of the work counters accumulated since
// construction (or the last ResetStats).
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats returns the counters accumulated since construction or
// the last reset and zeroes them. Calling it after each Solve in an
// incremental loop yields per-call snapshots instead of counters that
// silently accumulate across successive MaxSAT iterations.
func (s *Solver) ResetStats() Stats {
	st := s.stats
	s.stats = Stats{}
	return st
}

func (s *Solver) value(l lit) lbool {
	v := s.assigns[l.variable()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over DIMACS literals. It must be called at
// decision level 0 (i.e. before Solve or between Solve calls). Variables
// beyond NumVars are allocated automatically. It returns false when the
// clause makes the instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if s.unsat {
		return false
	}
	maxVar := 0
	for _, l := range lits {
		if l == 0 {
			panic("sat: literal 0 in clause")
		}
		if v := l.Var(); v > maxVar {
			maxVar = v
		}
	}
	if maxVar > s.numVars {
		s.growTo(maxVar)
	}

	// Normalise: sort-free dedup and tautology/falsified-literal
	// elimination at level 0.
	out := make([]lit, 0, len(lits))
	for _, dl := range lits {
		l := fromDimacs(dl)
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		duplicate := false
		for _, existing := range out {
			if existing == l {
				duplicate = true
				break
			}
			if existing == l.neg() {
				return true // tautology
			}
		}
		if !duplicate {
			out = append(out, l)
		}
	}

	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], refUndef)
		if s.propagateAll() != refUndef {
			s.unsat = true
			return false
		}
		return true
	}
	cr := s.ca.alloc(out, 0)
	s.clauses = append(s.clauses, cr)
	s.attach(cr)
	return true
}

// AddFormula adds every clause of a CNF formula.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	if f.NumVars > s.numVars {
		s.growTo(f.NumVars)
	}
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return true
}

// SetBudget installs (or replaces) the linear pseudo-Boolean constraint
// Σ weights[i]·[lits[i] true] ≤ bound. Weights must be positive. The
// constraint participates in propagation and conflict analysis like an
// ordinary clause set, but is enforced natively, so bounds involving
// large weights cost nothing to encode. Call at decision level 0.
func (s *Solver) SetBudget(lits []cnf.Lit, weights []int64, bound int64) error {
	if len(lits) != len(weights) {
		return fmt.Errorf("sat: budget lits/weights length mismatch %d != %d", len(lits), len(weights))
	}
	maxVar := 0
	for _, l := range lits {
		if v := l.Var(); v > maxVar {
			maxVar = v
		}
	}
	if maxVar > s.numVars {
		s.growTo(maxVar)
	}
	for i := range s.budgetWeight {
		s.budgetWeight[i] = 0
	}
	s.budgetLits = s.budgetLits[:0]
	var total int64
	for i, dl := range lits {
		if weights[i] <= 0 {
			return fmt.Errorf("sat: budget weight %d must be positive", weights[i])
		}
		sum, okAdd := cnf.AddWeights(total, weights[i])
		if !okAdd {
			return fmt.Errorf("sat: total budget weight overflows int64 at literal %d", i)
		}
		total = sum
		l := fromDimacs(dl)
		if s.budgetWeight[l] != 0 {
			return fmt.Errorf("sat: duplicate budget literal %v", dl)
		}
		s.budgetWeight[l] = weights[i]
		s.budgetLits = append(s.budgetLits, l)
	}
	// Descending weight order lets conflict explanations pick heavy
	// literals first, yielding shorter reasons.
	sortLitsByWeightDesc(s.budgetLits, s.budgetWeight)
	s.budgetBound = bound
	s.hasBudget = true
	s.recomputeBudgetSum()
	return nil
}

// SetBudgetBound tightens (or relaxes) the budget bound. Lowering the
// bound keeps all learnt clauses sound, which is how LinearSU iterates;
// raising it is rejected because earlier budget-derived clauses could be
// too strong.
func (s *Solver) SetBudgetBound(bound int64) error {
	if !s.hasBudget {
		return errors.New("sat: no budget installed")
	}
	if bound > s.budgetBound {
		return fmt.Errorf("sat: cannot raise budget bound from %d to %d", s.budgetBound, bound)
	}
	s.budgetBound = bound
	return nil
}

// SetBudgetRefresh installs a callback polled between restarts during
// Solve. When it returns (bound, true) with bound strictly below the
// current budget bound, the bound is tightened in place — the mechanism
// by which a cooperative portfolio feeds a sibling engine's better
// incumbent into an in-flight search. Bounds that would raise the
// current one are ignored (see SetBudgetBound): the search may hold
// learnt clauses derived from the tighter constraint. The callback runs
// on the solving goroutine; it must synchronise any shared state itself.
func (s *Solver) SetBudgetRefresh(f func() (int64, bool)) {
	s.budgetRefresh = f
}

// BudgetBound returns the current budget bound. It is only meaningful
// after SetBudget.
func (s *Solver) BudgetBound() int64 { return s.budgetBound }

// applyBudgetRefresh polls the refresh callback at a restart boundary
// (decision level 0) and tightens the bound when the callback offers a
// strictly lower one. Raising is silently skipped — never allowed.
func (s *Solver) applyBudgetRefresh() {
	if !s.hasBudget || s.budgetRefresh == nil {
		return
	}
	if bound, ok := s.budgetRefresh(); ok && bound < s.budgetBound {
		s.budgetBound = bound
	}
}

func (s *Solver) recomputeBudgetSum() {
	s.budgetSum = 0
	for _, l := range s.budgetLits {
		if s.value(l) == lTrue {
			//lint:ignore weightsafe sums a subset of the SetBudget-validated total, which fits int64
			s.budgetSum += s.budgetWeight[l]
		}
	}
}

func sortLitsByWeightDesc(lits []lit, weight []int64) {
	// Insertion sort: budget lists are installed once and moderately
	// sized; avoids pulling in sort for a hot path type.
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && weight[lits[j]] < weight[l] {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
}

func (s *Solver) attach(cr clauseRef) {
	cl := s.ca.lits(cr)
	s.watches[cl[0].neg()] = append(s.watches[cl[0].neg()], watcher{ref: cr, blocker: cl[1]})
	s.watches[cl[1].neg()] = append(s.watches[cl[1].neg()], watcher{ref: cr, blocker: cl[0]})
}

// sweepWatches removes every watcher whose clause has been marked
// deleted: one pass over all watch lists per reduceDB instead of an
// O(list) scan per detached clause.
func (s *Solver) sweepWatches() {
	for l := range s.watches {
		ws := s.watches[l]
		j := 0
		for _, w := range ws {
			if !s.ca.deleted(w.ref) {
				ws[j] = w
				j++
			}
		}
		s.watches[l] = ws[:j]
	}
}

// garbageCollect compacts the clause arena: live clauses are copied to
// a fresh arena and every ref (watch lists, reasons, clause DBs) is
// remapped through forwarding pointers left in the old storage. Deleted
// clauses and stale budget reasons are reclaimed wholesale.
func (s *Solver) garbageCollect() {
	to := clauseArena{data: make([]lit, 0, s.ca.words()-s.ca.wasted)}
	for l := range s.watches {
		ws := s.watches[l]
		for i := range ws {
			s.ca.reloc(&ws[i].ref, &to)
		}
	}
	for v := 0; v < s.numVars; v++ {
		if s.reason[v] != refUndef {
			s.ca.reloc(&s.reason[v], &to)
		}
	}
	for i := range s.clauses {
		s.ca.reloc(&s.clauses[i], &to)
	}
	for i := range s.learnts {
		s.ca.reloc(&s.learnts[i], &to)
	}
	s.ca = to
	s.stats.ClauseGCs++
}

// releaseTemp marks a transient budget-propagator clause deleted so the
// next GC reclaims it. No-op for ordinary clauses.
func (s *Solver) releaseTemp(cr clauseRef) {
	if cr != refUndef && s.ca.temp(cr) && !s.ca.deleted(cr) {
		s.ca.markDeleted(cr)
	}
}

func (s *Solver) uncheckedEnqueue(l lit, from clauseRef) {
	v := l.variable()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if s.hasBudget {
		if w := s.budgetWeight[l]; w != 0 {
			s.budgetSum += w
		}
	}
}

// propagate performs clause propagation until fixpoint or conflict
// (refUndef = no conflict). The loop works directly on arena words:
// clause headers and literals are adjacent, so the common cases (blocker
// true, first literal true, early new watch) touch one cache line.
func (s *Solver) propagate() clauseRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++

		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			cr := w.ref
			base := int(cr) + hdrWords
			falseLit := p.neg()
			if s.ca.data[base] == falseLit {
				s.ca.data[base], s.ca.data[base+1] = s.ca.data[base+1], falseLit
			}
			first := s.ca.data[base]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{ref: cr, blocker: first}
				j++
				continue
			}
			size := s.ca.size(cr)
			found := false
			for k := 2; k < size; k++ {
				if s.value(s.ca.data[base+k]) != lFalse {
					s.ca.data[base+1], s.ca.data[base+k] = s.ca.data[base+k], s.ca.data[base+1]
					nw := s.ca.data[base+1].neg()
					s.watches[nw] = append(s.watches[nw], watcher{ref: cr, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue // clause moved to another watch list
			}
			// Unit or conflicting.
			ws[j] = watcher{ref: cr, blocker: first}
			j++
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, stop.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return cr
			}
			s.uncheckedEnqueue(first, cr)
		}
		s.watches[p] = ws[:j]
	}
	return refUndef
}

// propagateAll interleaves clause propagation with the budget
// propagator until global fixpoint or conflict.
func (s *Solver) propagateAll() clauseRef {
	//lint:ignore ctxpoll the propagation fixpoint assigns literals monotonically, so iterations are bounded by the variable count; ctx is polled per conflict in search()
	for {
		if confl := s.propagate(); confl != refUndef {
			return confl
		}
		if !s.hasBudget {
			return refUndef
		}
		confl, propagated := s.propagateBudget()
		if confl != refUndef {
			return confl
		}
		if !propagated {
			return refUndef
		}
	}
}

// propagateBudget enforces the pseudo-Boolean budget. It returns a
// conflict clause when the currently-true budget literals already exceed
// the bound, and otherwise implies the negation of any unassigned
// literal that no longer fits. Reason/conflict clauses are materialised
// eagerly into the arena (tagged temp, reclaimed by the clause GC once
// backtracked past); they are logically implied by the constraint, so
// reusing them in conflict analysis is sound.
//
// All implications of one round share the same set of true budget
// literals (the enqueues assign literals false, never true), so that
// set — heavy first, with prefix weight sums — is collected once and
// each reason is a prefix of it: without this, a zero-slack round
// costs O(n) full scans per implied literal, quadratic overall, which
// dominated whole solves on large equal-weight instances.
func (s *Solver) propagateBudget() (clauseRef, bool) {
	if s.budgetSum > s.budgetBound {
		return s.budgetConflict(), false
	}
	slack := s.budgetBound - s.budgetSum
	propagated := false
	var (
		trueNegs []lit   // negations of the true budget literals, heavy first
		prefix   []int64 // prefix[i] = Σ weight(trueNegs[:i+1])
	)
	for _, l := range s.budgetLits {
		w := s.budgetWeight[l]
		if w <= slack {
			// budgetLits is sorted by descending weight: all later
			// literals fit as well.
			break
		}
		if s.value(l) != lUndef {
			continue
		}
		if trueNegs == nil {
			trueNegs = make([]lit, 0, 16)
			for _, t := range s.budgetLits {
				if s.value(t) == lTrue {
					sum := s.budgetWeight[t]
					if len(prefix) > 0 {
						sum += prefix[len(prefix)-1]
					}
					trueNegs = append(trueNegs, t.neg())
					prefix = append(prefix, sum)
				}
			}
		}
		// The shortest heavy-first prefix t₁…tₘ with Σweight + w > bound
		// explains the implication ¬ℓ as the reason implied ∨ ¬t₁ ∨ … ∨ ¬tₘ.
		need := s.budgetBound - w
		idx := sort.Search(len(prefix), func(i int) bool { return prefix[i] > need })
		m := idx + 1
		if idx == len(prefix) {
			// Only reachable when need < 0 with no true literals: the
			// budget alone forbids ℓ, a unit reason.
			m = 0
		}
		s.budgetScratch = append(s.budgetScratch[:0], l.neg())
		s.budgetScratch = append(s.budgetScratch, trueNegs[:m]...)
		cr := s.ca.alloc(s.budgetScratch, flagTemp)
		s.uncheckedEnqueue(l.neg(), cr)
		propagated = true
	}
	return refUndef, propagated
}

// budgetConflict builds a clause ¬t₁ ∨ … ∨ ¬tₖ from a (greedy, heavy
// first) subset of true budget literals whose weights already exceed the
// bound. Every literal in it is currently false, as conflict analysis
// expects.
func (s *Solver) budgetConflict() clauseRef {
	s.budgetScratch = s.budgetScratch[:0]
	var sum int64
	for _, l := range s.budgetLits {
		if s.value(l) == lTrue {
			s.budgetScratch = append(s.budgetScratch, l.neg())
			//lint:ignore weightsafe sums a subset of the SetBudget-validated total, which fits int64
			sum += s.budgetWeight[l]
			if sum > s.budgetBound {
				break
			}
		}
	}
	return s.ca.alloc(s.budgetScratch, flagTemp)
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
	// Decision levels can exceed numVars: each already-satisfied
	// assumption burns a dummy level, so levelStamp must cover the
	// actual level range, not just 0..numVars.
	for len(s.levelStamp) <= len(s.trailLim) {
		s.levelStamp = append(s.levelStamp, 0)
	}
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.variable()
		if s.hasBudget {
			if w := s.budgetWeight[l]; w != 0 {
				s.budgetSum -= w
			}
		}
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.releaseTemp(s.reason[v]) // budget reasons die with their assignment
		s.reason[v] = refUndef
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(cr clauseRef) {
	act := s.ca.act(cr) + float32(s.clauseInc)
	s.ca.setAct(cr, act)
	if act > 1e20 {
		for _, c := range s.learnts {
			s.ca.setAct(c, s.ca.act(c)*1e-20)
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= s.opts.VarDecay
	s.clauseInc /= s.opts.ClauseDecay
}

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backjump level. The clause
// is minimised twice: recursively against the implication graph
// (litRedundant) and by self-subsuming resolution with binary clauses
// containing the asserting literal. The returned slice aliases an
// internal buffer valid until the next analyze call.
func (s *Solver) analyze(confl clauseRef) ([]lit, int) {
	learnt := append(s.learntBuf[:0], litUndef)
	pathC := 0
	p := litUndef
	idx := len(s.trail) - 1
	s.toClear = s.toClear[:0]

	//lint:ignore ctxpoll first-UIP resolution walks the trail backwards, so iterations are bounded by the trail length
	for {
		if s.ca.learnt(confl) {
			s.bumpClause(confl)
		}
		cl := s.ca.lits(confl)
		start := 0
		if p != litUndef {
			start = 1
		}
		for _, q := range cl[start:] {
			v := q.variable()
			if s.seen[v] == seenNone && s.level[v] > 0 {
				s.seen[v] = seenSource
				s.toClear = append(s.toClear, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[idx].variable()] == seenNone {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.variable()]
		s.seen[p.variable()] = seenNone
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.neg()

	// Recursive minimisation: drop any literal whose falsification is
	// implied by the rest of the clause, following reason chains all the
	// way down (MiniSat 1.14 lineage, with removable/failed caching).
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].variable()
		if s.reason[v] == refUndef || !s.litRedundant(learnt[i]) {
			learnt[j] = learnt[i]
			j++
		}
	}
	s.stats.Minimized += int64(len(learnt) - j)
	learnt = learnt[:j]

	learnt = s.binSelfSubsume(learnt)

	for _, v := range s.toClear {
		s.seen[v] = seenNone
	}

	// Find the backjump level: highest level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxIdx := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxIdx].variable()] {
				maxIdx = i
			}
		}
		learnt[1], learnt[maxIdx] = learnt[maxIdx], learnt[1]
		btLevel = s.level[learnt[1].variable()]
	}
	s.learntBuf = learnt
	return learnt, btLevel
}

// litRedundant reports whether learnt literal p is redundant: every
// path from p's reason back to the conflict eventually reaches literals
// already in the learnt clause (seenSource) or level 0. It runs a
// depth-first search over reason clauses with an explicit stack, caching
// verdicts in the seen marks — seenRemovable for proven-redundant
// literals, seenFailed (poison) for literals with a decision among
// their ancestors — so repeated queries within one analyze call stay
// linear in the implication graph.
func (s *Solver) litRedundant(p lit) bool {
	s.shrinkStack = s.shrinkStack[:0]
	cl := s.ca.lits(s.reason[p.variable()])
	//lint:ignore ctxpoll the DFS visits each implication-graph node at most once (seen-mark cache), so iterations are bounded by the trail length
	for i := 1; ; i++ {
		if i < len(cl) {
			q := cl[i]
			v := q.variable()
			// Level-0 and cached-removable antecedents cannot block
			// redundancy; literals already in the learnt clause are
			// exactly the targets the search may stop at.
			if s.level[v] == 0 || s.seen[v] == seenSource || s.seen[v] == seenRemovable {
				continue
			}
			// A decision, or a literal already proven non-redundant:
			// poison the whole DFS path and fail.
			if s.reason[v] == refUndef || s.seen[v] == seenFailed {
				s.shrinkStack = append(s.shrinkStack, shrinkElem{0, p})
				for _, e := range s.shrinkStack {
					ev := e.l.variable()
					if s.seen[ev] == seenNone {
						s.seen[ev] = seenFailed
						s.toClear = append(s.toClear, ev)
					}
				}
				return false
			}
			// Recurse into q's reason, remembering where to resume.
			s.shrinkStack = append(s.shrinkStack, shrinkElem{i, p})
			i = 0
			p = q
			cl = s.ca.lits(s.reason[p.variable()])
		} else {
			// p's entire reason checked out: cache and pop.
			if pv := p.variable(); s.seen[pv] == seenNone {
				s.seen[pv] = seenRemovable
				s.toClear = append(s.toClear, pv)
			}
			if len(s.shrinkStack) == 0 {
				return true
			}
			top := s.shrinkStack[len(s.shrinkStack)-1]
			s.shrinkStack = s.shrinkStack[:len(s.shrinkStack)-1]
			i, p = top.i, top.l
			cl = s.ca.lits(s.reason[p.variable()])
		}
	}
}

// binSelfSubsume strengthens the learnt clause by on-the-fly
// self-subsuming resolution with binary clauses: for the asserting
// literal p = learnt[0], any binary clause (p ∨ q) with q currently true
// and ¬q in the learnt clause resolves to a clause that subsumes the
// learnt one, so ¬q is dropped. Binary clauses containing p all live in
// watches[¬p] (binary watchers never migrate), so one scan of that list
// finds every candidate.
func (s *Solver) binSelfSubsume(learnt []lit) []lit {
	if len(learnt) < 2 {
		return learnt
	}
	s.stamp++
	for _, l := range learnt[1:] {
		s.seen2[l.variable()] = s.stamp
	}
	removed := 0
	for _, w := range s.watches[learnt[0].neg()] {
		if s.ca.size(w.ref) != 2 {
			continue
		}
		bin := s.ca.lits(w.ref)
		other := bin[0]
		if other == learnt[0] {
			other = bin[1]
		}
		// learnt[1:] literals are all false; if other is true and its
		// variable is marked, the learnt clause contains exactly ¬other.
		if s.seen2[other.variable()] == s.stamp && s.value(other) == lTrue {
			s.seen2[other.variable()] = 0
			removed++
		}
	}
	if removed == 0 {
		return learnt
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		if s.seen2[learnt[i].variable()] == s.stamp {
			learnt[j] = learnt[i]
			j++
		}
	}
	s.stats.Minimized += int64(removed)
	return learnt[:j]
}

// computeLBD counts distinct decision levels among lits using a stamped
// per-level scratch array (no per-call allocation).
func (s *Solver) computeLBD(lits []lit) int {
	s.stamp++
	n := 0
	for _, l := range lits {
		lv := s.level[l.variable()]
		if s.levelStamp[lv] != s.stamp {
			s.levelStamp[lv] = s.stamp
			n++
		}
	}
	return n
}

// analyzeFinal computes the subset of assumptions responsible for
// falsifying assumption literal a (which currently evaluates false).
func (s *Solver) analyzeFinal(a lit) []cnf.Lit {
	out := []cnf.Lit{toDimacs(a)}
	if s.decisionLevel() == 0 {
		return out
	}
	v := a.variable()
	s.seen[v] = seenSource
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		tv := s.trail[i].variable()
		if s.seen[tv] == seenNone {
			continue
		}
		if r := s.reason[tv]; r != refUndef {
			for _, q := range s.ca.lits(r)[1:] {
				if s.level[q.variable()] > 0 {
					s.seen[q.variable()] = seenSource
				}
			}
		} else {
			// A decision inside the assumption prefix: an assumption
			// literal (true on trail, so the assumption is trail[i]).
			out = append(out, toDimacs(s.trail[i]))
		}
		s.seen[tv] = seenNone
	}
	s.seen[v] = seenNone
	return out
}

// reduceDB deletes the less valuable half of the learnt clauses. Doomed
// clauses are only flagged; a single sweep over the watch lists then
// drops their watchers (instead of two O(list) detach scans per clause),
// and the arena is compacted once enough storage is dead.
func (s *Solver) reduceDB() {
	// Sort learnts: glue clauses (lbd<=2) and high-activity clauses are
	// valuable; delete the worse half of the rest.
	sortable := make([]clauseRef, 0, len(s.learnts))
	kept := make([]clauseRef, 0, len(s.learnts))
	for _, cr := range s.learnts {
		if s.ca.lbd(cr) <= 2 || s.ca.size(cr) == 2 || s.locked(cr) {
			kept = append(kept, cr)
		} else {
			sortable = append(sortable, cr)
		}
	}
	s.sortClausesWorstFirst(sortable)
	drop := len(sortable) / 2
	for i, cr := range sortable {
		if i < drop {
			s.ca.markDeleted(cr)
			s.stats.Deleted++
		} else {
			kept = append(kept, cr)
		}
	}
	s.learnts = kept
	if drop > 0 {
		s.sweepWatches()
	}
	s.maybeGC()
}

// maybeGC compacts the arena when at least 20% of it is dead storage
// (deleted learnt clauses and retired budget reasons).
func (s *Solver) maybeGC() {
	if s.ca.wasted*5 > s.ca.words() {
		s.garbageCollect()
	}
}

func (s *Solver) sortClausesWorstFirst(cls []clauseRef) {
	// Worst = high LBD, then low activity.
	lessWorse := func(a, b clauseRef) bool {
		if la, lb := s.ca.lbd(a), s.ca.lbd(b); la != lb {
			return la > lb
		}
		return s.ca.act(a) < s.ca.act(b)
	}
	// Simple heapless sort; clause counts here are moderate.
	for i := 1; i < len(cls); i++ {
		c := cls[i]
		j := i - 1
		for j >= 0 && !lessWorse(cls[j], c) {
			cls[j+1] = cls[j]
			j--
		}
		cls[j+1] = c
	}
}

func (s *Solver) locked(cr clauseRef) bool {
	first := s.ca.lits(cr)[0]
	return s.reason[first.variable()] == cr && s.value(first) == lTrue
}

func (s *Solver) pickBranchLit() lit {
	if s.rng != nil && s.rng.Float64() < s.opts.RandomFreq && !s.order.empty() {
		v := s.order.heap[s.rng.Intn(len(s.order.heap))]
		if s.assigns[v] == lUndef {
			return mkLit(v, !s.polarity[v])
		}
	}
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return mkLit(v, !s.polarity[v])
		}
	}
	return litUndef
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	//lint:ignore ctxpoll terminates in O(log i): each iteration doubles the segment length until it covers i
	for k := uint(1); ; k++ {
		segEnd := (int64(1) << k) - 1
		if i == segEnd {
			return int64(1) << (k - 1)
		}
		if i < segEnd {
			// Recurse into the repeated prefix of the segment.
			i -= (int64(1) << (k - 1)) - 1
			k = 0
		}
	}
}

// Solve determines satisfiability under the given assumptions. On Sat,
// Model reports a satisfying assignment; on Unsat with assumptions,
// Core reports a subset of assumptions sufficient for unsatisfiability.
// The context cancels long searches (returning ErrInterrupted).
func (s *Solver) Solve(ctx context.Context, assumptions ...cnf.Lit) (Status, error) {
	if s.unsat {
		s.core = nil
		return Unsat, nil
	}
	s.model = nil
	s.core = nil
	s.assumps = s.assumps[:0]
	for _, a := range assumptions {
		if v := a.Var(); v > s.numVars {
			s.growTo(v)
		}
		s.assumps = append(s.assumps, fromDimacs(a))
	}

	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 1000 {
			s.maxLearnts = 1000
		}
	}

	defer s.cancelUntil(0)

	var restarts int64
	for {
		// Restart boundaries double as GC points: retired budget-reason
		// clauses (temp allocations) would otherwise only be reclaimed
		// at reduceDB, which easy incremental workloads never reach.
		s.maybeGC()
		s.applyBudgetRefresh()
		limit := luby(restarts+1) * int64(s.opts.RestartBase)
		status, err := s.search(ctx, limit)
		if err != nil {
			return Unknown, err
		}
		if status != Unknown {
			return status, nil
		}
		restarts++
		s.stats.Restarts++
		if t := s.tel; t != nil && t.Bus.Enabled() {
			t.Bus.Publish(obs.RestartFired{
				Engine:    t.Engine,
				Restarts:  s.stats.Restarts,
				Conflicts: s.stats.Conflicts,
			})
		}
	}
}

// search runs CDCL until a result, a restart (after conflictLimit
// conflicts), or cancellation.
func (s *Solver) search(ctx context.Context, conflictLimit int64) (Status, error) {
	var conflicts int64
	for {
		confl := s.propagateAll()
		if confl != refUndef {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.releaseTemp(confl)
				s.unsat = true
				s.core = nil
				return Unsat, nil
			}
			learnt, btLevel := s.analyze(confl)
			s.releaseTemp(confl)
			if s.testOnLearnt != nil {
				s.testOnLearnt(learnt, btLevel)
			}
			if s.tel != nil {
				s.tel.LearntLen.Observe(float64(len(learnt)))
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], refUndef)
			} else {
				cr := s.ca.alloc(learnt, flagLearnt)
				s.ca.setLBD(cr, s.computeLBD(learnt))
				s.learnts = append(s.learnts, cr)
				s.attach(cr)
				s.bumpClause(cr)
				s.uncheckedEnqueue(learnt[0], cr)
				s.stats.Learnt++
			}
			s.decayActivities()

			if conflicts&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return Unknown, fmt.Errorf("%w: %w", ErrInterrupted, err)
				}
				s.maybeHeartbeat()
			}
			continue
		}

		if conflicts >= conflictLimit {
			s.cancelUntil(0)
			return Unknown, nil
		}
		if float64(len(s.learnts)) >= s.maxLearnts {
			s.reduceDB()
			s.maxLearnts *= 1.1
		}

		next := litUndef
		for s.decisionLevel() < len(s.assumps) {
			a := s.assumps[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // dummy level; already satisfied
			case lFalse:
				s.core = s.analyzeFinal(a)
				return Unsat, nil
			default:
				next = a
			}
			if next != litUndef {
				break
			}
		}
		if next == litUndef {
			next = s.pickBranchLit()
			if next == litUndef {
				s.storeModel()
				return Sat, nil
			}
			s.stats.Decisions++
			// Conflict-free descents never reach the conflict-side poll
			// above, yet with a budget each decision can trigger long
			// propagation rounds — poll cancellation here too.
			if s.stats.Decisions&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return Unknown, fmt.Errorf("%w: %w", ErrInterrupted, err)
				}
				s.maybeHeartbeat()
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, refUndef)
	}
}

func (s *Solver) storeModel() {
	s.model = make([]bool, s.numVars+1)
	for v := 0; v < s.numVars; v++ {
		s.model[v+1] = s.assigns[v] == lTrue
	}
}

// Model returns the satisfying assignment from the last Sat result,
// indexed by DIMACS variable (index 0 unused). Unassigned variables (in
// case of early termination) read false.
func (s *Solver) Model() []bool { return s.model }

// Core returns the subset of the last Solve call's assumptions that was
// shown jointly unsatisfiable with the clause set. It is nil when the
// instance is unsatisfiable without assumptions.
func (s *Solver) Core() []cnf.Lit { return s.core }
