package sat

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/obs"
)

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	Unknown Status = iota
	Sat
	Unsat
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

// ErrInterrupted is returned (wrapped) when a Solve call is cancelled
// through its context.
var ErrInterrupted = errors.New("sat: interrupted")

// Options tunes solver heuristics. The zero value selects defaults;
// fields exist chiefly to diversify portfolio members.
type Options struct {
	// VarDecay is the VSIDS activity decay factor in (0,1); default 0.95.
	VarDecay float64
	// ClauseDecay is the learnt-clause activity decay; default 0.999.
	ClauseDecay float64
	// RestartBase is the Luby restart unit in conflicts; default 100.
	RestartBase int
	// InitialPhase is the default polarity for unassigned variables
	// before phase saving kicks in (false = try false first, the
	// MiniSat default).
	InitialPhase bool
	// RandomSeed, when non-zero, enables occasional random decisions
	// (frequency RandomFreq) seeded deterministically.
	RandomSeed int64
	// RandomFreq is the fraction of random decisions in [0,1); default
	// 0.02 when RandomSeed is set.
	RandomFreq float64
}

func (o Options) withDefaults() Options {
	if o.VarDecay == 0 {
		o.VarDecay = 0.95
	}
	if o.ClauseDecay == 0 {
		o.ClauseDecay = 0.999
	}
	if o.RestartBase == 0 {
		o.RestartBase = 100
	}
	if o.RandomSeed != 0 && o.RandomFreq == 0 {
		o.RandomFreq = 0.02
	}
	return o
}

// Stats counts solver work since construction.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Deleted      int64
}

type clause struct {
	lits   []lit
	act    float64
	lbd    int
	learnt bool
}

type watcher struct {
	cl      *clause
	blocker lit
}

// Solver is a CDCL SAT solver. It is not safe for concurrent use; run
// one Solver per goroutine.
type Solver struct {
	opts Options

	numVars   int
	clauses   []*clause
	learnts   []*clause
	watches   [][]watcher // indexed by lit: clauses to inspect when lit becomes true
	assigns   []lbool     // by variable
	level     []int
	reason    []*clause
	polarity  []bool // phase saving: last assigned value
	activity  []float64
	varInc    float64
	clauseInc float64
	order     *varHeap
	rng       *rand.Rand

	trail    []lit
	trailLim []int
	qhead    int

	seen    []bool
	unsat   bool // established at level 0
	model   []bool
	core    []cnf.Lit
	assumps []lit

	maxLearnts float64

	// Budget propagator state (see SetBudget).
	budgetWeight  []int64 // by lit; 0 when not budgeted
	budgetLits    []lit   // budgeted literals, sorted by descending weight
	budgetBound   int64
	budgetSum     int64 // weight of currently-true budgeted literals
	hasBudget     bool
	budgetRefresh func() (int64, bool)

	stats Stats

	// Live telemetry (see SetTelemetry); nil when disabled.
	tel      *Telemetry
	lastBeat time.Time
}

// New returns a solver over variables 1..numVars (DIMACS numbering).
func New(numVars int, opts Options) *Solver {
	s := &Solver{
		opts:      opts.withDefaults(),
		varInc:    1,
		clauseInc: 1,
	}
	s.order = newVarHeap(&s.activity)
	if s.opts.RandomSeed != 0 {
		s.rng = rand.New(rand.NewSource(s.opts.RandomSeed))
	}
	s.growTo(numVars)
	return s
}

// NumVars returns the current number of variables.
func (s *Solver) NumVars() int { return s.numVars }

// AddVars grows the variable range by n and returns the new NumVars.
func (s *Solver) AddVars(n int) int {
	s.growTo(s.numVars + n)
	return s.numVars
}

func (s *Solver) growTo(numVars int) {
	for s.numVars < numVars {
		s.assigns = append(s.assigns, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.polarity = append(s.polarity, s.opts.InitialPhase)
		s.activity = append(s.activity, 0)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
		s.budgetWeight = append(s.budgetWeight, 0, 0)
		s.numVars++
	}
	s.order.grow(s.numVars)
	for v := 0; v < s.numVars; v++ {
		if s.assigns[v] == lUndef {
			s.order.insert(v)
		}
	}
}

// Stats returns a copy of the work counters accumulated since
// construction (or the last ResetStats).
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats returns the counters accumulated since construction or
// the last reset and zeroes them. Calling it after each Solve in an
// incremental loop yields per-call snapshots instead of counters that
// silently accumulate across successive MaxSAT iterations.
func (s *Solver) ResetStats() Stats {
	st := s.stats
	s.stats = Stats{}
	return st
}

func (s *Solver) value(l lit) lbool {
	v := s.assigns[l.variable()]
	if v == lUndef {
		return lUndef
	}
	if l.sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over DIMACS literals. It must be called at
// decision level 0 (i.e. before Solve or between Solve calls). Variables
// beyond NumVars are allocated automatically. It returns false when the
// clause makes the instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if s.unsat {
		return false
	}
	maxVar := 0
	for _, l := range lits {
		if l == 0 {
			panic("sat: literal 0 in clause")
		}
		if v := l.Var(); v > maxVar {
			maxVar = v
		}
	}
	if maxVar > s.numVars {
		s.growTo(maxVar)
	}

	// Normalise: sort-free dedup and tautology/falsified-literal
	// elimination at level 0.
	out := make([]lit, 0, len(lits))
	for _, dl := range lits {
		l := fromDimacs(dl)
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue
		}
		duplicate := false
		for _, existing := range out {
			if existing == l {
				duplicate = true
				break
			}
			if existing == l.neg() {
				return true // tautology
			}
		}
		if !duplicate {
			out = append(out, l)
		}
	}

	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagateAll() != nil {
			s.unsat = true
			return false
		}
		return true
	}
	cl := &clause{lits: out}
	s.clauses = append(s.clauses, cl)
	s.attach(cl)
	return true
}

// AddFormula adds every clause of a CNF formula.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	if f.NumVars > s.numVars {
		s.growTo(f.NumVars)
	}
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	return true
}

// SetBudget installs (or replaces) the linear pseudo-Boolean constraint
// Σ weights[i]·[lits[i] true] ≤ bound. Weights must be positive. The
// constraint participates in propagation and conflict analysis like an
// ordinary clause set, but is enforced natively, so bounds involving
// large weights cost nothing to encode. Call at decision level 0.
func (s *Solver) SetBudget(lits []cnf.Lit, weights []int64, bound int64) error {
	if len(lits) != len(weights) {
		return fmt.Errorf("sat: budget lits/weights length mismatch %d != %d", len(lits), len(weights))
	}
	maxVar := 0
	for _, l := range lits {
		if v := l.Var(); v > maxVar {
			maxVar = v
		}
	}
	if maxVar > s.numVars {
		s.growTo(maxVar)
	}
	for i := range s.budgetWeight {
		s.budgetWeight[i] = 0
	}
	s.budgetLits = s.budgetLits[:0]
	var total int64
	for i, dl := range lits {
		if weights[i] <= 0 {
			return fmt.Errorf("sat: budget weight %d must be positive", weights[i])
		}
		sum, okAdd := cnf.AddWeights(total, weights[i])
		if !okAdd {
			return fmt.Errorf("sat: total budget weight overflows int64 at literal %d", i)
		}
		total = sum
		l := fromDimacs(dl)
		if s.budgetWeight[l] != 0 {
			return fmt.Errorf("sat: duplicate budget literal %v", dl)
		}
		s.budgetWeight[l] = weights[i]
		s.budgetLits = append(s.budgetLits, l)
	}
	// Descending weight order lets conflict explanations pick heavy
	// literals first, yielding shorter reasons.
	sortLitsByWeightDesc(s.budgetLits, s.budgetWeight)
	s.budgetBound = bound
	s.hasBudget = true
	s.recomputeBudgetSum()
	return nil
}

// SetBudgetBound tightens (or relaxes) the budget bound. Lowering the
// bound keeps all learnt clauses sound, which is how LinearSU iterates;
// raising it is rejected because earlier budget-derived clauses could be
// too strong.
func (s *Solver) SetBudgetBound(bound int64) error {
	if !s.hasBudget {
		return errors.New("sat: no budget installed")
	}
	if bound > s.budgetBound {
		return fmt.Errorf("sat: cannot raise budget bound from %d to %d", s.budgetBound, bound)
	}
	s.budgetBound = bound
	return nil
}

// SetBudgetRefresh installs a callback polled between restarts during
// Solve. When it returns (bound, true) with bound strictly below the
// current budget bound, the bound is tightened in place — the mechanism
// by which a cooperative portfolio feeds a sibling engine's better
// incumbent into an in-flight search. Bounds that would raise the
// current one are ignored (see SetBudgetBound): the search may hold
// learnt clauses derived from the tighter constraint. The callback runs
// on the solving goroutine; it must synchronise any shared state itself.
func (s *Solver) SetBudgetRefresh(f func() (int64, bool)) {
	s.budgetRefresh = f
}

// BudgetBound returns the current budget bound. It is only meaningful
// after SetBudget.
func (s *Solver) BudgetBound() int64 { return s.budgetBound }

// applyBudgetRefresh polls the refresh callback at a restart boundary
// (decision level 0) and tightens the bound when the callback offers a
// strictly lower one. Raising is silently skipped — never allowed.
func (s *Solver) applyBudgetRefresh() {
	if !s.hasBudget || s.budgetRefresh == nil {
		return
	}
	if bound, ok := s.budgetRefresh(); ok && bound < s.budgetBound {
		s.budgetBound = bound
	}
}

func (s *Solver) recomputeBudgetSum() {
	s.budgetSum = 0
	for _, l := range s.budgetLits {
		if s.value(l) == lTrue {
			//lint:ignore weightsafe sums a subset of the SetBudget-validated total, which fits int64
			s.budgetSum += s.budgetWeight[l]
		}
	}
}

func sortLitsByWeightDesc(lits []lit, weight []int64) {
	// Insertion sort: budget lists are installed once and moderately
	// sized; avoids pulling in sort for a hot path type.
	for i := 1; i < len(lits); i++ {
		l := lits[i]
		j := i - 1
		for j >= 0 && weight[lits[j]] < weight[l] {
			lits[j+1] = lits[j]
			j--
		}
		lits[j+1] = l
	}
}

func (s *Solver) attach(cl *clause) {
	s.watches[cl.lits[0].neg()] = append(s.watches[cl.lits[0].neg()], watcher{cl: cl, blocker: cl.lits[1]})
	s.watches[cl.lits[1].neg()] = append(s.watches[cl.lits[1].neg()], watcher{cl: cl, blocker: cl.lits[0]})
}

func (s *Solver) detach(cl *clause) {
	s.removeWatcher(cl.lits[0].neg(), cl)
	s.removeWatcher(cl.lits[1].neg(), cl)
}

func (s *Solver) removeWatcher(l lit, cl *clause) {
	ws := s.watches[l]
	for i := range ws {
		if ws[i].cl == cl {
			ws[i] = ws[len(ws)-1]
			s.watches[l] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(l lit, from *clause) {
	v := l.variable()
	if l.sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	if s.hasBudget {
		if w := s.budgetWeight[l]; w != 0 {
			s.budgetSum += w
		}
	}
}

// propagate performs clause propagation until fixpoint or conflict.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.stats.Propagations++

		ws := s.watches[p]
		j := 0
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			cl := w.cl
			falseLit := p.neg()
			if cl.lits[0] == falseLit {
				cl.lits[0], cl.lits[1] = cl.lits[1], cl.lits[0]
			}
			first := cl.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{cl: cl, blocker: first}
				j++
				continue
			}
			found := false
			for k := 2; k < len(cl.lits); k++ {
				if s.value(cl.lits[k]) != lFalse {
					cl.lits[1], cl.lits[k] = cl.lits[k], cl.lits[1]
					s.watches[cl.lits[1].neg()] = append(s.watches[cl.lits[1].neg()], watcher{cl: cl, blocker: first})
					found = true
					break
				}
			}
			if found {
				continue // clause moved to another watch list
			}
			// Unit or conflicting.
			ws[j] = watcher{cl: cl, blocker: first}
			j++
			if s.value(first) == lFalse {
				// Conflict: keep remaining watchers, stop.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return cl
			}
			s.uncheckedEnqueue(first, cl)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// propagateAll interleaves clause propagation with the budget
// propagator until global fixpoint or conflict.
func (s *Solver) propagateAll() *clause {
	//lint:ignore ctxpoll the propagation fixpoint assigns literals monotonically, so iterations are bounded by the variable count; ctx is polled per conflict in search()
	for {
		if confl := s.propagate(); confl != nil {
			return confl
		}
		if !s.hasBudget {
			return nil
		}
		confl, propagated := s.propagateBudget()
		if confl != nil {
			return confl
		}
		if !propagated {
			return nil
		}
	}
}

// propagateBudget enforces the pseudo-Boolean budget. It returns a
// conflict clause when the currently-true budget literals already exceed
// the bound, and otherwise implies the negation of any unassigned
// literal that no longer fits. Reason/conflict clauses are materialised
// eagerly; they are logically implied by the constraint, so reusing
// them in conflict analysis is sound.
//
// All implications of one round share the same set of true budget
// literals (the enqueues assign literals false, never true), so that
// set — heavy first, with prefix weight sums — is collected once and
// each reason is a prefix of it: without this, a zero-slack round
// costs O(n) full scans per implied literal, quadratic overall, which
// dominated whole solves on large equal-weight instances.
func (s *Solver) propagateBudget() (*clause, bool) {
	if s.budgetSum > s.budgetBound {
		return s.budgetConflict(), false
	}
	slack := s.budgetBound - s.budgetSum
	propagated := false
	var (
		trueNegs []lit   // negations of the true budget literals, heavy first
		prefix   []int64 // prefix[i] = Σ weight(trueNegs[:i+1])
	)
	for _, l := range s.budgetLits {
		w := s.budgetWeight[l]
		if w <= slack {
			// budgetLits is sorted by descending weight: all later
			// literals fit as well.
			break
		}
		if s.value(l) != lUndef {
			continue
		}
		if trueNegs == nil {
			trueNegs = make([]lit, 0, 16)
			for _, t := range s.budgetLits {
				if s.value(t) == lTrue {
					sum := s.budgetWeight[t]
					if len(prefix) > 0 {
						sum += prefix[len(prefix)-1]
					}
					trueNegs = append(trueNegs, t.neg())
					prefix = append(prefix, sum)
				}
			}
		}
		// The shortest heavy-first prefix t₁…tₘ with Σweight + w > bound
		// explains the implication ¬ℓ as the reason implied ∨ ¬t₁ ∨ … ∨ ¬tₘ.
		need := s.budgetBound - w
		idx := sort.Search(len(prefix), func(i int) bool { return prefix[i] > need })
		m := idx + 1
		if idx == len(prefix) {
			// Only reachable when need < 0 with no true literals: the
			// budget alone forbids ℓ, a unit reason.
			m = 0
		}
		lits := make([]lit, m+1)
		lits[0] = l.neg()
		copy(lits[1:], trueNegs[:m])
		s.uncheckedEnqueue(l.neg(), &clause{lits: lits})
		propagated = true
	}
	return nil, propagated
}

// budgetConflict builds a clause ¬t₁ ∨ … ∨ ¬tₖ from a (greedy, heavy
// first) subset of true budget literals whose weights already exceed the
// bound. Every literal in it is currently false, as conflict analysis
// expects.
func (s *Solver) budgetConflict() *clause {
	lits := make([]lit, 0, 8)
	var sum int64
	for _, l := range s.budgetLits {
		if s.value(l) == lTrue {
			lits = append(lits, l.neg())
			//lint:ignore weightsafe sums a subset of the SetBudget-validated total, which fits int64
			sum += s.budgetWeight[l]
			if sum > s.budgetBound {
				break
			}
		}
	}
	return &clause{lits: lits}
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		l := s.trail[i]
		v := l.variable()
		if s.hasBudget {
			if w := s.budgetWeight[l]; w != 0 {
				s.budgetSum -= w
			}
		}
		s.polarity[v] = s.assigns[v] == lTrue
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v)
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(cl *clause) {
	cl.act += s.clauseInc
	if cl.act > 1e20 {
		for _, c := range s.learnts {
			c.act *= 1e-20
		}
		s.clauseInc *= 1e-20
	}
}

func (s *Solver) decayActivities() {
	s.varInc /= s.opts.VarDecay
	s.clauseInc /= s.opts.ClauseDecay
}

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backjump level.
func (s *Solver) analyze(confl *clause) ([]lit, int) {
	learnt := make([]lit, 1, 8)
	pathC := 0
	p := litUndef
	idx := len(s.trail) - 1
	toClear := make([]int, 0, 16)

	//lint:ignore ctxpoll first-UIP resolution walks the trail backwards, so iterations are bounded by the trail length
	for {
		if confl.learnt {
			s.bumpClause(confl)
		}
		start := 0
		if p != litUndef {
			start = 1
		}
		for _, q := range confl.lits[start:] {
			v := q.variable()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for !s.seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.variable()]
		s.seen[p.variable()] = false
		pathC--
		if pathC <= 0 {
			break
		}
	}
	learnt[0] = p.neg()

	// Shallow clause minimisation: drop literals whose reason is fully
	// covered by the remaining learnt literals.
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].variable()
		r := s.reason[v]
		if r == nil || !s.litRedundant(r) {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]

	for _, v := range toClear {
		s.seen[v] = false
	}

	// Find the backjump level: highest level among learnt[1:].
	btLevel := 0
	if len(learnt) > 1 {
		maxIdx := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxIdx].variable()] {
				maxIdx = i
			}
		}
		learnt[1], learnt[maxIdx] = learnt[maxIdx], learnt[1]
		btLevel = s.level[learnt[1].variable()]
	}
	return learnt, btLevel
}

// litRedundant reports whether every antecedent literal of the reason
// clause is already marked seen (shallow minimisation test).
func (s *Solver) litRedundant(r *clause) bool {
	for _, q := range r.lits[1:] {
		v := q.variable()
		if !s.seen[v] && s.level[v] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) computeLBD(lits []lit) int {
	levels := make(map[int]struct{}, len(lits))
	for _, l := range lits {
		levels[s.level[l.variable()]] = struct{}{}
	}
	return len(levels)
}

// analyzeFinal computes the subset of assumptions responsible for
// falsifying assumption literal a (which currently evaluates false).
func (s *Solver) analyzeFinal(a lit) []cnf.Lit {
	out := []cnf.Lit{toDimacs(a)}
	if s.decisionLevel() == 0 {
		return out
	}
	v := a.variable()
	s.seen[v] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		tv := s.trail[i].variable()
		if !s.seen[tv] {
			continue
		}
		if r := s.reason[tv]; r != nil {
			for _, q := range r.lits[1:] {
				if s.level[q.variable()] > 0 {
					s.seen[q.variable()] = true
				}
			}
		} else {
			// A decision inside the assumption prefix: an assumption
			// literal (true on trail, so the assumption is trail[i]).
			out = append(out, toDimacs(s.trail[i]))
		}
		s.seen[tv] = false
	}
	s.seen[v] = false
	return out
}

func (s *Solver) reduceDB() {
	// Sort learnts: glue clauses (lbd<=2) and high-activity clauses are
	// valuable; delete the worse half of the rest.
	sortable := make([]*clause, 0, len(s.learnts))
	kept := make([]*clause, 0, len(s.learnts))
	for _, cl := range s.learnts {
		if cl.lbd <= 2 || len(cl.lits) == 2 || s.locked(cl) {
			kept = append(kept, cl)
		} else {
			sortable = append(sortable, cl)
		}
	}
	sortClausesWorstFirst(sortable)
	drop := len(sortable) / 2
	for i, cl := range sortable {
		if i < drop {
			s.detach(cl)
			s.stats.Deleted++
		} else {
			kept = append(kept, cl)
		}
	}
	s.learnts = kept
}

func sortClausesWorstFirst(cls []*clause) {
	// Worst = high LBD, then low activity.
	lessWorse := func(a, b *clause) bool {
		if a.lbd != b.lbd {
			return a.lbd > b.lbd
		}
		return a.act < b.act
	}
	// Simple heapless sort; clause counts here are moderate.
	for i := 1; i < len(cls); i++ {
		c := cls[i]
		j := i - 1
		for j >= 0 && !lessWorse(cls[j], c) {
			cls[j+1] = cls[j]
			j--
		}
		cls[j+1] = c
	}
}

func (s *Solver) locked(cl *clause) bool {
	v := cl.lits[0].variable()
	return s.reason[v] == cl && s.value(cl.lits[0]) == lTrue
}

func (s *Solver) pickBranchLit() lit {
	if s.rng != nil && s.rng.Float64() < s.opts.RandomFreq && !s.order.empty() {
		v := s.order.heap[s.rng.Intn(len(s.order.heap))]
		if s.assigns[v] == lUndef {
			return mkLit(v, !s.polarity[v])
		}
	}
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return mkLit(v, !s.polarity[v])
		}
	}
	return litUndef
}

// luby computes the Luby restart sequence value for index i (1-based):
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	//lint:ignore ctxpoll terminates in O(log i): each iteration doubles the segment length until it covers i
	for k := uint(1); ; k++ {
		segEnd := (int64(1) << k) - 1
		if i == segEnd {
			return int64(1) << (k - 1)
		}
		if i < segEnd {
			// Recurse into the repeated prefix of the segment.
			i -= (int64(1) << (k - 1)) - 1
			k = 0
		}
	}
}

// Solve determines satisfiability under the given assumptions. On Sat,
// Model reports a satisfying assignment; on Unsat with assumptions,
// Core reports a subset of assumptions sufficient for unsatisfiability.
// The context cancels long searches (returning ErrInterrupted).
func (s *Solver) Solve(ctx context.Context, assumptions ...cnf.Lit) (Status, error) {
	if s.unsat {
		s.core = nil
		return Unsat, nil
	}
	s.model = nil
	s.core = nil
	s.assumps = s.assumps[:0]
	for _, a := range assumptions {
		if v := a.Var(); v > s.numVars {
			s.growTo(v)
		}
		s.assumps = append(s.assumps, fromDimacs(a))
	}

	if s.maxLearnts == 0 {
		s.maxLearnts = float64(len(s.clauses)) / 3
		if s.maxLearnts < 1000 {
			s.maxLearnts = 1000
		}
	}

	defer s.cancelUntil(0)

	var restarts int64
	for {
		s.applyBudgetRefresh()
		limit := luby(restarts+1) * int64(s.opts.RestartBase)
		status, err := s.search(ctx, limit)
		if err != nil {
			return Unknown, err
		}
		if status != Unknown {
			return status, nil
		}
		restarts++
		s.stats.Restarts++
		if t := s.tel; t != nil && t.Bus.Enabled() {
			t.Bus.Publish(obs.RestartFired{
				Engine:    t.Engine,
				Restarts:  s.stats.Restarts,
				Conflicts: s.stats.Conflicts,
			})
		}
	}
}

// search runs CDCL until a result, a restart (after conflictLimit
// conflicts), or cancellation.
func (s *Solver) search(ctx context.Context, conflictLimit int64) (Status, error) {
	var conflicts int64
	for {
		confl := s.propagateAll()
		if confl != nil {
			s.stats.Conflicts++
			conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				s.core = nil
				return Unsat, nil
			}
			learnt, btLevel := s.analyze(confl)
			if s.tel != nil {
				s.tel.LearntLen.Observe(float64(len(learnt)))
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				cl := &clause{lits: learnt, learnt: true, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, cl)
				s.attach(cl)
				s.bumpClause(cl)
				s.uncheckedEnqueue(learnt[0], cl)
				s.stats.Learnt++
			}
			s.decayActivities()

			if conflicts&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return Unknown, fmt.Errorf("%w: %v", ErrInterrupted, err)
				}
				s.maybeHeartbeat()
			}
			continue
		}

		if conflicts >= conflictLimit {
			s.cancelUntil(0)
			return Unknown, nil
		}
		if float64(len(s.learnts)) >= s.maxLearnts {
			s.reduceDB()
			s.maxLearnts *= 1.1
		}

		next := litUndef
		for s.decisionLevel() < len(s.assumps) {
			a := s.assumps[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				s.newDecisionLevel() // dummy level; already satisfied
			case lFalse:
				s.core = s.analyzeFinal(a)
				return Unsat, nil
			default:
				next = a
			}
			if next != litUndef {
				break
			}
		}
		if next == litUndef {
			next = s.pickBranchLit()
			if next == litUndef {
				s.storeModel()
				return Sat, nil
			}
			s.stats.Decisions++
			// Conflict-free descents never reach the conflict-side poll
			// above, yet with a budget each decision can trigger long
			// propagation rounds — poll cancellation here too.
			if s.stats.Decisions&1023 == 0 {
				if err := ctx.Err(); err != nil {
					return Unknown, fmt.Errorf("%w: %v", ErrInterrupted, err)
				}
				s.maybeHeartbeat()
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

func (s *Solver) storeModel() {
	s.model = make([]bool, s.numVars+1)
	for v := 0; v < s.numVars; v++ {
		s.model[v+1] = s.assigns[v] == lTrue
	}
}

// Model returns the satisfying assignment from the last Sat result,
// indexed by DIMACS variable (index 0 unused). Unassigned variables (in
// case of early termination) read false.
func (s *Solver) Model() []bool { return s.model }

// Core returns the subset of the last Solve call's assumptions that was
// shown jointly unsatisfiable with the clause set. It is nil when the
// instance is unsatisfiable without assumptions.
func (s *Solver) Core() []cnf.Lit { return s.core }
