package sat

// varHeap is an indexed max-heap of variables ordered by VSIDS activity.
// It supports decrease/increase-key via the position index, which the
// solver uses when bumping activities of variables already enqueued.
type varHeap struct {
	heap    []int // heap of variables
	indices []int // variable -> position in heap, -1 if absent
	act     []float64
}

func newVarHeap() *varHeap {
	return &varHeap{}
}

// grow extends the position index and refreshes the activity slice
// (whose backing array may have moved when the solver added variables).
func (h *varHeap) grow(numVars int, act []float64) {
	for len(h.indices) < numVars {
		h.indices = append(h.indices, -1)
	}
	h.act = act
}

func (h *varHeap) contains(v int) bool { return h.indices[v] >= 0 }

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) less(a, b int) bool {
	return h.act[h.heap[a]] > h.act[h.heap[b]]
}

func (h *varHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.indices[h.heap[a]] = a
	h.indices[h.heap[b]] = b
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	//lint:ignore ctxpoll sift-down is bounded by the heap height
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(h.heap) && h.less(left, smallest) {
			smallest = left
		}
		if right < len(h.heap) && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// insert adds v if absent.
func (h *varHeap) insert(v int) {
	if h.contains(v) {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

// update re-establishes heap order after v's activity increased.
func (h *varHeap) update(v int) {
	if h.contains(v) {
		h.up(h.indices[v])
	}
}

// removeMax pops the most active variable.
func (h *varHeap) removeMax() int {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.indices[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

// rebuild restores the heap property after a global activity rescale.
func (h *varHeap) rebuild() {
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}
