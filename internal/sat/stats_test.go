package sat

import (
	"context"
	"testing"
)

// TestResetStatsPerSolveSnapshot checks that ResetStats yields
// per-call deltas instead of counters that accumulate invisibly across
// successive incremental Solve calls.
func TestResetStatsPerSolveSnapshot(t *testing.T) {
	s := New(3, Options{})
	s.AddClause(1, 2)
	s.AddClause(-1, 3)

	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	first := s.ResetStats()
	if first.Decisions == 0 && first.Propagations == 0 {
		t.Error("first solve recorded no work at all")
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Errorf("counters not zeroed after ResetStats: %+v", got)
	}

	// A second solve under an assumption does fresh work; the snapshot
	// must cover only that call.
	if _, err := s.Solve(context.Background(), -2); err != nil {
		t.Fatal(err)
	}
	second := s.ResetStats()
	if second.Decisions > first.Decisions+second.Decisions {
		t.Errorf("second snapshot %+v leaked counts from the first %+v", second, first)
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Errorf("counters not zeroed after second ResetStats: %+v", got)
	}
}
