package serve

import "mpmcs4fta/internal/maxsat"

// The outcome taxonomy, stated once for every surface that reports an
// analysis result — the mpmcsd HTTP service, the mpmcs4fta CLI and the
// wpms solver front-end. Each row is one verdict; the columns are how
// that verdict is spelled on each surface.
//
//	verdict                       JSON status   HTTP   mpmcs4fta exit   wpms exit ("s" line)
//	proven optimum                OPTIMAL       200    0                30 ("OPTIMUM FOUND")
//	anytime incumbent (gap +      FEASIBLE      200    10               10 ("SATISFIABLE")
//	  probabilityUpperBound set)
//	no cut set exists             INFEASIBLE    200*   20               20 ("UNSATISFIABLE")
//	deadline, nothing to report   NO_ANSWER     504    4                 0 ("UNKNOWN")
//	malformed input / usage       INVALID       400    2                 0
//	internal failure              ERROR         500    1                 0
//	server shutting down          UNAVAILABLE   503    1                 0
//	no cached result (lookup)     NOT_FOUND     404    1                 0
//
// UNAVAILABLE and NOT_FOUND are service verdicts about the request,
// not the tree: they only appear on the HTTP surface (the CLIs map
// them to the generic error exit) and are never definitive.
//
// (*) INFEASIBLE is a successful, definitive answer about the tree —
// the service returns 200 with an explicit empty-cut-set document, not
// an error status. Only OPTIMAL and INFEASIBLE verdicts are definitive
// and therefore cacheable; FEASIBLE and NO_ANSWER are budget artefacts
// that a different deadline could change. ftdiff keeps its own
// contract (0 agreement, 1 divergence, 2 usage), documented in the
// README.
const (
	StatusOptimal    = "OPTIMAL"    // = maxsat.Optimal.String()
	StatusFeasible   = "FEASIBLE"   // = maxsat.Feasible.String()
	StatusInfeasible = "INFEASIBLE" // = maxsat.Infeasible.String()
	StatusNoAnswer   = "NO_ANSWER"
	StatusInvalid    = "INVALID"
	StatusError      = "ERROR"
	// StatusUnavailable is the shutdown verdict: the pool no longer
	// accepts work, so the request was refused, not answered.
	StatusUnavailable = "UNAVAILABLE"
	// StatusNotFound is the cache-lookup miss verdict: the service
	// remembers results, not trees, and this hash has none.
	StatusNotFound = "NOT_FOUND"
)

// mpmcs4fta process exit codes, one per taxonomy row.
const (
	ExitOK         = 0
	ExitError      = 1
	ExitUsage      = 2
	ExitNoAnswer   = 4
	ExitFeasible   = 10
	ExitInfeasible = 20
)

// ExitCode maps a JSON status string to the mpmcs4fta exit code.
func ExitCode(status string) int {
	switch status {
	case StatusOptimal:
		return ExitOK
	case StatusFeasible:
		return ExitFeasible
	case StatusInfeasible:
		return ExitInfeasible
	case StatusNoAnswer:
		return ExitNoAnswer
	case StatusInvalid:
		return ExitUsage
	default:
		return ExitError
	}
}

// HTTPStatus maps a JSON status string to the mpmcsd response code.
func HTTPStatus(status string) int {
	switch status {
	case StatusOptimal, StatusFeasible, StatusInfeasible:
		return 200
	case StatusNoAnswer:
		return 504
	case StatusInvalid:
		return 400
	case StatusUnavailable:
		return 503
	case StatusNotFound:
		return 404
	default:
		return 500
	}
}

// WPMSExitCode maps a solver status to the MaxSAT-evaluation exit code
// the wpms command reports: 30 optimum, 20 unsatisfiable, 10
// satisfiable (anytime incumbent), 0 unknown.
func WPMSExitCode(status maxsat.Status) int {
	switch status {
	case maxsat.Optimal:
		return 30
	case maxsat.Infeasible:
		return 20
	case maxsat.Feasible:
		return 10
	default:
		return 0
	}
}

// Definitive reports whether a status is a proven verdict about the
// instance (rather than a budget artefact) and therefore safe to
// cache: OPTIMAL and INFEASIBLE only.
func Definitive(status string) bool {
	return status == StatusOptimal || status == StatusInfeasible
}
