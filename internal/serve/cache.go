package serve

import "sync"

// cache is the content-addressed solution store: canonical tree hash
// (plus a "#k=N" suffix for enumerations) → finished solution
// document. Only definitive documents (OPTIMAL, INFEASIBLE — see
// Definitive) belong here; the server enforces that at the call site,
// because a cached FEASIBLE or NO_ANSWER would freeze a budget
// artefact into a permanent answer.
//
// Eviction is LRU over a bounded entry count: the documents are small
// (a cut set plus weights), so a simple recency list is enough.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*cacheEntry
	// head is most recently used, tail least; both nil when empty.
	head, tail *cacheEntry
}

type cacheEntry struct {
	key        string
	doc        Document // stored with Cached=false; treated as immutable
	prev, next *cacheEntry
}

func newCache(max int) *cache {
	if max < 1 {
		max = 1
	}
	return &cache{max: max, entries: make(map[string]*cacheEntry)}
}

// get returns a copy of the stored document with Cached set, and
// whether the key was present.
func (c *cache) get(key string) (Document, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return Document{}, false
	}
	c.moveToFront(e)
	doc := e.doc
	doc.Cached = true
	return doc, true
}

// put stores the document under key, evicting the least recently used
// entry when full. The stored copy always has Cached=false: the flag
// describes the response that carries it, not the entry.
func (c *cache) put(key string, doc Document) {
	doc.Cached = false
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.doc = doc
		c.moveToFront(e)
		return
	}
	e := &cacheEntry{key: key, doc: doc}
	c.entries[key] = e
	c.pushFront(e)
	if len(c.entries) > c.max {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
	}
}

// len returns the number of stored documents.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *cache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
