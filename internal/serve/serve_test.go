package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/portfolio"
)

// newTestServer starts an httptest front-end over a fresh Server; the
// cleanup tears both down (front-end first, so in-flight request
// contexts die before the pool drains).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func treeJSON(t *testing.T, tree *ft.Tree) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tree.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postTree(t *testing.T, url string, body []byte) (*Document, int) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc Document
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &doc, resp.StatusCode
}

func TestAnalyzeEndToEndAndCacheByteEquality(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, Core: core.Options{Sequential: true}})
	body := treeJSON(t, gen.FPS())

	fresh, code := postTree(t, ts.URL+"/v1/analyze", body)
	if code != 200 {
		t.Fatalf("fresh solve: HTTP %d (%s: %s)", code, fresh.Status, fresh.Error)
	}
	if fresh.Status != StatusOptimal {
		t.Fatalf("status %q, want OPTIMAL", fresh.Status)
	}
	if fresh.Cached {
		t.Error("fresh solve claims to be cached")
	}
	if !strings.HasPrefix(fresh.Hash, "sha256:") {
		t.Errorf("malformed hash %q", fresh.Hash)
	}
	var sol core.Solution
	if err := json.Unmarshal(fresh.Solution, &sol); err != nil {
		t.Fatalf("solution does not decode: %v", err)
	}
	if len(sol.MPMCS) == 0 || sol.Probability <= 0 {
		t.Fatalf("empty solution document: %+v", sol)
	}

	// The differ-style guard: a cache hit must return byte-for-byte the
	// solution document of the solve that populated it.
	hit, code := postTree(t, ts.URL+"/v1/analyze", body)
	if code != 200 || !hit.Cached {
		t.Fatalf("second POST: HTTP %d cached=%v, want a cache hit", code, hit.Cached)
	}
	if !bytes.Equal(hit.Solution, fresh.Solution) {
		t.Errorf("cache hit diverged from the fresh solution document:\nfresh: %s\nhit:   %s",
			fresh.Solution, hit.Solution)
	}
	if hit.Hash != fresh.Hash || hit.Status != fresh.Status {
		t.Errorf("cache hit envelope diverged: %+v vs %+v", hit, fresh)
	}
	if hits := s.metrics.Get("mpmcsd_cache_hits"); hits != 1 {
		t.Errorf("mpmcsd_cache_hits = %d, want 1", hits)
	}
	if misses := s.metrics.Get("mpmcsd_cache_misses"); misses != 1 {
		t.Errorf("mpmcsd_cache_misses = %d, want 1", misses)
	}
}

// A semantically identical tree — gates renamed, children permuted —
// must land on the same canonical hash and be served from the cache.
func TestAnalyzeCacheHitAcrossRenaming(t *testing.T) {
	build := func(top, left string, flip bool) *ft.Tree {
		tree := ft.New("vehicle-" + top)
		events := []struct {
			id string
			p  float64
		}{{"a", 0.05}, {"b", 0.02}, {"c", 0.4}}
		if flip {
			for i, j := 0, len(events)-1; i < j; i, j = i+1, j-1 {
				events[i], events[j] = events[j], events[i]
			}
		}
		for _, e := range events {
			if err := tree.AddEvent(e.id, e.p); err != nil {
				t.Fatal(err)
			}
		}
		in := []string{"a", "b"}
		if flip {
			in = []string{"b", "a"}
		}
		if err := tree.AddOr(left, in...); err != nil {
			t.Fatal(err)
		}
		if err := tree.AddAnd(top, left, "c"); err != nil {
			t.Fatal(err)
		}
		tree.SetTop(top)
		return tree
	}
	s, ts := newTestServer(t, Config{Workers: 2, Core: core.Options{Sequential: true}})

	first, code := postTree(t, ts.URL+"/v1/analyze", treeJSON(t, build("g-top", "g-left", false)))
	if code != 200 {
		t.Fatalf("first solve: HTTP %d (%s)", code, first.Error)
	}
	second, code := postTree(t, ts.URL+"/v1/analyze", treeJSON(t, build("system-fails", "subsystem", true)))
	if code != 200 {
		t.Fatalf("second solve: HTTP %d (%s)", code, second.Error)
	}
	if second.Hash != first.Hash {
		t.Fatalf("renamed/permuted tree hashed differently: %s vs %s", second.Hash, first.Hash)
	}
	if !second.Cached {
		t.Error("semantically identical tree was re-solved instead of served from cache")
	}
	if s.metrics.Get("mpmcsd_cache_hits") != 1 {
		t.Errorf("mpmcsd_cache_hits = %d, want 1", s.metrics.Get("mpmcsd_cache_hits"))
	}
}

func TestTopKEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Core: core.Options{Sequential: true}})
	body := treeJSON(t, gen.FPS())

	doc, code := postTree(t, ts.URL+"/v1/topk?k=3", body)
	if code != 200 {
		t.Fatalf("topk: HTTP %d (%s: %s)", code, doc.Status, doc.Error)
	}
	if doc.Status != StatusOptimal || !doc.Complete || doc.K != 3 {
		t.Fatalf("got status=%s complete=%v k=%d, want OPTIMAL complete k=3", doc.Status, doc.Complete, doc.K)
	}
	var sols []*core.Solution
	if err := json.Unmarshal(doc.Solutions, &sols); err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("got %d solutions, want 3", len(sols))
	}
	for i := 1; i < len(sols); i++ {
		if sols[i].Probability > sols[i-1].Probability {
			t.Errorf("solutions out of order: %v then %v", sols[i-1].Probability, sols[i].Probability)
		}
	}

	hit, _ := postTree(t, ts.URL+"/v1/topk?k=3", body)
	if !hit.Cached || !bytes.Equal(hit.Solutions, doc.Solutions) {
		t.Error("complete enumeration not served from cache byte-identically")
	}
	// A different k is a different result — it must not alias.
	other, _ := postTree(t, ts.URL+"/v1/topk?k=2", body)
	if other.Cached {
		t.Error("k=2 served from the k=3 cache entry")
	}
}

func TestLookupEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Core: core.Options{Sequential: true}})
	body := treeJSON(t, gen.FPS())
	doc, _ := postTree(t, ts.URL+"/v1/analyze", body)

	resp, err := http.Get(ts.URL + "/v1/solutions/" + doc.Hash)
	if err != nil {
		t.Fatal(err)
	}
	var got Document
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !got.Cached {
		t.Fatalf("lookup: HTTP %d cached=%v, want 200 cache hit", resp.StatusCode, got.Cached)
	}
	if !bytes.Equal(got.Solution, doc.Solution) {
		t.Error("lookup returned a different solution document")
	}

	resp, err = http.Get(ts.URL + "/v1/solutions/sha256:" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown hash: HTTP %d, want 404", resp.StatusCode)
	}
}

// A tree whose top event cannot occur is a definitive INFEASIBLE: 200
// with an explicit empty-cut-set document, and cacheable.
func TestInfeasibleEmptySetDocument(t *testing.T) {
	tree := ft.New("impossible")
	if err := tree.AddEvent("never", 0); err != nil { // p=0: cannot fail
		t.Fatal(err)
	}
	if err := tree.AddEvent("pump", 0.1); err != nil {
		t.Fatal(err)
	}
	if err := tree.AddAnd("top", "never", "pump"); err != nil {
		t.Fatal(err)
	}
	tree.SetTop("top")

	s, ts := newTestServer(t, Config{Workers: 1, Core: core.Options{Sequential: true}})
	body := treeJSON(t, tree)
	doc, code := postTree(t, ts.URL+"/v1/analyze", body)
	if code != 200 || doc.Status != StatusInfeasible {
		t.Fatalf("HTTP %d status %s, want 200 INFEASIBLE", code, doc.Status)
	}
	var sol core.Solution
	if err := json.Unmarshal(doc.Solution, &sol); err != nil {
		t.Fatalf("INFEASIBLE response carries no well-formed solution: %v", err)
	}
	if sol.MPMCS == nil || len(sol.MPMCS) != 0 || sol.Probability != 0 {
		t.Errorf("want explicit empty cut set with probability 0, got %+v", sol)
	}
	if hit, _ := postTree(t, ts.URL+"/v1/analyze", body); !hit.Cached {
		t.Error("INFEASIBLE is definitive and must be cached")
	}
	if s.metrics.Get("mpmcsd_cache_stores") != 1 {
		t.Errorf("mpmcsd_cache_stores = %d, want 1", s.metrics.Get("mpmcsd_cache_stores"))
	}
}

// unknownSolver never answers — the solve behaves like a deadline that
// expired before round 0.
type unknownSolver struct{}

func (unknownSolver) Name() string { return "unknown-fake" }

func (unknownSolver) Solve(context.Context, *cnf.WCNF) (maxsat.Result, error) {
	return maxsat.Result{Status: maxsat.Unknown}, nil
}

// feasibleSolver returns a sound incumbent (every event failed — a
// superset of a real cut set, minimised downstream) without proving
// optimality: the anytime FEASIBLE shape.
type feasibleSolver struct{}

func (feasibleSolver) Name() string { return "feasible-fake" }

func (feasibleSolver) Solve(_ context.Context, inst *cnf.WCNF) (maxsat.Result, error) {
	model := make([]bool, inst.NumVars+1)
	var cost int64
	for _, sc := range inst.Soft {
		cost += sc.Weight
	}
	return maxsat.Result{Status: maxsat.Feasible, Model: model, Cost: cost, LowerBound: 0}, nil
}

func engines(s maxsat.Solver) []portfolio.Engine {
	return []portfolio.Engine{{Name: s.Name(), Solver: s}}
}

// The headline cache-policy rule: a solve that never answered is 504
// NO_ANSWER — and is NEVER cached, because a different budget could
// answer. Before the deadline-vs-infeasible fix this surfaced as
// ErrNoCutSet, which the service would have cached forever.
func TestNoAnswerIs504AndNeverCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1,
		Core: core.Options{Sequential: true, Engines: engines(unknownSolver{})}})
	body := treeJSON(t, gen.FPS())

	for round := 1; round <= 2; round++ {
		doc, code := postTree(t, ts.URL+"/v1/analyze", body)
		if code != 504 || doc.Status != StatusNoAnswer {
			t.Fatalf("round %d: HTTP %d status %s, want 504 NO_ANSWER", round, code, doc.Status)
		}
		if doc.Status == StatusInfeasible || strings.Contains(doc.Error, "no cut set") {
			t.Fatalf("round %d: budget expiry misreported as infeasibility: %+v", round, doc)
		}
		if doc.Error == "" {
			t.Errorf("round %d: NO_ANSWER without a reason", round)
		}
	}
	if s.cache.len() != 0 || s.metrics.Get("mpmcsd_cache_misses") != 2 {
		t.Errorf("no-answer result was cached: len=%d misses=%d", s.cache.len(), s.metrics.Get("mpmcsd_cache_misses"))
	}
	// Top-k no-answer takes the same path.
	doc, code := postTree(t, ts.URL+"/v1/topk?k=2", body)
	if code != 504 || doc.Status != StatusNoAnswer {
		t.Errorf("topk: HTTP %d status %s, want 504 NO_ANSWER", code, doc.Status)
	}
	if s.cache.len() != 0 {
		t.Error("topk no-answer was cached")
	}
}

// FEASIBLE carries the anytime contract fields and is not cached.
func TestFeasibleCarriesGapAndIsNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1,
		Core: core.Options{Sequential: true, NoDecompose: true, Engines: engines(feasibleSolver{})}})
	body := treeJSON(t, gen.FPS())

	doc, code := postTree(t, ts.URL+"/v1/analyze", body)
	if code != 200 || doc.Status != StatusFeasible {
		t.Fatalf("HTTP %d status %s (%s), want 200 FEASIBLE", code, doc.Status, doc.Error)
	}
	var sol core.Solution
	if err := json.Unmarshal(doc.Solution, &sol); err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusFeasible || sol.ProbabilityUpperBound <= 0 {
		t.Errorf("FEASIBLE document missing anytime fields: status=%s ub=%v gap=%v",
			sol.Status, sol.ProbabilityUpperBound, sol.OptimalityGap)
	}
	if len(sol.MPMCS) == 0 {
		t.Error("FEASIBLE answer carries no cut set")
	}
	if again, _ := postTree(t, ts.URL+"/v1/analyze", body); again.Cached {
		t.Error("FEASIBLE (non-definitive) result was served from cache")
	}
	if s.cache.len() != 0 {
		t.Errorf("cache holds %d entries after FEASIBLE-only traffic", s.cache.len())
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Core: core.Options{Sequential: true}})
	cases := []struct {
		name, url, body string
	}{
		{"malformed JSON", "/v1/analyze", "{not json"},
		{"invalid tree", "/v1/analyze", `{"name":"x","top":"missing","events":[],"gates":[]}`},
		{"bad k", "/v1/topk?k=0", `{}`},
		{"non-numeric k", "/v1/topk?k=lots", `{}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc, code := postTree(t, ts.URL+tc.url, []byte(tc.body))
			if code != 400 || doc.Status != StatusInvalid {
				t.Errorf("HTTP %d status %s, want 400 INVALID", code, doc.Status)
			}
			if doc.Error == "" {
				t.Error("400 without a reason")
			}
		})
	}
}

// sseFrames reads a request's SSE stream to completion and returns the
// event names in order plus the terminal solution document.
func sseFrames(t *testing.T, resp *http.Response) (kinds []string, final *Document) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var kind string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			kind = strings.TrimPrefix(line, "event: ")
			kinds = append(kinds, kind)
		case strings.HasPrefix(line, "data: ") && kind == "solution":
			final = &Document{}
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), final); err != nil {
				t.Fatalf("terminal frame does not decode: %v", err)
			}
		}
	}
	return kinds, final
}

func TestStreamingSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Core: core.Options{Sequential: true}})
	body := treeJSON(t, gen.FPS())

	req, err := http.NewRequest("POST", ts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	kinds, final := sseFrames(t, resp)
	if final == nil {
		t.Fatalf("stream ended without a terminal solution frame (frames: %v)", kinds)
	}
	if final.Status != StatusOptimal || final.Cached {
		t.Errorf("terminal frame status=%s cached=%v, want fresh OPTIMAL", final.Status, final.Cached)
	}
	var sawSolve bool
	for _, k := range kinds {
		if k == obs.KindSolveStarted || k == obs.KindSolveFinished {
			sawSolve = true
		}
	}
	if !sawSolve {
		t.Errorf("no solve lifecycle frames before the terminal one: %v", kinds)
	}
	if kinds[len(kinds)-1] != "solution" {
		t.Errorf("solution frame is not terminal: %v", kinds)
	}

	// Cached replay over SSE: just the solution frame, flagged cached.
	resp, err = http.Post(ts.URL+"/v1/analyze?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	kinds, final = sseFrames(t, resp)
	if final == nil || !final.Cached {
		t.Fatalf("cached stream: final=%+v frames=%v, want cached solution frame", final, kinds)
	}
}

// A streaming request's frames must also reach the global /events bus
// so fleet-wide watchers see every solve.
func TestStreamingBridgesToGlobalBus(t *testing.T) {
	bus := obs.NewEventBus()
	_, ts := newTestServer(t, Config{Workers: 1, Bus: bus, Core: core.Options{Sequential: true}})
	resp, err := http.Post(ts.URL+"/v1/analyze?stream=1", "application/json",
		bytes.NewReader(treeJSON(t, gen.PressureTank())))
	if err != nil {
		t.Fatal(err)
	}
	if _, final := sseFrames(t, resp); final == nil {
		t.Fatal("no terminal frame")
	}
	deadline := time.Now().Add(2 * time.Second)
	for bus.Published() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if bus.Published() == 0 {
		t.Error("streaming solve published nothing to the global bus")
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Core: core.Options{Sequential: true}})
	if _, code := postTree(t, ts.URL+"/v1/analyze", treeJSON(t, gen.FPS())); code != 200 {
		t.Fatalf("solve failed: HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"mpmcsd_requests", "mpmcsd_cache_misses"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %s:\n%s", want, text)
		}
	}
}

// Ultra-short request budgets must degrade to NO_ANSWER, not to a
// wrong verdict — exercised through the real query-parameter path.
func TestRequestTimeoutParameter(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1,
		Core: core.Options{Sequential: true, Engines: engines(slowSolver{})}})
	doc, code := postTree(t, ts.URL+"/v1/analyze?timeoutMillis=30", treeJSON(t, gen.FPS()))
	if code != 504 || doc.Status != StatusNoAnswer {
		t.Fatalf("HTTP %d status %s, want 504 NO_ANSWER", code, doc.Status)
	}
}

// slowSolver blocks until its context dies and reports nothing.
type slowSolver struct{}

func (slowSolver) Name() string { return "slow-fake" }

func (slowSolver) Solve(ctx context.Context, _ *cnf.WCNF) (maxsat.Result, error) {
	<-ctx.Done()
	return maxsat.Result{Status: maxsat.Unknown}, ctx.Err()
}

func TestStatusTable(t *testing.T) {
	rows := []struct {
		status string
		http   int
		exit   int
	}{
		{StatusOptimal, 200, ExitOK},
		{StatusFeasible, 200, ExitFeasible},
		{StatusInfeasible, 200, ExitInfeasible},
		{StatusNoAnswer, 504, ExitNoAnswer},
		{StatusInvalid, 400, ExitUsage},
		{StatusError, 500, ExitError},
		{StatusUnavailable, 503, ExitError},
		{StatusNotFound, 404, ExitError},
	}
	for _, row := range rows {
		if got := HTTPStatus(row.status); got != row.http {
			t.Errorf("HTTPStatus(%s) = %d, want %d", row.status, got, row.http)
		}
		if got := ExitCode(row.status); got != row.exit {
			t.Errorf("ExitCode(%s) = %d, want %d", row.status, got, row.exit)
		}
	}
	if !Definitive(StatusOptimal) || !Definitive(StatusInfeasible) {
		t.Error("OPTIMAL and INFEASIBLE must be definitive")
	}
	for _, s := range []string{StatusFeasible, StatusNoAnswer, StatusInvalid, StatusError, StatusUnavailable, StatusNotFound} {
		if Definitive(s) {
			t.Errorf("%s must not be definitive (cacheable)", s)
		}
	}
	// The status constants must agree with the solver's own spelling.
	if StatusOptimal != maxsat.Optimal.String() ||
		StatusFeasible != maxsat.Feasible.String() ||
		StatusInfeasible != maxsat.Infeasible.String() {
		t.Error("serve status strings diverge from maxsat.Status spellings")
	}
	wpms := map[maxsat.Status]int{maxsat.Optimal: 30, maxsat.Infeasible: 20, maxsat.Feasible: 10, maxsat.Unknown: 0}
	for st, want := range wpms {
		if got := WPMSExitCode(st); got != want {
			t.Errorf("WPMSExitCode(%v) = %d, want %d", st, got, want)
		}
	}
}

func TestCacheEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", Document{Hash: "a"})
	c.put("b", Document{Hash: "b"})
	if _, ok := c.get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", Document{Hash: "c"})
	if _, ok := c.get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, want := range []string{"a", "c"} {
		doc, ok := c.get(want)
		if !ok || doc.Hash != want || !doc.Cached {
			t.Errorf("entry %s: ok=%v doc=%+v", want, ok, doc)
		}
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}
