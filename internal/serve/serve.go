// Package serve implements mpmcsd, the long-running analysis service:
// fault trees come in over HTTP as JSON, analyses run on a shared
// worker pool with per-request deadlines, live bound trajectories
// stream out as Server-Sent Events, and definitive results land in a
// content-addressed cache keyed by the canonical tree hash
// (ft.CanonicalHash), so re-submitting the same tree — under any gate
// renaming or child reordering — is a lookup, not a solve.
//
// Endpoints:
//
//	POST /v1/analyze           body: fault tree JSON → MPMCS document
//	POST /v1/topk?k=N          body: fault tree JSON → ranked cut sets
//	GET  /v1/solutions/{hash}  cache lookup by canonical hash (?k=N)
//	GET  /healthz              liveness probe
//	GET  /metrics              Prometheus counters (cache hits, ...)
//	GET  /events               global SSE stream of all solver events
//	GET  /debug/pprof/*        standard profiling handlers
//
// Solve endpoints accept ?timeoutMillis=N (clamped to the server's
// maximum) and stream per-request SSE (bound improvements as they
// happen, then a terminal "solution" frame) when the client asks with
// Accept: text/event-stream or ?stream=1. Response status strings and
// HTTP codes follow the taxonomy table in status.go.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/obs"
	"mpmcs4fta/internal/sched"
)

// maxTreeBytes bounds a request body: trees are small documents, and
// the limit keeps a misdirected upload from ballooning memory.
const maxTreeBytes = 16 << 20

// Config configures a Server. The zero value selects defaults.
type Config struct {
	// Workers sizes the shared solve pool (≤0 = GOMAXPROCS). Requests
	// beyond the pool's queue wait their turn; the wait spends their
	// deadline budget, so an overloaded server answers NO_ANSWER
	// instead of piling up unbounded work.
	Workers int
	// DefaultTimeout is the per-request solve budget when the request
	// does not name one (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the budget a request may ask for (default 5m).
	MaxTimeout time.Duration
	// CacheEntries bounds the solution cache (default 1024).
	CacheEntries int
	// Core is the base analysis configuration (engines, encoding,
	// decomposition). Timeout, Bus and Metrics are per-request concerns
	// the server manages itself and overrides.
	Core core.Options
	// Metrics receives service and solver counters; created if nil.
	Metrics *obs.Metrics
	// Bus is the global event bus behind /events; created if nil.
	Bus *obs.EventBus
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxTimeout < c.DefaultTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
	if c.Bus == nil {
		c.Bus = obs.NewEventBus()
	}
	return c
}

// Document is the JSON body of every solve response: the canonical
// tree hash the result is cached under, the taxonomy status, whether
// this response was served from the cache, and the solution payload —
// one document for /v1/analyze, a ranked list for /v1/topk. An
// INFEASIBLE analysis carries an explicit empty-cut-set solution
// rather than nothing: "no cut set exists" is an answer, not an error.
type Document struct {
	Hash   string `json:"hash,omitempty"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	// K and Complete are set for enumeration (/v1/topk) documents.
	// Complete reports that every returned set is proven OPTIMAL and
	// the enumeration is exhaustive (k reached, or no further cut set
	// exists) — the precondition for caching an enumeration.
	K         int             `json:"k,omitempty"`
	Complete  bool            `json:"complete,omitempty"`
	Solution  json.RawMessage `json:"solution,omitempty"`
	Solutions json.RawMessage `json:"solutions,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// Server is the mpmcsd HTTP service. Create with New, mount Handler
// or call Start, stop with Close.
type Server struct {
	cfg     Config
	pool    *sched.Pool
	cache   *cache
	metrics *obs.Metrics
	bus     *obs.EventBus
	obs     *obs.Server // telemetry mux: /metrics, /events, /healthz, pprof

	mu     sync.Mutex
	closed bool         // guarded by mu
	srv    *http.Server // guarded by mu
	wg     sync.WaitGroup
}

// New returns a ready Server; the worker pool is running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		pool:    sched.New(cfg.Workers),
		cache:   newCache(cfg.CacheEntries),
		metrics: cfg.Metrics,
		bus:     cfg.Bus,
		obs:     obs.NewServer(cfg.Metrics, cfg.Bus),
	}
}

// Handler returns the service mux, for mounting into an existing
// http.Server (tests use httptest around it).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, false)
	})
	mux.HandleFunc("POST /v1/topk", func(w http.ResponseWriter, r *http.Request) {
		s.handleSolve(w, r, true)
	})
	mux.HandleFunc("GET /v1/solutions/{hash}", s.handleLookup)
	mux.Handle("/", s.obs.Handler()) // /metrics, /events, /healthz, /debug/pprof
	return mux
}

// Start listens on addr and serves until Close, returning the bound
// address so ":0" callers learn the chosen port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener (disconnecting in-flight requests,
// including blocked SSE streams), drains the worker pool and joins
// every goroutine the server started. Safe without Start and more
// than once.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	alreadyClosed := s.closed
	s.closed = true
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Close() // Close, not Shutdown: SSE streams never drain
	}
	s.wg.Wait()
	if !alreadyClosed {
		s.pool.Close()
	}
	return err
}

// handleSolve serves POST /v1/analyze and POST /v1/topk: parse and
// hash the tree, try the cache, otherwise run the analysis on the
// shared pool under the request's deadline budget.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, topk bool) {
	s.metrics.Add("mpmcsd_requests", 1)
	k := 1
	if topk {
		k = queryInt(r, "k", 3)
		if k < 1 || k > 10_000 {
			writeJSON(w, HTTPStatus(StatusInvalid), &Document{Status: StatusInvalid,
				Error: fmt.Sprintf("k must be in [1, 10000], got %d", k)})
			return
		}
	}
	tree, err := ft.ReadJSON(http.MaxBytesReader(w, r.Body, maxTreeBytes))
	if err != nil {
		writeJSON(w, HTTPStatus(StatusInvalid), &Document{Status: StatusInvalid,
			Error: fmt.Sprintf("parse fault tree: %v", err)})
		return
	}
	hash, err := ft.CanonicalHash(tree)
	if err != nil {
		writeJSON(w, HTTPStatus(StatusError), &Document{Status: StatusError, Error: err.Error()})
		return
	}
	key := cacheKey(hash, topk, k)
	stream := wantsSSE(r)

	if doc, ok := s.cache.get(key); ok {
		s.metrics.Add("mpmcsd_cache_hits", 1)
		if stream {
			sse, ok := startSSE(w)
			if !ok {
				return
			}
			sse.frame("solution", &doc) //nolint:errcheck // client gone mid-write
			return
		}
		writeJSON(w, HTTPStatus(doc.Status), &doc)
		return
	}
	s.metrics.Add("mpmcsd_cache_misses", 1)

	budget := s.budget(r)
	reqCtx, cancel := context.WithTimeout(r.Context(), budget)
	defer cancel()

	// A streaming request gets its own bus so the client sees exactly
	// its solve's frames; the SSE loop bridges them onto the global bus
	// for /events watchers. Non-streaming solves publish to the global
	// bus directly.
	bus := s.bus
	var sub *obs.Subscription
	if stream {
		bus = obs.NewEventBus()
		sub = bus.Subscribe(256)
		defer sub.Close()
	}

	resCh := make(chan *Document, 1)
	submitted := s.pool.Submit(reqCtx, func(taskCtx context.Context) {
		solveCtx, done := sched.Carve(taskCtx, 1, 0)
		defer done()
		resCh <- s.runAnalysis(solveCtx, tree, hash, k, topk, bus)
	})
	if submitted != nil {
		if errors.Is(submitted, sched.ErrClosed) {
			writeJSON(w, HTTPStatus(StatusUnavailable), &Document{Hash: hash, Status: StatusUnavailable,
				Error: "server is shutting down"})
			return
		}
		// The deadline budget was spent queuing: same verdict as a solve
		// that learned nothing in time.
		writeJSON(w, HTTPStatus(StatusNoAnswer), &Document{Hash: hash, Status: StatusNoAnswer,
			Error: fmt.Sprintf("request expired before a worker was free: %v", submitted)})
		return
	}

	if stream {
		s.streamSolve(w, r, sub, resCh, key)
		return
	}
	// The task runs exactly once and honours its context, so the
	// document always arrives — on client disconnect reqCtx dies, the
	// solve aborts, and the buffered send never blocks the worker.
	doc := <-resCh
	s.finish(key, doc)
	writeJSON(w, HTTPStatus(doc.Status), doc)
}

// streamSolve relays the per-request bus to the SSE client while the
// analysis runs — republishing each frame to the global bus — then
// caches a definitive result and emits the terminal "solution" frame.
func (s *Server) streamSolve(w http.ResponseWriter, r *http.Request, sub *obs.Subscription, resCh <-chan *Document, key string) {
	sse, ok := startSSE(w)
	if !ok {
		return
	}
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if err := sse.comment("keepalive"); err != nil {
				return
			}
		case ev := <-sub.Events():
			s.bus.Publish(ev.Data)
			if err := sse.event(ev); err != nil {
				return
			}
		case doc := <-resCh:
			// Flush frames already queued behind the result so the bound
			// trajectory precedes the terminal frame.
			for drained := false; !drained; {
				select {
				case ev := <-sub.Events():
					s.bus.Publish(ev.Data)
					sse.event(ev) //nolint:errcheck // client gone mid-write
				default:
					drained = true
				}
			}
			s.finish(key, doc)
			sse.frame("solution", doc) //nolint:errcheck // client gone mid-write
			return
		}
	}
}

// finish records the cache-policy decision: only definitive verdicts
// (OPTIMAL, INFEASIBLE) are stored — and an enumeration additionally
// has to be complete, which topkStatus already folds into the status.
func (s *Server) finish(key string, doc *Document) {
	if Definitive(doc.Status) {
		s.cache.put(key, *doc)
		s.metrics.Add("mpmcsd_cache_stores", 1)
	}
}

// runAnalysis executes one analysis on a worker and renders the
// outcome as a Document, mapping the error taxonomy to status strings.
// It never returns nil and the document is never empty: even a solve
// that learned nothing carries NO_ANSWER and the reason.
func (s *Server) runAnalysis(ctx context.Context, tree *ft.Tree, hash string, k int, topk bool, bus *obs.EventBus) *Document {
	opts := s.cfg.Core
	opts.Timeout = 0 // ctx already carries the request deadline
	opts.Metrics = s.metrics
	opts.Bus = bus
	doc := &Document{Hash: hash}
	if topk {
		doc.K = k
		sols, complete, err := core.AnalyzeTopKComplete(ctx, tree, k, opts)
		switch {
		case errors.Is(err, core.ErrNoCutSet):
			doc.Status = StatusInfeasible
			doc.Complete = true
			doc.Solutions = mustJSON([]*core.Solution{})
		case err != nil:
			return errorDocument(doc, err)
		default:
			doc.Complete = complete
			doc.Solutions = mustJSON(sols)
			doc.Status = StatusFeasible
			if complete {
				doc.Status = StatusOptimal
			}
		}
		return doc
	}
	sol, err := core.Analyze(ctx, tree, opts)
	switch {
	case errors.Is(err, core.ErrNoCutSet):
		doc.Status = StatusInfeasible
		doc.Solution = mustJSON(emptySolution(tree))
	case err != nil:
		return errorDocument(doc, err)
	default:
		doc.Status = sol.Status // OPTIMAL or FEASIBLE
		doc.Solution = mustJSON(sol)
	}
	return doc
}

// errorDocument maps an analysis error onto the taxonomy: a no-answer
// deadline is NO_ANSWER (504), anything else is an internal ERROR.
func errorDocument(doc *Document, err error) *Document {
	doc.Status = StatusError
	if errors.Is(err, core.ErrNoAnswer) {
		doc.Status = StatusNoAnswer
	}
	doc.Error = err.Error()
	return doc
}

// emptySolution is the INFEASIBLE answer document: the explicit
// empty-cut-set solution ("the top event cannot occur"), so clients
// always receive a well-formed solution object.
func emptySolution(tree *ft.Tree) *core.Solution {
	return &core.Solution{
		Tree:        tree.Name(),
		Method:      "Weighted Partial MaxSAT",
		MPMCS:       []core.SolutionEvent{},
		Probability: 0,
		Status:      StatusInfeasible,
	}
}

// handleLookup serves GET /v1/solutions/{hash}: a pure cache probe —
// hit returns the stored definitive document, miss is 404 (the
// service does not remember trees, only results).
func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	key := hash
	if kq := r.URL.Query().Get("k"); kq != "" {
		k, err := strconv.Atoi(kq)
		if err != nil {
			writeJSON(w, HTTPStatus(StatusInvalid), &Document{Status: StatusInvalid,
				Error: fmt.Sprintf("bad k %q", kq)})
			return
		}
		key = cacheKey(hash, true, k)
	}
	doc, ok := s.cache.get(key)
	if !ok {
		writeJSON(w, HTTPStatus(StatusNotFound), &Document{Hash: hash, Status: StatusNotFound,
			Error: "no cached solution for this hash"})
		return
	}
	s.metrics.Add("mpmcsd_cache_hits", 1)
	writeJSON(w, HTTPStatus(doc.Status), &doc)
}

// budget resolves the per-request solve budget: ?timeoutMillis=N
// clamped to (0, MaxTimeout], defaulting to DefaultTimeout.
func (s *Server) budget(r *http.Request) time.Duration {
	ms := queryInt(r, "timeoutMillis", 0)
	if ms <= 0 {
		return s.cfg.DefaultTimeout
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

func cacheKey(hash string, topk bool, k int) string {
	if !topk {
		return hash
	}
	return fmt.Sprintf("%s#k=%d", hash, k)
}

func queryInt(r *http.Request, name string, def int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return -1
	}
	return n
}

func wantsSSE(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" || r.URL.Query().Get("stream") == "true" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

func writeJSON(w http.ResponseWriter, code int, doc *Document) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(doc) //nolint:errcheck // client gone mid-write
}

// mustJSON marshals a value that cannot fail (solution documents are
// plain data); an impossible failure yields a JSON null rather than a
// panic in a worker.
func mustJSON(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		return json.RawMessage("null")
	}
	return b
}

// sseWriter renders Server-Sent Events frames in the same format as
// the obs /events endpoint.
type sseWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

// startSSE negotiates the stream; a transport that cannot flush gets
// a 500 and (nil, false).
func startSSE(w http.ResponseWriter) (*sseWriter, bool) {
	f, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	s := &sseWriter{w: w, f: f}
	s.comment("mpmcsd solve stream") //nolint:errcheck // client gone mid-write
	return s, true
}

func (s *sseWriter) comment(text string) error {
	_, err := fmt.Fprintf(s.w, ": %s\n\n", text)
	s.f.Flush()
	return err
}

// event renders one bus event, keeping the envelope format of the
// obs /events endpoint (event: kind, id: seq, data: envelope JSON).
func (s *sseWriter) event(ev obs.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(s.w, "event: %s\nid: %d\ndata: %s\n\n", ev.Kind, ev.Seq, data)
	s.f.Flush()
	return err
}

// frame renders an arbitrary named frame (the terminal "solution").
func (s *sseWriter) frame(name string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", name, data)
	s.f.Flush()
	return err
}
