package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"mpmcs4fta/internal/core"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
)

// TestLoadConcurrentAnalyses is the tentpole's load harness: hundreds
// of concurrent submissions over a small worker pool, a mix of repeat
// trees (cache hits), distinct trees (real solves), top-k requests and
// SSE streams. Every response must be well-formed with a taxonomy
// status, and once the server closes, no goroutine may survive it.
// Run under -race in CI.
func TestLoadConcurrentAnalyses(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{Workers: 4, CacheEntries: 64, Core: core.Options{Sequential: true}})
	ts := httptest.NewServer(s.Handler())

	// A pool of distinct small trees: variants of a two-layer system
	// with per-variant probabilities, so each hashes differently, plus
	// the library trees for repeat traffic.
	variant := func(i int) []byte {
		tree := ft.New(fmt.Sprintf("variant-%d", i))
		p := 0.01 + float64(i%17)*0.013
		for _, id := range []string{"a", "b", "c", "d"} {
			if err := tree.AddEvent(id, p); err != nil {
				t.Fatal(err)
			}
			p *= 1.3
		}
		if err := tree.AddOr("left", "a", "b"); err != nil {
			t.Fatal(err)
		}
		if err := tree.AddOr("right", "c", "d"); err != nil {
			t.Fatal(err)
		}
		if err := tree.AddAnd("top", "left", "right"); err != nil {
			t.Fatal(err)
		}
		tree.SetTop("top")
		var buf bytes.Buffer
		if err := tree.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fps := treeJSON(t, gen.FPS())
	tank := treeJSON(t, gen.PressureTank())

	const requests = 240
	client := ts.Client()
	client.Timeout = 60 * time.Second
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses = map[string]int{}
		failures []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var (
				url  = ts.URL + "/v1/analyze"
				body []byte
			)
			switch i % 6 {
			case 0:
				body = fps // repeat tree: cache traffic
			case 1:
				body = tank
			case 2:
				url = ts.URL + "/v1/topk?k=2"
				body = fps
			case 3:
				url = ts.URL + "/v1/analyze?stream=1"
				body = variant(i % 17)
			default:
				body = variant(i % 17)
			}
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				fail("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var doc *Document
			if i%6 == 3 {
				_, doc = sseFrames(t, resp)
				if doc == nil {
					fail("request %d: SSE stream without terminal frame", i)
					return
				}
			} else {
				doc = &Document{}
				if err := json.NewDecoder(resp.Body).Decode(doc); err != nil {
					fail("request %d: undecodable response: %v", i, err)
					return
				}
			}
			switch doc.Status {
			case StatusOptimal, StatusFeasible, StatusInfeasible:
				if len(doc.Solution) == 0 && len(doc.Solutions) == 0 {
					fail("request %d: %s response without a solution document", i, doc.Status)
				}
			default:
				fail("request %d: HTTP %d status %q (%s)", i, resp.StatusCode, doc.Status, doc.Error)
			}
			mu.Lock()
			statuses[doc.Status]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
	if statuses[StatusOptimal] == 0 {
		t.Errorf("no OPTIMAL answers across %d requests: %v", requests, statuses)
	}
	if hits := s.metrics.Get("mpmcsd_cache_hits"); hits == 0 {
		t.Error("repeat submissions produced no cache hits")
	}
	if total := s.metrics.Get("mpmcsd_requests"); total != requests {
		t.Errorf("mpmcsd_requests = %d, want %d", total, requests)
	}

	// Teardown: front-end first (kills request contexts), then the
	// server (drains the pool, joins everything it started).
	ts.Close()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}

	// No goroutine outlives the server. Allow the runtime a moment to
	// retire exiting goroutines before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked past Close: %d before, %d after\n%s", before, after, buf[:n])
	}
}

// Submissions racing the server's shutdown must fail cleanly (503 or a
// transport error), never hang or panic.
func TestSubmitDuringShutdown(t *testing.T) {
	s := New(Config{Workers: 2, Core: core.Options{Sequential: true}})
	ts := httptest.NewServer(s.Handler())
	body := treeJSON(t, gen.FPS())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server gone: acceptable
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	ts.Close()
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
}
