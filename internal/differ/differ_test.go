package differ

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"mpmcs4fta/internal/cnf"
	"mpmcs4fta/internal/ft"
	"mpmcs4fta/internal/gen"
	"mpmcs4fta/internal/maxsat"
)

// TestCheckTreeNamedTreesAgree: every literature tree passes the full
// harness, top-k cross-check included.
func TestCheckTreeNamedTreesAgree(t *testing.T) {
	ctx := context.Background()
	trees := []*ft.Tree{
		gen.FPS(),
		gen.PressureTank(),
		gen.RedundantSCADA(),
		gen.ReactorProtection(),
		gen.RailwayCrossing(),
	}
	for _, tree := range trees {
		rep, err := CheckTree(ctx, tree, Options{TopK: 3})
		if err != nil {
			t.Fatalf("%s: %v", tree.Name(), err)
		}
		if !rep.OK() {
			t.Errorf("%s: unexpected divergences:\n%s", tree.Name(), rep)
		}
		if len(rep.Engines) == 0 {
			t.Fatalf("%s: no engines ran", tree.Name())
		}
	}
}

// TestCheckTreeFPSOracle: the oracle columns carry the paper's known
// values for the Fig. 1 tree (MPMCS {x1,x2}, p = 0.02).
func TestCheckTreeFPSOracle(t *testing.T) {
	rep, err := CheckTree(context.Background(), gen.FPS(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("unexpected divergences:\n%s", rep)
	}
	if math.Abs(rep.OracleProbability-0.02) > 1e-12 {
		t.Errorf("oracle probability = %v, want 0.02", rep.OracleProbability)
	}
	if rep.TopProbability < rep.OracleProbability {
		t.Errorf("P(top) %v below MPMCS probability %v", rep.TopProbability, rep.OracleProbability)
	}
	for _, e := range rep.Engines {
		if e.Err != "" {
			continue
		}
		if got := strings.Join(e.CutSet, ","); got != "x1,x2" {
			t.Errorf("engine %s decoded %q, want x1,x2", e.Name, got)
		}
	}
}

// TestCheckRandomSeededAgree: a spread of seeded generator instances
// with mixed gates all pass.
func TestCheckRandomSeededAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	ctx := context.Background()
	for seed := int64(1); seed <= 10; seed++ {
		cfg := gen.Config{Events: 10, VotingFrac: 0.25, Seed: seed}
		rep, err := CheckRandom(ctx, cfg, Options{TopK: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Errorf("seed %d: unexpected divergences:\n%s", seed, rep)
		}
	}
}

// TestCheckWCNFAgreement: a hand-built instance passes, and an
// infeasible one yields unanimous INFEASIBLE without divergence.
func TestCheckWCNF(t *testing.T) {
	ctx := context.Background()

	feasible := &cnf.WCNF{}
	feasible.AddHard(1, 2)
	feasible.AddHard(-1, 3)
	feasible.AddSoft(3, 1)
	feasible.AddSoft(2, 2)
	feasible.AddSoft(4, -3)
	rep, err := CheckWCNF(ctx, feasible, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("feasible instance: unexpected divergences:\n%s", rep)
	}

	infeasible := &cnf.WCNF{}
	infeasible.AddHard(1)
	infeasible.AddHard(-1)
	infeasible.AddSoft(1, 2)
	rep, err = CheckWCNF(ctx, infeasible, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("infeasible instance: unexpected divergences:\n%s", rep)
	}
	for _, e := range rep.Engines {
		if e.Status != maxsat.Infeasible.String() {
			t.Errorf("engine %s status %s, want INFEASIBLE", e.Name, e.Status)
		}
	}
}

// TestCheckWCNFRejectsInvalid: malformed instances are a setup error,
// not a divergence.
func TestCheckWCNFRejectsInvalid(t *testing.T) {
	bad := &cnf.WCNF{NumVars: 1, Soft: []cnf.SoftClause{{Clause: cnf.Clause{1}, Weight: -3}}}
	if _, err := CheckWCNF(context.Background(), bad, Options{}); err == nil {
		t.Fatal("expected error for negative soft weight")
	}
}

// TestReportString: the human rendering names the instance and every
// divergence.
func TestReportString(t *testing.T) {
	r := &Report{Name: "demo"}
	r.Engines = append(r.Engines, EngineResult{Name: "wmsu1", Status: "OPTIMAL", Cost: 7, Elapsed: time.Millisecond})
	r.diverge(CheckCost, "wmsu1", "optimum 7, but engine linear-su found 6")
	s := r.String()
	for _, want := range []string{"demo", "1 divergence", "wmsu1", "[cost]"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
	ok := &Report{Name: "demo"}
	if !strings.Contains(ok.String(), "agreement") {
		t.Errorf("clean report should say agreement:\n%s", ok.String())
	}
}
